//! Differential test between the 64-way bit-parallel simulator and the
//! SAT-based BMC unroller.
//!
//! The mining pipeline trusts the simulator to *kill* candidates and the
//! SAT encoding to *promote* them, so a disagreement between the two
//! semantics would let a false invariant through (or silently discard a
//! true one). This suite pins both to the same ground truth: on seeded
//! random designs, driving the simulator and [`Bmc::trace_with_stimulus`]
//! with identical input stimulus must produce identical latch valuations
//! at every depth.

use japrove::aig::{Aig, AigLit, Simulator};
use japrove::ic3::Bmc;
use japrove::tsys::{TransitionSystem, Word};
use japrove_rng::SplitMix64;

/// A random design: a few inputs, a few latches (mixed reset values)
/// and a pile of random AND/XOR logic feeding the next-state functions.
fn random_design(seed: u64) -> Aig {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut aig = Aig::new();
    let num_inputs = 2 + (seed as usize % 3);
    let num_latches = 4 + (seed as usize % 5);
    let inputs: Vec<AigLit> = (0..num_inputs).map(|_| aig.add_input()).collect();
    let latches: Vec<AigLit> = (0..num_latches)
        .map(|i| aig.add_latch(i % 3 == 0))
        .collect();
    let mut pool: Vec<AigLit> = inputs.iter().chain(&latches).copied().collect();
    pool.push(AigLit::TRUE);
    for _ in 0..24 {
        let a = pick(&mut rng, &pool);
        let b = pick(&mut rng, &pool);
        let gate = if rng.gen_bool() {
            aig.and(a, b)
        } else {
            aig.xor(a, b)
        };
        pool.push(gate);
    }
    for &l in &latches {
        let next = pick(&mut rng, &pool);
        aig.set_next(l, next);
    }
    aig
}

fn pick(rng: &mut SplitMix64, pool: &[AigLit]) -> AigLit {
    let lit = pool[rng.gen_index(0, pool.len())];
    if rng.gen_bool() {
        !lit
    } else {
        lit
    }
}

/// Broadcasts a Boolean stimulus step to all 64 simulator instances.
fn broadcast(step: &[bool]) -> Vec<u64> {
    step.iter().map(|&b| if b { u64::MAX } else { 0 }).collect()
}

#[test]
fn simulator_and_bmc_agree_on_random_designs() {
    const DEPTH: usize = 8;
    for seed in 0..10u64 {
        let aig = random_design(seed);
        let sys = TransitionSystem::new(format!("rnd{seed}"), aig.clone());
        let mut rng = SplitMix64::seed_from_u64(0xD1FF ^ seed);
        let stimulus: Vec<Vec<bool>> = (0..=DEPTH)
            .map(|_| (0..aig.num_inputs()).map(|_| rng.gen_bool()).collect())
            .collect();

        // SAT side: unroll DEPTH+1 frames with every input pinned.
        let mut bmc = Bmc::new(&sys);
        let trace = bmc
            .trace_with_stimulus(&stimulus)
            .expect("a deterministic unrolling is always satisfiable");
        assert_eq!(trace.states().len(), DEPTH + 1, "rnd{seed}");
        for (step, pinned) in stimulus.iter().enumerate() {
            assert_eq!(
                trace.input(step),
                pinned.as_slice(),
                "rnd{seed}: the model must echo the pinned inputs at step {step}"
            );
        }

        // Simulation side: same stimulus, compare instance-0 bits of
        // every latch word against the model's latch valuation. The
        // state at step t is registered before t's inputs apply, so it
        // is compared first and then advanced with those inputs.
        let mut sim = Simulator::new(&aig);
        for (step, step_inputs) in stimulus.iter().enumerate() {
            let sim_state: Vec<bool> = sim.state().iter().map(|&w| w & 1 == 1).collect();
            assert_eq!(
                sim_state.as_slice(),
                trace.state(step),
                "rnd{seed}: latch valuations diverge at depth {step}"
            );
            if step < DEPTH {
                sim.step(&aig, &broadcast(step_inputs));
            }
        }
    }
}

#[test]
fn counter_with_enable_matches_closed_form() {
    // Deterministic anchor next to the random sweep: a 3-bit counter
    // that increments only when its enable input is high. Both engines
    // must reproduce the count implied by the enable pattern exactly.
    let mut aig = Aig::new();
    let en = aig.add_input();
    let c = Word::latches(&mut aig, 3, 0);
    let inc = c.increment(&mut aig);
    let next = Word::mux(&mut aig, en, &inc, &c);
    c.set_next(&mut aig, &next);
    let sys = TransitionSystem::new("cnt_en", aig.clone());

    let pattern = [true, true, false, true, false, false, true, true];
    let stimulus: Vec<Vec<bool>> = pattern.iter().map(|&b| vec![b]).collect();
    let mut bmc = Bmc::new(&sys);
    let trace = bmc.trace_with_stimulus(&stimulus).expect("satisfiable");

    let mut sim = Simulator::new(&aig);
    let mut expected = 0u8;
    for (step, &enabled) in pattern.iter().enumerate() {
        let model: u8 = trace
            .state(step)
            .iter()
            .enumerate()
            .map(|(bit, &v)| (v as u8) << bit)
            .sum();
        assert_eq!(model, expected, "model count at step {step}");
        let simulated: u8 = sim
            .state()
            .iter()
            .enumerate()
            .map(|(bit, &w)| ((w & 1) as u8) << bit)
            .sum();
        assert_eq!(simulated, expected, "simulated count at step {step}");
        if enabled {
            expected = (expected + 1) % 8;
        }
        sim.step(&aig, &broadcast(&[enabled]));
    }
}
