//! The fault-tolerance pillar, end to end: a chaos run with injected
//! engine panics must (a) complete instead of aborting, (b) agree with
//! the clean run on every non-faulted property, (c) degrade exactly
//! the planned faults to `Unknown(EngineFault)` after the supervised
//! retry, and (d) survive torn store writes with a lossy load.
//!
//! The fault registry is process-global, so every test that arms it
//! goes through [`with_plan`], which serializes on a mutex and clears
//! the registry afterwards — a poisoned lock (a failing sibling test)
//! must not cascade, so the guard recovers with `into_inner`.

use japrove::core::{
    CacheEntry, ClusteredOptions, PropertyResult, SeparateOptions, Session, VerdictCache,
};
use japrove::genbench::FamilyParams;
use japrove::ic3::{CheckOutcome, UnknownReason};
use japrove::obs::fault::{self, FaultPlan};
use japrove::obs::{EventKind, Journal};
use std::sync::Mutex;

static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with `plan` armed, serialized against the other chaos
/// tests, clearing the registry on the way out (also when `f` itself
/// panics mid-assertion, via the drop guard).
fn with_plan<T>(plan: FaultPlan, f: impl FnOnce() -> T) -> T {
    struct Disarm;
    impl Drop for Disarm {
        fn drop(&mut self) {
            fault::clear();
        }
    }
    let _serial = FAULT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    fault::install(plan);
    let _disarm = Disarm;
    f()
}

/// A mixed 22-property family: provable chains and ring invariants,
/// trivially-true monitors and two shallow failures, so the chaos run
/// exercises holds, fails *and* certificate lifting.
fn mixed_design() -> japrove::tsys::TransitionSystem {
    FamilyParams::new("chaos_mix", 3)
        .easy_true(8)
        .ring(4, 6)
        .chain(3, 10)
        .shallow_fails(vec![2, 3])
        .generate()
        .sys
}

fn engine_faulted(r: &PropertyResult) -> bool {
    matches!(r.outcome, CheckOutcome::Unknown(UnknownReason::EngineFault))
}

fn fault_events(journal: &Journal) -> usize {
    journal
        .events()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Fault { .. }))
        .count()
}

/// The headline chaos test: an 8-thread clustered run with ~10%
/// injected `check_one` panics completes, matches the clean run on
/// every non-faulted property, and degrades exactly the planned
/// faults — deterministically, because fault decisions hash the
/// property name, never thread interleaving or arrival order.
#[test]
fn chaos_clustered_run_completes_and_preserves_unfaulted_verdicts() {
    let sys = mixed_design();
    // The cluster-level joint attempt can settle a whole cluster before
    // any member reaches the per-property `check_one` fault site; it is
    // disabled here so the planned fault set below is exact, not an
    // over-approximation.
    let clustered = |journal: &Journal| {
        ClusteredOptions::new()
            .separate(SeparateOptions::global().journal(journal.clone()))
            .cluster_joint(false)
            .journal(journal.clone())
    };

    let clean_journal = Journal::new();
    let clean = with_plan(FaultPlan::parse("", 0).unwrap(), || {
        Session::clustered(clustered(&clean_journal), 8).run(&sys)
    });
    assert_eq!(
        fault_events(&clean_journal),
        0,
        "clean run journals no faults"
    );

    let plan = FaultPlan::parse("panic@check_one:0.1", 1).unwrap();
    let planned: Vec<String> = clean
        .results
        .iter()
        .map(|r| r.name.clone())
        .filter(|name| plan.decides("check_one", name, "panic", 0.1))
        .collect();
    assert!(
        !planned.is_empty(),
        "seed 1 must fault at least one of the 22 properties"
    );
    assert!(
        planned.len() < clean.results.len(),
        "and must leave unfaulted properties to compare"
    );

    let chaos_journal = Journal::new();
    let chaos = with_plan(plan, || {
        Session::clustered(clustered(&chaos_journal), 8).run(&sys)
    });

    assert_eq!(chaos.results.len(), clean.results.len(), "never aborts");
    for r in &chaos.results {
        let reference = clean.result(r.id).expect("same property set");
        if planned.contains(&r.name) {
            assert!(engine_faulted(r), "{} settles on EngineFault", r.name);
            assert!(r.retried, "{} was retried before settling", r.name);
        } else {
            assert_eq!(r.holds(), reference.holds(), "{} verdict flipped", r.name);
            assert_eq!(r.fails(), reference.fails(), "{} verdict flipped", r.name);
            assert!(!engine_faulted(r), "{} faulted off-plan", r.name);
        }
    }
    // Each planned fault panics on the first attempt and again on its
    // supervised retry (decisions are attempt-independent), and both
    // containments are journaled.
    assert!(
        fault_events(&chaos_journal) >= 2 * planned.len(),
        "every containment is journaled"
    );
}

/// At rate 1.0 every property faults: the sequential driver retries
/// each once on a fresh cold context (journaling both containments)
/// and the whole report settles on `Unknown(EngineFault)` — the run
/// still never aborts.
#[test]
fn total_chaos_settles_every_property_after_one_retry() {
    let sys = FamilyParams::new("chaos_total", 5)
        .easy_true(3)
        .generate()
        .sys;
    let journal = Journal::new();
    let report = with_plan(FaultPlan::parse("panic@check_one:1.0", 9).unwrap(), || {
        Session::separate(SeparateOptions::local().journal(journal.clone())).run(&sys)
    });
    assert_eq!(report.results.len(), 3);
    for r in &report.results {
        assert!(engine_faulted(r), "{}", r.name);
        assert!(r.retried, "{}", r.name);
    }
    // retries = 1 (the default): first attempt + exactly one retry.
    assert_eq!(fault_events(&journal), 2 * 3);
}

/// `--retries 0` opts out of supervision: the fault is still contained
/// (the run completes) but nothing is re-attempted.
#[test]
fn zero_retries_contains_without_reattempting() {
    let sys = FamilyParams::new("chaos_noretry", 5)
        .easy_true(2)
        .generate()
        .sys;
    let journal = Journal::new();
    let report = with_plan(FaultPlan::parse("panic@check_one:1.0", 9).unwrap(), || {
        Session::separate(SeparateOptions::local().journal(journal.clone()).retries(0)).run(&sys)
    });
    for r in &report.results {
        assert!(engine_faulted(r), "{}", r.name);
        assert!(!r.retried, "{}", r.name);
    }
    assert_eq!(fault_events(&journal), 2, "one containment per property");
}

/// A panic in the post-verdict enumeration pass (the `enum_round`
/// site) degrades only that property's *enumeration* — the verdicts
/// settled before the pass ran and must match the clean run exactly,
/// and the run still completes with a `faulted` marker per entry.
#[test]
fn enum_round_panic_degrades_enumeration_never_verdicts() {
    use japrove::core::{EnumOptions, Projection};
    let sys = mixed_design();
    let session = |journal: &Journal| {
        Session::separate(SeparateOptions::local().journal(journal.clone())).enumeration(
            EnumOptions::new()
                .enumerate(true)
                .count(true)
                .projection(Projection::Latches)
                .journal(journal.clone()),
        )
    };

    let clean_journal = Journal::new();
    let clean = with_plan(FaultPlan::parse("", 0).unwrap(), || {
        session(&clean_journal).run(&sys)
    });
    assert!(clean.num_false() >= 2, "the mix has two shallow failures");
    assert_eq!(clean.enumerations.len(), clean.num_false());
    assert!(clean.enumerations.iter().all(|e| !e.faulted));
    assert!(clean.enumerations.iter().all(|e| !e.cexes.is_empty()));

    let chaos_journal = Journal::new();
    let chaos = with_plan(FaultPlan::parse("panic@enum_round:1.0", 7).unwrap(), || {
        session(&chaos_journal).run(&sys)
    });
    for r in &chaos.results {
        let reference = clean.result(r.id).expect("same property set");
        assert_eq!(r.holds(), reference.holds(), "{} verdict flipped", r.name);
        assert_eq!(r.fails(), reference.fails(), "{} verdict flipped", r.name);
        assert!(
            !engine_faulted(r),
            "{}: the engines never ran faulted",
            r.name
        );
    }
    assert_eq!(chaos.enumerations.len(), clean.enumerations.len());
    for e in &chaos.enumerations {
        assert!(e.faulted, "{}: enumeration degrades", e.name);
        assert!(e.cexes.is_empty() && e.count.is_none(), "{}", e.name);
    }
    // First attempt + one supervised retry per falsified property, each
    // containment journaled.
    assert_eq!(fault_events(&chaos_journal), 2 * chaos.enumerations.len());
}

/// A torn verdict-cache write (injected at the `verdict_cache_save`
/// site, simulating a crash mid-save under the legacy non-atomic
/// writer) is skipped by the lossy loader with a count — verdicts
/// degrade to cache misses, never a crash or an unreadable store.
#[test]
fn injected_store_truncation_degrades_to_a_lossy_load() {
    let dir = std::env::temp_dir().join(format!("japrove_chaos_store_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cache.jsonl");

    let mut cache = VerdictCache::default();
    for p in ["p0", "p1"] {
        cache.upsert(CacheEntry {
            cone: "00000000deadbeef".into(),
            property: p.into(),
            verdict: "holds".into(),
            clauses: vec![vec![1, -2]],
            inputs: vec![],
            depth: 0,
        });
    }
    with_plan(
        FaultPlan::parse("truncate@verdict_cache_save:1.0:40", 0).unwrap(),
        || cache.save(&path).unwrap(),
    );
    let torn = std::fs::read_to_string(&path).unwrap();
    assert_eq!(torn.len(), 40, "the injected write is torn mid-line");

    let (loaded, skipped) = VerdictCache::load_lossy(&path).unwrap();
    assert!(skipped >= 1, "the torn tail is counted, not fatal");
    assert!(loaded.len() < cache.len());

    // With the harness disarmed the same save is atomic and checksummed
    // again, and round-trips losslessly.
    cache.save(&path).unwrap();
    let (reloaded, skipped) = VerdictCache::load_lossy(&path).unwrap();
    assert_eq!(skipped, 0);
    assert_eq!(reloaded.len(), cache.len());
    std::fs::remove_dir_all(&dir).unwrap();
}
