//! Cross-engine consistency: BMC, IC3 and the multi-property drivers
//! must agree on randomly generated small designs, every
//! counterexample must replay, and every certificate must re-verify.

use japrove::core::{
    clustered_verify, ja_verify, parallel_clustered_verify, parallel_ja_verify_with,
    separate_verify, AffinityMetric, ClusteredOptions, JointOptions, ParallelMode, SeparateOptions,
};
use japrove::genbench::FamilyParams;
use japrove::ic3::{verify_certificate, Bmc, BmcResult, CheckOutcome, Ic3, Ic3Options};
use japrove::sat::{BackendChoice, Budget};
use japrove::tsys::replay;

fn random_designs() -> Vec<japrove::genbench::GeneratedDesign> {
    (0..6u64)
        .map(|seed| {
            FamilyParams::new(format!("rnd{seed}"), seed)
                .easy_true(1 + (seed as usize % 3))
                .chain(1 + (seed as usize % 3), 4 + seed % 5)
                .shallow_fails(if seed % 2 == 0 {
                    vec![2 + seed % 4]
                } else {
                    vec![]
                })
                .shadow_group(2, vec![6 + seed % 7])
                .generate()
        })
        .collect()
}

#[test]
fn ic3_agrees_with_bmc_on_every_property() {
    for design in random_designs() {
        let sys = &design.sys;
        for p in sys.property_ids() {
            let ic3_outcome = Ic3::new(sys, p, Ic3Options::new()).run();
            let mut bmc = Bmc::new(sys);
            let bmc_outcome = bmc.run(&[p], 24, Budget::unlimited());
            match (&ic3_outcome, &bmc_outcome) {
                (CheckOutcome::Falsified(cex), BmcResult::Cex { cex: bcex, .. }) => {
                    assert_eq!(
                        cex.depth,
                        bcex.depth,
                        "{}/{}: IC3 and BMC disagree on CEX depth",
                        sys.name(),
                        sys.property(p).name
                    );
                }
                (CheckOutcome::Proved(cert), BmcResult::NoCexUpTo(24)) => {
                    verify_certificate(sys, p, &[], cert).unwrap_or_else(|e| {
                        panic!(
                            "{}/{}: bad certificate: {e}",
                            sys.name(),
                            sys.property(p).name
                        )
                    });
                }
                (a, b) => panic!(
                    "{}/{}: inconsistent verdicts: ic3={a:?} bmc={b:?}",
                    sys.name(),
                    sys.property(p).name
                ),
            }
        }
    }
}

#[test]
fn backend_differential_matrix_agrees_on_every_property() {
    // Every generated system is checked with every registered SAT
    // backend; the verdicts must agree, every counterexample must
    // replay and every certificate must re-verify, whichever backend
    // produced it.
    for design in random_designs() {
        let sys = &design.sys;
        for p in sys.property_ids() {
            let mut verdicts: Vec<(BackendChoice, bool)> = Vec::new();
            for &backend in BackendChoice::ALL {
                let outcome = Ic3::new(sys, p, Ic3Options::new().backend(backend)).run();
                match &outcome {
                    CheckOutcome::Falsified(cex) => {
                        let r = replay(sys, &cex.trace).unwrap_or_else(|e| {
                            panic!("{}/{}/{backend}: {e}", sys.name(), sys.property(p).name)
                        });
                        assert!(
                            r.violates_finally(p),
                            "{}/{}/{backend}: cex does not violate the property",
                            sys.name(),
                            sys.property(p).name
                        );
                    }
                    CheckOutcome::Proved(cert) => {
                        verify_certificate(sys, p, &[], cert).unwrap_or_else(|e| {
                            panic!("{}/{}/{backend}: {e}", sys.name(), sys.property(p).name)
                        });
                    }
                    CheckOutcome::Unknown(r) => panic!(
                        "{}/{}/{backend}: unexpected unknown ({r})",
                        sys.name(),
                        sys.property(p).name
                    ),
                }
                verdicts.push((backend, outcome.is_proved()));
            }
            let (b0, v0) = verdicts[0];
            for &(b, v) in &verdicts[1..] {
                assert_eq!(
                    v0,
                    v,
                    "{}/{}: {b0} and {b} disagree",
                    sys.name(),
                    sys.property(p).name
                );
            }
        }
    }
}

#[test]
fn bmc_backends_agree_on_depths() {
    // BMC searches depths in order, so every backend must report the
    // *same* minimal counterexample depth (or the same absence).
    for design in random_designs().into_iter().take(3) {
        let sys = &design.sys;
        for p in sys.property_ids() {
            let mut depths: Vec<(BackendChoice, Option<usize>)> = Vec::new();
            for &backend in BackendChoice::ALL {
                let mut bmc = Bmc::with_backend(sys, backend);
                let depth = match bmc.run(&[p], 16, Budget::unlimited()) {
                    BmcResult::Cex { cex, .. } => Some(cex.depth),
                    BmcResult::NoCexUpTo(16) => None,
                    other => panic!("{}/{backend}: {other:?}", sys.property(p).name),
                };
                depths.push((backend, depth));
            }
            let (b0, d0) = depths[0];
            for &(b, d) in &depths[1..] {
                assert_eq!(d0, d, "{}: {b0} vs {b}", sys.property(p).name);
            }
        }
    }
}

#[test]
fn driver_verdicts_are_backend_independent() {
    // The full JA driver (local proofs, clause re-use, spurious-CEX
    // retry) must reach the same verdicts on every backend, including
    // a mixed per-property portfolio assignment.
    for design in random_designs().into_iter().take(3) {
        let sys = &design.sys;
        let baseline = ja_verify(sys, &SeparateOptions::local());
        for &backend in &BackendChoice::ALL[1..] {
            let report = ja_verify(sys, &SeparateOptions::local().backend(backend));
            for (a, b) in baseline.results.iter().zip(&report.results) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.holds(), b.holds(), "{}/{}/{backend}", sys.name(), a.name);
                assert_eq!(a.fails(), b.fails(), "{}/{}/{backend}", sys.name(), a.name);
            }
        }
        // Portfolio: round-robin backend assignment over properties.
        let mut opts = SeparateOptions::local();
        for (i, p) in sys.property_ids().enumerate() {
            opts = opts.backend_for(p, BackendChoice::ALL[i % BackendChoice::ALL.len()]);
        }
        let portfolio = ja_verify(sys, &opts);
        for (a, b) in baseline.results.iter().zip(&portfolio.results) {
            assert_eq!(
                a.holds(),
                b.holds(),
                "{}/{} (portfolio)",
                sys.name(),
                a.name
            );
            assert_eq!(
                a.fails(),
                b.fails(),
                "{}/{} (portfolio)",
                sys.name(),
                a.name
            );
            assert_eq!(b.backend, opts.backend_of(b.id));
        }
    }
}

#[test]
fn parallel_verdicts_match_sequential_under_stress() {
    // The work-stealing driver must be verdict-deterministic: for every
    // generated design, every thread count and both re-use settings,
    // `parallel_ja_verify` agrees with the sequential `ja_verify` —
    // and so does the cold/FIFO reference mode. Scheduling order and
    // clause exchange may differ run to run; verdicts may not.
    for design in random_designs() {
        let sys = &design.sys;
        for reuse in [true, false] {
            let opts = SeparateOptions::local().reuse(reuse);
            let seq = ja_verify(sys, &opts);
            for threads in [1usize, 2, 8] {
                for mode in [ParallelMode::Incremental, ParallelMode::ColdFifo] {
                    let par = parallel_ja_verify_with(sys, threads, &opts, mode);
                    assert_eq!(seq.results.len(), par.results.len());
                    for (a, b) in seq.results.iter().zip(&par.results) {
                        assert_eq!(a.id, b.id);
                        assert_eq!(a.scope, b.scope);
                        assert_eq!(
                            a.holds(),
                            b.holds(),
                            "{}/{}: reuse={reuse} threads={threads} mode={mode:?}",
                            sys.name(),
                            a.name
                        );
                        assert_eq!(
                            a.fails(),
                            b.fails(),
                            "{}/{}: reuse={reuse} threads={threads} mode={mode:?}",
                            sys.name(),
                            a.name
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn clustered_matches_separate_on_every_design_and_metric() {
    // Verdict parity of the clustered driver against plain separate
    // verification, over every generated design × both affinity
    // metrics × both scopes. The designs mix valid and failing
    // properties (including shadowed ones, where local and global
    // verdicts differ), so this also pins down that clustered-local is
    // JA and clustered-global is the global baseline.
    for design in random_designs() {
        let sys = &design.sys;
        for metric in [AffinityMetric::Jaccard, AffinityMetric::Hybrid] {
            let global = separate_verify(sys, &SeparateOptions::global());
            let clustered = clustered_verify(sys, &ClusteredOptions::new().metric(metric));
            assert_eq!(global.results.len(), clustered.results.len());
            for (a, b) in global.results.iter().zip(&clustered.results) {
                assert_eq!(a.id, b.id);
                assert_eq!(
                    a.holds(),
                    b.holds(),
                    "{}/{}/{metric} (global)",
                    sys.name(),
                    a.name
                );
                assert_eq!(
                    a.fails(),
                    b.fails(),
                    "{}/{}/{metric} (global)",
                    sys.name(),
                    a.name
                );
            }

            let local = ja_verify(sys, &SeparateOptions::local());
            let clustered_local = clustered_verify(
                sys,
                &ClusteredOptions::new()
                    .metric(metric)
                    .separate(SeparateOptions::local()),
            );
            for (a, b) in local.results.iter().zip(&clustered_local.results) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.scope, b.scope);
                assert_eq!(
                    a.holds(),
                    b.holds(),
                    "{}/{}/{metric} (local)",
                    sys.name(),
                    a.name
                );
                assert_eq!(
                    a.fails(),
                    b.fails(),
                    "{}/{}/{metric} (local)",
                    sys.name(),
                    a.name
                );
            }
        }
    }
}

#[test]
fn clustered_fallback_recovers_every_verdict_on_a_mixed_family() {
    // A mixed valid/failing family where the per-cluster joint attempt
    // is starved (1-conflict budget): every verdict must come from the
    // per-property fallback, so nothing may be left Unknown and parity
    // with the separate baseline must still hold — under both metrics
    // and in the parallel driver too.
    use japrove::ic3::Ic3Options;
    use japrove::sat::Budget;
    let design = FamilyParams::new("mixed_fallback", 23)
        .easy_true(3)
        .ring(5, 4)
        .chain(2, 5)
        .shallow_fails(vec![2, 3])
        .shadow_group(2, vec![9])
        .generate();
    let sys = &design.sys;
    let separate = separate_verify(sys, &SeparateOptions::global());
    assert!(separate.num_false() >= 3, "family must mix verdicts");
    assert!(separate.num_true() >= 3, "family must mix verdicts");
    for metric in [AffinityMetric::Jaccard, AffinityMetric::Hybrid] {
        let starved = ClusteredOptions::new()
            .metric(metric)
            .joint(JointOptions::new().ic3(Ic3Options::new().budget(Budget::conflicts(1))));
        for threads in [1usize, 3] {
            let report = parallel_clustered_verify(sys, threads, &starved);
            assert_eq!(report.num_unsolved(), 0, "{metric} x{threads}: {report}");
            for (a, b) in separate.results.iter().zip(&report.results) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.holds(), b.holds(), "{}/{metric} x{threads}", a.name);
                assert_eq!(a.fails(), b.fails(), "{}/{metric} x{threads}", a.name);
            }
        }
    }
}

#[test]
fn clustered_certificates_and_counterexamples_check_out_on_the_original_design() {
    // The joint attempts run on cone reductions; the report must still
    // carry artifacts valid for the *original* system — certificates
    // re-verify and counterexamples replay.
    for design in random_designs().into_iter().take(3) {
        let sys = &design.sys;
        let report = clustered_verify(sys, &ClusteredOptions::new());
        assert_eq!(report.results.len(), sys.num_properties());
        for r in &report.results {
            match &r.outcome {
                CheckOutcome::Proved(cert) => {
                    verify_certificate(sys, r.id, &[], cert)
                        .unwrap_or_else(|e| panic!("{}/{}: {e}", sys.name(), r.name));
                }
                CheckOutcome::Falsified(cex) => {
                    let rp = replay(sys, &cex.trace)
                        .unwrap_or_else(|e| panic!("{}/{}: {e}", sys.name(), r.name));
                    assert!(
                        rp.violates_finally(r.id),
                        "{}/{}: lifted cex does not violate the property",
                        sys.name(),
                        r.name
                    );
                }
                CheckOutcome::Unknown(reason) => {
                    panic!("{}/{}: unexpected unknown ({reason})", sys.name(), r.name)
                }
            }
        }
    }
}

#[test]
fn mined_workload_parity_between_clustered_and_separate() {
    // A mined few-hundred-property workload is the adversarial case for
    // the clustered driver: hundreds of structurally similar,
    // all-holding properties that cluster aggressively. The clustered
    // verdicts must match the separate baseline exactly, at 1 and at 8
    // threads — and since every mined property is k-induction proved,
    // neither driver may falsify or abandon anything.
    use japrove::mine::{mine, MineOptions};
    let design = japrove::genbench::resolve_spec("syn_6s135")
        .expect("family exists")
        .generate();
    let outcome = mine(&design.sys, &MineOptions::new());
    let sys = &outcome.sys;
    assert!(
        sys.num_properties() >= 200,
        "need a few-hundred-property mined workload, got {}",
        sys.num_properties()
    );

    let separate = separate_verify(sys, &SeparateOptions::global());
    assert_eq!(separate.num_false(), 0, "mined properties cannot fail");
    assert_eq!(separate.num_unsolved(), 0, "{}", separate.summary());

    for threads in [1usize, 8] {
        let clustered = parallel_clustered_verify(
            sys,
            threads,
            &ClusteredOptions::new().separate(SeparateOptions::global()),
        );
        assert_eq!(separate.results.len(), clustered.results.len());
        for (a, b) in separate.results.iter().zip(&clustered.results) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.holds(), b.holds(), "{}/{} x{threads}", sys.name(), a.name);
            assert_eq!(a.fails(), b.fails(), "{}/{} x{threads}", sys.name(), a.name);
        }
    }
}

#[test]
fn every_counterexample_replays() {
    for design in random_designs() {
        let sys = &design.sys;
        for opts in [SeparateOptions::local(), SeparateOptions::global()] {
            let report = separate_verify(sys, &opts);
            for r in &report.results {
                if let Some(cex) = r.counterexample() {
                    let rp = replay(sys, &cex.trace).unwrap_or_else(|e| panic!("{}: {e}", r.name));
                    assert!(
                        rp.violates_finally(r.id),
                        "{}: final state does not violate the property",
                        r.name
                    );
                    assert_eq!(cex.trace.len(), cex.depth, "{}: depth mismatch", r.name);
                }
            }
        }
    }
}

#[test]
fn local_and_global_scopes_are_consistent() {
    // fails-locally implies fails-globally; holds-globally implies
    // holds-locally (Prop. 2).
    for design in random_designs() {
        let sys = &design.sys;
        let local = ja_verify(sys, &SeparateOptions::local());
        let global = separate_verify(sys, &SeparateOptions::global());
        for (l, g) in local.results.iter().zip(&global.results) {
            assert_eq!(l.id, g.id);
            if l.fails() {
                assert!(g.fails(), "{}: local failure but global success", l.name);
            }
            if g.holds() {
                assert!(l.holds(), "{}: global success but local failure", l.name);
            }
        }
    }
}

#[test]
fn deep_counterexamples_match_ground_truth_depth() {
    // Stress the deep-CEX path: global proofs of shadowed properties.
    let design = FamilyParams::new("deep", 99)
        .shadow_group(2, vec![80])
        .generate();
    let sys = &design.sys;
    let global = separate_verify(sys, &SeparateOptions::global());
    let shadow = global
        .results
        .iter()
        .find(|r| r.name.starts_with("shadow"))
        .expect("shadow property");
    let cex = shadow.counterexample().expect("fails globally");
    assert_eq!(cex.depth, 82);
    let rp = replay(sys, &cex.trace).expect("replayable");
    assert!(rp.violates_finally(shadow.id));
}

#[test]
fn certificates_from_multi_property_runs_verify() {
    for design in random_designs().into_iter().take(3) {
        let sys = &design.sys;
        // Global scope: certificates must verify standalone.
        let report = separate_verify(sys, &SeparateOptions::global());
        for r in &report.results {
            if let CheckOutcome::Proved(cert) = &r.outcome {
                verify_certificate(sys, r.id, &[], cert)
                    .unwrap_or_else(|e| panic!("{}: {e}", r.name));
            }
        }
        // Local scope: certificates verify under the assumption set.
        let assumed = japrove::core::local_assumptions(sys);
        let report = ja_verify(sys, &SeparateOptions::local());
        for r in &report.results {
            if let CheckOutcome::Proved(cert) = &r.outcome {
                verify_certificate(sys, r.id, &assumed, cert)
                    .unwrap_or_else(|e| panic!("{}: {e}", r.name));
            }
        }
    }
}

#[test]
fn enumeration_parity_between_separate_and_clustered() {
    // The distinct-failure set of a falsified property is a semantic
    // object: whichever driver produced the verdicts (and whatever
    // depth its recorded witness had), the post-verdict enumerator
    // re-derives the minimal depth and must return the same projection
    // sets, the same exhaustion and the same count bracket. Only the
    // order of witnesses may differ.
    use japrove::core::{EnumOptions, Projection, Session};
    use std::collections::{BTreeMap, BTreeSet};
    let enum_opts = EnumOptions::new()
        .enumerate(true)
        .count(true)
        .max_cexes(4096)
        .projection(Projection::Latches);
    for design in random_designs().into_iter().take(4) {
        let sys = &design.sys;
        let separate = Session::separate(SeparateOptions::global())
            .enumeration(enum_opts.clone())
            .run(sys);
        let clustered = Session::clustered(
            ClusteredOptions::new().separate(SeparateOptions::global()),
            4,
        )
        .enumeration(enum_opts.clone())
        .run(sys);
        assert_eq!(
            separate.enumerations.len(),
            clustered.enumerations.len(),
            "{}: same falsified set",
            sys.name()
        );
        let key = |report: &japrove::core::MultiReport| -> BTreeMap<String, _> {
            report
                .enumerations
                .iter()
                .map(|e| {
                    assert!(!e.faulted, "{}/{}", sys.name(), e.name);
                    assert!(e.exhausted, "{}/{}: cap must not bind", sys.name(), e.name);
                    assert_eq!(e.rejected, 0, "{}/{}", sys.name(), e.name);
                    let set: BTreeSet<Vec<bool>> =
                        e.cexes.iter().map(|c| c.projection.clone()).collect();
                    let count = e.count.as_ref().map(|c| (c.lo, c.hi, c.exact));
                    (e.name.clone(), (e.depth, set, count))
                })
                .collect()
        };
        assert_eq!(key(&separate), key(&clustered), "{}", sys.name());
    }
}
