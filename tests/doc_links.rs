//! Documentation link check: every relative markdown link in README.md
//! and docs/*.md must resolve to a file or directory inside the
//! repository, so the docs cannot silently rot as files move. CI runs
//! this test by name next to `cargo doc`.

use std::path::{Path, PathBuf};

/// Extracts `](target)` markdown link targets from one line. Good
/// enough for our docs: links never span lines and never contain `)`.
fn link_targets(line: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(open) = rest.find("](") {
        rest = &rest[open + 2..];
        if let Some(close) = rest.find(')') {
            out.push(&rest[..close]);
            rest = &rest[close + 1..];
        } else {
            break;
        }
    }
    out
}

/// `true` for link targets that point outside the repository or into
/// the rendered page itself.
fn is_external(target: &str) -> bool {
    target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:")
        || target.starts_with('#')
}

fn markdown_files() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = vec![root.join("README.md")];
    if let Ok(entries) = std::fs::read_dir(root.join("docs")) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "md") {
                files.push(path);
            }
        }
    }
    files
}

#[test]
fn relative_links_in_readme_and_docs_resolve() {
    let mut broken = Vec::new();
    let mut checked = 0usize;
    for file in markdown_files() {
        let text = std::fs::read_to_string(&file)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", file.display()));
        let dir = file.parent().expect("markdown file has a parent");
        let mut in_code_block = false;
        for (lineno, line) in text.lines().enumerate() {
            if line.trim_start().starts_with("```") {
                in_code_block = !in_code_block;
                continue;
            }
            if in_code_block {
                continue;
            }
            for target in link_targets(line) {
                if is_external(target) {
                    continue;
                }
                // Drop a #fragment; only the file part must exist.
                let path_part = target.split('#').next().unwrap_or(target);
                if path_part.is_empty() {
                    continue; // pure fragment, handled by is_external
                }
                checked += 1;
                if !dir.join(path_part).exists() {
                    broken.push(format!(
                        "{}:{}: broken link '{target}'",
                        file.display(),
                        lineno + 1
                    ));
                }
            }
        }
    }
    assert!(
        checked >= 3,
        "expected to find relative links to check (found {checked}) — \
         did the link extraction break?"
    );
    assert!(
        broken.is_empty(),
        "broken documentation links:\n{}",
        broken.join("\n")
    );
}

#[test]
fn docs_directory_is_linked_from_readme() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let readme = std::fs::read_to_string(root.join("README.md")).expect("README.md");
    assert!(
        readme.contains("docs/ARCHITECTURE.md"),
        "README must link the architecture tour"
    );
}

#[test]
fn link_extraction_handles_edge_cases() {
    assert_eq!(
        link_targets("see [a](x.md) and [b](y.md#frag)"),
        vec!["x.md", "y.md#frag"]
    );
    assert!(link_targets("no links here").is_empty());
    assert!(is_external("https://example.org"));
    assert!(is_external("#anchor"));
    assert!(!is_external("docs/ARCHITECTURE.md"));
}
