//! Differential tests for counterexample enumeration and XOR-hash
//! counting.
//!
//! The enumeration subsystem claims to return *exactly* the distinct
//! failure set of a falsified property — no duplicates, no misses,
//! every witness replaying. On small seeded designs that claim is
//! checkable against ground truth: the bit-parallel [`Simulator`]
//! brute-forces every input sequence up to the counterexample depth
//! and records which projection assignments actually fail. The
//! enumerator must reproduce that set bit-for-bit across thread counts
//! and both in-tree SAT backends.
//!
//! The XOR-hash counter gets the statistical treatment instead: over
//! many fixed seeds its `[lo, hi]` bracket must contain the true count
//! (well within the recorded (ε, δ) failure budget), and each seed
//! must be perfectly reproducible.

use japrove::aig::{Aig, Simulator};
use japrove::core::{
    enumerate_report, ja_verify, EnumOptions, Projection, SeparateOptions, Session,
};
use japrove::sat::BackendChoice;
use japrove::tsys::{TransitionSystem, Word};
use std::collections::BTreeSet;

/// A gated counter: increments only while its single input is high;
/// `good` = counter < `limit`. The minimal failure needs `limit`
/// consecutive high cycles.
fn gated_counter(bits: usize, limit: u64) -> TransitionSystem {
    let mut aig = Aig::new();
    let gate = aig.add_input();
    let c = Word::latches(&mut aig, bits, 0);
    let inc = c.increment(&mut aig);
    let next = Word::mux(&mut aig, gate, &inc, &c);
    c.set_next(&mut aig, &next);
    let good = c.lt_const(&mut aig, limit);
    let mut sys = TransitionSystem::new(format!("gated{bits}_{limit}"), aig);
    sys.add_property(format!("lt{limit}"), good);
    sys
}

/// A loadable register: every cycle the `bits`-wide input word is
/// registered verbatim; `good` = register < `bad_from`. Every value
/// `>= bad_from` is a distinct reachable bad state at depth 1.
fn loadable(bits: usize, bad_from: u64) -> TransitionSystem {
    let mut aig = Aig::new();
    let ins = Word::inputs(&mut aig, bits);
    let w = Word::latches(&mut aig, bits, 0);
    w.set_next(&mut aig, &ins);
    let good = w.lt_const(&mut aig, bad_from);
    let mut sys = TransitionSystem::new(format!("load{bits}_{bad_from}"), aig);
    sys.add_property(format!("lt{bad_from}"), good);
    sys
}

/// Ground truth by exhaustive simulation: tries *every* input sequence
/// of every depth `0..=max_depth` (64 sequences per simulator pass)
/// and returns the minimal depth at which `prop` fails finally, plus
/// the exact distinct projection sets at that depth.
///
/// Returns `(depth, input_projections, latch_projections)` where the
/// input set ranges over the flattened stimulus (frame-major, input
/// order within a frame — the order `Bmc::input_projection` uses) and
/// the latch set over the final-frame values of `latch_support`, in
/// support order.
type Truth = (usize, BTreeSet<Vec<bool>>, BTreeSet<Vec<bool>>);

fn brute_force(
    sys: &TransitionSystem,
    prop: japrove::tsys::PropertyId,
    max_depth: usize,
) -> Option<Truth> {
    let aig = sys.aig();
    let n_in = aig.num_inputs();
    let good = sys.property(prop).good;
    let support = sys.latch_support(prop);
    for depth in 0..=max_depth {
        let seq_bits = n_in * (depth + 1);
        assert!(seq_bits <= 20, "oracle design too wide to brute-force");
        let total: u64 = 1 << seq_bits;
        let mut inputs_set = BTreeSet::new();
        let mut latches_set = BTreeSet::new();
        let mut base = 0u64;
        while base < total {
            let lanes = 64.min(total - base) as usize;
            // Lane k of every word simulates sequence `base + k`; bit
            // `frame * n_in + i` of the sequence index is input `i` at
            // `frame`.
            let word = |frame: usize, i: usize| -> u64 {
                let mut w = 0u64;
                for lane in 0..lanes {
                    let seq = base + lane as u64;
                    if seq >> (frame * n_in + i) & 1 == 1 {
                        w |= 1 << lane;
                    }
                }
                w
            };
            let mut sim = Simulator::new(aig);
            for frame in 0..depth {
                let step: Vec<u64> = (0..n_in).map(|i| word(frame, i)).collect();
                sim.step(aig, &step);
            }
            let last: Vec<u64> = (0..n_in).map(|i| word(depth, i)).collect();
            sim.eval(aig, &last);
            let bad = !sim.value(good);
            for lane in 0..lanes {
                if bad >> lane & 1 == 0 {
                    continue;
                }
                let seq = base + lane as u64;
                inputs_set.insert((0..seq_bits).map(|b| seq >> b & 1 == 1).collect());
                latches_set.insert(
                    support
                        .iter()
                        .map(|&l| sim.state()[l] >> lane & 1 == 1)
                        .collect(),
                );
            }
            base += 64;
        }
        if !inputs_set.is_empty() {
            return Some((depth, inputs_set, latches_set));
        }
    }
    None
}

const BACKENDS: [BackendChoice; 2] = [BackendChoice::Cdcl, BackendChoice::ChronoCdcl];

/// Runs a full pipeline with enumeration attached and returns the
/// report.
fn run_session(
    sys: &TransitionSystem,
    threads: usize,
    backend: BackendChoice,
    projection: Projection,
) -> japrove::core::MultiReport {
    let opts = EnumOptions::new()
        .enumerate(true)
        .count(true)
        .max_cexes(4096)
        .projection(projection)
        .backend(backend);
    Session::parallel(SeparateOptions::local().backend(backend), threads)
        .enumeration(opts)
        .run(sys)
}

#[test]
fn enumeration_matches_brute_force_exactly() {
    let designs = [
        gated_counter(3, 2),
        gated_counter(4, 3),
        loadable(3, 5),
        loadable(4, 11),
    ];
    for sys in &designs {
        let p = sys.property_ids().next().unwrap();
        let (depth, inputs_oracle, latches_oracle) =
            brute_force(sys, p, 8).expect("every oracle design fails");
        for backend in BACKENDS {
            for threads in [1, 8] {
                for (projection, oracle) in [
                    (Projection::Inputs, &inputs_oracle),
                    (Projection::Latches, &latches_oracle),
                ] {
                    let report = run_session(sys, threads, backend, projection);
                    assert_eq!(report.enumerations.len(), 1, "{}", sys.name());
                    let e = &report.enumerations[0];
                    let label = format!(
                        "{}/{projection} backend={backend} threads={threads}",
                        sys.name()
                    );
                    assert!(!e.faulted, "{label}");
                    assert_eq!(e.depth, depth, "{label}: minimal depth");
                    assert!(e.exhausted, "{label}: the cap must not bind");
                    assert_eq!(e.rejected, 0, "{label}: every witness replays");
                    let got: BTreeSet<Vec<bool>> =
                        e.cexes.iter().map(|c| c.projection.clone()).collect();
                    assert_eq!(
                        got.len(),
                        e.cexes.len(),
                        "{label}: duplicate projection assignments"
                    );
                    assert_eq!(&got, oracle, "{label}: exact distinct-failure set");
                    for c in &e.cexes {
                        assert_eq!(c.cex.depth, depth, "{label}: witness depth");
                    }
                    // Small sets take the exact-counting path; larger
                    // ones must still bracket the oracle cardinality.
                    let truth = oracle.len() as u64;
                    let count = e.count.as_ref().expect("count requested");
                    if count.exact {
                        assert_eq!(count.lo, truth, "{label}: exact count");
                        assert_eq!(count.hi, count.lo, "{label}");
                    } else {
                        assert!(
                            count.lo <= truth && truth <= count.hi,
                            "{label}: truth {truth} outside [{}, {}]",
                            count.lo,
                            count.hi
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn holding_designs_enumerate_nothing() {
    // A 4-bit counter that never reaches its bound: no falsified
    // property, so the pass reports an empty (not absent) list.
    let mut aig = Aig::new();
    let c = Word::latches(&mut aig, 4, 0);
    let n = c.increment(&mut aig);
    c.set_next(&mut aig, &n);
    let ok = c.lt_const(&mut aig, 16);
    let mut sys = TransitionSystem::new("cnt_holds", aig);
    sys.add_property("in_range", ok);
    let report = run_session(&sys, 1, BackendChoice::Cdcl, Projection::Inputs);
    assert_eq!(report.num_false(), 0);
    assert!(report.enumerations.is_empty());
}

#[test]
fn xor_count_brackets_truth_on_every_seed_deterministically() {
    // 128 reachable states at depth 1, of which 128 - 37 = 91 violate
    // `w < 37`; 37 is odd so the comparison cone keeps all 7 latches in
    // the projection. 91 distinct bad states is past the exact-probe
    // limit, forcing the XOR up-search.
    let sys = loadable(7, 37);
    let p = sys.property_ids().next().unwrap();
    let truth = 91u64;
    let (_, _, latches_oracle) = brute_force(&sys, p, 2).expect("fails");
    assert_eq!(latches_oracle.len() as u64, truth, "oracle sanity");
    let report = ja_verify(&sys, &SeparateOptions::local());
    assert_eq!(report.num_false(), 1);
    for seed in 0..20u64 {
        let opts = EnumOptions::new()
            .count(true)
            .projection(Projection::Latches)
            .seed(seed);
        let runs: Vec<_> = (0..2)
            .map(|_| {
                let enums = enumerate_report(&sys, &report, &opts);
                assert_eq!(enums.len(), 1, "seed {seed}");
                enums.into_iter().next().unwrap()
            })
            .collect();
        let a = runs[0].count.as_ref().expect("count requested");
        let b = runs[1].count.as_ref().expect("count requested");
        assert!(!a.exact, "seed {seed}: must take the XOR path");
        assert!(
            a.lo <= truth && truth <= a.hi,
            "seed {seed}: truth {truth} outside [{}, {}] (level {})",
            a.lo,
            a.hi,
            a.level
        );
        assert!(
            a.epsilon >= 1.0 && a.delta > 0.0 && a.delta < 1.0,
            "seed {seed}"
        );
        // Same seed, same bracket — the constraint streams are pure
        // functions of (seed, property, level, trial).
        assert_eq!((a.lo, a.hi, a.level), (b.lo, b.hi, b.level), "seed {seed}");
    }
}
