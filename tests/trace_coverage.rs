//! End-to-end observability checks: a journaled run's spans must
//! account for (nearly) all of its wall-clock, the emitted JSONL must
//! re-parse under the strict schema, and every driver mode must emit
//! its phase vocabulary.

use japrove::core::{
    ja_verify, joint_verify, parallel_clustered_verify, ClusteredOptions, JointOptions,
    SeparateOptions,
};
use japrove::genbench::FamilyParams;
use japrove::obs::journal::parse_jsonl;
use japrove::obs::metrics::{phase_breakdown, top_level_span_us};
use japrove::obs::{Event, EventKind, Journal, Phase};

fn design() -> japrove::tsys::TransitionSystem {
    FamilyParams::new("trace_cov", 7)
        .chain(4, 5)
        .easy_true(3)
        .shallow_fails(vec![2])
        .generate()
        .sys
}

fn phases(events: &[Event]) -> Vec<Phase> {
    events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Span { phase, .. } => Some(phase),
            _ => None,
        })
        .collect()
}

/// The acceptance criterion: on a single-threaded clustered run the
/// top-level phase spans (encode, affinity probe, clusters) must sum
/// to within 5% of the run span's own duration — nothing the driver
/// does may escape tracing.
#[test]
fn clustered_spans_cover_wall_clock() {
    let sys = design();
    let journal = Journal::new();
    let opts = ClusteredOptions::new()
        .separate(SeparateOptions::global())
        .journal(journal.clone());
    let started = std::time::Instant::now();
    let report = {
        let _run = journal.span(Phase::Run);
        parallel_clustered_verify(&sys, 1, &opts)
    };
    let wall_us = started.elapsed().as_micros() as u64;
    assert_eq!(report.num_unsolved(), 0);

    let events = journal.events();
    let covered = top_level_span_us(&events);
    assert!(
        covered as f64 >= 0.95 * report.total_time.as_micros() as f64,
        "phase spans cover {covered} us of {} us reported",
        report.total_time.as_micros()
    );
    assert!(
        covered <= wall_us,
        "phase spans ({covered} us) cannot exceed wall-clock ({wall_us} us)"
    );

    let seen = phases(&events);
    for expected in [Phase::Encode, Phase::AffinityProbe, Phase::Cluster] {
        assert!(seen.contains(&expected), "missing {expected:?} span");
    }
    // The breakdown must list the run phase with exactly one span.
    let rows = phase_breakdown(&events);
    let run_row = rows.iter().find(|r| r.phase == Phase::Run).unwrap();
    assert_eq!(run_row.count, 1);
}

/// Whatever a real run emits must survive the strict JSONL schema —
/// the same check `japrove --check-trace` (and the CI smoke job)
/// performs.
#[test]
fn emitted_traces_reparse_under_strict_schema() {
    let sys = design();
    for mode in ["ja", "joint"] {
        let journal = Journal::new();
        {
            let _run = journal.span_labeled(Phase::Run, mode);
            match mode {
                "ja" => ja_verify(&sys, &SeparateOptions::local().journal(journal.clone())),
                _ => joint_verify(&sys, &JointOptions::new().journal(journal.clone())),
            };
        }
        let mut bytes = Vec::new();
        journal.write_jsonl(&mut bytes).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let parsed = parse_jsonl(&text).unwrap_or_else(|(line, e)| {
            panic!("{mode}: emitted trace rejected at line {line}: {e}")
        });
        let original = journal.events();
        assert_eq!(parsed.len(), original.len(), "{mode}: event count changed");
        for (a, b) in parsed.iter().zip(&original) {
            assert_eq!(a.kind, b.kind, "{mode}: event kind changed in transit");
        }
    }
}

/// A JA run emits one property span per property, labelled with the
/// property's name.
#[test]
fn ja_run_emits_labelled_property_spans() {
    let sys = design();
    let journal = Journal::new();
    ja_verify(&sys, &SeparateOptions::local().journal(journal.clone()));
    let events = journal.events();
    let labels: Vec<&str> = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Span {
                phase: Phase::Property,
                label: Some(l),
                ..
            } => Some(l.as_str()),
            _ => None,
        })
        .collect();
    assert_eq!(labels.len(), sys.num_properties());
    for p in sys.properties() {
        assert!(labels.contains(&p.name.as_str()), "no span for {}", p.name);
    }
}
