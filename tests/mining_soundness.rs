//! The mining soundness harness: what earns trust in a thousand mined
//! properties.
//!
//! Three claims, each with its own failure mode if wrong:
//!
//! 1. Every k-induction survivor is a real invariant — re-verifying the
//!    mined system with the *separate* driver (a different engine, a
//!    different encoding) must prove everything and falsify nothing.
//! 2. The simulation filter catches injected bugs: candidates that look
//!    true over a shallow signature window but are false a few steps
//!    deeper must die in the filter, with a concrete witnessing run.
//! 3. The filter is a throughput optimisation, never a soundness
//!    crutch: with the filter disabled entirely, induction alone must
//!    still reject every false candidate.

use japrove::aig::Aig;
use japrove::core::{separate_verify, SeparateOptions};
use japrove::mine::{mine, CandidateKind, MineOptions};
use japrove::tsys::{TransitionSystem, Word};

/// A 4-bit free-running counter: bit 2 first rises at step 4, bit 3 at
/// step 8 — perfect bait for shallow-window mining.
fn counter4() -> TransitionSystem {
    let mut aig = Aig::new();
    let c = Word::latches(&mut aig, 4, 0);
    let n = c.increment(&mut aig);
    c.set_next(&mut aig, &n);
    TransitionSystem::new("cnt4", aig)
}

#[test]
fn survivors_reverify_on_the_acceptance_family() {
    // The Table VII-style all-true family the PR's acceptance bar names:
    // mining must yield a few hundred induction survivors, the
    // accounting must balance, and an independent driver must confirm
    // every single one.
    let sys = japrove::genbench::resolve_spec("syn_6s275")
        .expect("family exists")
        .generate()
        .sys;
    let outcome = mine(&sys, &MineOptions::new());
    assert!(
        outcome.sys.num_properties() >= 200,
        "acceptance floor is 200 survivors, got {}",
        outcome.sys.num_properties()
    );
    let s = &outcome.stats;
    assert_eq!(
        s.generated(),
        s.sim_killed() + s.induction_killed() + s.promoted(),
        "every generated candidate must land in exactly one bucket"
    );
    assert!(
        s.sim_killed() > 0 && s.induction_killed() > 0,
        "the family must exercise both kill stages (sim {}, induction {})",
        s.sim_killed(),
        s.induction_killed()
    );

    let report = separate_verify(&outcome.sys, &SeparateOptions::global());
    for r in &report.results {
        assert!(
            !r.fails(),
            "mined property {} was falsified — a mining soundness bug",
            r.name
        );
        assert!(r.holds(), "mined property {} left unconfirmed", r.name);
    }
}

#[test]
fn simulation_filter_kills_bug_injected_candidates() {
    // Injected bugs: with a 2-step signature window every high counter
    // bit looks stuck-at-0 and the count looks bounded by 2, so mining
    // generates those (false) candidates. The deeper filter run reaches
    // counts 3..15 and must kill them by simulation alone.
    let sys = counter4();
    let opts = MineOptions::new().gen_steps(2).filter_steps(40);
    let outcome = mine(&sys, &opts);

    let consts = outcome.stats.kind(CandidateKind::ConstLatch);
    assert!(
        consts.generated >= 2,
        "bits 2 and 3 must be guessed stuck-at-0 ({} const candidates)",
        consts.generated
    );
    assert!(
        consts.sim_killed >= 2,
        "the filter must kill the stuck-at bait, not leave it to SAT \
         (sim killed {})",
        consts.sim_killed
    );
    let ranges = outcome.stats.kind(CandidateKind::Range);
    assert_eq!(
        ranges.promoted, 0,
        "no bounded-count candidate is true on a free-running counter"
    );

    // Nothing false slipped through either stage.
    let report = separate_verify(&outcome.sys, &SeparateOptions::global());
    for r in &report.results {
        assert!(r.holds(), "false survivor {} escaped the pipeline", r.name);
    }
}

#[test]
fn induction_alone_rejects_every_false_candidate_without_the_filter() {
    // Disable the filter outright (zero runs): every shallow-window
    // guess goes straight to k-induction. The false ones must die in
    // the base or step case, and whatever survives must still
    // re-verify — soundness cannot depend on the filter being on.
    let sys = counter4();
    let opts = MineOptions::new().gen_steps(2).filter_runs(0);
    let outcome = mine(&sys, &opts);

    assert_eq!(outcome.stats.sim_killed(), 0, "the filter is off");
    assert!(
        outcome.stats.induction_killed() >= 2,
        "induction must reject the stuck-at-0 bait for bits 2 and 3 \
         (killed {})",
        outcome.stats.induction_killed()
    );

    let report = separate_verify(&outcome.sys, &SeparateOptions::global());
    for r in &report.results {
        assert!(
            !r.fails(),
            "unfiltered mining promoted a false invariant: {}",
            r.name
        );
        assert!(r.holds(), "mined property {} left unconfirmed", r.name);
    }
}

#[test]
fn mining_is_deterministic_for_a_fixed_seed() {
    // Same seed, same design: identical survivor names in identical
    // order. The soundness suite (and the CI grep) depend on this.
    let sys = counter4();
    let opts = MineOptions::new();
    let a = mine(&sys, &opts);
    let b = mine(&sys, &opts);
    let names = |o: &japrove::mine::MiningOutcome| -> Vec<String> {
        o.sys
            .property_ids()
            .map(|p| o.sys.property(p).name.clone())
            .collect()
    };
    assert_eq!(names(&a), names(&b));
    assert_eq!(a.stats.generated(), b.stats.generated());

    // A different seed may guess differently but must stay sound.
    let c = mine(&sys, &MineOptions::new().seed(42));
    let report = separate_verify(&c.sys, &SeparateOptions::global());
    assert!(report.results.iter().all(|r| r.holds()));
}
