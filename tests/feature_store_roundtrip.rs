//! The feature store across runs: records written by one run must be
//! found by the next through the design's *structural* hash (renaming
//! the design or file must not orphan them), and a store that has been
//! corrupted on disk must load lossily — malformed lines are counted
//! and skipped, never a panic.

use japrove::aig::Aig;
use japrove::core::CostModel;
use japrove::obs::{FeatureStore, RunRecord};
use japrove::tsys::{TransitionSystem, Word};

/// One 4-bit counter with two properties, under any design name.
fn counter(name: &str) -> TransitionSystem {
    let mut aig = Aig::new();
    let w = Word::latches(&mut aig, 4, 0);
    let n = w.increment(&mut aig);
    w.set_next(&mut aig, &n);
    let ok = w.lt_const(&mut aig, 16);
    let tight = w.lt_const(&mut aig, 5);
    let mut sys = TransitionSystem::new(name, aig);
    sys.add_property("ok", ok);
    sys.add_property("tight", tight);
    sys
}

fn record(design: &str, property: &str, time_us: u64) -> RunRecord {
    RunRecord {
        design: design.into(),
        property: property.into(),
        mode: "separate-global".into(),
        verdict: "holds".into(),
        time_us,
        frames: 3,
        conflicts: time_us / 2,
        decisions: time_us,
        propagations: 10 * time_us,
        restarts: 1,
    }
}

fn temp_path(stem: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("japrove_{stem}_{}.jsonl", std::process::id()));
    p
}

/// A store written against one design name warms a later run that
/// loads the *same structure* under a different name: the lookup key
/// is the structural hash, not the filename or design name.
#[test]
fn structural_hash_survives_a_design_rename() {
    let original = counter("block_a");
    let renamed = counter("block_a_refactored");
    assert_eq!(
        original.structural_hash(),
        renamed.structural_hash(),
        "renaming must not change the structural hash"
    );

    let design = format!("{:016x}", original.structural_hash());
    let mut store = FeatureStore::default();
    store.upsert(record(&design, "ok", 120));
    store.upsert(record(&design, "tight", 45_000));

    let path = temp_path("rename");
    store.save(&path).unwrap();
    let (reloaded, skipped) = FeatureStore::load_lossy(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(skipped, 0);
    assert_eq!(reloaded.len(), 2);

    let model = CostModel::from_store(&reloaded, &renamed);
    assert!(model.is_warm(), "records found under the renamed design");
    let cheap = model.predicted("ok").expect("ok is recorded");
    let costly = model.predicted("tight").expect("tight is recorded");
    assert!(
        cheap < costly,
        "recorded effort orders the predictions: {cheap} < {costly}"
    );
}

/// A store with garbage lines, wrong types and unknown verdicts loads
/// lossily: every bad line is counted and skipped, every good record
/// survives, and nothing panics.
#[test]
fn malformed_and_stale_lines_are_counted_and_skipped() {
    let good = record("00000000deadbeef", "ok", 500);
    let mut store = FeatureStore::default();
    store.upsert(good.clone());
    let path = temp_path("lossy");
    store.save(&path).unwrap();

    let mut text = std::fs::read_to_string(&path).unwrap();
    text.push_str("this is not json\n");
    text.push_str("{\"design\":\"feedface00000000\"}\n"); // missing fields
    text.push_str(concat!(
        "{\"design\":\"feedface00000000\",\"property\":\"p\",\"mode\":\"ja\",",
        "\"verdict\":\"maybe\",\"time_us\":1,\"frames\":1,\"conflicts\":1,",
        "\"decisions\":1,\"propagations\":1,\"restarts\":0}\n"
    )); // stale schema: verdict vocabulary changed
    text.push_str("[1,2,3]\n"); // wrong top-level shape
    std::fs::write(&path, &text).unwrap();

    let (reloaded, skipped) = FeatureStore::load_lossy(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(skipped, 4, "each bad line counted once");
    assert_eq!(reloaded.len(), 1, "the good record survives");
    let survivor = reloaded.records().first().expect("one record");
    assert_eq!(survivor.property, good.property);
    assert_eq!(survivor.time_us, good.time_us);
}

/// Save → load → save is byte-stable: the store is a deterministic
/// cross-run artifact, safe to keep under version control or in CI
/// caches.
#[test]
fn save_load_round_trip_is_byte_stable() {
    let mut store = FeatureStore::default();
    store.upsert(record("0123456789abcdef", "b", 7));
    store.upsert(record("0123456789abcdef", "a", 9));
    let path = temp_path("stable");
    store.save(&path).unwrap();
    let first = std::fs::read_to_string(&path).unwrap();

    let (reloaded, _) = FeatureStore::load_lossy(&path).unwrap();
    reloaded.save(&path).unwrap();
    let second = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(first, second);
}
