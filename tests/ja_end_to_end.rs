//! End-to-end JA-verification on the named benchmark stand-ins:
//! verdict counts against ground truth, clause-reuse soundness,
//! lifting-mode agreement and parallel-driver agreement.

use japrove::core::{
    ja_verify, local_assumptions, parallel_ja_verify, separate_verify, verify_reuse_soundness,
    ClauseDb, SeparateOptions,
};
use japrove::genbench::{all_true_specs, failing_specs, probe_spec};
use japrove::ic3::{CheckOutcome, Lifting};
use std::time::Duration;

fn opts() -> SeparateOptions {
    SeparateOptions::local().per_property_timeout(Duration::from_secs(10))
}

#[test]
fn failing_specs_match_ground_truth() {
    for spec in failing_specs() {
        let design = spec.generate();
        let report = ja_verify(&design.sys, &opts());
        assert_eq!(
            report.debugging_set(),
            design.expected_debugging_set(),
            "{}: debugging set mismatch",
            spec.name
        );
        assert_eq!(report.num_unsolved(), 0, "{}: unsolved", spec.name);
        // Everything not in the debugging set holds locally.
        assert_eq!(
            report.num_true(),
            design.sys.num_properties() - report.debugging_set().len(),
            "{}",
            spec.name
        );
    }
}

#[test]
fn all_true_specs_prove_everything() {
    for spec in all_true_specs() {
        let design = spec.generate();
        let report = ja_verify(&design.sys, &opts());
        assert_eq!(
            report.num_true(),
            design.sys.num_properties(),
            "{}: not all proved",
            spec.name
        );
    }
}

#[test]
fn clause_db_after_ja_is_sound() {
    for spec in all_true_specs().into_iter().take(3) {
        let design = spec.generate();
        let report = ja_verify(&design.sys, &opts());
        let db = ClauseDb::new();
        for r in &report.results {
            if let CheckOutcome::Proved(cert) = &r.outcome {
                db.publish(cert.clauses.iter().cloned());
            }
        }
        let assumed = local_assumptions(&design.sys);
        verify_reuse_soundness(&design.sys, &assumed, &db.snapshot())
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
    }
}

#[test]
fn lifting_modes_agree_on_verdicts() {
    for spec in failing_specs().into_iter().take(4) {
        let design = spec.generate();
        let ignore = separate_verify(&design.sys, &opts().lifting(Lifting::Ignore));
        let respect = separate_verify(&design.sys, &opts().lifting(Lifting::Respect));
        for (a, b) in ignore.results.iter().zip(&respect.results) {
            assert_eq!(a.holds(), b.holds(), "{}/{}", spec.name, a.name);
            assert_eq!(a.fails(), b.fails(), "{}/{}", spec.name, a.name);
        }
    }
}

#[test]
fn parallel_driver_agrees_with_sequential() {
    let design = probe_spec().generate();
    let seq = ja_verify(&design.sys, &opts());
    let par = parallel_ja_verify(&design.sys, 4, &opts());
    assert_eq!(seq.num_true(), par.num_true());
    assert_eq!(seq.num_false(), par.num_false());
    for (a, b) in seq.results.iter().zip(&par.results) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.holds(), b.holds(), "{}", a.name);
    }
}

#[test]
fn reuse_accelerates_or_preserves_verdicts() {
    for spec in all_true_specs().into_iter().take(3) {
        let design = spec.generate();
        let with = separate_verify(&design.sys, &opts().reuse(true));
        let without = separate_verify(&design.sys, &opts().reuse(false));
        for (a, b) in with.results.iter().zip(&without.results) {
            assert_eq!(a.holds(), b.holds(), "{}/{}", spec.name, a.name);
        }
    }
}
