//! The learned scheduling pipeline, end to end: a feature store from a
//! first run must (a) never change verdicts, only order; (b) actually
//! reorder dispatch when the recorded costs disagree with the COI-size
//! proxy; and (c) let a verdict cache skip exactly the properties whose
//! cones did not change across a design edit.

use japrove::aig::Aig;
use japrove::core::{
    CostModel, MultiReport, SchedulePolicy, SeparateOptions, Session, VerdictCache,
};
use japrove::genbench::FamilyParams;
use japrove::obs::{FeatureStore, RunRecord};
use japrove::tsys::{TransitionSystem, Word};

/// A mixed family: deep chains, a ring and trivial properties, so COI
/// sizes differ and the proxy order is non-trivial.
fn mixed_design() -> TransitionSystem {
    FamilyParams::new("sched_mix", 77)
        .chain(2, 10)
        .ring(4, 4)
        .easy_true(3)
        .generate()
        .sys
}

/// Records every result of `report` into a store under `design`'s
/// structural hash, as the CLI's `--feature-store` path would.
fn store_from(sys: &TransitionSystem, report: &MultiReport) -> FeatureStore {
    let design = format!("{:016x}", sys.structural_hash());
    let mut store = FeatureStore::default();
    for r in &report.results {
        let verdict = if r.holds() {
            "holds"
        } else if r.fails() {
            "fails"
        } else {
            "unknown"
        };
        store.upsert(RunRecord {
            design: design.clone(),
            property: r.name.clone(),
            mode: "separate-global".into(),
            verdict: verdict.into(),
            time_us: r.time.as_micros() as u64,
            frames: r.frames as u64,
            conflicts: r.stats.sat.conflicts,
            decisions: r.stats.sat.decisions,
            propagations: r.stats.sat.propagations,
            restarts: r.stats.sat.restarts,
        });
    }
    store
}

fn assert_same_verdicts(a: &MultiReport, b: &MultiReport) {
    assert_eq!(a.results.len(), b.results.len());
    for r in &a.results {
        let other = b
            .result(r.id)
            .unwrap_or_else(|| panic!("{} missing", r.name));
        assert_eq!(r.holds(), other.holds(), "{}", r.name);
        assert_eq!(r.fails(), other.fails(), "{}", r.name);
    }
}

/// (a) A warm cost model reorders dispatch but never changes verdicts,
/// at one worker and at eight.
#[test]
fn learned_schedule_preserves_verdicts_at_1_and_8_threads() {
    let sys = mixed_design();
    let seed_report = Session::separate(SeparateOptions::global()).run(&sys);
    let store = store_from(&sys, &seed_report);

    for threads in [1, 8] {
        let proxy = Session::parallel(SeparateOptions::global(), threads).run(&sys);
        let learned = Session::parallel(SeparateOptions::global(), threads)
            .schedule(SchedulePolicy::Learned)
            .cost_model(CostModel::from_store(&store, &sys))
            .run(&sys);
        assert!(learned.method.contains("[learned]"), "{}", learned.method);
        assert_same_verdicts(&proxy, &learned);
        assert_same_verdicts(&seed_report, &learned);
    }
}

/// (b) When the store's recorded costs disagree with COI size, the
/// learned plan diverges from the proxy plan and leads with the
/// recorded-expensive property.
#[test]
fn learned_dispatch_order_follows_the_store_not_the_cone() {
    let sys = mixed_design();
    // The proxy ranks by cone size, so an `easy_true` property (a
    // one-latch cone) goes last. Record it as the most expensive.
    let expensive = sys
        .property_ids()
        .into_iter()
        .find(|&p| sys.property(p).name.starts_with("easy_true"))
        .expect("family has easy_true properties");
    let design = format!("{:016x}", sys.structural_hash());
    let mut store = FeatureStore::default();
    for p in sys.property_ids() {
        let cost = if p == expensive { 60_000_000 } else { 100 };
        store.upsert(RunRecord {
            design: design.clone(),
            property: sys.property(p).name.clone(),
            mode: "parallel-global".into(),
            verdict: "holds".into(),
            time_us: cost,
            frames: 1,
            conflicts: cost,
            decisions: cost,
            propagations: 0,
            restarts: 0,
        });
    }

    let proxy = Session::parallel(SeparateOptions::global(), 1).plan(&sys);
    let learned = Session::parallel(SeparateOptions::global(), 1)
        .schedule(SchedulePolicy::Learned)
        .cost_model(CostModel::from_store(&store, &sys))
        .plan(&sys);
    assert_ne!(
        proxy.dispatch_order(),
        learned.dispatch_order(),
        "a store that contradicts the proxy must change the plan"
    );
    assert_eq!(
        learned.dispatch_order().first().copied(),
        Some(expensive),
        "the recorded-expensive property dispatches first"
    );
    assert_ne!(
        proxy.dispatch_order().first().copied(),
        Some(expensive),
        "the proxy would not have put the tiny cone first"
    );
}

/// Two independent 3-bit counters; `bump1` controls how far counter 1
/// steps each cycle, so changing it edits counter 1's cone while
/// counter 0's cone stays structurally identical. With an even bump
/// the counter only visits even values: `ne3` holds (and genuinely
/// depends on the latches), `ne4` fails.
fn two_counters(bump1: usize) -> TransitionSystem {
    let mut aig = Aig::new();
    let mut props = Vec::new();
    for (i, bumps) in [2usize, bump1].into_iter().enumerate() {
        let w = Word::latches(&mut aig, 3, 0);
        let mut n = w.clone();
        for _ in 0..bumps {
            n = n.increment(&mut aig);
        }
        w.set_next(&mut aig, &n);
        let at3 = w.eq_const(&mut aig, 3);
        let at4 = w.eq_const(&mut aig, 4);
        props.push((format!("c{i}_ne3"), !at3));
        props.push((format!("c{i}_ne4"), !at4));
    }
    let mut sys = TransitionSystem::new("pair", aig);
    for (name, good) in props {
        sys.add_property(name, good);
    }
    sys
}

/// (c) After a design edit, a warm verdict cache re-solves exactly the
/// properties whose cones changed and replays the rest from cache, with
/// identical verdicts.
#[test]
fn verdict_cache_skips_only_unchanged_cones_after_a_mutation() {
    let before = two_counters(2);
    let mut cold =
        Session::separate(SeparateOptions::global()).verdict_cache(VerdictCache::default());
    let cold_report = cold.run(&before);
    assert!(cold_report.results.iter().all(|r| !r.cached));
    let cache = cold.take_verdict_cache().unwrap();

    // Same-design warm rerun: whatever evidence fit its cone is now a
    // hit. (A certificate that mentions an out-of-cone latch is
    // soundly *not* cached, so derive the cacheable set empirically.)
    let mut same = Session::separate(SeparateOptions::global()).verdict_cache(cache);
    let same_report = same.run(&before);
    let cacheable: Vec<String> = same_report
        .results
        .iter()
        .filter(|r| r.cached)
        .map(|r| r.name.clone())
        .collect();
    assert!(
        cacheable.iter().any(|n| n.starts_with("c0_")),
        "some counter-0 verdict must be cacheable, got {cacheable:?}"
    );
    assert!(
        cacheable.iter().any(|n| n.starts_with("c1_")),
        "some counter-1 verdict must be cacheable, got {cacheable:?}"
    );
    let cache = same.take_verdict_cache().unwrap();

    // Counter 1 now steps by 4: its cone (and c1_* evidence) changed,
    // counter 0's did not. Only unchanged-cone entries may hit.
    let after = two_counters(4);
    let mut warm = Session::separate(SeparateOptions::global()).verdict_cache(cache);
    let warm_report = warm.run(&after);
    for r in &warm_report.results {
        let expect_cached = r.name.starts_with("c0_") && cacheable.contains(&r.name);
        assert_eq!(
            r.cached,
            expect_cached,
            "{}: cached={} (cone {})",
            r.name,
            r.cached,
            if r.name.starts_with("c0_") {
                "unchanged"
            } else {
                "edited"
            }
        );
    }
    // Verdicts stay what the design says: both counters only visit
    // even values, so `_ne3` holds and `_ne4` fails in both designs.
    for r in &warm_report.results {
        if r.name.ends_with("_ne3") {
            assert!(r.holds(), "{}", r.name);
        } else {
            assert!(r.fails(), "{}", r.name);
        }
    }
}
