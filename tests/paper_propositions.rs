//! The paper's Propositions 2–6, validated end-to-end on generated
//! designs with independent SAT queries and concrete simulation.

use japrove::core::{
    check_local_global_agreement, ja_verify, joint_verify, local_assumptions, separate_verify,
    validate_debugging_set, JointOptions, SeparateOptions,
};
use japrove::genbench::{Expected, FamilyParams};
use japrove::tsys::replay;

fn failing_design() -> japrove::genbench::GeneratedDesign {
    FamilyParams::new("prop_check", 17)
        .easy_true(3)
        .chain(3, 6)
        .shallow_fails(vec![2, 5])
        .shadow_group(3, vec![12, 20])
        .generate()
}

/// Prop. 2A (contrapositive) / Prop. 3: a property failing locally
/// also fails globally.
#[test]
fn locally_failing_properties_fail_globally() {
    let design = failing_design();
    let local = ja_verify(&design.sys, &SeparateOptions::local());
    let global = separate_verify(&design.sys, &SeparateOptions::global());
    for id in local.debugging_set() {
        let g = global.result(id).expect("result");
        assert!(
            g.fails(),
            "{}: fails locally but not globally (contradicts Prop. 2)",
            g.name
        );
    }
}

/// Prop. 5: if every property holds locally, every property holds
/// globally.
#[test]
fn all_local_implies_all_global() {
    let design = FamilyParams::new("all_true", 5)
        .easy_true(4)
        .ring(6, 5)
        .chain(4, 8)
        .generate();
    let local = ja_verify(&design.sys, &SeparateOptions::local());
    assert_eq!(local.num_true(), design.sys.num_properties());
    let global = separate_verify(&design.sys, &SeparateOptions::global());
    check_local_global_agreement(&local, &global).expect("Prop. 5");
    assert_eq!(global.num_true(), design.sys.num_properties());
}

/// Prop. 6: the final state of every aggregate-property counterexample
/// falsifies at least one debugging-set property.
#[test]
fn aggregate_cex_ends_in_debugging_set() {
    let design = failing_design();
    let local = ja_verify(&design.sys, &SeparateOptions::local());
    let debug_set = local.debugging_set();
    assert!(!debug_set.is_empty());

    // The first counterexample produced by joint verification is a CEX
    // for the aggregate of *all* properties.
    let joint = joint_verify(&design.sys, &JointOptions::new());
    let first_cex = joint
        .results
        .iter()
        .filter_map(|r| r.counterexample())
        .min_by_key(|c| c.depth)
        .expect("some property fails");
    let r = replay(&design.sys, &first_cex.trace).expect("replayable");
    let final_violations = r.violated_at(first_cex.trace.len());
    assert!(
        final_violations.iter().any(|p| debug_set.contains(p)),
        "aggregate CEX final state misses the debugging set (contradicts Prop. 6)"
    );
}

/// The §3 debugging guarantee, checked by replay: no locally-failing
/// property's counterexample contains an earlier violation of an
/// assumed property.
#[test]
fn debugging_set_counterexamples_fail_first() {
    let design = failing_design();
    let report = ja_verify(&design.sys, &SeparateOptions::local());
    let assumed = local_assumptions(&design.sys);
    validate_debugging_set(&design.sys, &report, &assumed).expect("guarantees");
}

/// Ground truth: JA verdicts match the generator's per-property
/// expectations exactly.
#[test]
fn ja_matches_generated_ground_truth() {
    let design = failing_design();
    let report = ja_verify(&design.sys, &SeparateOptions::local());
    for (i, expected) in design.expected.iter().enumerate() {
        let r = &report.results[report
            .results
            .iter()
            .position(|r| r.id.index() == i)
            .expect("result present")];
        match expected {
            Expected::True | Expected::ShadowedFailsAt { .. } => {
                assert!(r.holds(), "{} should hold locally", r.name)
            }
            Expected::FailsAt(depth) => {
                assert!(r.fails(), "{} should fail locally", r.name);
                let cex = r.counterexample().expect("cex");
                assert_eq!(cex.depth, *depth, "{}: wrong failure depth", r.name);
            }
        }
    }
}

/// Shadowed properties fail globally at the expected depth, with the
/// guard violated earlier on the trace.
#[test]
fn shadowed_failures_are_preceded_by_guards() {
    let design = failing_design();
    let global = separate_verify(&design.sys, &SeparateOptions::global());
    for (i, expected) in design.expected.iter().enumerate() {
        if let Expected::ShadowedFailsAt {
            guard_depth,
            own_depth,
        } = expected
        {
            let r = global
                .results
                .iter()
                .find(|r| r.id.index() == i)
                .expect("result");
            assert!(r.fails(), "{} fails globally", r.name);
            let cex = r.counterexample().expect("cex");
            assert_eq!(cex.depth, *own_depth, "{}", r.name);
            let rp = replay(&design.sys, &cex.trace).expect("replayable");
            let (first, _) = rp.first_any_violation().expect("violations");
            assert_eq!(first, *guard_depth, "{}: guard must fail first", r.name);
        }
    }
}
