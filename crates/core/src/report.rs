//! Multi-property verification reports.

use japrove_ic3::{CheckOutcome, Counterexample, RunStats};
use japrove_sat::BackendChoice;
use japrove_tsys::PropertyId;
use std::fmt;
use std::time::Duration;

/// Whether a verdict was established globally (w.r.t. `T`) or locally
/// (w.r.t. the projection `T^P`, §2-C).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scope {
    /// No assumptions: plain model checking.
    Global,
    /// Under the assumption that every ETH property holds in every
    /// non-final state.
    Local,
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scope::Global => write!(f, "global"),
            Scope::Local => write!(f, "local"),
        }
    }
}

/// The per-property outcome of a multi-property run.
#[derive(Clone, Debug)]
pub struct PropertyResult {
    /// Which property.
    pub id: PropertyId,
    /// Its name.
    pub name: String,
    /// Engine verdict.
    pub outcome: CheckOutcome,
    /// Proof scope of the verdict.
    pub scope: Scope,
    /// Wall-clock time spent on this property.
    pub time: Duration,
    /// Frames the engine opened ("#time frames" in the paper tables).
    pub frames: usize,
    /// `true` if the property was re-run with constraint-respecting
    /// lifting after a spurious counterexample (§7-A).
    pub retried: bool,
    /// SAT backend that produced this verdict.
    pub backend: BackendChoice,
    /// Engine counters for this property's run, including the SAT
    /// effort attributable to it (warm solvers report deltas). Default
    /// (all zeros) for verdicts that never reached an engine, e.g.
    /// deadline-expired properties.
    pub stats: RunStats,
    /// `true` if the verdict came from the verdict cache (re-certified
    /// evidence from an earlier run) rather than a fresh engine run.
    pub cached: bool,
}

impl PropertyResult {
    /// `true` if the property was proved (in its scope).
    pub fn holds(&self) -> bool {
        self.outcome.is_proved()
    }

    /// `true` if the property was falsified (in its scope).
    pub fn fails(&self) -> bool {
        self.outcome.is_falsified()
    }

    /// The counterexample, if falsified.
    pub fn counterexample(&self) -> Option<&Counterexample> {
        self.outcome.counterexample()
    }
}

/// The result of verifying all properties of one design with one
/// method.
///
/// # Examples
///
/// ```
/// use japrove_core::MultiReport;
/// let report = MultiReport::new("design", "ja-verification");
/// assert_eq!(report.num_solved(), 0);
/// ```
#[derive(Clone, Debug)]
pub struct MultiReport {
    /// Design name.
    pub design: String,
    /// Method label (e.g. `"ja-verification"`, `"joint"`).
    pub method: String,
    /// Per-property results.
    pub results: Vec<PropertyResult>,
    /// Post-verdict enumeration/counting outcomes (one per falsified
    /// property; empty unless the session ran with
    /// [`EnumOptions`](crate::EnumOptions)).
    pub enumerations: Vec<crate::PropertyEnumeration>,
    /// Total wall-clock time.
    pub total_time: Duration,
}

impl MultiReport {
    /// Creates an empty report.
    pub fn new(design: impl Into<String>, method: impl Into<String>) -> Self {
        MultiReport {
            design: design.into(),
            method: method.into(),
            results: Vec::new(),
            enumerations: Vec::new(),
            total_time: Duration::ZERO,
        }
    }

    /// Number of properties proved (in their scope).
    pub fn num_true(&self) -> usize {
        self.results.iter().filter(|r| r.holds()).count()
    }

    /// Number of properties falsified (in their scope).
    pub fn num_false(&self) -> usize {
        self.results.iter().filter(|r| r.fails()).count()
    }

    /// Number of properties left unsolved.
    pub fn num_unsolved(&self) -> usize {
        self.results
            .iter()
            .filter(|r| r.outcome.is_unknown())
            .count()
    }

    /// Number of properties with a definite verdict.
    pub fn num_solved(&self) -> usize {
        self.results.len() - self.num_unsolved()
    }

    /// The debugging set: properties that fail *locally* (§4). For
    /// global methods this is empty.
    pub fn debugging_set(&self) -> Vec<PropertyId> {
        self.results
            .iter()
            .filter(|r| r.fails() && r.scope == Scope::Local)
            .map(|r| r.id)
            .collect()
    }

    /// The result for a given property, if recorded.
    pub fn result(&self, id: PropertyId) -> Option<&PropertyResult> {
        self.results.iter().find(|r| r.id == id)
    }

    /// A one-line summary matching the paper's table style:
    /// `#false (#true)  time  #unsolved`.
    pub fn summary(&self) -> String {
        format!(
            "{} ({})  {:.2}s  {} unsolved",
            self.num_false(),
            self.num_true(),
            self.total_time.as_secs_f64(),
            self.num_unsolved()
        )
    }
}

impl fmt::Display for MultiReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} [{}]: {} properties, {} false, {} true, {} unsolved, {:.2}s",
            self.design,
            self.method,
            self.results.len(),
            self.num_false(),
            self.num_true(),
            self.num_unsolved(),
            self.total_time.as_secs_f64()
        )?;
        for r in &self.results {
            writeln!(
                f,
                "  {:>6}  {:<24} {:<10} {:>9.3}s  frames={}{}{}",
                r.id.to_string(),
                r.name,
                format!("{} ({})", self.verdict_word(r), r.scope),
                r.time.as_secs_f64(),
                r.frames,
                if r.backend == BackendChoice::default() {
                    String::new()
                } else {
                    format!("  [{}]", r.backend)
                },
                if r.retried {
                    "  [retried]"
                } else if r.cached {
                    "  [cached]"
                } else {
                    ""
                }
            )?;
        }
        Ok(())
    }
}

impl MultiReport {
    fn verdict_word(&self, r: &PropertyResult) -> &'static str {
        match &r.outcome {
            CheckOutcome::Proved(_) => "holds",
            CheckOutcome::Falsified(_) => "fails",
            CheckOutcome::Unknown(_) => "unknown",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use japrove_ic3::Certificate;

    fn result(i: usize, outcome: CheckOutcome, scope: Scope) -> PropertyResult {
        PropertyResult {
            id: PropertyId::new(i),
            name: format!("p{i}"),
            outcome,
            scope,
            time: Duration::from_millis(10),
            frames: 1,
            retried: false,
            backend: BackendChoice::default(),
            stats: RunStats::default(),
            cached: false,
        }
    }

    #[test]
    fn counts_and_debugging_set() {
        use japrove_ic3::UnknownReason;
        use japrove_tsys::Trace;
        let cex = Counterexample {
            trace: Trace::new(vec![vec![]], vec![vec![]]),
            depth: 0,
        };
        let mut rep = MultiReport::new("d", "ja");
        rep.results.push(result(
            0,
            CheckOutcome::Proved(Certificate::default()),
            Scope::Local,
        ));
        rep.results.push(result(
            1,
            CheckOutcome::Falsified(cex.clone()),
            Scope::Local,
        ));
        rep.results.push(result(
            2,
            CheckOutcome::Unknown(UnknownReason::Budget),
            Scope::Local,
        ));
        rep.results
            .push(result(3, CheckOutcome::Falsified(cex), Scope::Global));
        assert_eq!(rep.num_true(), 1);
        assert_eq!(rep.num_false(), 2);
        assert_eq!(rep.num_unsolved(), 1);
        assert_eq!(rep.num_solved(), 3);
        assert_eq!(rep.debugging_set(), vec![PropertyId::new(1)]);
        assert!(rep.summary().contains("2 (1)"));
        assert!(rep.to_string().contains("fails"));
        assert!(rep.result(PropertyId::new(2)).is_some());
        assert!(rep.result(PropertyId::new(9)).is_none());
    }
}
