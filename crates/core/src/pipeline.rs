//! The unified verification pipeline: Plan → Dispatch → Solve →
//! Report.
//!
//! Every driver mode is one [`Session`] configuration over the same
//! four stages:
//!
//! * **Plan** — turn the property set into ordered *units* (singletons
//!   for the separate/parallel modes, affinity clusters for the
//!   clustered mode, one aggregate unit for the joint mode), consult
//!   the [`VerdictCache`] so unchanged-cone properties skip solving,
//!   and weigh units with the [`CostModel`] (learned schedule) or the
//!   COI-size proxy;
//! * **Dispatch** — hand units to workers: hardest-first work-stealing
//!   deques ([`Dispatcher`]), the cold FIFO ticket baseline, or a
//!   plain in-order walk for the sequential drivers;
//! * **Solve** — run each unit on a warm [`CtxPool`] with clause
//!   re-use wired through [`ClauseDb`]/[`TwoLevelSource`];
//! * **Report** — restore the caller-visible result order, write fresh
//!   verdicts back to the cache, stamp totals.
//!
//! The public driver functions (`separate_verify`, `joint_verify`,
//! `parallel_ja_verify`, `clustered_verify`, …) are thin wrappers that
//! build a `Session`; their `--mode` semantics and verdict-parity
//! guarantees are unchanged.
//!
//! # Dispatch order and determinism
//!
//! Hardest-first ordering lives in one place ([`Plan`]): units are
//! stable-sorted by descending weight, so **ties keep the caller's
//! order** (declaration order for properties, discovery order for
//! clusters). At one worker thread the dispatch order is therefore
//! exactly [`Plan::dispatch_order`], fully deterministic; at more
//! threads the *deal* is deterministic and only the steal timing
//! varies, which affects speed, never verdicts.

use crate::affinity::affinity_clusters_with_cost;
use crate::cluster::latch_supports;
use crate::costmodel::CostModel;
use crate::joint::{aggregate_system, falsified_by_replay};
use crate::parallel::Dispatcher;
use crate::separate::{check_one, check_one_imports, local_assumptions, CtxPool};
use crate::verdict_cache::{CacheEntry, VerdictCache};
use crate::{
    ClauseDb, ClusteredOptions, JointOptions, MultiReport, PropertyResult, Scope, SeparateOptions,
    TwoLevelSource,
};
use japrove_ic3::{
    verify_certificate, Bmc, BmcResult, Certificate, CheckOutcome, ClauseSource, Counterexample,
    Ic3, RunStats, TsEncoding, UnknownReason,
};
use japrove_logic::{Clause, Var};
use japrove_obs::{EventKind, Journal, Phase};
use japrove_sat::{BackendChoice, Budget};
use japrove_tsys::{complete_trace, replay, CoiMap, PropertyId, TransitionSystem};
use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the planner orders units and the dispatcher hands them out.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SchedulePolicy {
    /// Hardest-first by the COI-size proxy, work-stealing dispatch,
    /// warm solvers. The default.
    #[default]
    Steal,
    /// Declaration-order FIFO ticket dispatch with cold per-property
    /// solvers: the pre-incremental reference baseline.
    Fifo,
    /// Hardest-first by the [`CostModel`]'s recorded-cost prediction;
    /// properties without a record fall back to the COI-size proxy.
    /// Work-stealing dispatch, warm solvers.
    Learned,
}

impl SchedulePolicy {
    /// Short identifier, matching the CLI `--schedule` values.
    pub fn name(self) -> &'static str {
        match self {
            SchedulePolicy::Steal => "steal",
            SchedulePolicy::Fifo => "fifo",
            SchedulePolicy::Learned => "learned",
        }
    }
}

impl fmt::Display for SchedulePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for SchedulePolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "steal" => Ok(SchedulePolicy::Steal),
            "fifo" => Ok(SchedulePolicy::Fifo),
            "learned" => Ok(SchedulePolicy::Learned),
            other => Err(format!(
                "unknown schedule '{other}' (available: steal, fifo, learned)"
            )),
        }
    }
}

/// One schedulable unit of work: a singleton property or a cluster.
#[derive(Clone, Debug)]
pub struct PlanUnit {
    /// The unit's properties (one for singleton units).
    pub members: Vec<PropertyId>,
    /// Estimated cost, used for hardest-first ordering: the cost
    /// model's prediction under the learned schedule, the latch-support
    /// size proxy otherwise. Cluster weights sum their members.
    pub weight: f64,
}

/// The Plan stage's output: cache-resolved results plus ordered units
/// for everything that still needs solving.
#[derive(Clone, Debug)]
pub struct Plan {
    /// Units in dispatch order (hardest first where the mode sorts).
    pub units: Vec<PlanUnit>,
    /// Verdicts resolved from the verdict cache; these properties
    /// appear in no unit.
    pub cached: Vec<PropertyResult>,
    /// The full planned property list in caller (declaration or
    /// `order`-override) order, cached members included — the report
    /// stage restores this order.
    order: Vec<PropertyId>,
}

impl Plan {
    /// The properties that will be solved, flattened in dispatch
    /// order. At one worker thread this is exactly the solve order.
    pub fn dispatch_order(&self) -> Vec<PropertyId> {
        self.units.iter().flat_map(|u| u.members.clone()).collect()
    }
}

/// Stable hardest-first ordering, shared by the parallel and clustered
/// planners (it used to be duplicated in both drivers): descending
/// weight, and **ties keep the incoming order** — declaration order
/// for properties, discovery order for clusters — so dispatch is
/// deterministic at one thread.
fn order_units(units: &mut [PlanUnit]) {
    units.sort_by(|a, b| b.weight.total_cmp(&a.weight));
}

enum SessionKind {
    Separate(SeparateOptions),
    Parallel(SeparateOptions),
    Joint(JointOptions),
    Clustered(ClusteredOptions),
}

/// One verification run through the unified pipeline.
///
/// All four `--mode` families are configurations of this type:
///
/// ```
/// use japrove_aig::Aig;
/// use japrove_core::{SeparateOptions, Session};
/// use japrove_tsys::{TransitionSystem, Word};
///
/// let mut aig = Aig::new();
/// let c = Word::latches(&mut aig, 4, 0);
/// let n = c.increment(&mut aig);
/// c.set_next(&mut aig, &n);
/// let ok = c.lt_const(&mut aig, 16);
/// let mut sys = TransitionSystem::new("cnt", aig);
/// sys.add_property("in_range", ok);
///
/// let report = Session::separate(SeparateOptions::local()).run(&sys);
/// assert_eq!(report.num_true(), 1);
/// ```
pub struct Session {
    kind: SessionKind,
    threads: usize,
    schedule: SchedulePolicy,
    cost_model: Option<CostModel>,
    cache: Option<VerdictCache>,
    enumeration: Option<crate::EnumOptions>,
}

impl Session {
    /// Sequential separate verification (JA under [`Scope::Local`],
    /// the separate-global baseline under [`Scope::Global`]).
    /// Properties are processed in declaration (or `order`-override)
    /// order; the schedule policy does not reorder this kind.
    pub fn separate(opts: SeparateOptions) -> Session {
        Session::new(SessionKind::Separate(opts), 1)
    }

    /// Parallel separate verification with `threads` workers.
    pub fn parallel(opts: SeparateOptions, threads: usize) -> Session {
        Session::new(SessionKind::Parallel(opts), threads)
    }

    /// Joint (Jnt-ver) aggregate verification.
    pub fn joint(opts: JointOptions) -> Session {
        Session::new(SessionKind::Joint(opts), 1)
    }

    /// Clustered verification with `threads` workers; affinity
    /// clusters are the unit of dispatch.
    pub fn clustered(opts: ClusteredOptions, threads: usize) -> Session {
        Session::new(SessionKind::Clustered(opts), threads)
    }

    fn new(kind: SessionKind, threads: usize) -> Session {
        Session {
            kind,
            threads,
            schedule: SchedulePolicy::default(),
            cost_model: None,
            cache: None,
            enumeration: None,
        }
    }

    /// Attaches a post-verdict enumeration/counting pass: after the
    /// Report stage (including supervision retries), every falsified
    /// property is enumerated and/or counted per `opts`, and the
    /// outcomes land in [`MultiReport::enumerations`].
    pub fn enumeration(mut self, opts: crate::EnumOptions) -> Session {
        self.enumeration = Some(opts);
        self
    }

    /// Sets the schedule policy (parallel and clustered kinds).
    pub fn schedule(mut self, policy: SchedulePolicy) -> Session {
        self.schedule = policy;
        self
    }

    /// Attaches a cost model for the learned schedule and the affinity
    /// graph's cost signal.
    pub fn cost_model(mut self, model: CostModel) -> Session {
        self.cost_model = Some(model);
        self
    }

    /// Attaches a verdict cache: consulted in Plan, written in Report.
    /// Only global verdicts participate (see the soundness note on
    /// [`VerdictCache`]).
    pub fn verdict_cache(mut self, cache: VerdictCache) -> Session {
        self.cache = Some(cache);
        self
    }

    /// Takes the verdict cache back (with this run's verdicts merged
    /// in) so the caller can persist it.
    pub fn take_verdict_cache(&mut self) -> Option<VerdictCache> {
        self.cache.take()
    }

    fn journal(&self) -> &Journal {
        match &self.kind {
            SessionKind::Separate(o) | SessionKind::Parallel(o) => &o.journal,
            SessionKind::Joint(o) => &o.journal,
            SessionKind::Clustered(o) => &o.separate.journal,
        }
    }

    fn backend(&self) -> BackendChoice {
        match &self.kind {
            SessionKind::Separate(o) | SessionKind::Parallel(o) => o.backend,
            SessionKind::Joint(o) => o.backend,
            SessionKind::Clustered(o) => o.separate.backend,
        }
    }

    /// Whether this session's per-property verdicts are global — the
    /// precondition for consulting or filling the verdict cache.
    fn verdicts_are_global(&self) -> bool {
        match &self.kind {
            SessionKind::Separate(o) | SessionKind::Parallel(o) => o.scope == Scope::Global,
            SessionKind::Joint(_) => true,
            SessionKind::Clustered(o) => o.separate.scope == Scope::Global,
        }
    }

    /// The full planned property list in caller order.
    fn planned_order(&self, sys: &TransitionSystem) -> Vec<PropertyId> {
        match &self.kind {
            SessionKind::Separate(o) | SessionKind::Parallel(o) => o
                .order
                .clone()
                .unwrap_or_else(|| sys.property_ids().collect()),
            SessionKind::Joint(o) => o
                .subset
                .clone()
                .unwrap_or_else(|| sys.property_ids().collect()),
            SessionKind::Clustered(_) => sys.property_ids().collect(),
        }
    }

    /// The weight of one property: the learned prediction when the
    /// schedule and model provide one, the COI-size proxy otherwise.
    /// Both are normalized against the design's own maxima, so warm and
    /// cold properties stay comparable within one plan.
    fn property_weight(
        &self,
        sys: &TransitionSystem,
        p: PropertyId,
        supports: &[Vec<usize>],
        max_support: usize,
    ) -> f64 {
        let proxy = if max_support == 0 {
            0.0
        } else {
            supports[p.index()].len() as f64 / max_support as f64
        };
        if self.schedule == SchedulePolicy::Learned {
            if let Some(model) = &self.cost_model {
                return model.predicted(&sys.property(p).name).unwrap_or(proxy);
            }
        }
        proxy
    }

    /// The Plan stage: verdict-cache consultation, unit formation
    /// (singletons, clusters or one aggregate) and hardest-first
    /// ordering. Public so callers can inspect the dispatch order
    /// without running anything.
    pub fn plan(&self, sys: &TransitionSystem) -> Plan {
        let _span = self.journal().span(Phase::Plan);
        let order = self.planned_order(sys);

        let mut cached = Vec::new();
        let mut hit = vec![false; sys.num_properties()];
        if let Some(cache) = &self.cache {
            if self.verdicts_are_global() {
                for &p in &order {
                    if let Some(result) = cache_lookup(sys, p, cache, self.backend()) {
                        hit[p.index()] = true;
                        cached.push(result);
                    }
                }
            }
        }

        let supports = latch_supports(sys);
        let max_support = supports.iter().map(Vec::len).max().unwrap_or(0);
        let weigh = |members: &[PropertyId]| -> f64 {
            members
                .iter()
                .map(|&p| self.property_weight(sys, p, &supports, max_support))
                .sum()
        };

        let mut units: Vec<PlanUnit> = match &self.kind {
            SessionKind::Separate(_) | SessionKind::Parallel(_) => order
                .iter()
                .filter(|p| !hit[p.index()])
                .map(|&p| PlanUnit {
                    members: vec![p],
                    weight: weigh(&[p]),
                })
                .collect(),
            SessionKind::Joint(_) => {
                let members: Vec<PropertyId> =
                    order.iter().copied().filter(|p| !hit[p.index()]).collect();
                if members.is_empty() {
                    Vec::new()
                } else {
                    let weight = weigh(&members);
                    vec![PlanUnit { members, weight }]
                }
            }
            SessionKind::Clustered(o) => {
                let clusters = {
                    let _probe_span = self.journal().span(Phase::AffinityProbe);
                    affinity_clusters_with_cost(
                        sys,
                        o.metric,
                        o.max_group_size,
                        o.min_affinity,
                        o.separate.backend,
                        self.cost_model.as_ref(),
                    )
                };
                clusters
                    .into_iter()
                    .map(|mut c| {
                        c.retain(|p| !hit[p.index()]);
                        c
                    })
                    .filter(|c| !c.is_empty())
                    .map(|c| PlanUnit {
                        weight: weigh(&c),
                        members: c,
                    })
                    .collect()
            }
        };

        // Hardest-first ordering for the dispatching kinds. The
        // sequential separate kind keeps the caller's order (the
        // paper's "properties are verified in the order they are
        // given"), the FIFO baseline keeps declaration order by
        // definition, and the joint kind has a single unit.
        let sorts = match &self.kind {
            SessionKind::Parallel(_) => self.schedule != SchedulePolicy::Fifo,
            SessionKind::Clustered(_) => true,
            SessionKind::Separate(_) | SessionKind::Joint(_) => false,
        };
        if sorts {
            order_units(&mut units);
        }
        Plan {
            units,
            cached,
            order,
        }
    }

    /// Runs the full pipeline: Plan → Dispatch → Solve → Report.
    pub fn run(&mut self, sys: &TransitionSystem) -> MultiReport {
        let started = Instant::now();
        let plan = self.plan(sys);
        let mut report = match &self.kind {
            SessionKind::Separate(opts) => run_separate(sys, opts, &plan),
            SessionKind::Parallel(opts) => {
                run_parallel(sys, self.threads, opts, self.schedule, &plan)
            }
            SessionKind::Joint(opts) => run_joint(sys, opts, &plan),
            SessionKind::Clustered(opts) => run_clustered(sys, self.threads, opts, &plan),
        };
        self.supervise_retries(sys, started, &mut report);
        if self.verdicts_are_global() {
            if let Some(cache) = &mut self.cache {
                for r in &report.results {
                    cache_store(sys, r, cache);
                }
            }
        }
        if let Some(opts) = &self.enumeration {
            report.enumerations = crate::enumerate_report(sys, &report, opts);
        }
        report.total_time = started.elapsed();
        report
    }

    /// The supervision-retry pass, run after the main solve stage (so a
    /// retry never delays a healthy property — "re-queued at lower
    /// priority"). Properties that settled on `Unknown(EngineFault)` —
    /// or on `Unknown(Budget)` when a soft per-property watchdog is
    /// configured — are re-run sequentially, each attempt on a fresh
    /// cold context (a poisoned pool or clause store never leaks into
    /// the retry) with a doubled watchdog budget, up to
    /// [`SeparateOptions::retries`] attempts, before the Unknown
    /// sticks. The joint driver has a single aggregate attempt and no
    /// per-property retry.
    fn supervise_retries(
        &self,
        sys: &TransitionSystem,
        started: Instant,
        report: &mut MultiReport,
    ) {
        let base = match &self.kind {
            SessionKind::Separate(o) | SessionKind::Parallel(o) => o,
            SessionKind::Clustered(o) => &o.separate,
            SessionKind::Joint(_) => return,
        };
        if base.retries == 0 {
            return;
        }
        let needs_retry = |r: &PropertyResult| {
            !r.cached
                && match r.outcome {
                    CheckOutcome::Unknown(UnknownReason::EngineFault) => true,
                    // A plain per-property budget exhaustion is a
                    // verdict, not a fault; only the soft watchdog
                    // opts into escalate-and-retry.
                    CheckOutcome::Unknown(UnknownReason::Budget) => base.property_timeout.is_some(),
                    _ => false,
                }
        };
        let pending: Vec<usize> = (0..report.results.len())
            .filter(|&i| needs_retry(&report.results[i]))
            .collect();
        if pending.is_empty() {
            return;
        }
        let deadline = base.total.map(|d| started + d);
        let assumed = match base.scope {
            Scope::Local => local_assumptions(sys),
            Scope::Global => Vec::new(),
        };
        for i in pending {
            let id = report.results[i].id;
            let mut escalated = base.property_timeout;
            for _attempt in 0..base.retries {
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    return;
                }
                escalated = escalated.map(|t| t * 2);
                let mut opts = base.clone();
                opts.per_property = None;
                opts.property_timeout = escalated;
                let db = ClauseDb::new();
                let mut pool = {
                    let _enc_span = opts.journal.span(Phase::Encode);
                    CtxPool::new(sys)
                };
                pool.set_journal(opts.journal.clone());
                let mut result =
                    check_one(sys, id, &assumed, &db, &opts, deadline, &mut pool, true);
                result.retried = true;
                let settled = !needs_retry(&result);
                report.results[i] = result;
                if settled {
                    break;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Solve stage: the four drivers' loops, now in one place.
// ---------------------------------------------------------------------

/// Renders a caught panic payload for the journal's `fault` events.
pub(crate) fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into())
}

/// A placeholder result with the given unknown reason.
fn unknown_result(
    sys: &TransitionSystem,
    id: PropertyId,
    opts: &SeparateOptions,
    reason: UnknownReason,
) -> PropertyResult {
    PropertyResult {
        id,
        name: sys.property(id).name.clone(),
        outcome: CheckOutcome::Unknown(reason),
        scope: opts.scope,
        time: Duration::ZERO,
        frames: 0,
        retried: false,
        backend: opts.backend_of(id),
        stats: RunStats::default(),
        cached: false,
    }
}

/// A deadline-expired placeholder result.
fn budget_expired(
    sys: &TransitionSystem,
    id: PropertyId,
    opts: &SeparateOptions,
) -> PropertyResult {
    unknown_result(sys, id, opts, UnknownReason::Budget)
}

/// Joins the solve-stage worker threads, surviving a worker that died
/// of an *uncontained* panic (anything that escaped the per-property
/// `catch_unwind` in `check_one`): the payload is journaled as a
/// `fault` event and the dead worker's finished results are simply
/// absent — the callers fill the holes with `Unknown(EngineFault)`.
fn join_workers<T>(
    handles: Vec<std::thread::ScopedJoinHandle<'_, Vec<T>>>,
    journal: &Journal,
) -> Vec<T> {
    let mut all = Vec::new();
    for h in handles {
        match h.join() {
            Ok(mine) => all.extend(mine),
            Err(payload) => journal.event(EventKind::Fault {
                site: "worker".into(),
                detail: panic_detail(payload.as_ref()),
            }),
        }
    }
    all
}

/// The sequential separate driver: caller-order walk, warm pool,
/// clause re-use through the shared store.
fn run_separate(sys: &TransitionSystem, opts: &SeparateOptions, plan: &Plan) -> MultiReport {
    let deadline = opts.total.map(|d| Instant::now() + d);
    let assumed = match opts.scope {
        Scope::Local => local_assumptions(sys),
        Scope::Global => Vec::new(),
    };
    let db = ClauseDb::new();
    let method = match (opts.scope, opts.reuse) {
        (Scope::Local, true) => "ja-verification",
        (Scope::Local, false) => "ja-verification (no reuse)",
        (Scope::Global, true) => "separate-global",
        (Scope::Global, false) => "separate-global (no reuse)",
    };
    let mut report = MultiReport::new(sys.name(), method);
    let cached: HashMap<PropertyId, &PropertyResult> =
        plan.cached.iter().map(|r| (r.id, r)).collect();
    let mut pool = {
        let _enc_span = opts.journal.span(Phase::Encode);
        CtxPool::new(sys)
    };
    pool.set_journal(opts.journal.clone());
    for &id in &plan.order {
        if let Some(&hit) = cached.get(&id) {
            report.results.push(hit.clone());
            continue;
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            report.results.push(budget_expired(sys, id, opts));
            continue;
        }
        let result = check_one(sys, id, &assumed, &db, opts, deadline, &mut pool, true);
        publish_if_proved(&db, opts, &result);
        report.results.push(result);
    }
    report
}

fn publish_if_proved(db: &ClauseDb, opts: &SeparateOptions, result: &PropertyResult) {
    if opts.reuse {
        if let CheckOutcome::Proved(cert) = &result.outcome {
            db.publish(cert.clauses.iter().cloned());
        }
    }
}

/// The parallel separate driver. Results are restored to caller-order
/// slots, so verdict comparisons with the sequential driver line up.
///
/// # Panics
///
/// Panics if `threads == 0`.
fn run_parallel(
    sys: &TransitionSystem,
    threads: usize,
    opts: &SeparateOptions,
    schedule: SchedulePolicy,
    plan: &Plan,
) -> MultiReport {
    assert!(threads > 0, "need at least one worker thread");
    let deadline = opts.total.map(|d| Instant::now() + d);
    let assumed = match opts.scope {
        Scope::Local => local_assumptions(sys),
        Scope::Global => Vec::new(),
    };
    let db = ClauseDb::new();
    let order = &plan.order;
    let pos_of: HashMap<PropertyId, usize> =
        order.iter().enumerate().map(|(i, &p)| (p, i)).collect();
    let mut slots: Vec<Option<PropertyResult>> = vec![None; order.len()];
    for r in &plan.cached {
        slots[pos_of[&r.id]] = Some(r.clone());
    }
    // Jobs are caller-order positions, already unit-ordered by Plan.
    let jobs: Vec<usize> = plan
        .units
        .iter()
        .flat_map(|u| u.members.iter().map(|p| pos_of[p]))
        .collect();
    // No `.max(1)` guard: with zero jobs there is nothing to do, so
    // spawning zero workers is exactly right.
    let workers = threads.min(jobs.len());

    let finished = match schedule {
        SchedulePolicy::Fifo => {
            run_cold_fifo(sys, workers, opts, &assumed, order, &jobs, &db, deadline)
        }
        SchedulePolicy::Steal | SchedulePolicy::Learned => {
            run_incremental(sys, workers, opts, &assumed, order, &jobs, &db, deadline)
        }
    };
    for (i, result) in finished {
        slots[i] = Some(result);
    }

    let scope_label = match opts.scope {
        Scope::Local => "parallel-ja",
        Scope::Global => "parallel-separate-global",
    };
    let mode_label = match schedule {
        SchedulePolicy::Steal => "",
        SchedulePolicy::Fifo => " [cold-fifo]",
        SchedulePolicy::Learned => " [learned]",
    };
    let mut report = MultiReport::new(sys.name(), format!("{scope_label} x{threads}{mode_label}"));
    // A slot left empty means its worker died of an uncontained panic
    // before publishing the result; degrade to EngineFault rather than
    // aborting the whole run.
    report.results = slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            s.unwrap_or_else(|| unknown_result(sys, order[i], opts, UnknownReason::EngineFault))
        })
        .collect();
    report
}

/// Warm work-stealing execution: one shared encoding, warm per-worker
/// solver pools, jobs dealt in plan order.
#[allow(clippy::too_many_arguments)]
fn run_incremental(
    sys: &TransitionSystem,
    workers: usize,
    opts: &SeparateOptions,
    assumed: &[PropertyId],
    order: &[PropertyId],
    jobs: &[usize],
    db: &ClauseDb,
    deadline: Option<Instant>,
) -> Vec<(usize, PropertyResult)> {
    if workers == 0 {
        return Vec::new();
    }
    // Encode once; every worker's pool shares this.
    let enc = {
        let _enc_span = opts.journal.span(Phase::Encode);
        Arc::new(TsEncoding::new(sys))
    };
    let dispatcher = Dispatcher::new(jobs, workers);

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..workers {
            let dispatcher = &dispatcher;
            let enc = Arc::clone(&enc);
            let db = db.clone();
            handles.push(scope.spawn(move || {
                let mut pool = CtxPool::with_encoding(enc);
                pool.set_journal(opts.journal.clone());
                let mut mine = Vec::new();
                while let Some(i) = dispatcher.pop(w) {
                    let result =
                        check_one(sys, order[i], assumed, &db, opts, deadline, &mut pool, true);
                    publish_if_proved(&db, opts, &result);
                    mine.push((i, result));
                }
                mine
            }));
        }
        join_workers(handles, &opts.journal)
    })
}

/// The pre-incremental reference baseline: FIFO ticket dispatch, fresh
/// encoding and solvers per property, no mid-run clause refresh.
#[allow(clippy::too_many_arguments)]
fn run_cold_fifo(
    sys: &TransitionSystem,
    workers: usize,
    opts: &SeparateOptions,
    assumed: &[PropertyId],
    order: &[PropertyId],
    jobs: &[usize],
    db: &ClauseDb,
    deadline: Option<Instant>,
) -> Vec<(usize, PropertyResult)> {
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..workers {
            let next = &next;
            let db = db.clone();
            handles.push(scope.spawn(move || {
                let mut mine = Vec::new();
                loop {
                    // A pure ticket counter: each worker only consumes
                    // the index it drew, and no other memory is
                    // published through the counter, so `Relaxed` is
                    // sound — `fetch_add` is still atomic, every index
                    // is handed out exactly once.
                    let t = next.fetch_add(1, Ordering::Relaxed);
                    if t >= jobs.len() {
                        return mine;
                    }
                    let i = jobs[t];
                    // A cold pool per property: re-encode, fresh
                    // solvers, no mid-run refresh — faithful to the
                    // pre-incremental driver this mode benchmarks.
                    let mut pool = CtxPool::new(sys);
                    pool.set_journal(opts.journal.clone());
                    let result = check_one(
                        sys, order[i], assumed, &db, opts, deadline, &mut pool, false,
                    );
                    publish_if_proved(&db, opts, &result);
                    mine.push((i, result));
                }
            }));
        }
        join_workers(handles, &opts.journal)
    })
}

/// The Jnt-ver loop (§9): verify the aggregate property, refute the
/// properties its counterexample falsifies, re-iterate.
fn run_joint(sys: &TransitionSystem, opts: &JointOptions, plan: &Plan) -> MultiReport {
    let deadline = opts.total.map(|d| Instant::now() + d);
    let mut report = MultiReport::new(
        sys.name(),
        if opts.bmc_depth.is_some() {
            "joint (bmc+ic3)"
        } else {
            "joint"
        },
    );
    report.results.extend(plan.cached.iter().cloned());
    let mut remaining: Vec<PropertyId> = plan
        .units
        .first()
        .map(|u| u.members.clone())
        .unwrap_or_default();

    let push_result = |report: &mut MultiReport,
                       id: PropertyId,
                       outcome: CheckOutcome,
                       frames: usize,
                       stats: RunStats,
                       t0: Instant| {
        report.results.push(PropertyResult {
            id,
            name: sys.property(id).name.clone(),
            outcome,
            scope: Scope::Global,
            time: t0.elapsed(),
            frames,
            retried: false,
            backend: opts.backend,
            stats,
            cached: false,
        });
    };

    while !remaining.is_empty() {
        let iteration_start = Instant::now();
        if deadline.is_some_and(|d| Instant::now() >= d) {
            for id in remaining.drain(..) {
                push_result(
                    &mut report,
                    id,
                    CheckOutcome::Unknown(UnknownReason::Budget),
                    0,
                    RunStats::default(),
                    iteration_start,
                );
            }
            break;
        }
        // The engine budget starts from the caller's base budget (it is
        // no longer silently replaced) and additionally observes the
        // total deadline.
        let with_deadline = |b: Budget| match deadline {
            Some(d) => b.with_deadline(d),
            None => b,
        };
        let budget = with_deadline(opts.ic3.budget);
        let (agg, agg_id) = aggregate_system(sys, &remaining);

        // The whole BMC+IC3 attempt runs under `catch_unwind`: a
        // panicking engine degrades this iteration's remaining
        // properties to EngineFault (drained by the Unknown arm below)
        // instead of tearing the session down.
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            japrove_obs::fault::fire("joint_attempt", sys.name());
            // Optional BMC front-end for shallow refutations. A
            // front-end that runs out of budget must NOT decide the
            // verdict: unless the total deadline is actually spent,
            // control falls through to IC3.
            let mut outcome = None;
            if let Some(depth) = opts.bmc_depth {
                let _bmc_span = opts.journal.span(Phase::BmcFrontend);
                let bmc_budget = match opts.bmc_conflicts {
                    Some(n) => with_deadline(Budget::conflicts(n)),
                    None => budget,
                };
                let mut bmc = Bmc::with_backend(&agg, opts.backend);
                bmc.set_journal(opts.journal.clone());
                match bmc.run(&[agg_id], depth, bmc_budget) {
                    BmcResult::Cex { cex, .. } => {
                        outcome = Some(CheckOutcome::Falsified(cex));
                    }
                    BmcResult::NoCexUpTo(_) => {}
                    BmcResult::Unknown(r) => {
                        if deadline.is_some_and(|d| Instant::now() >= d) {
                            outcome = Some(CheckOutcome::Unknown(r));
                        }
                    }
                }
            }
            match outcome {
                Some(o) => (o, 0, RunStats::default()),
                None => {
                    let _joint_span = opts.journal.span(Phase::JointAttempt);
                    let ic3_opts = opts.ic3.budget(budget).backend(opts.backend);
                    let mut engine = Ic3::new(&agg, agg_id, ic3_opts);
                    engine.set_journal(opts.journal.clone());
                    let o = engine.run();
                    (o, engine.stats().frames, *engine.stats())
                }
            }
        }));
        let (outcome, frames, stats) = match attempt {
            Ok(triple) => triple,
            Err(payload) => {
                opts.journal.event(EventKind::Fault {
                    site: "joint_attempt".into(),
                    detail: format!("{}: {}", sys.name(), panic_detail(payload.as_ref())),
                });
                (
                    CheckOutcome::Unknown(UnknownReason::EngineFault),
                    0,
                    RunStats::default(),
                )
            }
        };

        match outcome {
            CheckOutcome::Proved(cert) => {
                for id in remaining.drain(..) {
                    push_result(
                        &mut report,
                        id,
                        CheckOutcome::Proved(cert.clone()),
                        frames,
                        stats,
                        iteration_start,
                    );
                }
            }
            CheckOutcome::Unknown(r) => {
                for id in remaining.drain(..) {
                    push_result(
                        &mut report,
                        id,
                        CheckOutcome::Unknown(r),
                        frames,
                        stats,
                        iteration_start,
                    );
                }
            }
            CheckOutcome::Falsified(cex) => {
                // Replay on the original system to see which properties
                // the final state falsifies. An unreplayable trace, or
                // one that falsifies nothing, would loop forever here;
                // degrade the remaining properties to Unknown instead
                // of panicking.
                let falsified = falsified_by_replay(sys, &remaining, &cex);
                if falsified.is_empty() {
                    for id in remaining.drain(..) {
                        push_result(
                            &mut report,
                            id,
                            CheckOutcome::Unknown(UnknownReason::SpuriousCex),
                            frames,
                            stats,
                            iteration_start,
                        );
                    }
                    break;
                }
                for &id in &falsified {
                    push_result(
                        &mut report,
                        id,
                        CheckOutcome::Falsified(cex.clone()),
                        frames,
                        stats,
                        iteration_start,
                    );
                }
                remaining.retain(|p| !falsified.contains(p));
            }
        }
    }
    report
}

/// The clustered driver: affinity clusters (from Plan) are the unit of
/// the hardest-first work-stealing dispatch; results are restored to
/// declaration order.
///
/// # Panics
///
/// Panics if `threads == 0`.
fn run_clustered(
    sys: &TransitionSystem,
    threads: usize,
    opts: &ClusteredOptions,
    plan: &Plan,
) -> MultiReport {
    assert!(threads > 0, "need at least one worker thread");
    let journal = &opts.separate.journal;
    let deadline = opts.separate.total.map(|d| Instant::now() + d);
    let assumed = match opts.separate.scope {
        Scope::Local => local_assumptions(sys),
        Scope::Global => Vec::new(),
    };
    let units = &plan.units;

    let scope_label = match opts.separate.scope {
        Scope::Local => "clustered-ja",
        Scope::Global => "clustered-global",
    };
    let mut report = MultiReport::new(
        sys.name(),
        format!(
            "{scope_label}[{}] x{threads} ({} clusters)",
            opts.metric,
            units.len()
        ),
    );

    let workers = threads.min(units.len());
    let mut results: Vec<PropertyResult> = plan.cached.clone();
    if workers > 0 {
        let enc = {
            let _enc_span = journal.span(Phase::Encode);
            Arc::new(TsEncoding::new(sys))
        };
        let global_db = ClauseDb::new();
        // Units are already plan-ordered; deal them as-is.
        let jobs: Vec<usize> = (0..units.len()).collect();
        let dispatcher = Dispatcher::new(&jobs, workers);
        let solved: Vec<PropertyResult> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for w in 0..workers {
                let dispatcher = &dispatcher;
                let enc = Arc::clone(&enc);
                let global_db = global_db.clone();
                let units = &units;
                let assumed = &assumed;
                handles.push(scope.spawn(move || {
                    let mut pool = CtxPool::with_encoding(enc);
                    pool.set_journal(opts.separate.journal.clone());
                    let mut mine = Vec::new();
                    while let Some(c) = dispatcher.pop(w) {
                        mine.extend(verify_cluster(
                            sys,
                            c,
                            &units[c].members,
                            opts,
                            assumed,
                            &global_db,
                            deadline,
                            &mut pool,
                        ));
                    }
                    mine
                }));
            }
            join_workers(handles, journal)
        });
        results.extend(solved);
    }
    // A worker that died of an uncontained panic takes its cluster's
    // pending results with it; degrade those properties to
    // EngineFault so the report stays complete and the run never
    // aborts.
    let mut have = vec![false; sys.num_properties()];
    for r in &results {
        have[r.id.index()] = true;
    }
    for &id in &plan.order {
        if !have[id.index()] {
            results.push(unknown_result(
                sys,
                id,
                &opts.separate,
                UnknownReason::EngineFault,
            ));
        }
    }
    // Clusters partition the property set; restore declaration order
    // for comparability with the other drivers.
    results.sort_by_key(|r| r.id);
    report.results = results;
    report
}

/// Maps a certificate proved on a cone reduction back onto the
/// original system: certificate clauses range over latch variables,
/// which [`japrove_tsys::CoiMap::latches`] translates index-for-index.
/// Sound because the kept latches evolve identically in both systems,
/// so a clause holding in every reachable reduced state holds in every
/// reachable original state.
fn lift_certificate(cert: &Certificate, map: &CoiMap) -> Certificate {
    Certificate {
        clauses: cert
            .clauses
            .iter()
            .map(|c| {
                Clause::from_lits(c.lits().iter().map(|l| {
                    Var::new(map.latches[l.var().index() as usize] as u32).lit(l.is_negated())
                }))
            })
            .collect(),
    }
}

/// Materializes a reduced-system counterexample on the original
/// design: lift the input vectors, complete the trace by simulation,
/// and confirm by replay that it still falsifies `id`. `None` (never
/// expected — the kept cone behaves identically) sends the property to
/// the per-property fallback instead of trusting a bad trace.
fn lift_counterexample(
    sys: &TransitionSystem,
    map: &CoiMap,
    id: PropertyId,
    cex: &Counterexample,
) -> Option<Counterexample> {
    let inputs = map.lift_inputs(cex.trace.inputs());
    let trace = complete_trace(sys, inputs);
    let violates = replay(sys, &trace).is_ok_and(|r| r.violates_finally(id));
    violates.then_some(Counterexample {
        depth: cex.depth,
        trace,
    })
}

/// Verifies one cluster: optional joint attempt, then warm
/// per-property checks with two-level clause re-use for whatever the
/// attempt left open.
#[allow(clippy::too_many_arguments)]
fn verify_cluster(
    sys: &TransitionSystem,
    index: usize,
    cluster: &[PropertyId],
    opts: &ClusteredOptions,
    assumed: &[PropertyId],
    global_db: &ClauseDb,
    deadline: Option<Instant>,
    pool: &mut CtxPool,
) -> Vec<PropertyResult> {
    let _cluster_span = opts.separate.journal.span_labeled(
        Phase::Cluster,
        format!("cluster-{index} ({} props)", cluster.len()),
    );
    let reuse = opts.separate.reuse;
    let cluster_db = ClauseDb::new();
    let mut results = Vec::new();
    let mut remaining: Vec<PropertyId> = cluster.to_vec();

    // The joint attempt: one aggregate run can prove (or refute into)
    // the whole cluster — and it runs on the cluster's
    // *cone-of-influence reduction*, not the full design. Affinity
    // clusters are cone-coherent, so the reduction is deep and the
    // aggregate encode/solve cost shrinks with it; this is where the
    // mode beats the grouped baseline (which re-encodes the whole
    // design per group). Only under global scope — an aggregate
    // counterexample refutes properties *globally*, which would
    // contradict local verdicts for shadowed properties.
    if opts.cluster_joint && opts.separate.scope == Scope::Global && cluster.len() >= 2 {
        let (sub, map) = sys.restrict_to_cone(&remaining);
        let mut jopts = opts.joint.clone();
        if let Some(d) = deadline {
            let left = d.saturating_duration_since(Instant::now());
            jopts.total = Some(jopts.total.map_or(left, |t| t.min(left)));
        }
        let attempt = crate::joint_verify(&sub, &jopts);
        let mut solved = Vec::new();
        for r in attempt.results {
            let id = map.properties[r.id.index()];
            // A cluster-level Unknown (budget, spurious aggregate
            // counterexample, unliftable trace): leave the property to
            // the fallback so grouping can never lose a verdict.
            let outcome = match r.outcome {
                CheckOutcome::Proved(cert) => {
                    let lifted = lift_certificate(&cert, &map);
                    if reuse {
                        cluster_db.publish(lifted.clauses.iter().cloned());
                    }
                    Some(CheckOutcome::Proved(lifted))
                }
                CheckOutcome::Falsified(cex) => {
                    lift_counterexample(sys, &map, id, &cex).map(CheckOutcome::Falsified)
                }
                CheckOutcome::Unknown(_) => None,
            };
            if let Some(outcome) = outcome {
                solved.push(id);
                results.push(PropertyResult {
                    id,
                    name: sys.property(id).name.clone(),
                    outcome,
                    scope: Scope::Global,
                    time: r.time,
                    frames: r.frames,
                    retried: false,
                    backend: r.backend,
                    stats: r.stats,
                    cached: false,
                });
            }
        }
        remaining.retain(|p| !solved.contains(p));
    }

    // Warm per-property path: eager cluster import, lazy global
    // refresh through the two-level source.
    for &id in &remaining {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            results.push(budget_expired(sys, id, &opts.separate));
            continue;
        }
        let source = TwoLevelSource::new(&cluster_db, global_db);
        let (imported, src): (_, Option<(&dyn ClauseSource, u64)>) = if reuse {
            (
                cluster_db.snapshot(),
                Some((&source, source.primed_cursor())),
            )
        } else {
            (Vec::new(), None)
        };
        let result = check_one_imports(
            sys,
            id,
            assumed,
            imported,
            src,
            &opts.separate,
            deadline,
            pool,
        );
        if reuse {
            if let CheckOutcome::Proved(cert) = &result.outcome {
                cluster_db.publish(cert.clauses.iter().cloned());
            }
        }
        results.push(result);
    }

    // Share what the cluster learned with everyone else.
    if reuse {
        global_db.publish(cluster_db.snapshot());
    }
    results
}

// ---------------------------------------------------------------------
// Verdict-cache plumbing: lookups in Plan, writes in Report.
// ---------------------------------------------------------------------

/// The property's cone reduction, its cache key and its reduced id.
fn property_cone(
    sys: &TransitionSystem,
    p: PropertyId,
) -> Option<(TransitionSystem, CoiMap, String, PropertyId)> {
    let (sub, map) = sys.restrict_to_cone(&[p]);
    let key = format!("{:016x}", sub.structural_hash());
    let rid = map
        .properties
        .iter()
        .position(|&q| q == p)
        .map(PropertyId::new)?;
    Some((sub, map, key, rid))
}

/// Consults the cache for `p`. A hit is *re-certified*, never trusted:
/// stored certificates are verified on the reduced system and lifted;
/// stored counterexamples are lifted, completed and replayed. Any
/// failure is a miss.
fn cache_lookup(
    sys: &TransitionSystem,
    p: PropertyId,
    cache: &VerdictCache,
    backend: BackendChoice,
) -> Option<PropertyResult> {
    let started = Instant::now();
    let name = sys.property(p).name.clone();
    let (sub, map, key, rid) = property_cone(sys, p)?;
    let entry = cache.get(&key, &name)?;
    let outcome = match entry.verdict.as_str() {
        "holds" => {
            let latches = sub.aig().latches().len();
            let mut clauses = Vec::with_capacity(entry.clauses.len());
            for c in &entry.clauses {
                let lits: Option<Vec<_>> = c
                    .iter()
                    .map(|&l| {
                        let idx = l.unsigned_abs() as usize - 1;
                        (idx < latches).then(|| Var::new(idx as u32).lit(l < 0))
                    })
                    .collect();
                clauses.push(Clause::from_lits(lits?));
            }
            let cert = Certificate { clauses };
            verify_certificate(&sub, rid, &[], &cert).ok()?;
            CheckOutcome::Proved(lift_certificate(&cert, &map))
        }
        "fails" => {
            if entry
                .inputs
                .iter()
                .any(|step| step.len() != map.inputs.len())
            {
                return None;
            }
            let trace = complete_trace(sys, map.lift_inputs(&entry.inputs));
            if !replay(sys, &trace).is_ok_and(|r| r.violates_finally(p)) {
                return None;
            }
            CheckOutcome::Falsified(Counterexample {
                depth: entry.depth as usize,
                trace,
            })
        }
        _ => return None,
    };
    Some(PropertyResult {
        id: p,
        name,
        outcome,
        scope: Scope::Global,
        time: started.elapsed(),
        frames: 0,
        retried: false,
        backend,
        stats: RunStats::default(),
        cached: true,
    })
}

/// Writes one fresh global verdict into the cache, with its evidence
/// down-mapped onto the property's cone and re-checked there first. A
/// verdict whose evidence does not fit the cone (e.g. an aggregate
/// certificate mentioning latches outside it) is simply not cached.
fn cache_store(sys: &TransitionSystem, result: &PropertyResult, cache: &mut VerdictCache) {
    if result.cached || result.scope != Scope::Global {
        return;
    }
    let Some((sub, map, key, rid)) = property_cone(sys, result.id) else {
        return;
    };
    let reduced_of: HashMap<usize, usize> = map
        .latches
        .iter()
        .enumerate()
        .map(|(r, &o)| (o, r))
        .collect();
    let entry = match &result.outcome {
        CheckOutcome::Proved(cert) => {
            let mut down = Vec::with_capacity(cert.clauses.len());
            let mut reduced_clauses = Vec::with_capacity(cert.clauses.len());
            for c in &cert.clauses {
                let Some(lits): Option<Vec<(usize, bool)>> = c
                    .lits()
                    .iter()
                    .map(|l| {
                        reduced_of
                            .get(&(l.var().index() as usize))
                            .map(|&r| (r, l.is_negated()))
                    })
                    .collect()
                else {
                    // The certificate reasons about latches outside the
                    // cone: not expressible in cone coordinates, so not
                    // cacheable.
                    return;
                };
                down.push(
                    lits.iter()
                        .map(|&(r, neg)| {
                            let v = (r + 1) as i64;
                            if neg {
                                -v
                            } else {
                                v
                            }
                        })
                        .collect::<Vec<i64>>(),
                );
                reduced_clauses.push(Clause::from_lits(
                    lits.iter().map(|&(r, neg)| Var::new(r as u32).lit(neg)),
                ));
            }
            let reduced_cert = Certificate {
                clauses: reduced_clauses,
            };
            if verify_certificate(&sub, rid, &[], &reduced_cert).is_err() {
                return;
            }
            CacheEntry {
                cone: key,
                property: result.name.clone(),
                verdict: "holds".into(),
                clauses: down,
                inputs: Vec::new(),
                depth: 0,
            }
        }
        CheckOutcome::Falsified(cex) => {
            let full = cex.trace.inputs();
            let reduced: Vec<Vec<bool>> = full
                .iter()
                .map(|step| map.inputs.iter().map(|&oi| step[oi]).collect())
                .collect();
            // The projected trace must still falsify the property on
            // the reduced system; otherwise the evidence leans on
            // out-of-cone inputs (it cannot) or is stale.
            let trace = complete_trace(&sub, reduced.clone());
            if !replay(&sub, &trace).is_ok_and(|r| r.violates_finally(rid)) {
                return;
            }
            CacheEntry {
                cone: key,
                property: result.name.clone(),
                verdict: "fails".into(),
                clauses: Vec::new(),
                inputs: reduced,
                depth: cex.depth as u64,
            }
        }
        CheckOutcome::Unknown(_) => return,
    };
    cache.upsert(entry);
}

#[cfg(test)]
mod tests {
    use super::*;
    use japrove_aig::Aig;
    use japrove_tsys::Word;

    /// Two independent counters with one true and one false property
    /// each; cones differ, so the cache can tell them apart.
    fn two_counter_sys() -> TransitionSystem {
        let mut aig = Aig::new();
        let mut props = Vec::new();
        for i in 0..2usize {
            let w = Word::latches(&mut aig, 3, 0);
            let n = w.increment(&mut aig);
            w.set_next(&mut aig, &n);
            props.push((format!("c{i}_ok"), w.lt_const(&mut aig, 8)));
            props.push((format!("c{i}_tight"), w.lt_const(&mut aig, 3)));
        }
        let mut sys = TransitionSystem::new("two", aig);
        for (name, good) in props {
            sys.add_property(name, good);
        }
        sys
    }

    #[test]
    fn schedule_names_round_trip() {
        for p in [
            SchedulePolicy::Steal,
            SchedulePolicy::Fifo,
            SchedulePolicy::Learned,
        ] {
            assert_eq!(p.name().parse::<SchedulePolicy>(), Ok(p));
        }
        let err = "lifo".parse::<SchedulePolicy>().unwrap_err();
        assert!(
            err.contains("steal") && err.contains("fifo") && err.contains("learned"),
            "{err}"
        );
    }

    #[test]
    fn order_units_is_stable_on_ties() {
        let unit = |i: usize, w: f64| PlanUnit {
            members: vec![PropertyId::new(i)],
            weight: w,
        };
        let mut units = vec![unit(0, 1.0), unit(1, 2.0), unit(2, 1.0), unit(3, 2.0)];
        order_units(&mut units);
        let order: Vec<usize> = units.iter().map(|u| u.members[0].index()).collect();
        // Descending weight, ties keep the incoming order.
        assert_eq!(order, vec![1, 3, 0, 2]);
    }

    #[test]
    fn all_four_kinds_agree_on_global_verdicts() {
        let sys = two_counter_sys();
        let reference = Session::separate(SeparateOptions::global()).run(&sys);
        let reports = [
            Session::parallel(SeparateOptions::global(), 3).run(&sys),
            Session::joint(JointOptions::new()).run(&sys),
            Session::clustered(ClusteredOptions::new(), 2).run(&sys),
        ];
        for report in &reports {
            assert_eq!(report.num_true(), reference.num_true(), "{}", report.method);
            assert_eq!(
                report.num_false(),
                reference.num_false(),
                "{}",
                report.method
            );
            assert_eq!(report.num_unsolved(), 0, "{}", report.method);
        }
    }

    #[test]
    fn verdict_cache_round_trips_through_a_session() {
        let sys = two_counter_sys();
        let mut first =
            Session::separate(SeparateOptions::global()).verdict_cache(VerdictCache::default());
        let cold = first.run(&sys);
        assert!(cold.results.iter().all(|r| !r.cached));
        let cache = first.take_verdict_cache().unwrap();
        assert_eq!(
            cache.len(),
            sys.num_properties(),
            "all four verdicts cached"
        );

        let mut second = Session::separate(SeparateOptions::global()).verdict_cache(cache);
        let warm = second.run(&sys);
        assert!(warm.results.iter().all(|r| r.cached), "{warm}");
        for (a, b) in cold.results.iter().zip(&warm.results) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.holds(), b.holds(), "{}", a.name);
            assert_eq!(a.fails(), b.fails(), "{}", a.name);
        }
    }

    #[test]
    fn local_scope_never_touches_the_cache() {
        let sys = two_counter_sys();
        let mut session =
            Session::separate(SeparateOptions::local()).verdict_cache(VerdictCache::default());
        let report = session.run(&sys);
        assert!(report.results.iter().all(|r| !r.cached));
        assert!(session.take_verdict_cache().unwrap().is_empty());
    }

    #[test]
    fn learned_plan_reorders_by_recorded_cost() {
        use japrove_obs::{FeatureStore, RunRecord};
        let sys = two_counter_sys();
        let design = format!("{:016x}", sys.structural_hash());
        // All four cones are the same size, so the proxy keeps
        // declaration order; the store says property 3 dwarfs the rest.
        let mut store = FeatureStore::default();
        for (name, time) in [
            ("c0_ok", 10),
            ("c0_tight", 10),
            ("c1_ok", 10),
            ("c1_tight", 9000),
        ] {
            store.upsert(RunRecord {
                design: design.clone(),
                property: name.into(),
                mode: "parallel".into(),
                verdict: "holds".into(),
                time_us: time,
                frames: 1,
                conflicts: time,
                decisions: time,
                propagations: 0,
                restarts: 0,
            });
        }
        let model = CostModel::from_store(&store, &sys);
        let proxy = Session::parallel(SeparateOptions::global(), 1).plan(&sys);
        let learned = Session::parallel(SeparateOptions::global(), 1)
            .schedule(SchedulePolicy::Learned)
            .cost_model(model)
            .plan(&sys);
        assert_eq!(learned.dispatch_order()[0], PropertyId::new(3));
        assert_ne!(proxy.dispatch_order(), learned.dispatch_order());
    }
}
