//! JA-verification: multi-property model checking with (possibly
//! wrong) assumptions.
//!
//! This crate implements the contribution of *"Efficient Verification
//! of Multi-Property Designs (The Benefit of Wrong Assumptions)"*
//! (Goldberg, Güdemann, Kroening, Mukherjee — DATE 2018):
//!
//! * [`ja_verify`] — **JA-verification** (§4): every property `Pi` is
//!   checked *locally*, i.e. assuming all Expected-To-Hold properties
//!   in non-final states (the projection `T^P` of §2-C). Properties
//!   failing locally form the **debugging set**: design behaviours
//!   that break first and must be fixed first;
//! * [`separate_verify`] — the same driver with global proofs (the
//!   baseline of Tables V/VI) or explicit option combinations
//!   (clause re-use on/off, lifting modes of §7-A);
//! * [`joint_verify`] — the Jnt-ver aggregate-property baseline (§9),
//!   optionally with a BMC front-end;
//! * [`parallel_ja_verify`] — the embarrassingly-parallel JA driver
//!   motivated in §11;
//! * [`clustered_verify`] / [`parallel_clustered_verify`] —
//!   affinity-based property clustering with cluster-level clause
//!   re-use (the structure-aware direction §12 contrasts with JA,
//!   promoted to a first-class mode; the greedy §12 baseline survives
//!   as [`grouped_verify`]);
//! * [`mine_verify`] — property mining composed with any of the
//!   drivers above: verify a design that carries *no* spec (cf.
//!   Goldberg's incomplete-specification line of work);
//! * [`ClauseDb`] — the clauseDB of §7-B re-using strengthening
//!   clauses across properties;
//! * [`validate_debugging_set`] / [`check_local_global_agreement`] /
//!   [`verify_reuse_soundness`] — independent validators for the
//!   paper's Propositions 2–6 and the §6-B re-use condition.
//!
//! # Examples
//!
//! ```
//! use japrove_aig::Aig;
//! use japrove_core::{ja_verify, SeparateOptions};
//! use japrove_tsys::{TransitionSystem, Word};
//!
//! // A counter with one deep failure shadowed by a shallow one.
//! let mut aig = Aig::new();
//! let c = Word::latches(&mut aig, 4, 0);
//! let n = c.increment(&mut aig);
//! c.set_next(&mut aig, &n);
//! let shallow = c.lt_const(&mut aig, 2);
//! let deep = c.lt_const(&mut aig, 9);
//! let mut sys = TransitionSystem::new("demo", aig);
//! let p_shallow = sys.add_property("lt2", shallow);
//! sys.add_property("lt9", deep);
//!
//! let report = ja_verify(&sys, &SeparateOptions::local());
//! // Only the shallow failure is in the debugging set; the deep
//! // failure holds locally (it cannot break first).
//! assert_eq!(report.debugging_set(), vec![p_shallow]);
//! ```

pub mod affinity;
mod cluster;
mod clustered;
mod costmodel;
mod debug_set;
mod enumerate;
mod joint;
mod mine;
mod parallel;
mod pipeline;
mod report;
mod reuse;
mod separate;
mod verdict_cache;

pub use affinity::{
    affinity_clusters, affinity_clusters_with, affinity_clusters_with_cost, AffinityGraph,
    AffinityMetric,
};
pub use cluster::{cluster_properties, grouped_verify, GroupingOptions};
pub use clustered::{clustered_verify, parallel_clustered_verify, ClusteredOptions};
pub use costmodel::CostModel;
pub use debug_set::{check_local_global_agreement, validate_debugging_set, verify_reuse_soundness};
pub use enumerate::{
    enumerate_report, CountEstimate, EnumOptions, EnumeratedCex, Projection, PropertyEnumeration,
};
pub use joint::{joint_verify, JointOptions};
pub use mine::{mine_verify, MinedVerification};
pub use parallel::{parallel_ja_verify, parallel_ja_verify_with, ParallelMode};
pub use pipeline::{Plan, PlanUnit, SchedulePolicy, Session};
pub use report::{MultiReport, PropertyResult, Scope};
pub use reuse::{ClauseDb, TwoLevelSource};
pub use separate::{
    check_one_property, ja_verify, local_assumptions, separate_verify, SeparateOptions,
};
pub use verdict_cache::{CacheEntry, VerdictCache};

#[cfg(test)]
mod tests {
    use super::*;
    use japrove_aig::Aig;
    use japrove_tsys::{Expectation, PropertyId, TransitionSystem, Word};

    /// The paper's Example 1 counter at a given width.
    fn paper_counter(bits: usize) -> (TransitionSystem, PropertyId, PropertyId) {
        let mut aig = Aig::new();
        let enable = aig.add_input();
        let req = aig.add_input();
        let rval = 1u64 << (bits - 1);
        let val = Word::latches(&mut aig, bits, 0);
        let at_rval = val.eq_const(&mut aig, rval);
        let reset = aig.and(at_rval, req); // buggy line
        let inc = val.increment(&mut aig);
        let zero = Word::constant(&mut aig, 0, bits);
        let updated = Word::mux(&mut aig, reset, &zero, &inc);
        let next = Word::mux(&mut aig, enable, &updated, &val);
        val.set_next(&mut aig, &next);
        let le_rval = val.le_const(&mut aig, rval);
        let mut sys = TransitionSystem::new("counter", aig);
        let p0 = sys.add_property("P0_req_high", req);
        let p1 = sys.add_property("P1_val_le_rval", le_rval);
        (sys, p0, p1)
    }

    #[test]
    fn paper_example_debugging_set_is_p0() {
        let (sys, p0, p1) = paper_counter(8);
        let report = ja_verify(&sys, &SeparateOptions::local());
        assert_eq!(report.debugging_set(), vec![p0]);
        let r1 = report.result(p1).expect("p1 present");
        assert!(r1.holds(), "P1 holds locally");
        let assumed = local_assumptions(&sys);
        validate_debugging_set(&sys, &report, &assumed).expect("guarantees");
    }

    #[test]
    fn joint_finds_both_failures() {
        let (sys, p0, p1) = paper_counter(4);
        let report = joint_verify(&sys, &JointOptions::new());
        assert!(report.result(p0).expect("p0").fails());
        assert!(report.result(p1).expect("p1").fails());
        assert_eq!(report.num_false(), 2);
    }

    #[test]
    fn joint_with_bmc_frontend_agrees() {
        let (sys, p0, p1) = paper_counter(4);
        let report = joint_verify(&sys, &JointOptions::new().bmc_depth(16));
        assert!(report.result(p0).expect("p0").fails());
        assert!(report.result(p1).expect("p1").fails());
    }

    #[test]
    fn etf_properties_are_not_assumed() {
        // P0 marked Expected-To-Fail: proving P1 locally must then NOT
        // assume P0, so P1's deep failure is found.
        let mut aig = Aig::new();
        let enable = aig.add_input();
        let req = aig.add_input();
        let rval = 1u64 << 3;
        let val = Word::latches(&mut aig, 4, 0);
        let at_rval = val.eq_const(&mut aig, rval);
        let reset = aig.and(at_rval, req);
        let inc = val.increment(&mut aig);
        let zero = Word::constant(&mut aig, 0, 4);
        let updated = Word::mux(&mut aig, reset, &zero, &inc);
        let next = Word::mux(&mut aig, enable, &updated, &val);
        val.set_next(&mut aig, &next);
        let le_rval = val.le_const(&mut aig, rval);
        let mut sys = TransitionSystem::new("counter_etf", aig);
        let p0 = sys.add_property_with("P0_req_high", req, Expectation::Fail);
        let p1 = sys.add_property("P1_val_le_rval", le_rval);
        assert_eq!(local_assumptions(&sys), vec![p1]);
        let report = ja_verify(&sys, &SeparateOptions::local());
        // Without the P0 assumption, P1 fails (its own failure is real).
        assert!(report.result(p1).expect("p1").fails());
        assert!(report.result(p0).expect("p0").fails());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let (sys, _, _) = paper_counter(6);
        let opts = SeparateOptions::local();
        let seq = ja_verify(&sys, &opts);
        let par = parallel_ja_verify(&sys, 3, &opts);
        for (a, b) in seq.results.iter().zip(&par.results) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.holds(), b.holds(), "{}", a.name);
            assert_eq!(a.fails(), b.fails(), "{}", a.name);
        }
    }

    #[test]
    fn parallel_honors_global_scope() {
        // Regression: parallel_ja_verify used to overwrite the scope
        // with Local, so a requested parallel-global run silently
        // proved under assumptions. Verdicts and recorded scope must
        // match the sequential separate-global driver.
        let (sys, _, _) = paper_counter(6);
        let opts = SeparateOptions::global();
        let seq = separate_verify(&sys, &opts);
        let par = parallel_ja_verify(&sys, 3, &opts);
        assert!(par.method.contains("separate-global"), "{}", par.method);
        for (a, b) in seq.results.iter().zip(&par.results) {
            assert_eq!(a.id, b.id);
            assert_eq!(b.scope, Scope::Global, "{}", b.name);
            assert_eq!(a.holds(), b.holds(), "{}", a.name);
            assert_eq!(a.fails(), b.fails(), "{}", a.name);
        }
        // The decisive difference to a local run: P1's deep failure is
        // real globally, while JA proves it locally.
        let local = parallel_ja_verify(&sys, 3, &SeparateOptions::local());
        let p1 = PropertyId::new(1);
        assert!(par.result(p1).expect("p1").fails());
        assert!(local.result(p1).expect("p1").holds());
    }

    #[test]
    fn joint_bmc_front_end_running_dry_falls_through_to_ic3() {
        // Regression: a BMC front-end that exhausted its budget used to
        // mark every remaining property Unknown without ever running
        // IC3. With a 1-conflict allowance the front-end runs dry on
        // the deep failure; IC3 must still decide both properties.
        use japrove_ic3::{Bmc, BmcResult};
        use japrove_sat::Budget;
        let (sys, p0, p1) = paper_counter(4);
        // The front-end really does run dry under this allowance (so
        // the old code would have reported p1 as Unknown).
        let dry = Bmc::new(&sys).run(&[p1], 8, Budget::conflicts(1));
        assert!(matches!(dry, BmcResult::Unknown(_)), "{dry:?}");
        let report = joint_verify(&sys, &JointOptions::new().bmc_depth(8).bmc_conflicts(1));
        assert_eq!(report.num_unsolved(), 0, "{report}");
        assert!(report.result(p0).expect("p0").fails());
        assert!(report.result(p1).expect("p1").fails());
        let cex = report
            .result(p1)
            .and_then(|r| r.counterexample())
            .expect("p1 cex");
        assert_eq!(cex.depth, 9);
    }

    #[test]
    fn spurious_aggregate_counterexamples_degrade_to_unknown() {
        use japrove_ic3::Counterexample;
        use japrove_tsys::{complete_trace, Trace};
        // A counter whose property never fails: a trace of it falsifies
        // nothing, and a malformed trace does not replay. Both cases
        // must yield an empty refutation set (the driver then reports
        // Unknown(SpuriousCex) instead of panicking).
        let mut aig = Aig::new();
        let c = Word::latches(&mut aig, 3, 0);
        let n = c.increment(&mut aig);
        c.set_next(&mut aig, &n);
        let ok = c.lt_const(&mut aig, 8);
        let mut sys = TransitionSystem::new("cnt", aig);
        let p = sys.add_property("always", ok);
        let good_trace = complete_trace(&sys, vec![vec![], vec![]]);
        let harmless = Counterexample {
            trace: good_trace,
            depth: 1,
        };
        assert!(crate::joint::falsified_by_replay(&sys, &[p], &harmless).is_empty());
        let unreplayable = Counterexample {
            trace: Trace::new(vec![vec![true]], vec![vec![]]),
            depth: 0,
        };
        assert!(crate::joint::falsified_by_replay(&sys, &[p], &unreplayable).is_empty());
    }

    #[test]
    fn per_property_backend_overrides_are_applied() {
        use japrove_sat::BackendChoice;
        let (sys, p0, p1) = paper_counter(5);
        let plain = ja_verify(&sys, &SeparateOptions::local());
        let opts = SeparateOptions::local()
            .backend(BackendChoice::Cdcl)
            .backend_for(p1, BackendChoice::ChronoCdcl);
        assert_eq!(opts.backend_of(p0), BackendChoice::Cdcl);
        assert_eq!(opts.backend_of(p1), BackendChoice::ChronoCdcl);
        let mixed = ja_verify(&sys, &opts);
        for (a, b) in plain.results.iter().zip(&mixed.results) {
            assert_eq!(a.holds(), b.holds(), "{}", a.name);
            assert_eq!(a.fails(), b.fails(), "{}", a.name);
        }
        assert_eq!(mixed.result(p0).expect("p0").backend, BackendChoice::Cdcl);
        assert_eq!(
            mixed.result(p1).expect("p1").backend,
            BackendChoice::ChronoCdcl
        );
        // Whole-run backend switch agrees too (joint driver included).
        let chrono = joint_verify(
            &sys,
            &JointOptions::new().backend(BackendChoice::ChronoCdcl),
        );
        assert_eq!(chrono.num_false(), 2);
        assert!(chrono
            .results
            .iter()
            .all(|r| r.backend == BackendChoice::ChronoCdcl));
    }

    #[test]
    fn reuse_flag_changes_method_label_not_verdicts() {
        let (sys, _, _) = paper_counter(5);
        let with = separate_verify(&sys, &SeparateOptions::local().reuse(true));
        let without = separate_verify(&sys, &SeparateOptions::local().reuse(false));
        assert_ne!(with.method, without.method);
        for (a, b) in with.results.iter().zip(&without.results) {
            assert_eq!(a.holds(), b.holds());
            assert_eq!(a.fails(), b.fails());
        }
    }

    #[test]
    fn property_order_is_respected() {
        let (sys, p0, p1) = paper_counter(4);
        let report = ja_verify(&sys, &SeparateOptions::local().order(vec![p1, p0]));
        assert_eq!(report.results[0].id, p1);
        assert_eq!(report.results[1].id, p0);
    }

    #[test]
    fn total_timeout_marks_remaining_unsolved() {
        use std::time::Duration;
        let (sys, _, _) = paper_counter(6);
        let report = ja_verify(
            &sys,
            &SeparateOptions::local().total_timeout(Duration::ZERO),
        );
        assert_eq!(report.num_unsolved(), 2);
    }
}
