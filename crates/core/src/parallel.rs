//! Parallel separate verification (§11).
//!
//! Properties are independent jobs under separate verification, so
//! they can be farmed out to worker threads; the shared [`ClauseDb`]
//! provides the (optional) exchange of strengthening clauses. The
//! paper argues that the larger the property set, the *less*
//! information exchange matters — local proofs get easier with more
//! constraints — which is what makes the parallelization embarrassing.
//!
//! The driver honors the full [`SeparateOptions`]: with
//! [`Scope::Local`](crate::Scope::Local) it is the parallel JA-verification of §11, with
//! [`Scope::Global`](crate::Scope::Global) a parallel version of the separate-global
//! baseline, and the per-property backend overrides let a portfolio
//! run different SAT backends side by side.
//!
//! # Scheduling and incrementality
//!
//! The default mode ([`ParallelMode::Incremental`]) encodes the design
//! **once**, shares the encoding across workers, and gives every
//! worker a warm solver pool so consecutive properties skip the
//! per-property encode-and-reload cost entirely. Jobs are ordered
//! hardest-first (by the size of each property's sequential
//! cone of influence, from the clustering module) and dealt into
//! per-worker deques; a worker that runs dry **steals** the back half
//! of another worker's deque, so one long proof cannot strand the
//! queue behind it. [`ParallelMode::ColdFifo`] preserves the pre-
//! incremental driver — fresh encoding and solvers per property,
//! declaration-order FIFO dispatch — as the measurable baseline for
//! `parallel_scaling`.

use crate::pipeline::SchedulePolicy;
use crate::{MultiReport, SeparateOptions, Session};
use japrove_tsys::TransitionSystem;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Scheduling/warm-start strategy of [`parallel_ja_verify_with`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ParallelMode {
    /// Shared encoding, warm per-worker solvers, hardest-first
    /// work-stealing dispatch. The default.
    #[default]
    Incremental,
    /// The pre-incremental reference driver: every property re-encodes
    /// the design into fresh solvers and jobs are handed out in
    /// declaration order by a ticket counter. Kept for benchmarking
    /// (`parallel_scaling` reports the speedup of the default mode
    /// over this one) and as a bisection aid.
    ColdFifo,
}

/// Hardest-first work-stealing dispatcher over job slots `0..n`.
///
/// Jobs are dealt round-robin (in priority order) into one deque per
/// worker; an idle worker steals the back half — the *easiest* pending
/// work — of the first non-empty victim deque. Moves happen with both
/// deques locked (in index order, so concurrent steals cannot
/// deadlock), so every job is visible in exactly one deque at any
/// moment and a popped job is exclusively owned and runs exactly once.
/// A count of still-queued jobs prevents a worker that scans during
/// someone else's steal from mistaking the transfer for exhaustion.
pub(crate) struct Dispatcher {
    queues: Vec<Mutex<VecDeque<usize>>>,
    /// Jobs dealt but not yet popped for execution. `Relaxed` is
    /// enough: the counter only decreases, and a stale (higher) read
    /// merely causes one more rescan — never a premature exit.
    queued: AtomicUsize,
}

impl Dispatcher {
    /// Deals `jobs` (already priority-sorted) across `workers` deques.
    pub(crate) fn new(jobs: &[usize], workers: usize) -> Self {
        let mut queues: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
        for (i, &job) in jobs.iter().enumerate() {
            queues[i % workers].push_back(job);
        }
        Dispatcher {
            queues: queues.into_iter().map(Mutex::new).collect(),
            queued: AtomicUsize::new(jobs.len()),
        }
    }

    fn lock(&self, i: usize) -> MutexGuard<'_, VecDeque<usize>> {
        self.queues[i].lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The next job for worker `me`: own deque front first (its hardest
    /// remaining job), then stolen work. `None` once no job is queued
    /// anywhere — any still-unfinished job is then being executed by
    /// the worker that popped it.
    pub(crate) fn pop(&self, me: usize) -> Option<usize> {
        loop {
            if let Some(j) = self.lock(me).pop_front() {
                self.queued.fetch_sub(1, Ordering::Relaxed);
                return Some(j);
            }
            if self.steal_into(me) {
                continue;
            }
            if self.queued.load(Ordering::Relaxed) == 0 {
                return None;
            }
            // Jobs exist but every deque looked empty: a concurrent
            // steal is mid-transfer. Yield and rescan.
            std::thread::yield_now();
        }
    }

    /// Moves the back half of the first non-empty victim deque into
    /// `me`'s deque; `false` if every other deque was empty.
    fn steal_into(&self, me: usize) -> bool {
        let n = self.queues.len();
        for off in 1..n {
            let victim = (me + off) % n;
            // Both locks in index order: deadlock-free, and the jobs
            // are never invisible between deques.
            let (mut mine, mut theirs) = if me < victim {
                let mine = self.lock(me);
                (mine, self.lock(victim))
            } else {
                let theirs = self.lock(victim);
                (self.lock(me), theirs)
            };
            let take = theirs.len().div_ceil(2);
            if take == 0 {
                continue;
            }
            // pop_back yields easiest-first; reverse so the hardest
            // stolen job sits at our front, keeping the hardest-first
            // discipline within the stolen batch.
            let stolen: Vec<usize> = (0..take).filter_map(|_| theirs.pop_back()).collect();
            mine.extend(stolen.into_iter().rev());
            return true;
        }
        false
    }
}

/// Runs separate verification with `threads` worker threads.
///
/// Behaviourally equivalent to [`crate::separate_verify`] with the
/// same options (same verdicts) — in particular [`Scope::Global`](crate::Scope::Global) is
/// honored, not silently downgraded to local proofs; clause re-use
/// becomes best-effort: each property sees the clauses published
/// before its own run started, plus any it picks up from the shared
/// store while running.
///
/// # Panics
///
/// Panics if `threads == 0`.
///
/// # Examples
///
/// ```
/// use japrove_aig::Aig;
/// use japrove_core::{parallel_ja_verify, SeparateOptions};
/// use japrove_tsys::{TransitionSystem, Word};
///
/// let mut aig = Aig::new();
/// let c = Word::latches(&mut aig, 4, 0);
/// let n = c.increment(&mut aig);
/// c.set_next(&mut aig, &n);
/// let ok = c.lt_const(&mut aig, 16);
/// let mut sys = TransitionSystem::new("cnt", aig);
/// sys.add_property("in_range", ok);
/// let report = parallel_ja_verify(&sys, 2, &SeparateOptions::local());
/// assert_eq!(report.num_true(), 1);
/// ```
pub fn parallel_ja_verify(
    sys: &TransitionSystem,
    threads: usize,
    opts: &SeparateOptions,
) -> MultiReport {
    parallel_ja_verify_with(sys, threads, opts, ParallelMode::Incremental)
}

/// [`parallel_ja_verify`] with an explicit [`ParallelMode`]. A thin
/// wrapper over the unified pipeline: [`ParallelMode::Incremental`]
/// maps to [`SchedulePolicy::Steal`], [`ParallelMode::ColdFifo`] to
/// [`SchedulePolicy::Fifo`].
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn parallel_ja_verify_with(
    sys: &TransitionSystem,
    threads: usize,
    opts: &SeparateOptions,
    mode: ParallelMode,
) -> MultiReport {
    let schedule = match mode {
        ParallelMode::Incremental => SchedulePolicy::Steal,
        ParallelMode::ColdFifo => SchedulePolicy::Fifo,
    };
    Session::parallel(opts.clone(), threads)
        .schedule(schedule)
        .run(sys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use japrove_aig::Aig;
    use japrove_tsys::Word;

    fn many_counters(n: usize) -> TransitionSystem {
        let mut aig = Aig::new();
        let mut goods = Vec::new();
        for i in 0..n {
            let w = Word::latches(&mut aig, 3 + (i % 3), 0);
            let next = w.increment(&mut aig);
            w.set_next(&mut aig, &next);
            // Alternate true and false properties of varying depth.
            let bound = if i % 3 == 0 {
                1 << (3 + i % 3)
            } else {
                3 + i as u64 % 5
            };
            goods.push(w.lt_const(&mut aig, bound));
        }
        let mut sys = TransitionSystem::new("many", aig);
        for (i, g) in goods.into_iter().enumerate() {
            sys.add_property(format!("p{i}"), g);
        }
        sys
    }

    #[test]
    fn dispatcher_hands_out_every_job_exactly_once() {
        for workers in [1usize, 2, 5] {
            let jobs: Vec<usize> = (0..23).collect();
            let dispatcher = Dispatcher::new(&jobs, workers);
            let seen = Mutex::new(Vec::new());
            std::thread::scope(|s| {
                for w in 0..workers {
                    let dispatcher = &dispatcher;
                    let seen = &seen;
                    s.spawn(move || {
                        while let Some(j) = dispatcher.pop(w) {
                            seen.lock().unwrap_or_else(|p| p.into_inner()).push(j);
                        }
                    });
                }
            });
            let mut seen = seen.into_inner().unwrap();
            seen.sort_unstable();
            assert_eq!(seen, jobs, "{workers} workers");
        }
    }

    #[test]
    fn stealing_drains_a_stacked_queue() {
        // All jobs dealt to worker 0's deque; worker 1 must still get
        // work via stealing.
        let dispatcher = Dispatcher::new(&(0..10).collect::<Vec<_>>(), 1);
        // Manually extend to a second, empty queue.
        let dispatcher = Dispatcher {
            queues: dispatcher
                .queues
                .into_iter()
                .chain([Mutex::new(VecDeque::new())])
                .collect(),
            queued: dispatcher.queued,
        };
        let mut got = Vec::new();
        while let Some(j) = dispatcher.pop(1) {
            got.push(j);
        }
        assert_eq!(got.len(), 10, "thief alone drains the victim queue");
    }

    #[test]
    fn modes_agree_on_verdicts() {
        let sys = many_counters(12);
        let a = parallel_ja_verify_with(
            &sys,
            3,
            &SeparateOptions::local(),
            ParallelMode::Incremental,
        );
        let b = parallel_ja_verify_with(&sys, 3, &SeparateOptions::local(), ParallelMode::ColdFifo);
        assert!(b.method.contains("cold-fifo"), "{}", b.method);
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.holds(), y.holds(), "{}", x.name);
            assert_eq!(x.fails(), y.fails(), "{}", x.name);
        }
    }

    #[test]
    fn zero_properties_yield_an_empty_report() {
        let mut aig = Aig::new();
        let l = aig.add_latch(false);
        aig.set_next(l, l);
        let sys = TransitionSystem::new("empty", aig);
        let report = parallel_ja_verify(&sys, 4, &SeparateOptions::local());
        assert!(report.results.is_empty());
    }
}
