//! Parallel separate verification (§11).
//!
//! Properties are independent jobs under separate verification, so
//! they can be farmed out to worker threads; the shared [`ClauseDb`]
//! provides the (optional) exchange of strengthening clauses. The
//! paper argues that the larger the property set, the *less*
//! information exchange matters — local proofs get easier with more
//! constraints — which is what makes the parallelization embarrassing.
//!
//! The driver honors the full [`SeparateOptions`]: with
//! [`Scope::Local`] it is the parallel JA-verification of §11, with
//! [`Scope::Global`] a parallel version of the separate-global
//! baseline, and the per-property backend overrides let a portfolio
//! run different SAT backends side by side.
//!
//! # Scheduling and incrementality
//!
//! The default mode ([`ParallelMode::Incremental`]) encodes the design
//! **once**, shares the encoding across workers, and gives every
//! worker a warm solver pool so consecutive properties skip the
//! per-property encode-and-reload cost entirely. Jobs are ordered
//! hardest-first (by the size of each property's sequential
//! cone of influence, from the clustering module) and dealt into
//! per-worker deques; a worker that runs dry **steals** the back half
//! of another worker's deque, so one long proof cannot strand the
//! queue behind it. [`ParallelMode::ColdFifo`] preserves the pre-
//! incremental driver — fresh encoding and solvers per property,
//! declaration-order FIFO dispatch — as the measurable baseline for
//! `parallel_scaling`.

use crate::cluster::latch_supports;
use crate::separate::{check_one, local_assumptions, CtxPool};
use crate::ClauseDb;
use crate::{MultiReport, PropertyResult, Scope, SeparateOptions};
use japrove_ic3::{CheckOutcome, TsEncoding};
use japrove_obs::Phase;
use japrove_tsys::{PropertyId, TransitionSystem};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Scheduling/warm-start strategy of [`parallel_ja_verify_with`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ParallelMode {
    /// Shared encoding, warm per-worker solvers, hardest-first
    /// work-stealing dispatch. The default.
    #[default]
    Incremental,
    /// The pre-incremental reference driver: every property re-encodes
    /// the design into fresh solvers and jobs are handed out in
    /// declaration order by a ticket counter. Kept for benchmarking
    /// (`parallel_scaling` reports the speedup of the default mode
    /// over this one) and as a bisection aid.
    ColdFifo,
}

/// Hardest-first work-stealing dispatcher over job slots `0..n`.
///
/// Jobs are dealt round-robin (in priority order) into one deque per
/// worker; an idle worker steals the back half — the *easiest* pending
/// work — of the first non-empty victim deque. Moves happen with both
/// deques locked (in index order, so concurrent steals cannot
/// deadlock), so every job is visible in exactly one deque at any
/// moment and a popped job is exclusively owned and runs exactly once.
/// A count of still-queued jobs prevents a worker that scans during
/// someone else's steal from mistaking the transfer for exhaustion.
pub(crate) struct Dispatcher {
    queues: Vec<Mutex<VecDeque<usize>>>,
    /// Jobs dealt but not yet popped for execution. `Relaxed` is
    /// enough: the counter only decreases, and a stale (higher) read
    /// merely causes one more rescan — never a premature exit.
    queued: AtomicUsize,
}

impl Dispatcher {
    /// Deals `jobs` (already priority-sorted) across `workers` deques.
    pub(crate) fn new(jobs: &[usize], workers: usize) -> Self {
        let mut queues: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
        for (i, &job) in jobs.iter().enumerate() {
            queues[i % workers].push_back(job);
        }
        Dispatcher {
            queues: queues.into_iter().map(Mutex::new).collect(),
            queued: AtomicUsize::new(jobs.len()),
        }
    }

    fn lock(&self, i: usize) -> MutexGuard<'_, VecDeque<usize>> {
        self.queues[i].lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The next job for worker `me`: own deque front first (its hardest
    /// remaining job), then stolen work. `None` once no job is queued
    /// anywhere — any still-unfinished job is then being executed by
    /// the worker that popped it.
    pub(crate) fn pop(&self, me: usize) -> Option<usize> {
        loop {
            if let Some(j) = self.lock(me).pop_front() {
                self.queued.fetch_sub(1, Ordering::Relaxed);
                return Some(j);
            }
            if self.steal_into(me) {
                continue;
            }
            if self.queued.load(Ordering::Relaxed) == 0 {
                return None;
            }
            // Jobs exist but every deque looked empty: a concurrent
            // steal is mid-transfer. Yield and rescan.
            std::thread::yield_now();
        }
    }

    /// Moves the back half of the first non-empty victim deque into
    /// `me`'s deque; `false` if every other deque was empty.
    fn steal_into(&self, me: usize) -> bool {
        let n = self.queues.len();
        for off in 1..n {
            let victim = (me + off) % n;
            // Both locks in index order: deadlock-free, and the jobs
            // are never invisible between deques.
            let (mut mine, mut theirs) = if me < victim {
                let mine = self.lock(me);
                (mine, self.lock(victim))
            } else {
                let theirs = self.lock(victim);
                (self.lock(me), theirs)
            };
            let take = theirs.len().div_ceil(2);
            if take == 0 {
                continue;
            }
            // pop_back yields easiest-first; reverse so the hardest
            // stolen job sits at our front, keeping the hardest-first
            // discipline within the stolen batch.
            let stolen: Vec<usize> = (0..take).filter_map(|_| theirs.pop_back()).collect();
            mine.extend(stolen.into_iter().rev());
            return true;
        }
        false
    }
}

/// Runs separate verification with `threads` worker threads.
///
/// Behaviourally equivalent to [`crate::separate_verify`] with the
/// same options (same verdicts) — in particular [`Scope::Global`] is
/// honored, not silently downgraded to local proofs; clause re-use
/// becomes best-effort: each property sees the clauses published
/// before its own run started, plus any it picks up from the shared
/// store while running.
///
/// # Panics
///
/// Panics if `threads == 0`.
///
/// # Examples
///
/// ```
/// use japrove_aig::Aig;
/// use japrove_core::{parallel_ja_verify, SeparateOptions};
/// use japrove_tsys::{TransitionSystem, Word};
///
/// let mut aig = Aig::new();
/// let c = Word::latches(&mut aig, 4, 0);
/// let n = c.increment(&mut aig);
/// c.set_next(&mut aig, &n);
/// let ok = c.lt_const(&mut aig, 16);
/// let mut sys = TransitionSystem::new("cnt", aig);
/// sys.add_property("in_range", ok);
/// let report = parallel_ja_verify(&sys, 2, &SeparateOptions::local());
/// assert_eq!(report.num_true(), 1);
/// ```
pub fn parallel_ja_verify(
    sys: &TransitionSystem,
    threads: usize,
    opts: &SeparateOptions,
) -> MultiReport {
    parallel_ja_verify_with(sys, threads, opts, ParallelMode::Incremental)
}

/// [`parallel_ja_verify`] with an explicit [`ParallelMode`].
pub fn parallel_ja_verify_with(
    sys: &TransitionSystem,
    threads: usize,
    opts: &SeparateOptions,
    mode: ParallelMode,
) -> MultiReport {
    assert!(threads > 0, "need at least one worker thread");
    let started = Instant::now();
    let deadline = opts.total.map(|d| Instant::now() + d);
    let assumed = match opts.scope {
        Scope::Local => local_assumptions(sys),
        Scope::Global => Vec::new(),
    };
    let order: Vec<PropertyId> = opts
        .order
        .clone()
        .unwrap_or_else(|| sys.property_ids().collect());
    let db = ClauseDb::new();
    // No `.max(1)` guard: with zero properties there is nothing to do,
    // so spawning zero workers is exactly right.
    let workers = threads.min(order.len());
    let mut slots: Vec<Option<PropertyResult>> = vec![None; order.len()];

    let finished = match mode {
        ParallelMode::Incremental => {
            run_incremental(sys, workers, opts, &assumed, &order, &db, deadline)
        }
        ParallelMode::ColdFifo => {
            run_cold_fifo(sys, workers, opts, &assumed, &order, &db, deadline)
        }
    };
    for (i, result) in finished {
        slots[i] = Some(result);
    }

    let scope_label = match opts.scope {
        Scope::Local => "parallel-ja",
        Scope::Global => "parallel-separate-global",
    };
    let mode_label = match mode {
        ParallelMode::Incremental => "",
        ParallelMode::ColdFifo => " [cold-fifo]",
    };
    let mut report = MultiReport::new(sys.name(), format!("{scope_label} x{threads}{mode_label}"));
    report.results = slots
        .into_iter()
        .map(|s| s.expect("every property processed"))
        .collect();
    report.total_time = started.elapsed();
    report
}

/// The incremental driver: one shared encoding, warm per-worker solver
/// pools, hardest-first work-stealing dispatch.
fn run_incremental(
    sys: &TransitionSystem,
    workers: usize,
    opts: &SeparateOptions,
    assumed: &[PropertyId],
    order: &[PropertyId],
    db: &ClauseDb,
    deadline: Option<Instant>,
) -> Vec<(usize, PropertyResult)> {
    if workers == 0 {
        return Vec::new();
    }
    // Encode once; every worker's pool shares this.
    let enc = {
        let _enc_span = opts.journal.span(Phase::Encode);
        Arc::new(TsEncoding::new(sys))
    };
    // Hardest first: larger sequential cones tend to need deeper
    // proofs, so starting them early keeps the tail short. Ties keep
    // declaration order for determinism.
    let supports = latch_supports(sys);
    let mut jobs: Vec<usize> = (0..order.len()).collect();
    jobs.sort_by_key(|&pos| std::cmp::Reverse(supports[order[pos].index()].len()));
    let dispatcher = Dispatcher::new(&jobs, workers);

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..workers {
            let dispatcher = &dispatcher;
            let enc = Arc::clone(&enc);
            let db = db.clone();
            handles.push(scope.spawn(move || {
                let mut pool = CtxPool::with_encoding(enc);
                pool.set_journal(opts.journal.clone());
                let mut mine = Vec::new();
                while let Some(i) = dispatcher.pop(w) {
                    let result =
                        check_one(sys, order[i], assumed, &db, opts, deadline, &mut pool, true);
                    publish_if_proved(&db, opts, &result);
                    mine.push((i, result));
                }
                mine
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
}

/// The pre-incremental reference driver: FIFO ticket dispatch, fresh
/// encoding and solvers per property.
fn run_cold_fifo(
    sys: &TransitionSystem,
    workers: usize,
    opts: &SeparateOptions,
    assumed: &[PropertyId],
    order: &[PropertyId],
    db: &ClauseDb,
    deadline: Option<Instant>,
) -> Vec<(usize, PropertyResult)> {
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..workers {
            let next = &next;
            let db = db.clone();
            handles.push(scope.spawn(move || {
                let mut mine = Vec::new();
                loop {
                    // A pure ticket counter: each worker only consumes
                    // the index it drew, and no other memory is
                    // published through the counter, so `Relaxed` is
                    // sound — `fetch_add` is still atomic, every index
                    // is handed out exactly once.
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= order.len() {
                        return mine;
                    }
                    // A cold pool per property: re-encode, fresh
                    // solvers, no mid-run refresh — faithful to the
                    // pre-incremental driver this mode benchmarks.
                    let mut pool = CtxPool::new(sys);
                    pool.set_journal(opts.journal.clone());
                    let result = check_one(
                        sys, order[i], assumed, &db, opts, deadline, &mut pool, false,
                    );
                    publish_if_proved(&db, opts, &result);
                    mine.push((i, result));
                }
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
}

fn publish_if_proved(db: &ClauseDb, opts: &SeparateOptions, result: &PropertyResult) {
    if opts.reuse {
        if let CheckOutcome::Proved(cert) = &result.outcome {
            db.publish(cert.clauses.iter().cloned());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use japrove_aig::Aig;
    use japrove_tsys::Word;

    fn many_counters(n: usize) -> TransitionSystem {
        let mut aig = Aig::new();
        let mut goods = Vec::new();
        for i in 0..n {
            let w = Word::latches(&mut aig, 3 + (i % 3), 0);
            let next = w.increment(&mut aig);
            w.set_next(&mut aig, &next);
            // Alternate true and false properties of varying depth.
            let bound = if i % 3 == 0 {
                1 << (3 + i % 3)
            } else {
                3 + i as u64 % 5
            };
            goods.push(w.lt_const(&mut aig, bound));
        }
        let mut sys = TransitionSystem::new("many", aig);
        for (i, g) in goods.into_iter().enumerate() {
            sys.add_property(format!("p{i}"), g);
        }
        sys
    }

    #[test]
    fn dispatcher_hands_out_every_job_exactly_once() {
        for workers in [1usize, 2, 5] {
            let jobs: Vec<usize> = (0..23).collect();
            let dispatcher = Dispatcher::new(&jobs, workers);
            let seen = Mutex::new(Vec::new());
            std::thread::scope(|s| {
                for w in 0..workers {
                    let dispatcher = &dispatcher;
                    let seen = &seen;
                    s.spawn(move || {
                        while let Some(j) = dispatcher.pop(w) {
                            seen.lock().unwrap().push(j);
                        }
                    });
                }
            });
            let mut seen = seen.into_inner().unwrap();
            seen.sort_unstable();
            assert_eq!(seen, jobs, "{workers} workers");
        }
    }

    #[test]
    fn stealing_drains_a_stacked_queue() {
        // All jobs dealt to worker 0's deque; worker 1 must still get
        // work via stealing.
        let dispatcher = Dispatcher::new(&(0..10).collect::<Vec<_>>(), 1);
        // Manually extend to a second, empty queue.
        let dispatcher = Dispatcher {
            queues: dispatcher
                .queues
                .into_iter()
                .chain([Mutex::new(VecDeque::new())])
                .collect(),
            queued: dispatcher.queued,
        };
        let mut got = Vec::new();
        while let Some(j) = dispatcher.pop(1) {
            got.push(j);
        }
        assert_eq!(got.len(), 10, "thief alone drains the victim queue");
    }

    #[test]
    fn modes_agree_on_verdicts() {
        let sys = many_counters(12);
        let a = parallel_ja_verify_with(
            &sys,
            3,
            &SeparateOptions::local(),
            ParallelMode::Incremental,
        );
        let b = parallel_ja_verify_with(&sys, 3, &SeparateOptions::local(), ParallelMode::ColdFifo);
        assert!(b.method.contains("cold-fifo"), "{}", b.method);
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.holds(), y.holds(), "{}", x.name);
            assert_eq!(x.fails(), y.fails(), "{}", x.name);
        }
    }

    #[test]
    fn zero_properties_yield_an_empty_report() {
        let mut aig = Aig::new();
        let l = aig.add_latch(false);
        aig.set_next(l, l);
        let sys = TransitionSystem::new("empty", aig);
        let report = parallel_ja_verify(&sys, 4, &SeparateOptions::local());
        assert!(report.results.is_empty());
    }
}
