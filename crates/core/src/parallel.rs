//! Parallel separate verification (§11).
//!
//! Properties are independent jobs under separate verification, so
//! they can be farmed out to worker threads; the shared [`ClauseDb`]
//! provides the (optional) exchange of strengthening clauses. The
//! paper argues that the larger the property set, the *less*
//! information exchange matters — local proofs get easier with more
//! constraints — which is what makes the parallelization embarrassing.
//!
//! The driver honors the full [`SeparateOptions`]: with
//! [`Scope::Local`] it is the parallel JA-verification of §11, with
//! [`Scope::Global`] a parallel version of the separate-global
//! baseline, and the per-property backend overrides let a portfolio
//! run different SAT backends side by side.

use crate::separate::{check_one, local_assumptions};
use crate::ClauseDb;
use crate::{MultiReport, Scope, SeparateOptions};
use japrove_ic3::CheckOutcome;
use japrove_tsys::{PropertyId, TransitionSystem};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Runs separate verification with `threads` worker threads.
///
/// Behaviourally equivalent to [`crate::separate_verify`] with the
/// same options (same verdicts) — in particular [`Scope::Global`] is
/// honored, not silently downgraded to local proofs; clause re-use
/// becomes best-effort: each property sees the clauses published
/// before its own run started.
///
/// # Panics
///
/// Panics if `threads == 0`.
///
/// # Examples
///
/// ```
/// use japrove_aig::Aig;
/// use japrove_core::{parallel_ja_verify, SeparateOptions};
/// use japrove_tsys::{TransitionSystem, Word};
///
/// let mut aig = Aig::new();
/// let c = Word::latches(&mut aig, 4, 0);
/// let n = c.increment(&mut aig);
/// c.set_next(&mut aig, &n);
/// let ok = c.lt_const(&mut aig, 16);
/// let mut sys = TransitionSystem::new("cnt", aig);
/// sys.add_property("in_range", ok);
/// let report = parallel_ja_verify(&sys, 2, &SeparateOptions::local());
/// assert_eq!(report.num_true(), 1);
/// ```
pub fn parallel_ja_verify(
    sys: &TransitionSystem,
    threads: usize,
    opts: &SeparateOptions,
) -> MultiReport {
    assert!(threads > 0, "need at least one worker thread");
    let started = Instant::now();
    let deadline = opts.total.map(|d| Instant::now() + d);
    let assumed = match opts.scope {
        Scope::Local => local_assumptions(sys),
        Scope::Global => Vec::new(),
    };
    let order: Vec<PropertyId> = opts
        .order
        .clone()
        .unwrap_or_else(|| sys.property_ids().collect());
    let db = ClauseDb::new();
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<crate::PropertyResult>> = vec![None; order.len()];

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads.min(order.len().max(1)) {
            let order = &order;
            let assumed = &assumed;
            let next = &next;
            let db = db.clone();
            handles.push(scope.spawn(move || {
                let mut mine = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= order.len() {
                        return mine;
                    }
                    let result = check_one(sys, order[i], assumed, &db, opts, deadline);
                    if opts.reuse {
                        if let CheckOutcome::Proved(cert) = &result.outcome {
                            db.publish(cert.clauses.iter().cloned());
                        }
                    }
                    mine.push((i, result));
                }
            }));
        }
        for h in handles {
            for (i, result) in h.join().expect("worker thread panicked") {
                slots[i] = Some(result);
            }
        }
    });

    let method = match opts.scope {
        Scope::Local => format!("parallel-ja x{threads}"),
        Scope::Global => format!("parallel-separate-global x{threads}"),
    };
    let mut report = MultiReport::new(sys.name(), method);
    report.results = slots
        .into_iter()
        .map(|s| s.expect("every property processed"))
        .collect();
    report.total_time = started.elapsed();
    report
}
