//! Joint verification: the aggregate-property baseline (Jnt-ver, §9).
//!
//! Conjoins all unsolved properties into one aggregate property and
//! model-checks it. If the aggregate fails, the counterexample refutes
//! the properties violated by its final state; those are removed and
//! the loop restarts with a new aggregate — exactly the Jnt-ver script
//! of the paper. Optionally a BMC front-end runs first (our stand-in
//! for the ABC baseline configuration of Tables I, III and IV).

use crate::{MultiReport, PropertyResult, Scope};
use japrove_aig::AigLit;
use japrove_ic3::{Bmc, BmcResult, CheckOutcome, Ic3, Ic3Options, UnknownReason};
use japrove_sat::Budget;
use japrove_tsys::{replay, PropertyId, TransitionSystem};
use std::time::{Duration, Instant};

/// Options for joint verification.
///
/// # Examples
///
/// ```
/// use japrove_core::JointOptions;
/// use std::time::Duration;
///
/// let opts = JointOptions::new().total_timeout(Duration::from_secs(5));
/// assert!(opts.total.is_some());
/// ```
#[derive(Clone, Debug)]
pub struct JointOptions {
    /// Total wall-clock limit for the whole benchmark.
    pub total: Option<Duration>,
    /// Base engine options for the aggregate runs.
    pub ic3: Ic3Options,
    /// Run BMC up to this depth before IC3 in each iteration
    /// (`None` disables the portfolio; this models the ABC joint
    /// baseline which interleaves `bmc` and `pdr`).
    pub bmc_depth: Option<usize>,
    /// Verify only these properties (`None` = all), e.g. the "first k
    /// properties" experiments of Table II.
    pub subset: Option<Vec<PropertyId>>,
}

impl JointOptions {
    /// Pure IC3 joint verification (the paper's Jnt-ver).
    pub fn new() -> Self {
        JointOptions {
            total: None,
            ic3: Ic3Options::new(),
            bmc_depth: None,
            subset: None,
        }
    }

    /// Restricts verification to the given properties.
    pub fn subset(mut self, props: Vec<PropertyId>) -> Self {
        self.subset = Some(props);
        self
    }

    /// Sets the total time limit.
    pub fn total_timeout(mut self, d: Duration) -> Self {
        self.total = Some(d);
        self
    }

    /// Enables the BMC front-end up to the given depth.
    pub fn bmc_depth(mut self, depth: usize) -> Self {
        self.bmc_depth = Some(depth);
        self
    }

    /// Sets the base engine options.
    pub fn ic3(mut self, ic3: Ic3Options) -> Self {
        self.ic3 = ic3;
        self
    }
}

impl Default for JointOptions {
    fn default() -> Self {
        JointOptions::new()
    }
}

/// Builds a copy of `sys` with one extra property: the conjunction of
/// the given properties (the aggregate property `P = P1 & ... & Pk`).
fn aggregate_system(
    sys: &TransitionSystem,
    props: &[PropertyId],
) -> (TransitionSystem, PropertyId) {
    let mut agg = sys.clone();
    let goods: Vec<AigLit> = props.iter().map(|&p| agg.property(p).good).collect();
    let all = agg.aig_mut().and_many(goods);
    let id = agg.add_property("aggregate", all);
    (agg, id)
}

/// Runs joint verification (Jnt-ver): verify the aggregate property,
/// refute the properties its counterexample falsifies, re-iterate.
///
/// # Examples
///
/// ```
/// use japrove_aig::Aig;
/// use japrove_core::{joint_verify, JointOptions};
/// use japrove_tsys::{TransitionSystem, Word};
///
/// let mut aig = Aig::new();
/// let c = Word::latches(&mut aig, 3, 0);
/// let n = c.increment(&mut aig);
/// c.set_next(&mut aig, &n);
/// let ok = c.lt_const(&mut aig, 8);
/// let bad = c.lt_const(&mut aig, 4);
/// let mut sys = TransitionSystem::new("cnt", aig);
/// sys.add_property("in_range", ok);
/// sys.add_property("lt4", bad);
/// let report = joint_verify(&sys, &JointOptions::new());
/// assert_eq!(report.num_true(), 1);
/// assert_eq!(report.num_false(), 1);
/// ```
pub fn joint_verify(sys: &TransitionSystem, opts: &JointOptions) -> MultiReport {
    let started = Instant::now();
    let deadline = opts.total.map(|d| Instant::now() + d);
    let mut report = MultiReport::new(
        sys.name(),
        if opts.bmc_depth.is_some() {
            "joint (bmc+ic3)"
        } else {
            "joint"
        },
    );
    let mut remaining: Vec<PropertyId> = opts
        .subset
        .clone()
        .unwrap_or_else(|| sys.property_ids().collect());

    let push_result = |report: &mut MultiReport,
                       id: PropertyId,
                       outcome: CheckOutcome,
                       frames: usize,
                       t0: Instant| {
        report.results.push(PropertyResult {
            id,
            name: sys.property(id).name.clone(),
            outcome,
            scope: Scope::Global,
            time: t0.elapsed(),
            frames,
            retried: false,
        });
    };

    while !remaining.is_empty() {
        let iteration_start = Instant::now();
        if deadline.is_some_and(|d| Instant::now() >= d) {
            for id in remaining.drain(..) {
                push_result(
                    &mut report,
                    id,
                    CheckOutcome::Unknown(UnknownReason::Budget),
                    0,
                    iteration_start,
                );
            }
            break;
        }
        let mut budget = Budget::unlimited();
        if let Some(d) = deadline {
            budget = budget.with_deadline(d);
        }
        let (agg, agg_id) = aggregate_system(sys, &remaining);

        // Optional BMC front-end for shallow refutations.
        let mut outcome = None;
        if let Some(depth) = opts.bmc_depth {
            let mut bmc = Bmc::new(&agg);
            match bmc.run(&[agg_id], depth, budget) {
                BmcResult::Cex { cex, .. } => {
                    outcome = Some(CheckOutcome::Falsified(cex));
                }
                BmcResult::NoCexUpTo(_) => {}
                BmcResult::Unknown(r) => outcome = Some(CheckOutcome::Unknown(r)),
            }
        }
        let (outcome, frames) = match outcome {
            Some(o) => (o, 0),
            None => {
                let mut engine = Ic3::new(&agg, agg_id, opts.ic3.budget(budget));
                let o = engine.run();
                (o, engine.stats().frames)
            }
        };

        match outcome {
            CheckOutcome::Proved(cert) => {
                for id in remaining.drain(..) {
                    push_result(
                        &mut report,
                        id,
                        CheckOutcome::Proved(cert.clone()),
                        frames,
                        iteration_start,
                    );
                }
            }
            CheckOutcome::Unknown(r) => {
                for id in remaining.drain(..) {
                    push_result(
                        &mut report,
                        id,
                        CheckOutcome::Unknown(r),
                        frames,
                        iteration_start,
                    );
                }
            }
            CheckOutcome::Falsified(cex) => {
                // Replay on the original system to see which properties
                // the final state falsifies.
                let r = replay(sys, &cex.trace).expect("aggregate traces replay on the design");
                let final_step = cex.trace.len();
                let falsified: Vec<PropertyId> = remaining
                    .iter()
                    .copied()
                    .filter(|p| r.violated_at(final_step).contains(p))
                    .collect();
                assert!(
                    !falsified.is_empty(),
                    "aggregate counterexample falsifies no property"
                );
                for &id in &falsified {
                    push_result(
                        &mut report,
                        id,
                        CheckOutcome::Falsified(cex.clone()),
                        frames,
                        iteration_start,
                    );
                }
                remaining.retain(|p| !falsified.contains(p));
            }
        }
    }
    report.total_time = started.elapsed();
    report
}
