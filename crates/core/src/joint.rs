//! Joint verification: the aggregate-property baseline (Jnt-ver, §9).
//!
//! Conjoins all unsolved properties into one aggregate property and
//! model-checks it. If the aggregate fails, the counterexample refutes
//! the properties violated by its final state; those are removed and
//! the loop restarts with a new aggregate — exactly the Jnt-ver script
//! of the paper. Optionally a BMC front-end runs first (our stand-in
//! for the ABC baseline configuration of Tables I, III and IV).

use crate::{MultiReport, PropertyResult, Scope};
use japrove_aig::AigLit;
use japrove_ic3::{
    Bmc, BmcResult, CheckOutcome, Counterexample, Ic3, Ic3Options, RunStats, UnknownReason,
};
use japrove_obs::{Journal, Phase};
use japrove_sat::{BackendChoice, Budget};
use japrove_tsys::{replay, PropertyId, TransitionSystem};
use std::time::{Duration, Instant};

/// Options for joint verification.
///
/// # Examples
///
/// ```
/// use japrove_core::JointOptions;
/// use std::time::Duration;
///
/// let opts = JointOptions::new().total_timeout(Duration::from_secs(5));
/// assert!(opts.total.is_some());
/// ```
#[derive(Clone, Debug)]
pub struct JointOptions {
    /// Total wall-clock limit for the whole benchmark.
    pub total: Option<Duration>,
    /// Base engine options for the aggregate runs.
    pub ic3: Ic3Options,
    /// Run BMC up to this depth before IC3 in each iteration
    /// (`None` disables the portfolio; this models the ABC joint
    /// baseline which interleaves `bmc` and `pdr`).
    pub bmc_depth: Option<usize>,
    /// Conflict allowance for each depth query of the BMC front-end
    /// (`None` = the base engine budget). The allowance is re-armed
    /// per depth, so a front-end of depth `d` may spend up to
    /// `(d + 1) * bmc_conflicts` conflicts in total. A front-end that
    /// runs dry falls through to IC3; it never decides the verdict on
    /// its own.
    pub bmc_conflicts: Option<u64>,
    /// Verify only these properties (`None` = all), e.g. the "first k
    /// properties" experiments of Table II.
    pub subset: Option<Vec<PropertyId>>,
    /// SAT backend for the aggregate BMC and IC3 runs.
    pub backend: BackendChoice,
    /// Observability journal the aggregate engines report into.
    /// Disabled by default.
    pub journal: Journal,
}

impl JointOptions {
    /// Pure IC3 joint verification (the paper's Jnt-ver).
    pub fn new() -> Self {
        JointOptions {
            total: None,
            ic3: Ic3Options::new(),
            bmc_depth: None,
            bmc_conflicts: None,
            subset: None,
            backend: BackendChoice::default(),
            journal: Journal::disabled(),
        }
    }

    /// Restricts verification to the given properties.
    pub fn subset(mut self, props: Vec<PropertyId>) -> Self {
        self.subset = Some(props);
        self
    }

    /// Sets the total time limit.
    pub fn total_timeout(mut self, d: Duration) -> Self {
        self.total = Some(d);
        self
    }

    /// Enables the BMC front-end up to the given depth.
    pub fn bmc_depth(mut self, depth: usize) -> Self {
        self.bmc_depth = Some(depth);
        self
    }

    /// Caps each depth query of the BMC front-end at the given number
    /// of conflicts (see [`JointOptions::bmc_conflicts`] for the
    /// resulting front-end total).
    pub fn bmc_conflicts(mut self, conflicts: u64) -> Self {
        self.bmc_conflicts = Some(conflicts);
        self
    }

    /// Sets the base engine options.
    pub fn ic3(mut self, ic3: Ic3Options) -> Self {
        self.ic3 = ic3;
        self
    }

    /// Selects the SAT backend.
    pub fn backend(mut self, backend: BackendChoice) -> Self {
        self.backend = backend;
        self
    }

    /// Attaches an observability journal.
    pub fn journal(mut self, journal: Journal) -> Self {
        self.journal = journal;
        self
    }
}

impl Default for JointOptions {
    fn default() -> Self {
        JointOptions::new()
    }
}

/// Builds a copy of `sys` with one extra property: the conjunction of
/// the given properties (the aggregate property `P = P1 & ... & Pk`).
fn aggregate_system(
    sys: &TransitionSystem,
    props: &[PropertyId],
) -> (TransitionSystem, PropertyId) {
    let mut agg = sys.clone();
    let goods: Vec<AigLit> = props.iter().map(|&p| agg.property(p).good).collect();
    let all = agg.aig_mut().and_many(goods);
    let id = agg.add_property("aggregate", all);
    (agg, id)
}

/// The candidates an aggregate counterexample refutes: the subset of
/// `remaining` violated by the trace's final state. Returns an empty
/// vector when the trace does not replay on the design or falsifies no
/// candidate — callers must treat that as a spurious counterexample
/// (and stop iterating) rather than panic, so one bad trace cannot
/// crash a serving driver.
pub(crate) fn falsified_by_replay(
    sys: &TransitionSystem,
    remaining: &[PropertyId],
    cex: &Counterexample,
) -> Vec<PropertyId> {
    match replay(sys, &cex.trace) {
        Ok(r) => {
            let final_step = cex.trace.len();
            remaining
                .iter()
                .copied()
                .filter(|p| r.violated_at(final_step).contains(p))
                .collect()
        }
        Err(_) => Vec::new(),
    }
}

/// Runs joint verification (Jnt-ver): verify the aggregate property,
/// refute the properties its counterexample falsifies, re-iterate.
///
/// # Examples
///
/// ```
/// use japrove_aig::Aig;
/// use japrove_core::{joint_verify, JointOptions};
/// use japrove_tsys::{TransitionSystem, Word};
///
/// let mut aig = Aig::new();
/// let c = Word::latches(&mut aig, 3, 0);
/// let n = c.increment(&mut aig);
/// c.set_next(&mut aig, &n);
/// let ok = c.lt_const(&mut aig, 8);
/// let bad = c.lt_const(&mut aig, 4);
/// let mut sys = TransitionSystem::new("cnt", aig);
/// sys.add_property("in_range", ok);
/// sys.add_property("lt4", bad);
/// let report = joint_verify(&sys, &JointOptions::new());
/// assert_eq!(report.num_true(), 1);
/// assert_eq!(report.num_false(), 1);
/// ```
pub fn joint_verify(sys: &TransitionSystem, opts: &JointOptions) -> MultiReport {
    let started = Instant::now();
    let deadline = opts.total.map(|d| Instant::now() + d);
    let mut report = MultiReport::new(
        sys.name(),
        if opts.bmc_depth.is_some() {
            "joint (bmc+ic3)"
        } else {
            "joint"
        },
    );
    let mut remaining: Vec<PropertyId> = opts
        .subset
        .clone()
        .unwrap_or_else(|| sys.property_ids().collect());

    let push_result = |report: &mut MultiReport,
                       id: PropertyId,
                       outcome: CheckOutcome,
                       frames: usize,
                       stats: RunStats,
                       t0: Instant| {
        report.results.push(PropertyResult {
            id,
            name: sys.property(id).name.clone(),
            outcome,
            scope: Scope::Global,
            time: t0.elapsed(),
            frames,
            retried: false,
            backend: opts.backend,
            stats,
        });
    };

    while !remaining.is_empty() {
        let iteration_start = Instant::now();
        if deadline.is_some_and(|d| Instant::now() >= d) {
            for id in remaining.drain(..) {
                push_result(
                    &mut report,
                    id,
                    CheckOutcome::Unknown(UnknownReason::Budget),
                    0,
                    RunStats::default(),
                    iteration_start,
                );
            }
            break;
        }
        // The engine budget starts from the caller's base budget (it is
        // no longer silently replaced) and additionally observes the
        // total deadline.
        let with_deadline = |b: Budget| match deadline {
            Some(d) => b.with_deadline(d),
            None => b,
        };
        let budget = with_deadline(opts.ic3.budget);
        let (agg, agg_id) = aggregate_system(sys, &remaining);

        // Optional BMC front-end for shallow refutations. A front-end
        // that runs out of budget must NOT decide the verdict: unless
        // the total deadline is actually spent, control falls through
        // to IC3 (the bug fixed here marked every remaining property
        // Unknown without ever running IC3).
        let mut outcome = None;
        if let Some(depth) = opts.bmc_depth {
            let _bmc_span = opts.journal.span(Phase::BmcFrontend);
            let bmc_budget = match opts.bmc_conflicts {
                Some(n) => with_deadline(Budget::conflicts(n)),
                None => budget,
            };
            let mut bmc = Bmc::with_backend(&agg, opts.backend);
            bmc.set_journal(opts.journal.clone());
            match bmc.run(&[agg_id], depth, bmc_budget) {
                BmcResult::Cex { cex, .. } => {
                    outcome = Some(CheckOutcome::Falsified(cex));
                }
                BmcResult::NoCexUpTo(_) => {}
                BmcResult::Unknown(r) => {
                    if deadline.is_some_and(|d| Instant::now() >= d) {
                        outcome = Some(CheckOutcome::Unknown(r));
                    }
                }
            }
        }
        let (outcome, frames, stats) = match outcome {
            Some(o) => (o, 0, RunStats::default()),
            None => {
                let _joint_span = opts.journal.span(Phase::JointAttempt);
                let ic3_opts = opts.ic3.budget(budget).backend(opts.backend);
                let mut engine = Ic3::new(&agg, agg_id, ic3_opts);
                engine.set_journal(opts.journal.clone());
                let o = engine.run();
                (o, engine.stats().frames, *engine.stats())
            }
        };

        match outcome {
            CheckOutcome::Proved(cert) => {
                for id in remaining.drain(..) {
                    push_result(
                        &mut report,
                        id,
                        CheckOutcome::Proved(cert.clone()),
                        frames,
                        stats,
                        iteration_start,
                    );
                }
            }
            CheckOutcome::Unknown(r) => {
                for id in remaining.drain(..) {
                    push_result(
                        &mut report,
                        id,
                        CheckOutcome::Unknown(r),
                        frames,
                        stats,
                        iteration_start,
                    );
                }
            }
            CheckOutcome::Falsified(cex) => {
                // Replay on the original system to see which properties
                // the final state falsifies. An unreplayable trace, or
                // one that falsifies nothing, would loop forever here;
                // degrade the remaining properties to Unknown instead
                // of panicking.
                let falsified = falsified_by_replay(sys, &remaining, &cex);
                if falsified.is_empty() {
                    for id in remaining.drain(..) {
                        push_result(
                            &mut report,
                            id,
                            CheckOutcome::Unknown(UnknownReason::SpuriousCex),
                            frames,
                            stats,
                            iteration_start,
                        );
                    }
                    break;
                }
                for &id in &falsified {
                    push_result(
                        &mut report,
                        id,
                        CheckOutcome::Falsified(cex.clone()),
                        frames,
                        stats,
                        iteration_start,
                    );
                }
                remaining.retain(|p| !falsified.contains(p));
            }
        }
    }
    report.total_time = started.elapsed();
    report
}
