//! Joint verification: the aggregate-property baseline (Jnt-ver, §9).
//!
//! Conjoins all unsolved properties into one aggregate property and
//! model-checks it. If the aggregate fails, the counterexample refutes
//! the properties violated by its final state; those are removed and
//! the loop restarts with a new aggregate — exactly the Jnt-ver script
//! of the paper. Optionally a BMC front-end runs first (our stand-in
//! for the ABC baseline configuration of Tables I, III and IV).

use crate::MultiReport;
use japrove_aig::AigLit;
use japrove_ic3::{Counterexample, Ic3Options};
use japrove_obs::Journal;
use japrove_sat::BackendChoice;
use japrove_tsys::{replay, PropertyId, TransitionSystem};
use std::time::Duration;

/// Options for joint verification.
///
/// # Examples
///
/// ```
/// use japrove_core::JointOptions;
/// use std::time::Duration;
///
/// let opts = JointOptions::new().total_timeout(Duration::from_secs(5));
/// assert!(opts.total.is_some());
/// ```
#[derive(Clone, Debug)]
pub struct JointOptions {
    /// Total wall-clock limit for the whole benchmark.
    pub total: Option<Duration>,
    /// Base engine options for the aggregate runs.
    pub ic3: Ic3Options,
    /// Run BMC up to this depth before IC3 in each iteration
    /// (`None` disables the portfolio; this models the ABC joint
    /// baseline which interleaves `bmc` and `pdr`).
    pub bmc_depth: Option<usize>,
    /// Conflict allowance for each depth query of the BMC front-end
    /// (`None` = the base engine budget). The allowance is re-armed
    /// per depth, so a front-end of depth `d` may spend up to
    /// `(d + 1) * bmc_conflicts` conflicts in total. A front-end that
    /// runs dry falls through to IC3; it never decides the verdict on
    /// its own.
    pub bmc_conflicts: Option<u64>,
    /// Verify only these properties (`None` = all), e.g. the "first k
    /// properties" experiments of Table II.
    pub subset: Option<Vec<PropertyId>>,
    /// SAT backend for the aggregate BMC and IC3 runs.
    pub backend: BackendChoice,
    /// Observability journal the aggregate engines report into.
    /// Disabled by default.
    pub journal: Journal,
}

impl JointOptions {
    /// Pure IC3 joint verification (the paper's Jnt-ver).
    pub fn new() -> Self {
        JointOptions {
            total: None,
            ic3: Ic3Options::new(),
            bmc_depth: None,
            bmc_conflicts: None,
            subset: None,
            backend: BackendChoice::default(),
            journal: Journal::disabled(),
        }
    }

    /// Restricts verification to the given properties.
    pub fn subset(mut self, props: Vec<PropertyId>) -> Self {
        self.subset = Some(props);
        self
    }

    /// Sets the total time limit.
    pub fn total_timeout(mut self, d: Duration) -> Self {
        self.total = Some(d);
        self
    }

    /// Enables the BMC front-end up to the given depth.
    pub fn bmc_depth(mut self, depth: usize) -> Self {
        self.bmc_depth = Some(depth);
        self
    }

    /// Caps each depth query of the BMC front-end at the given number
    /// of conflicts (see [`JointOptions::bmc_conflicts`] for the
    /// resulting front-end total).
    pub fn bmc_conflicts(mut self, conflicts: u64) -> Self {
        self.bmc_conflicts = Some(conflicts);
        self
    }

    /// Sets the base engine options.
    pub fn ic3(mut self, ic3: Ic3Options) -> Self {
        self.ic3 = ic3;
        self
    }

    /// Selects the SAT backend.
    pub fn backend(mut self, backend: BackendChoice) -> Self {
        self.backend = backend;
        self
    }

    /// Attaches an observability journal.
    pub fn journal(mut self, journal: Journal) -> Self {
        self.journal = journal;
        self
    }
}

impl Default for JointOptions {
    fn default() -> Self {
        JointOptions::new()
    }
}

/// Builds a copy of `sys` with one extra property: the conjunction of
/// the given properties (the aggregate property `P = P1 & ... & Pk`).
pub(crate) fn aggregate_system(
    sys: &TransitionSystem,
    props: &[PropertyId],
) -> (TransitionSystem, PropertyId) {
    let mut agg = sys.clone();
    let goods: Vec<AigLit> = props.iter().map(|&p| agg.property(p).good).collect();
    let all = agg.aig_mut().and_many(goods);
    let id = agg.add_property("aggregate", all);
    (agg, id)
}

/// The candidates an aggregate counterexample refutes: the subset of
/// `remaining` violated by the trace's final state. Returns an empty
/// vector when the trace does not replay on the design or falsifies no
/// candidate — callers must treat that as a spurious counterexample
/// (and stop iterating) rather than panic, so one bad trace cannot
/// crash a serving driver.
pub(crate) fn falsified_by_replay(
    sys: &TransitionSystem,
    remaining: &[PropertyId],
    cex: &Counterexample,
) -> Vec<PropertyId> {
    match replay(sys, &cex.trace) {
        Ok(r) => {
            let final_step = cex.trace.len();
            remaining
                .iter()
                .copied()
                .filter(|p| r.violated_at(final_step).contains(p))
                .collect()
        }
        Err(_) => Vec::new(),
    }
}

/// Runs joint verification (Jnt-ver): verify the aggregate property,
/// refute the properties its counterexample falsifies, re-iterate.
///
/// # Examples
///
/// ```
/// use japrove_aig::Aig;
/// use japrove_core::{joint_verify, JointOptions};
/// use japrove_tsys::{TransitionSystem, Word};
///
/// let mut aig = Aig::new();
/// let c = Word::latches(&mut aig, 3, 0);
/// let n = c.increment(&mut aig);
/// c.set_next(&mut aig, &n);
/// let ok = c.lt_const(&mut aig, 8);
/// let bad = c.lt_const(&mut aig, 4);
/// let mut sys = TransitionSystem::new("cnt", aig);
/// sys.add_property("in_range", ok);
/// sys.add_property("lt4", bad);
/// let report = joint_verify(&sys, &JointOptions::new());
/// assert_eq!(report.num_true(), 1);
/// assert_eq!(report.num_false(), 1);
/// ```
pub fn joint_verify(sys: &TransitionSystem, opts: &JointOptions) -> MultiReport {
    crate::Session::joint(opts.clone()).run(sys)
}
