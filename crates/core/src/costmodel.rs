//! The learned per-property cost model behind `--schedule learned`.
//!
//! PR 6's [`FeatureStore`] records what every property actually cost
//! (time, conflicts, decisions, …) keyed by the design's structural
//! hash; this module closes the loop by reading those records back and
//! predicting the cost of re-verifying each property. The planner uses
//! the prediction in place of the COI-size proxy for dispatch order,
//! and the affinity graph uses it as an extra edge signal — the
//! "faster the more traffic it serves" ROADMAP story.
//!
//! The model is deliberately simple: per-feature max-normalization over
//! the design's own records, then a fixed blend. It is not trying to
//! predict wall-clock seconds — only to *rank* properties, which is
//! all a hardest-first scheduler needs. Properties without a record
//! ("cold") get no prediction; the planner falls back to the structural
//! proxy for them.

use japrove_obs::FeatureStore;
use japrove_tsys::TransitionSystem;
use std::collections::HashMap;

/// Blend weights over the max-normalized features. Time dominates (it
/// is the quantity the schedule actually optimizes); conflicts and
/// decisions break ties between runs whose wall-clock was noisy.
const W_TIME: f64 = 0.6;
const W_CONFLICTS: f64 = 0.3;
const W_DECISIONS: f64 = 0.1;

/// Predicted verification cost per property of one design, in
/// `[0, 1]`, learned from prior [`FeatureStore`] records.
///
/// Records are matched by the design's structural hash, so a renamed
/// but logically identical design still hits its history.
///
/// # Examples
///
/// ```
/// use japrove_core::CostModel;
/// use japrove_obs::FeatureStore;
/// # use japrove_aig::Aig;
/// # use japrove_tsys::{TransitionSystem, Word};
/// # let mut aig = Aig::new();
/// # let w = Word::latches(&mut aig, 3, 0);
/// # let n = w.increment(&mut aig);
/// # w.set_next(&mut aig, &n);
/// # let good = w.lt_const(&mut aig, 8);
/// # let mut sys = TransitionSystem::new("cnt", aig);
/// # sys.add_property("p0", good);
/// let model = CostModel::from_store(&FeatureStore::default(), &sys);
/// assert!(!model.is_warm());
/// assert_eq!(model.predicted("p0"), None);
/// ```
#[derive(Clone, Debug)]
pub struct CostModel {
    design: String,
    costs: HashMap<String, f64>,
}

impl CostModel {
    /// Builds the model for `sys` from `store`: every record whose
    /// design hash matches contributes one prediction. Records for
    /// other designs are ignored, so one shared store can serve a whole
    /// benchmark suite.
    pub fn from_store(store: &FeatureStore, sys: &TransitionSystem) -> CostModel {
        let design = format!("{:016x}", sys.structural_hash());
        // Newest record per property wins, whatever mode produced it:
        // cost rank transfers across drivers far better than absolute
        // time does.
        let mut features: HashMap<String, (u64, u64, u64)> = HashMap::new();
        for r in store.for_design(&design) {
            features.insert(r.property.clone(), (r.time_us, r.conflicts, r.decisions));
        }
        let max_of = |f: fn(&(u64, u64, u64)) -> u64| features.values().map(f).max().unwrap_or(0);
        let (max_t, max_c, max_d) = (max_of(|v| v.0), max_of(|v| v.1), max_of(|v| v.2));
        let norm = |x: u64, max: u64| {
            if max == 0 {
                0.0
            } else {
                x as f64 / max as f64
            }
        };
        let costs = features
            .into_iter()
            .map(|(name, (t, c, d))| {
                let cost = W_TIME * norm(t, max_t)
                    + W_CONFLICTS * norm(c, max_c)
                    + W_DECISIONS * norm(d, max_d);
                (name, cost)
            })
            .collect();
        CostModel { design, costs }
    }

    /// The design hash this model was built for, in fixed-width hex.
    pub fn design(&self) -> &str {
        &self.design
    }

    /// The predicted cost of re-verifying `property`, in `[0, 1]`;
    /// `None` if the store had no record for it (cold — the planner
    /// falls back to the COI-size proxy).
    pub fn predicted(&self, property: &str) -> Option<f64> {
        self.costs.get(property).copied()
    }

    /// `true` if at least one property of this design has a record.
    pub fn is_warm(&self) -> bool {
        !self.costs.is_empty()
    }

    /// Number of properties with a prediction.
    pub fn len(&self) -> usize {
        self.costs.len()
    }

    /// `true` if no property has a prediction.
    pub fn is_empty(&self) -> bool {
        self.costs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use japrove_aig::Aig;
    use japrove_obs::RunRecord;
    use japrove_tsys::Word;

    fn two_prop_sys() -> TransitionSystem {
        let mut aig = Aig::new();
        let w = Word::latches(&mut aig, 3, 0);
        let n = w.increment(&mut aig);
        w.set_next(&mut aig, &n);
        let a = w.lt_const(&mut aig, 8);
        let b = w.le_const(&mut aig, 7);
        let mut sys = TransitionSystem::new("cnt", aig);
        sys.add_property("pa", a);
        sys.add_property("pb", b);
        sys
    }

    fn record(design: &str, property: &str, time_us: u64, conflicts: u64) -> RunRecord {
        RunRecord {
            design: design.into(),
            property: property.into(),
            mode: "ja".into(),
            verdict: "holds".into(),
            time_us,
            frames: 2,
            conflicts,
            decisions: conflicts * 2,
            propagations: conflicts * 10,
            restarts: 0,
        }
    }

    #[test]
    fn predictions_rank_by_recorded_cost_and_stay_bounded() {
        let sys = two_prop_sys();
        let design = format!("{:016x}", sys.structural_hash());
        let mut store = FeatureStore::default();
        store.upsert(record(&design, "pa", 50_000, 900));
        store.upsert(record(&design, "pb", 1_000, 10));
        let model = CostModel::from_store(&store, &sys);
        assert!(model.is_warm());
        assert_eq!(model.len(), 2);
        let (a, b) = (
            model.predicted("pa").unwrap(),
            model.predicted("pb").unwrap(),
        );
        assert!(a > b, "pa recorded far more expensive: {a} vs {b}");
        assert!((0.0..=1.0).contains(&a) && (0.0..=1.0).contains(&b));
        assert_eq!(model.predicted("missing"), None);
    }

    #[test]
    fn records_of_other_designs_are_ignored() {
        let sys = two_prop_sys();
        let mut store = FeatureStore::default();
        store.upsert(record("ffffffffffffffff", "pa", 50_000, 900));
        let model = CostModel::from_store(&store, &sys);
        assert!(!model.is_warm());
    }
}
