//! Separate verification: one engine run per property (§4, §9).
//!
//! Covers both variants compared in the paper: *global* proofs (no
//! assumptions) and *local* proofs (JA-verification, where every
//! Expected-To-Hold property is assumed in non-final states), each
//! with or without clause re-use.

use crate::{ClauseDb, MultiReport, PropertyResult, Scope};
use japrove_ic3::{
    CheckOutcome, ClauseSource, Ic3Options, Lifting, SolverCtx, TsEncoding, UnknownReason,
};
use japrove_obs::{EventKind, Journal, Phase};
use japrove_sat::{BackendChoice, Budget};
use japrove_tsys::{replay, Expectation, PropertyId, TransitionSystem};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A per-worker set of warm [`SolverCtx`]s, one per SAT backend in
/// use, all sharing one [`TsEncoding`] of the design. This is what
/// makes the drivers *incremental*: the encoding is computed once per
/// design (even across worker threads) and consecutive property checks
/// on the same worker reuse warm solvers.
pub(crate) struct CtxPool {
    enc: Arc<TsEncoding>,
    ctxs: Vec<SolverCtx>,
    journal: Journal,
}

impl CtxPool {
    /// A pool that encodes `sys` now.
    pub(crate) fn new(sys: &TransitionSystem) -> Self {
        CtxPool::with_encoding(Arc::new(TsEncoding::new(sys)))
    }

    /// A pool over an encoding shared with other workers.
    pub(crate) fn with_encoding(enc: Arc<TsEncoding>) -> Self {
        CtxPool {
            enc,
            ctxs: Vec::new(),
            journal: Journal::disabled(),
        }
    }

    /// Attaches a journal; contexts already in the pool and those
    /// created later all report into it.
    pub(crate) fn set_journal(&mut self, journal: Journal) {
        for ctx in &mut self.ctxs {
            ctx.set_journal(journal.clone());
        }
        self.journal = journal;
    }

    /// The context for `backend`, created on first use.
    pub(crate) fn get(&mut self, backend: BackendChoice) -> &mut SolverCtx {
        let i = match self.ctxs.iter().position(|c| c.backend() == backend) {
            Some(i) => i,
            None => {
                let mut ctx = SolverCtx::with_encoding(Arc::clone(&self.enc), backend);
                ctx.set_journal(self.journal.clone());
                self.ctxs.push(ctx);
                self.ctxs.len() - 1
            }
        };
        &mut self.ctxs[i]
    }

    /// Drops the context for `backend`. Called after a caught panic:
    /// the context's solver state may be mid-mutation (poisoned in
    /// spirit, even where no mutex is involved), so the next
    /// [`CtxPool::get`] rebuilds a fresh one over the shared encoding —
    /// the encoding itself is immutable and stays warm.
    pub(crate) fn discard(&mut self, backend: BackendChoice) {
        self.ctxs.retain(|c| c.backend() != backend);
    }
}

/// Options for separate verification.
///
/// # Examples
///
/// ```
/// use japrove_core::{Scope, SeparateOptions};
/// use std::time::Duration;
///
/// let opts = SeparateOptions::local()
///     .per_property_timeout(Duration::from_secs(1))
///     .reuse(true);
/// assert_eq!(opts.scope, Scope::Local);
/// ```
#[derive(Clone, Debug)]
pub struct SeparateOptions {
    /// Proof scope: local realizes JA-verification.
    pub scope: Scope,
    /// Re-use strengthening clauses across properties (§6).
    pub reuse: bool,
    /// Lifting mode for local proofs (§7-A).
    pub lifting: Lifting,
    /// Per-property wall-clock limit (the "time limit" column of the
    /// paper's tables).
    pub per_property: Option<Duration>,
    /// Total wall-clock limit for the whole benchmark.
    pub total: Option<Duration>,
    /// Soft per-property watchdog: a check exceeding it comes back
    /// `Unknown(Budget)` and is re-queued by the supervision layer at
    /// lower priority with an escalated (doubled) budget, up to
    /// [`SeparateOptions::retries`] times, before settling on Unknown.
    /// Unlike [`SeparateOptions::per_property`], which is the paper's
    /// hard per-property limit, this one buys the property another
    /// chance.
    pub property_timeout: Option<Duration>,
    /// Supervised retries for a faulted (engine panic) or
    /// watchdog-timed-out property: each retry runs after every other
    /// property, on a fresh cold context, with a doubled
    /// `property_timeout`.
    pub retries: usize,
    /// Base engine options.
    pub ic3: Ic3Options,
    /// Property order; `None` uses declaration order (the paper's
    /// default: "properties are verified in the order they are given").
    pub order: Option<Vec<PropertyId>>,
    /// SAT backend used for every property without an override.
    pub backend: BackendChoice,
    /// Per-property backend overrides: the portfolio assignment. Later
    /// entries win, so appending is enough to re-assign a property.
    pub backend_overrides: Vec<(PropertyId, BackendChoice)>,
    /// Observability journal the driver, its engines and their solvers
    /// report into. Disabled by default (and then free: every probe is
    /// one pointer check).
    pub journal: Journal,
}

impl SeparateOptions {
    /// Local proofs with clause re-use: the full JA-verification setup.
    pub fn local() -> Self {
        SeparateOptions {
            scope: Scope::Local,
            reuse: true,
            lifting: Lifting::Ignore,
            per_property: None,
            total: None,
            property_timeout: None,
            retries: 1,
            ic3: Ic3Options::new(),
            order: None,
            backend: BackendChoice::default(),
            backend_overrides: Vec::new(),
            journal: Journal::disabled(),
        }
    }

    /// Global proofs with clause re-use (the "separate verification
    /// with global proofs" baseline of Tables V/VI).
    pub fn global() -> Self {
        SeparateOptions {
            scope: Scope::Global,
            ..SeparateOptions::local()
        }
    }

    /// Sets the per-property time limit.
    pub fn per_property_timeout(mut self, d: Duration) -> Self {
        self.per_property = Some(d);
        self
    }

    /// Sets the total time limit.
    pub fn total_timeout(mut self, d: Duration) -> Self {
        self.total = Some(d);
        self
    }

    /// Sets the soft per-property watchdog (see
    /// [`SeparateOptions::property_timeout`]).
    pub fn watchdog(mut self, d: Duration) -> Self {
        self.property_timeout = Some(d);
        self
    }

    /// Sets the supervised retry count for faulted or watchdog-timed-
    /// out properties.
    pub fn retries(mut self, n: usize) -> Self {
        self.retries = n;
        self
    }

    /// Enables or disables clause re-use.
    pub fn reuse(mut self, yes: bool) -> Self {
        self.reuse = yes;
        self
    }

    /// Sets the lifting mode.
    pub fn lifting(mut self, lifting: Lifting) -> Self {
        self.lifting = lifting;
        self
    }

    /// Sets a property order.
    pub fn order(mut self, order: Vec<PropertyId>) -> Self {
        self.order = Some(order);
        self
    }

    /// Sets the default SAT backend for every property.
    pub fn backend(mut self, backend: BackendChoice) -> Self {
        self.backend = backend;
        self
    }

    /// Assigns a specific backend to one property (portfolio mode).
    pub fn backend_for(mut self, id: PropertyId, backend: BackendChoice) -> Self {
        self.backend_overrides.push((id, backend));
        self
    }

    /// The backend that will check property `id`: the last override
    /// for it, or the default backend.
    pub fn backend_of(&self, id: PropertyId) -> BackendChoice {
        self.backend_overrides
            .iter()
            .rev()
            .find(|(p, _)| *p == id)
            .map(|&(_, b)| b)
            .unwrap_or(self.backend)
    }

    /// Sets the base engine options.
    pub fn ic3(mut self, ic3: Ic3Options) -> Self {
        self.ic3 = ic3;
        self
    }

    /// Attaches an observability journal.
    pub fn journal(mut self, journal: Journal) -> Self {
        self.journal = journal;
        self
    }
}

impl Default for SeparateOptions {
    fn default() -> Self {
        SeparateOptions::local()
    }
}

/// The assumption set for local proofs: every Expected-To-Hold
/// property (§5 — ETF properties are never assumed, so their
/// counterexamples are not suppressed).
pub fn local_assumptions(sys: &TransitionSystem) -> Vec<PropertyId> {
    sys.property_ids()
        .filter(|&p| sys.property(p).expectation == Expectation::Hold)
        .collect()
}

/// Checks one property in the given context, handling the spurious-
/// counterexample retry of §7-A. Used by both the sequential and the
/// parallel drivers.
///
/// `pool` and `refresh` must be paired consistently: the incremental
/// drivers pass a long-lived pool with `refresh = true` (warm solvers
/// plus mid-run clause refresh from `db`), while the cold baseline
/// driver passes a *fresh* pool with `refresh = false` so the
/// measurement stays faithful to the pre-incremental behaviour. Mixing
/// the pairs compiles fine but benchmarks a hybrid that is neither.
#[allow(clippy::too_many_arguments)]
pub(crate) fn check_one(
    sys: &TransitionSystem,
    id: PropertyId,
    assumed: &[PropertyId],
    db: &ClauseDb,
    opts: &SeparateOptions,
    deadline: Option<Instant>,
    pool: &mut CtxPool,
    refresh: bool,
) -> PropertyResult {
    // The version is read *before* the snapshot: clauses published in
    // between are both in the snapshot and re-offered by the first
    // refresh, where deduplication drops them — never lost.
    let db_version = db.version();
    let imported = if opts.reuse {
        db.snapshot()
    } else {
        Vec::new()
    };
    // With re-use on, the engine can also poll the store mid-run, so a
    // long proof sees clauses published after its snapshot was taken.
    // The cold baseline driver disables this to stay faithful to the
    // pre-incremental behaviour it benchmarks against.
    let source: Option<(&dyn ClauseSource, u64)> = if opts.reuse && refresh {
        Some((db, db_version))
    } else {
        None
    };
    check_one_imports(sys, id, assumed, imported, source, opts, deadline, pool)
}

/// [`check_one`] with the imported clauses and refresh source supplied
/// by the caller — the clustered driver uses this to import its
/// cluster-scoped store eagerly while refreshing from a two-level
/// source. The caller is responsible for only supplying clauses that
/// are sound for the proof scope in `opts` (§6-B).
///
/// The whole check runs under `catch_unwind`: an engine panic (or an
/// injected chaos panic at the `check_one` fault site) degrades *this
/// property* to `Unknown(EngineFault)`, journals the panic payload as
/// a `fault` event, discards the worker's possibly-corrupted solver
/// context — the next check rebuilds a fresh one over the still-warm
/// shared encoding — and the run continues.
#[allow(clippy::too_many_arguments)]
pub(crate) fn check_one_imports(
    sys: &TransitionSystem,
    id: PropertyId,
    assumed: &[PropertyId],
    imported: Vec<japrove_logic::Clause>,
    source: Option<(&dyn ClauseSource, u64)>,
    opts: &SeparateOptions,
    deadline: Option<Instant>,
    pool: &mut CtxPool,
) -> PropertyResult {
    let started = Instant::now();
    let name = sys.property(id).name.clone();
    let backend = opts.backend_of(id);
    let checked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        check_one_unguarded(sys, id, assumed, imported, source, opts, deadline, pool)
    }));
    match checked {
        Ok(result) => result,
        Err(payload) => {
            pool.discard(backend);
            opts.journal.event(EventKind::Fault {
                site: "check_one".into(),
                detail: format!("{name}: {}", crate::pipeline::panic_detail(&payload)),
            });
            PropertyResult {
                id,
                name,
                outcome: CheckOutcome::Unknown(UnknownReason::EngineFault),
                scope: opts.scope,
                time: started.elapsed(),
                frames: 0,
                retried: false,
                backend,
                stats: Default::default(),
                cached: false,
            }
        }
    }
}

/// The body of [`check_one_imports`], without the supervision wrapper.
#[allow(clippy::too_many_arguments)]
fn check_one_unguarded(
    sys: &TransitionSystem,
    id: PropertyId,
    assumed: &[PropertyId],
    imported: Vec<japrove_logic::Clause>,
    source: Option<(&dyn ClauseSource, u64)>,
    opts: &SeparateOptions,
    deadline: Option<Instant>,
    pool: &mut CtxPool,
) -> PropertyResult {
    let started = Instant::now();
    let _span = opts
        .journal
        .span_labeled(Phase::Property, sys.property(id).name.as_str());
    japrove_obs::fault::fire("check_one", &sys.property(id).name);
    let mut budget = Budget::unlimited();
    match (opts.per_property, opts.property_timeout) {
        (Some(a), Some(b)) => budget = budget.with_timeout(a.min(b)),
        (Some(d), None) | (None, Some(d)) => budget = budget.with_timeout(d),
        (None, None) => {}
    }
    if let Some(d) = deadline {
        budget = budget.with_deadline(d);
    }
    let backend = opts.backend_of(id);
    let base = opts
        .ic3
        .lifting(opts.lifting)
        .budget(budget)
        .backend(backend);
    let ctx = pool.get(backend);
    let (mut outcome, mut stats) = ctx.check(sys, id, base, assumed, imported.clone(), source);
    let mut frames = stats.frames;
    let mut retried = false;

    // Spurious-CEX detection for local proofs with ignore-mode lifting:
    // the materialized trace is always a real trace of T, but its
    // prefix may violate an assumed property — then it is not a trace
    // of T^P and the property must be re-checked with lifting that
    // respects the constraints (§7-A).
    if opts.scope == Scope::Local && opts.lifting == Lifting::Ignore {
        if let CheckOutcome::Falsified(cex) = &outcome {
            let r = replay(sys, &cex.trace).expect("engine traces replay");
            let spurious =
                (0..cex.trace.len()).any(|k| r.violated_at(k).iter().any(|p| assumed.contains(p)));
            if spurious {
                retried = true;
                let strict = base.lifting(Lifting::Respect);
                let (o, s) = ctx.check(sys, id, strict, assumed, imported, source);
                outcome = o;
                frames = s.frames;
                // Both runs worked on this property; report their sum.
                stats.sat += s.sat;
                stats.queries += s.queries;
                stats.obligations += s.obligations;
                stats.generalized_lits += s.generalized_lits;
                stats.clauses = s.clauses;
                stats.frames = s.frames;
            }
        }
    }

    PropertyResult {
        id,
        name: sys.property(id).name.clone(),
        outcome,
        scope: opts.scope,
        time: started.elapsed(),
        frames,
        retried,
        backend,
        stats,
        cached: false,
    }
}

/// Checks a single property in an explicit context: assumption set,
/// clause store and options. Exposed for custom drivers (e.g. the
/// per-property probes of Table X); [`separate_verify`] is the
/// standard entry point.
pub fn check_one_property(
    sys: &TransitionSystem,
    id: PropertyId,
    assumed: &[PropertyId],
    db: &ClauseDb,
    opts: &SeparateOptions,
    deadline: Option<Instant>,
) -> PropertyResult {
    check_one(
        sys,
        id,
        assumed,
        db,
        opts,
        deadline,
        &mut CtxPool::new(sys),
        true,
    )
}

/// Runs separate verification over all properties.
///
/// With [`Scope::Local`] this is **JA-verification**: each property is
/// checked under the (possibly wrong) assumption that every ETH
/// property holds; the locally-failing properties form the debugging
/// set. With [`Scope::Global`] it is the plain one-property-at-a-time
/// baseline of Tables V/VI.
///
/// # Examples
///
/// ```
/// use japrove_aig::Aig;
/// use japrove_core::{separate_verify, SeparateOptions};
/// use japrove_tsys::{TransitionSystem, Word};
///
/// let mut aig = Aig::new();
/// let c = Word::latches(&mut aig, 4, 0);
/// let n = c.increment(&mut aig);
/// c.set_next(&mut aig, &n);
/// let ok = c.lt_const(&mut aig, 16);
/// let mut sys = TransitionSystem::new("cnt", aig);
/// sys.add_property("in_range", ok);
/// let report = separate_verify(&sys, &SeparateOptions::local());
/// assert_eq!(report.num_true(), 1);
/// ```
pub fn separate_verify(sys: &TransitionSystem, opts: &SeparateOptions) -> MultiReport {
    crate::Session::separate(opts.clone()).run(sys)
}

/// JA-verification (§4): separate verification with local proofs and
/// clause re-use. Equivalent to
/// `separate_verify(sys, &SeparateOptions::local())` but makes call
/// sites read like the paper.
pub fn ja_verify(sys: &TransitionSystem, opts: &SeparateOptions) -> MultiReport {
    let mut opts = opts.clone();
    opts.scope = Scope::Local;
    separate_verify(sys, &opts)
}
