//! Clustered verification: affinity clusters as the unit of work.
//!
//! Where [`crate::grouped_verify`] is the faithful §12 baseline
//! (greedy single-signal groups, joint verification per group, Unknown
//! verdicts left on the floor), this driver makes clustering a
//! first-class verification mode in the MPBMC spirit:
//!
//! 1. properties are clustered on the multi-signal **affinity graph**
//!    of [`crate::affinity`] (agglomerative merging under
//!    `max_group_size`);
//! 2. each cluster is verified as one unit. Under global scope a
//!    multi-property cluster first gets a budgeted **joint attempt**
//!    (one aggregate proof can cover the whole cluster — the grouped
//!    win on correct designs) run on the cluster's
//!    **cone-of-influence reduction**
//!    ([`TransitionSystem::restrict_to_cone`]): affinity clusters are
//!    cone-coherent, so the aggregate is encoded and solved on a
//!    fraction of the design; certificates and counterexamples are
//!    lifted back. Any member the attempt leaves Unknown — a
//!    *cluster-level Unknown* (budget out, spurious aggregate
//!    counterexample) — **falls back to a per-property check** on the
//!    worker's warm [`japrove_ic3::SolverCtx`], so clustering can
//!    never lose verdicts to grouping;
//! 3. clause re-use is **two-level** ([`crate::TwoLevelSource`]): each
//!    cluster owns a [`crate::ClauseDb`] whose clauses members import
//!    *eagerly* (cluster siblings share cones, so their clauses
//!    transfer best), layered over the global store whose clauses
//!    arrive lazily through the engine's mid-run refresh cursor. A
//!    finished cluster publishes its store globally;
//! 4. in the parallel driver, **clusters** are the unit of dispatch:
//!    they are dealt hardest-first (total latch-support size) into the
//!    same work-stealing deques the property-level driver uses.
//!
//! Under [`Scope::Local`](crate::Scope::Local) the joint attempt is skipped (aggregate
//! verdicts are global by construction) and the driver becomes
//! JA-verification with cluster-scoped clause locality.

use crate::affinity::AffinityMetric;
use crate::{JointOptions, MultiReport, SeparateOptions, Session};
use japrove_ic3::Ic3Options;
use japrove_obs::Journal;
use japrove_sat::{BackendChoice, Budget};
use japrove_tsys::TransitionSystem;

/// Conflict allowance of the default joint-attempt engine budget. The
/// attempt exists to harvest cheap whole-cluster proofs; anything
/// harder is the fallback's job, on a warm solver with clause re-use.
const DEFAULT_JOINT_CONFLICTS: u64 = 20_000;

/// Options for clustered verification.
///
/// Mirrors [`crate::GroupingOptions`] (size cap, affinity threshold,
/// per-unit engine options) and adds the affinity metric, the
/// per-property fallback options and the joint-attempt switch.
///
/// The proof scope of [`ClusteredOptions::separate`] is honored:
/// [`Scope::Global`](crate::Scope::Global) (the default) yields globally valid verdicts
/// comparable to `joint`/`grouped`; [`Scope::Local`](crate::Scope::Local) turns the driver
/// into JA-verification with cluster-scoped clause re-use (and skips
/// the joint attempt, whose aggregate verdicts would be global). The
/// `order` field of the embedded options is ignored — clusters define
/// the schedule.
///
/// # Examples
///
/// ```
/// use japrove_core::{AffinityMetric, ClusteredOptions};
///
/// let opts = ClusteredOptions::new()
///     .metric(AffinityMetric::Jaccard)
///     .max_group_size(8)
///     .min_affinity(0.3);
/// assert_eq!(opts.max_group_size, 8);
/// assert_eq!(opts.min_affinity, 0.3);
/// ```
#[derive(Clone, Debug)]
pub struct ClusteredOptions {
    /// Affinity signal(s) scoring property pairs.
    pub metric: AffinityMetric,
    /// Upper bound on the number of properties per cluster.
    pub max_group_size: usize,
    /// Minimum (average-linkage) affinity for two clusters to merge.
    pub min_affinity: f64,
    /// Options for the per-property checks (scope, re-use, budgets,
    /// backend portfolio). `order` is ignored.
    pub separate: SeparateOptions,
    /// Attempt one budgeted joint proof per multi-property cluster
    /// before falling back per-property (global scope only).
    pub cluster_joint: bool,
    /// Options for the joint attempts; the default caps each aggregate
    /// engine run at a modest conflict budget so a stubborn cluster
    /// falls through to the fallback quickly.
    pub joint: JointOptions,
}

impl ClusteredOptions {
    /// Defaults: hybrid affinity, clusters of up to 16 at threshold
    /// 0.5, global-scope per-property fallback, budgeted joint
    /// attempts.
    pub fn new() -> Self {
        ClusteredOptions {
            metric: AffinityMetric::default(),
            max_group_size: 16,
            min_affinity: 0.5,
            separate: SeparateOptions::global(),
            cluster_joint: true,
            joint: JointOptions::new()
                .ic3(Ic3Options::new().budget(Budget::conflicts(DEFAULT_JOINT_CONFLICTS))),
        }
    }

    /// Sets the affinity metric.
    pub fn metric(mut self, metric: AffinityMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Sets the maximum cluster size.
    pub fn max_group_size(mut self, n: usize) -> Self {
        self.max_group_size = n;
        self
    }

    /// Sets the affinity threshold.
    ///
    /// Affinities are normalized, so only values in `[0, 1]` are
    /// meaningful; out-of-range values are clamped.
    ///
    /// # Panics
    ///
    /// Panics if `s` is NaN.
    pub fn min_affinity(mut self, s: f64) -> Self {
        assert!(!s.is_nan(), "min_affinity must not be NaN");
        self.min_affinity = s.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-property check options.
    pub fn separate(mut self, separate: SeparateOptions) -> Self {
        self.separate = separate;
        self
    }

    /// Enables or disables the per-cluster joint attempts.
    pub fn cluster_joint(mut self, yes: bool) -> Self {
        self.cluster_joint = yes;
        self
    }

    /// Sets the joint-attempt options.
    pub fn joint(mut self, joint: JointOptions) -> Self {
        self.joint = joint;
        self
    }

    /// Selects the SAT backend for both the joint attempts and the
    /// per-property fallback.
    pub fn backend(mut self, backend: BackendChoice) -> Self {
        self.separate.backend = backend;
        self.joint.backend = backend;
        self
    }

    /// Attaches an observability journal to the driver, its joint
    /// attempts and its per-property fallback.
    pub fn journal(mut self, journal: Journal) -> Self {
        self.separate.journal = journal.clone();
        self.joint.journal = journal;
        self
    }
}

impl Default for ClusteredOptions {
    fn default() -> Self {
        ClusteredOptions::new()
    }
}

/// Clustered verification on the current thread.
///
/// Equivalent to [`parallel_clustered_verify`] with one worker; the
/// module-level docs above describe the algorithm.
///
/// # Examples
///
/// ```
/// use japrove_aig::Aig;
/// use japrove_core::{clustered_verify, ClusteredOptions};
/// use japrove_tsys::{TransitionSystem, Word};
///
/// let mut aig = Aig::new();
/// let c = Word::latches(&mut aig, 4, 0);
/// let n = c.increment(&mut aig);
/// c.set_next(&mut aig, &n);
/// let ok = c.lt_const(&mut aig, 16);
/// let tight = c.le_const(&mut aig, 15);
/// let mut sys = TransitionSystem::new("cnt", aig);
/// sys.add_property("lt16", ok);
/// sys.add_property("le15", tight);
/// let report = clustered_verify(&sys, &ClusteredOptions::new());
/// assert_eq!(report.num_true(), 2);
/// assert_eq!(report.num_unsolved(), 0);
/// ```
pub fn clustered_verify(sys: &TransitionSystem, opts: &ClusteredOptions) -> MultiReport {
    parallel_clustered_verify(sys, 1, opts)
}

/// Clustered verification with `threads` worker threads; whole
/// clusters are the unit of the hardest-first work-stealing dispatch.
///
/// Verdicts match [`crate::separate_verify`] under the same
/// [`ClusteredOptions::separate`] options (the per-property fallback
/// guarantees nothing is lost to grouping); results are reported in
/// declaration order.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn parallel_clustered_verify(
    sys: &TransitionSystem,
    threads: usize,
    opts: &ClusteredOptions,
) -> MultiReport {
    Session::clustered(opts.clone(), threads).run(sys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{separate_verify, SeparateOptions};
    use japrove_aig::Aig;
    use japrove_tsys::Word;
    use std::time::Duration;

    /// Counters of varying depth with a mix of true and false
    /// properties; properties on the same counter share cones.
    fn mixed_sys() -> TransitionSystem {
        let mut aig = Aig::new();
        let mut props = Vec::new();
        for i in 0..4usize {
            let w = Word::latches(&mut aig, 3, 0);
            let n = w.increment(&mut aig);
            w.set_next(&mut aig, &n);
            let bound = if i % 2 == 0 { 8 } else { 3 + i as u64 };
            props.push((format!("p{i}a"), w.lt_const(&mut aig, bound)));
            props.push((
                format!("p{i}b"),
                w.le_const(&mut aig, bound.saturating_sub(1)),
            ));
        }
        let mut sys = TransitionSystem::new("mixed", aig);
        for (name, good) in props {
            sys.add_property(name, good);
        }
        sys
    }

    #[test]
    fn clustered_matches_separate_global() {
        let sys = mixed_sys();
        let sep = separate_verify(&sys, &SeparateOptions::global());
        for metric in [AffinityMetric::Jaccard, AffinityMetric::Hybrid] {
            let clu = clustered_verify(&sys, &ClusteredOptions::new().metric(metric));
            assert_eq!(sep.results.len(), clu.results.len());
            for (a, b) in sep.results.iter().zip(&clu.results) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.holds(), b.holds(), "{metric}/{}", a.name);
                assert_eq!(a.fails(), b.fails(), "{metric}/{}", a.name);
            }
            assert!(clu.method.contains("clustered-global"), "{}", clu.method);
        }
    }

    #[test]
    fn local_scope_matches_ja_and_skips_the_joint_attempt() {
        let sys = mixed_sys();
        let ja = crate::ja_verify(&sys, &SeparateOptions::local());
        let clu = clustered_verify(
            &sys,
            &ClusteredOptions::new().separate(SeparateOptions::local()),
        );
        assert!(clu.method.contains("clustered-ja"), "{}", clu.method);
        for (a, b) in ja.results.iter().zip(&clu.results) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.scope, b.scope);
            assert_eq!(a.holds(), b.holds(), "{}", a.name);
            assert_eq!(a.fails(), b.fails(), "{}", a.name);
        }
    }

    #[test]
    fn starved_joint_attempt_falls_back_without_losing_verdicts() {
        // A 1-conflict joint budget cannot decide anything: every
        // verdict must come from the per-property fallback.
        let sys = mixed_sys();
        let opts = ClusteredOptions::new()
            .joint(JointOptions::new().ic3(Ic3Options::new().budget(Budget::conflicts(1))));
        let clu = clustered_verify(&sys, &opts);
        assert_eq!(clu.num_unsolved(), 0, "{clu}");
        let sep = separate_verify(&sys, &SeparateOptions::global());
        for (a, b) in sep.results.iter().zip(&clu.results) {
            assert_eq!(a.holds(), b.holds(), "{}", a.name);
            assert_eq!(a.fails(), b.fails(), "{}", a.name);
        }
    }

    #[test]
    fn parallel_clustered_agrees_with_sequential() {
        let sys = mixed_sys();
        let seq = clustered_verify(&sys, &ClusteredOptions::new());
        for threads in [2usize, 4] {
            let par = parallel_clustered_verify(&sys, threads, &ClusteredOptions::new());
            assert_eq!(seq.results.len(), par.results.len());
            for (a, b) in seq.results.iter().zip(&par.results) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.holds(), b.holds(), "x{threads}/{}", a.name);
                assert_eq!(a.fails(), b.fails(), "x{threads}/{}", a.name);
            }
        }
    }

    #[test]
    fn disabled_reuse_still_decides_everything() {
        let sys = mixed_sys();
        let opts = ClusteredOptions::new().separate(SeparateOptions::global().reuse(false));
        let clu = clustered_verify(&sys, &opts);
        assert_eq!(clu.num_unsolved(), 0);
        assert_eq!(clu.results.len(), sys.num_properties());
    }

    #[test]
    fn total_timeout_marks_remaining_unsolved() {
        let sys = mixed_sys();
        let opts = ClusteredOptions::new()
            .cluster_joint(false)
            .separate(SeparateOptions::global().total_timeout(Duration::ZERO));
        let clu = clustered_verify(&sys, &opts);
        assert_eq!(clu.num_unsolved(), sys.num_properties());
    }

    #[test]
    fn zero_properties_yield_an_empty_report() {
        let mut aig = Aig::new();
        let l = aig.add_latch(false);
        aig.set_next(l, l);
        let sys = TransitionSystem::new("empty", aig);
        let report = parallel_clustered_verify(&sys, 4, &ClusteredOptions::new());
        assert!(report.results.is_empty());
    }

    #[test]
    fn min_affinity_is_validated_like_grouping_options() {
        assert_eq!(ClusteredOptions::new().min_affinity(-2.0).min_affinity, 0.0);
        assert_eq!(ClusteredOptions::new().min_affinity(3.0).min_affinity, 1.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_min_affinity_panics() {
        let _ = ClusteredOptions::new().min_affinity(f64::NAN);
    }
}
