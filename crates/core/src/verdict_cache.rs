//! The persistent verdict cache: skip re-verifying properties whose
//! cones did not change.
//!
//! Entries are keyed by `(structural hash of the property's
//! cone-of-influence reduction, property name)`. The cone hash is the
//! whole point: after a small design edit, only the properties whose
//! cones the edit actually reaches get a new hash — everything else
//! hits the cache and is *re-certified* instead of re-solved. That is
//! the groundwork for the verification-as-a-service ROADMAP item,
//! where the same design family is resubmitted over and over.
//!
//! # Soundness
//!
//! Only **global** verdicts are cacheable. A local (JA) verdict is
//! relative to the assumption set — the other ETH properties of the
//! *whole design* — which the cone hash does not capture; caching one
//! could replay a verdict under assumptions that no longer exist. The
//! pipeline therefore only consults and fills the cache under
//! [`crate::Scope::Global`].
//!
//! Entries carry enough evidence to be re-checked, and the pipeline
//! never trusts one blindly:
//!
//! * a `holds` entry stores the certificate clauses *in reduced-cone
//!   latch indices*; on a hit they are verified on the reduced system
//!   and then lifted index-for-index onto the current design (the same
//!   argument that makes the clustered driver's certificate lifting
//!   sound: the kept latches evolve identically);
//! * a `fails` entry stores the counterexample's *reduced* input
//!   vectors; on a hit they are lifted, completed by simulation and
//!   replayed — the trace must still falsify the property.
//!
//! An entry that fails its re-check is treated as a miss, never an
//! error. `unknown` verdicts are never cached.

use japrove_obs::json::Value;
use japrove_obs::persist;
use std::io;
use std::path::Path;

/// One cached verdict with its re-checkable evidence.
#[derive(Clone, Debug, PartialEq)]
pub struct CacheEntry {
    /// Structural hash of the property's cone reduction, fixed-width
    /// hex.
    pub cone: String,
    /// The property's name.
    pub property: String,
    /// `holds` or `fails` (never `unknown`).
    pub verdict: String,
    /// For `holds`: certificate clauses over reduced latch variables,
    /// each literal as a signed 1-based index (`-3` = latch 2 negated).
    pub clauses: Vec<Vec<i64>>,
    /// For `fails`: per-step input vectors of the reduced system.
    pub inputs: Vec<Vec<bool>>,
    /// For `fails`: the counterexample depth (number of transitions).
    pub depth: u64,
}

impl CacheEntry {
    fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("cone".into(), Value::Str(self.cone.clone())),
            ("property".into(), Value::Str(self.property.clone())),
            ("verdict".into(), Value::Str(self.verdict.clone())),
            (
                "clauses".into(),
                Value::Arr(
                    self.clauses
                        .iter()
                        .map(|c| Value::Arr(c.iter().map(|&l| Value::Int(l)).collect()))
                        .collect(),
                ),
            ),
            (
                "inputs".into(),
                Value::Arr(
                    self.inputs
                        .iter()
                        .map(|step| Value::Arr(step.iter().map(|&b| Value::Bool(b)).collect()))
                        .collect(),
                ),
            ),
            ("depth".into(), Value::Int(self.depth as i64)),
        ])
    }

    fn from_json(v: &Value) -> Option<CacheEntry> {
        let s = |name: &str| v.get(name).and_then(Value::as_str).map(str::to_string);
        let entry = CacheEntry {
            cone: s("cone")?,
            property: s("property")?,
            verdict: s("verdict")?,
            clauses: match v.get("clauses")? {
                Value::Arr(cs) => cs
                    .iter()
                    .map(|c| match c {
                        Value::Arr(lits) => lits.iter().map(Value::as_i64).collect(),
                        _ => None,
                    })
                    .collect::<Option<_>>()?,
                _ => return None,
            },
            inputs: match v.get("inputs")? {
                Value::Arr(steps) => steps
                    .iter()
                    .map(|step| match step {
                        Value::Arr(bits) => bits.iter().map(Value::as_bool).collect(),
                        _ => None,
                    })
                    .collect::<Option<_>>()?,
                _ => return None,
            },
            depth: v.get("depth")?.as_u64()?,
        };
        // A literal of value 0 has no latch; a stale entry carrying one
        // is malformed, not a crash.
        let lits_ok = entry.clauses.iter().flatten().all(|&l| l != 0);
        (lits_ok && matches!(entry.verdict.as_str(), "holds" | "fails")).then_some(entry)
    }
}

/// A load-merge-save collection of [`CacheEntry`]s keyed by
/// `(cone, property)`, stored as JSONL.
///
/// # Examples
///
/// ```
/// use japrove_core::{CacheEntry, VerdictCache};
///
/// let mut cache = VerdictCache::default();
/// cache.upsert(CacheEntry {
///     cone: "00000000deadbeef".into(),
///     property: "p0".into(),
///     verdict: "holds".into(),
///     clauses: vec![vec![1, -2]],
///     inputs: vec![],
///     depth: 0,
/// });
/// assert!(cache.get("00000000deadbeef", "p0").is_some());
/// assert!(cache.get("00000000deadbeef", "p1").is_none());
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VerdictCache {
    entries: Vec<CacheEntry>,
}

impl VerdictCache {
    /// Loads a cache from a JSONL file, skipping malformed, stale or
    /// checksum-failing lines; returns the cache and the number of
    /// skipped lines. A missing file is an empty cache (first run).
    /// Like the feature store's lossy loader, a half-corrupted cache
    /// degrades to misses, never a panic.
    pub fn load_lossy(path: impl AsRef<Path>) -> Result<(VerdictCache, usize), io::Error> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Ok((VerdictCache::default(), 0))
            }
            Err(e) => return Err(e),
        };
        let mut cache = VerdictCache::default();
        let mut skipped = 0usize;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match persist::decode_line(line)
                .ok()
                .and_then(|body| Value::parse(body).ok())
                .and_then(|v| CacheEntry::from_json(&v))
            {
                Some(entry) => cache.upsert(entry),
                None => skipped += 1,
            }
        }
        Ok((cache, skipped))
    }

    /// Writes the cache back as JSONL, one checksummed entry per line,
    /// through [`persist::atomic_write`] — a crash between saves leaves
    /// either the old or the new complete cache, never a torn file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), io::Error> {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&persist::encode_line(&e.to_json().to_string()));
            out.push('\n');
        }
        persist::atomic_write(path, &out, "verdict_cache_save")
    }

    /// Inserts `entry`, replacing any existing entry with the same
    /// `(cone, property)` key.
    pub fn upsert(&mut self, entry: CacheEntry) {
        match self
            .entries
            .iter_mut()
            .find(|e| e.cone == entry.cone && e.property == entry.property)
        {
            Some(existing) => *existing = entry,
            None => self.entries.push(entry),
        }
    }

    /// The entry for `(cone, property)`, if present.
    pub fn get(&self, cone: &str, property: &str) -> Option<&CacheEntry> {
        self.entries
            .iter()
            .find(|e| e.cone == cone && e.property == property)
    }

    /// Number of cached verdicts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the cache has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(property: &str, verdict: &str) -> CacheEntry {
        CacheEntry {
            cone: "0123456789abcdef".into(),
            property: property.into(),
            verdict: verdict.into(),
            clauses: vec![vec![1, -2], vec![3]],
            inputs: vec![vec![true, false], vec![false, false]],
            depth: 1,
        }
    }

    #[test]
    fn round_trip_and_upsert() {
        let dir = std::env::temp_dir().join(format!("japrove_vcache_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.jsonl");
        let mut cache = VerdictCache::default();
        cache.upsert(entry("p0", "holds"));
        cache.upsert(entry("p1", "fails"));
        cache.upsert(entry("p0", "fails")); // replaces
        assert_eq!(cache.len(), 2);
        cache.save(&path).unwrap();
        let (loaded, skipped) = VerdictCache::load_lossy(&path).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(loaded, cache);
        assert_eq!(
            loaded.get("0123456789abcdef", "p0").unwrap().verdict,
            "fails"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_an_empty_cache() {
        let (cache, skipped) =
            VerdictCache::load_lossy("/nonexistent/japrove/cache.jsonl").unwrap();
        assert!(cache.is_empty());
        assert_eq!(skipped, 0);
    }

    #[test]
    fn malformed_and_stale_lines_are_skipped_with_a_count() {
        let dir = std::env::temp_dir().join(format!("japrove_vcache_bad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.jsonl");
        let good = entry("p0", "holds").to_json().to_string();
        let stale_verdict = entry("p1", "unknown").to_json().to_string();
        let zero_lit = CacheEntry {
            clauses: vec![vec![0]],
            ..entry("p2", "holds")
        }
        .to_json()
        .to_string();
        std::fs::write(
            &path,
            format!("{good}\nnot json\n{stale_verdict}\n{zero_lit}\n{{\"cone\":1}}\n"),
        )
        .unwrap();
        let (cache, skipped) = VerdictCache::load_lossy(&path).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(skipped, 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_checksummed_lines_are_skipped() {
        let dir = std::env::temp_dir().join(format!("japrove_vcache_torn_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.jsonl");
        let mut cache = VerdictCache::default();
        cache.upsert(entry("p0", "holds"));
        cache.upsert(entry("p1", "fails"));
        cache.save(&path).unwrap();
        // Tear the file mid-way through the last line, like a crashed
        // legacy (non-atomic) writer would have.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 20]).unwrap();
        let (loaded, skipped) = VerdictCache::load_lossy(&path).unwrap();
        assert_eq!(skipped, 1, "the torn line is skipped, not fatal");
        assert_eq!(loaded.len(), 1);
        assert!(loaded.get("0123456789abcdef", "p0").is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
