//! Structural property grouping — the related-work baseline of §12.
//!
//! The paper contrasts JA-verification with the structure-aware
//! approaches of Cabodi & Nocco (DATE'11) and Camurati et al.
//! (DIFTS'14): group properties with similar cones of influence and
//! verify each group jointly. This module implements that baseline —
//! greedy clustering by Jaccard similarity of the sequential latch
//! cones — so the two philosophies can be compared head to head
//! (`grouping_ablation` in the bench crate).
//!
//! As §12 predicts, grouping favours *correct* designs and struggles
//! when broken properties fail for different reasons with vastly
//! different counterexamples.
//!
//! This greedy single-signal grouping is kept as the *baseline*; the
//! first-class clustering mode that superseded it lives in
//! [`crate::affinity`] (multi-signal affinity graph, agglomerative
//! merging) and [`crate::clustered_verify`] (per-cluster verification
//! with cluster-scoped clause re-use and a per-property fallback that
//! can never lose verdicts). Reach for [`grouped_verify`] only when
//! you specifically want the §12 comparison point.

use crate::{joint_verify, JointOptions, MultiReport};
use japrove_tsys::{PropertyId, TransitionSystem};
use std::time::Instant;

/// Options for grouped verification.
///
/// # Examples
///
/// ```
/// use japrove_core::GroupingOptions;
/// let opts = GroupingOptions::new().max_group_size(8).min_similarity(0.3);
/// assert_eq!(opts.max_group_size, 8);
/// ```
#[derive(Clone, Debug)]
pub struct GroupingOptions {
    /// Upper bound on the number of properties per group.
    pub max_group_size: usize,
    /// Minimum Jaccard similarity of latch cones for two properties to
    /// share a group.
    pub min_similarity: f64,
    /// Options for the per-group joint runs.
    pub joint: JointOptions,
}

impl GroupingOptions {
    /// Defaults: groups of up to 16, similarity threshold 0.5.
    pub fn new() -> Self {
        GroupingOptions {
            max_group_size: 16,
            min_similarity: 0.5,
            joint: JointOptions::new(),
        }
    }

    /// Sets the maximum group size.
    pub fn max_group_size(mut self, n: usize) -> Self {
        self.max_group_size = n;
        self
    }

    /// Sets the similarity threshold.
    ///
    /// The threshold is a Jaccard similarity, so only values in
    /// `[0, 1]` are meaningful; out-of-range values are clamped (below
    /// 0 every pair qualifies, above 1 none does — both silently
    /// produced degenerate groupings before this was validated).
    ///
    /// # Panics
    ///
    /// Panics if `s` is NaN.
    pub fn min_similarity(mut self, s: f64) -> Self {
        assert!(!s.is_nan(), "min_similarity must not be NaN");
        self.min_similarity = s.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-group joint options.
    pub fn joint(mut self, joint: JointOptions) -> Self {
        self.joint = joint;
        self
    }
}

impl Default for GroupingOptions {
    fn default() -> Self {
        GroupingOptions::new()
    }
}

/// The latch support of each property (its sequential cone of
/// influence restricted to latches), as sorted index lists. The
/// parallel driver uses the support sizes to schedule hardest-first.
pub(crate) fn latch_supports(sys: &TransitionSystem) -> Vec<Vec<usize>> {
    sys.property_ids().map(|p| sys.latch_support(p)).collect()
}

pub(crate) fn jaccard(a: &[usize], b: &[usize]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let mut inter = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// Greedily clusters properties by cone-of-influence similarity.
///
/// Properties are scanned in declaration order; each unassigned
/// property seeds a group, which absorbs later properties whose latch
/// cones are at least `min_similarity`-similar (Jaccard), up to
/// `max_group_size`.
///
/// # Examples
///
/// ```
/// use japrove_aig::Aig;
/// use japrove_core::{cluster_properties, GroupingOptions};
/// use japrove_tsys::{TransitionSystem, Word};
///
/// // Two independent counters: their properties must not share a group.
/// let mut aig = Aig::new();
/// let a = Word::latches(&mut aig, 3, 0);
/// let na = a.increment(&mut aig);
/// a.set_next(&mut aig, &na);
/// let b = Word::latches(&mut aig, 3, 0);
/// let nb = b.increment(&mut aig);
/// b.set_next(&mut aig, &nb);
/// let pa = a.lt_const(&mut aig, 5);
/// let pb = b.lt_const(&mut aig, 5);
/// let mut sys = TransitionSystem::new("two", aig);
/// sys.add_property("a_ok", pa);
/// sys.add_property("b_ok", pb);
/// let groups = cluster_properties(&sys, &GroupingOptions::new());
/// assert_eq!(groups.len(), 2);
/// ```
pub fn cluster_properties(sys: &TransitionSystem, opts: &GroupingOptions) -> Vec<Vec<PropertyId>> {
    let supports = latch_supports(sys);
    let n = sys.num_properties();
    let mut assigned = vec![false; n];
    let mut groups = Vec::new();
    for seed in 0..n {
        if assigned[seed] {
            continue;
        }
        assigned[seed] = true;
        let mut group = vec![PropertyId::new(seed)];
        for cand in (seed + 1)..n {
            if assigned[cand] || group.len() >= opts.max_group_size {
                continue;
            }
            if jaccard(&supports[seed], &supports[cand]) >= opts.min_similarity {
                assigned[cand] = true;
                group.push(PropertyId::new(cand));
            }
        }
        groups.push(group);
    }
    groups
}

/// Grouped verification: cluster by cone similarity, then verify each
/// group jointly. The related-work baseline compared against
/// JA-verification in the `grouping_ablation` experiment.
///
/// Prefer [`crate::clustered_verify`] for actual verification work: it
/// clusters on a richer affinity graph, re-uses clauses at cluster
/// scope, and falls back per-property instead of leaving verdicts
/// Unknown when a group resists joint solving. This function is kept
/// as the faithful §12 comparison point.
pub fn grouped_verify(sys: &TransitionSystem, opts: &GroupingOptions) -> MultiReport {
    let started = Instant::now();
    let groups = cluster_properties(sys, opts);
    let mut report = MultiReport::new(
        sys.name(),
        format!("grouped-joint ({} groups)", groups.len()),
    );
    for group in groups {
        let sub = joint_verify(sys, &opts.joint.clone().subset(group));
        report.results.extend(sub.results);
    }
    // Restore declaration order for comparability.
    report.results.sort_by_key(|r| r.id);
    report.total_time = started.elapsed();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ja_verify, SeparateOptions};
    use japrove_aig::Aig;
    use japrove_tsys::Word;

    /// Three counters; two properties on the first, one on each other.
    fn sys_with_shared_cones() -> TransitionSystem {
        let mut aig = Aig::new();
        let mut words = Vec::new();
        for _ in 0..3 {
            let w = Word::latches(&mut aig, 3, 0);
            let n = w.increment(&mut aig);
            w.set_next(&mut aig, &n);
            words.push(w);
        }
        let p0a = words[0].lt_const(&mut aig, 5);
        let p0b = words[0].le_const(&mut aig, 6);
        let p1 = words[1].lt_const(&mut aig, 5);
        let p2 = words[2].lt_const(&mut aig, 5);
        let mut sys = TransitionSystem::new("three", aig);
        sys.add_property("c0_lt8", p0a);
        sys.add_property("c1_lt8", p1);
        sys.add_property("c0_le7", p0b);
        sys.add_property("c2_lt8", p2);
        sys
    }

    #[test]
    fn clustering_groups_shared_cones() {
        let sys = sys_with_shared_cones();
        let groups = cluster_properties(&sys, &GroupingOptions::new());
        assert_eq!(groups.len(), 3);
        // The group seeded by property 0 contains property 2 (same cone).
        let first = &groups[0];
        assert!(first.contains(&PropertyId::new(0)));
        assert!(first.contains(&PropertyId::new(2)));
    }

    #[test]
    fn max_group_size_is_respected() {
        let sys = sys_with_shared_cones();
        let groups = cluster_properties(&sys, &GroupingOptions::new().max_group_size(1));
        assert_eq!(groups.len(), 4);
    }

    #[test]
    fn grouped_verification_finds_all_failures() {
        // The free counters all exceed their bounds: every property is
        // false globally; grouped-joint must refute each of them.
        let sys = sys_with_shared_cones();
        let grouped = grouped_verify(&sys, &GroupingOptions::new());
        assert_eq!(grouped.num_false(), 4);
    }

    #[test]
    fn grouping_vs_ja_exposes_the_section_12_contrast() {
        // "c0 <= 6" is shadowed by "c0 < 5" on the same counter: the
        // grouped (global) approach refutes it with a deeper
        // counterexample, while JA proves it *locally* — its failure is
        // never first. This is exactly the §12 observation that
        // grouping does not provide debugging-set information.
        let sys = sys_with_shared_cones();
        let grouped = grouped_verify(&sys, &GroupingOptions::new());
        let ja = ja_verify(&sys, &SeparateOptions::local());
        let shadowed = PropertyId::new(2); // c0_le6
        assert!(grouped.result(shadowed).expect("present").fails());
        assert!(ja.result(shadowed).expect("present").holds());
        // The other three failures are unshadowed: both approaches
        // refute them.
        for id in [0usize, 1, 3].map(PropertyId::new) {
            assert!(grouped.result(id).expect("present").fails());
            assert!(ja.result(id).expect("present").fails());
        }
    }

    #[test]
    fn min_similarity_is_clamped_into_the_unit_interval() {
        // Regression: out-of-range thresholds used to pass through
        // unchecked. Below 0 everything clustered together; above 1
        // (or NaN) nothing ever did.
        assert_eq!(
            GroupingOptions::new().min_similarity(-3.5).min_similarity,
            0.0
        );
        assert_eq!(
            GroupingOptions::new().min_similarity(7.0).min_similarity,
            1.0
        );
        assert_eq!(
            GroupingOptions::new().min_similarity(0.25).min_similarity,
            0.25
        );
        // A clamped threshold of 0 must still respect max_group_size.
        let sys = sys_with_shared_cones();
        let opts = GroupingOptions::new()
            .min_similarity(-1.0)
            .max_group_size(2);
        for group in cluster_properties(&sys, &opts) {
            assert!(group.len() <= 2);
        }
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_min_similarity_panics() {
        let _ = GroupingOptions::new().min_similarity(f64::NAN);
    }

    #[test]
    fn jaccard_basics() {
        assert_eq!(jaccard(&[], &[]), 1.0);
        assert_eq!(jaccard(&[1, 2], &[1, 2]), 1.0);
        assert_eq!(jaccard(&[1, 2], &[3, 4]), 0.0);
        assert!((jaccard(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-9);
    }
}
