//! Post-verdict counterexample enumeration and XOR-hash bad-state
//! counting.
//!
//! A Falsified verdict carries one witness; production triage asks
//! "how many distinct ways does this property fail, and show me a
//! diverse sample". This module answers both questions for every
//! falsified property of a finished [`MultiReport`]:
//!
//! * **Enumeration** — re-solve the BMC unrolling at the property's
//!   *minimal* counterexample depth, blocking each found model on a
//!   user-selectable *projection set* (the input stimulus of the
//!   whole trace, or the final-state values of the property cone's
//!   latch support) until the set is exhausted or `--enum-max`
//!   witnesses were collected. Every witness is replay-checked on the
//!   netlist before it is reported, like lifted cluster
//!   counterexamples.
//! * **Counting** — an MBound-style estimate of how many distinct
//!   projection assignments fail: `s` random XOR parity constraints
//!   over the projection set (fresh seeded [`SplitMix64`] streams)
//!   are added via guarded clauses and retired per round; the largest
//!   `s*` whose rounds stay majority-SAT brackets the count as
//!   `[2^s* / ε, 2^(s*+1) · ε]`, with the slack factor ε and the
//!   nominal failure probability δ recorded on the estimate.
//!
//! Both passes share one warm [`Bmc`] across all properties of the
//! design — enumeration is repeated warm re-solving under retired
//! activation literals, never a cold re-encode. A panic inside one
//! property's round (the `enum_round` fault site) degrades only that
//! property's enumeration; verdicts are already settled by the time
//! this module runs.

use crate::pipeline::panic_detail;
use crate::MultiReport;
use japrove_ic3::{Bmc, BmcResult, Counterexample};
use japrove_logic::Var;
use japrove_obs::{fault, EventKind, Journal, Phase};
use japrove_rng::SplitMix64;
use japrove_sat::{BackendChoice, Budget, SolveResult};
use japrove_tsys::{replay, PropertyId, TransitionSystem};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::str::FromStr;

/// Distinct counterexamples below this many equivalence classes are
/// counted exactly (by enumeration) instead of hashed.
const EXACT_LIMIT: usize = 32;

/// The XOR-hash bracket slack, in powers of two. `s*` is the *last*
/// majority-SAT level, so the two guarantees anchor one level apart:
/// majority-SAT at `s*` refutes counts below `2^(s*-SLACK)` (Markov on
/// the survivor mean), while majority-UNSAT at `s*+1` refutes counts
/// above `2^(s*+1+SLACK)` (Chebyshev needs the mean ≥ `2^SLACK` *at
/// that level*). The estimate is therefore the asymmetric bracket
/// `[2^(s*-SLACK), 2^(s*+1+SLACK)]`.
const SLACK: usize = 2;

/// Which variables two counterexamples must differ on to count as
/// distinct (and which variables the counting hash ranges over).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Projection {
    /// The input stimulus of the whole trace: design inputs of every
    /// frame `0..=depth`. Distinct stimuli are distinct traces (the
    /// design is deterministic given its inputs).
    #[default]
    Inputs,
    /// The final-state values of the latches in the property cone's
    /// support: distinct assignments are distinct *bad states*,
    /// however many stimuli reach each.
    Latches,
}

impl Projection {
    /// Every projection, in display order.
    pub const ALL: &'static [Projection] = &[Projection::Inputs, Projection::Latches];

    /// The CLI / wire name.
    pub fn name(self) -> &'static str {
        match self {
            Projection::Inputs => "inputs",
            Projection::Latches => "latches",
        }
    }
}

impl fmt::Display for Projection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Projection {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Projection::ALL
            .iter()
            .copied()
            .find(|p| p.name() == s)
            .ok_or_else(|| {
                format!(
                    "unknown projection '{s}' (available: {})",
                    Projection::ALL
                        .iter()
                        .map(|p| p.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            })
    }
}

/// Options for the post-verdict enumeration pass.
///
/// # Examples
///
/// ```
/// use japrove_core::{EnumOptions, Projection};
///
/// let opts = EnumOptions::new()
///     .enumerate(true)
///     .count(true)
///     .projection(Projection::Latches)
///     .max_cexes(8);
/// assert_eq!(opts.projection, Projection::Latches);
/// ```
#[derive(Clone, Debug)]
pub struct EnumOptions {
    /// Collect distinct counterexamples.
    pub enumerate: bool,
    /// Estimate the number of distinct failing projection
    /// assignments.
    pub count: bool,
    /// Cap on collected counterexamples per property.
    pub max_cexes: usize,
    /// The projection set both passes range over.
    pub projection: Projection,
    /// Seed of the per-(property, level, trial) XOR constraint
    /// streams.
    pub seed: u64,
    /// Solver trials per XOR level (majority vote).
    pub trials: usize,
    /// Supervised re-attempts after a contained `enum_round` panic.
    pub retries: usize,
    /// SAT backend of the enumeration solver.
    pub backend: BackendChoice,
    /// Observability journal (`enum`/`count` spans, `enumerated`/
    /// `counted`/`fault` events).
    pub journal: Journal,
}

impl Default for EnumOptions {
    fn default() -> Self {
        EnumOptions {
            enumerate: false,
            count: false,
            max_cexes: 16,
            projection: Projection::default(),
            seed: 0,
            trials: 5,
            retries: 1,
            backend: BackendChoice::default(),
            journal: Journal::disabled(),
        }
    }
}

impl EnumOptions {
    /// Defaults: both passes off, 16 counterexamples, the `inputs`
    /// projection, 5 trials per XOR level, one supervised retry.
    pub fn new() -> Self {
        EnumOptions::default()
    }

    /// Enables/disables counterexample enumeration.
    pub fn enumerate(mut self, on: bool) -> Self {
        self.enumerate = on;
        self
    }

    /// Enables/disables XOR-hash counting.
    pub fn count(mut self, on: bool) -> Self {
        self.count = on;
        self
    }

    /// Sets the per-property counterexample cap.
    pub fn max_cexes(mut self, n: usize) -> Self {
        self.max_cexes = n;
        self
    }

    /// Sets the projection set.
    pub fn projection(mut self, p: Projection) -> Self {
        self.projection = p;
        self
    }

    /// Sets the XOR stream seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the trials per XOR level.
    pub fn trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the supervised re-attempt count.
    pub fn retries(mut self, retries: usize) -> Self {
        self.retries = retries;
        self
    }

    /// Sets the SAT backend.
    pub fn backend(mut self, backend: BackendChoice) -> Self {
        self.backend = backend;
        self
    }

    /// Attaches an observability journal.
    pub fn journal(mut self, journal: Journal) -> Self {
        self.journal = journal;
        self
    }
}

/// One enumerated witness: the replay-checked trace plus the
/// projection-set assignment it was blocked on.
#[derive(Clone, Debug)]
pub struct EnumeratedCex {
    /// The concrete witness (depth = the property's minimal
    /// counterexample depth).
    pub cex: Counterexample,
    /// The projection bits, in projection-set order; no two witnesses
    /// of one property agree on all of them.
    pub projection: Vec<bool>,
}

/// The `[lo, hi]` bad-assignment count estimate of one property.
#[derive(Clone, Debug)]
pub struct CountEstimate {
    /// Lower end (inclusive).
    pub lo: u64,
    /// Upper end (inclusive; saturates at `2^62`).
    pub hi: u64,
    /// `true` if the count was established by exhaustive enumeration
    /// (`lo == hi`, ε and δ are zero).
    pub exact: bool,
    /// The XOR level `s*` at the SAT/UNSAT boundary (0 when exact).
    pub level: usize,
    /// Solver trials per level.
    pub trials: usize,
    /// Multiplicative slack: the bracket is
    /// `[2^s* / ε, 2^(s*+1) · ε]` (asymmetric because `s*` is the last
    /// majority-SAT level while the upper guarantee anchors at the
    /// first majority-UNSAT one).
    pub epsilon: f64,
    /// Nominal probability the bracket misses, `0.5^trials` — the
    /// majority vote at each level must be wrong for the boundary to
    /// be misplaced.
    pub delta: f64,
}

/// The enumeration/counting outcome of one falsified property.
#[derive(Clone, Debug)]
pub struct PropertyEnumeration {
    /// Which property.
    pub id: PropertyId,
    /// Its name.
    pub name: String,
    /// The minimal counterexample depth the rounds ran at (re-derived
    /// by BMC — drivers may have reported a deeper witness).
    pub depth: usize,
    /// The projection set used.
    pub projection: Projection,
    /// Size of the projection set in bits.
    pub projection_bits: usize,
    /// Distinct replay-checked counterexamples (empty unless
    /// [`EnumOptions::enumerate`] was on).
    pub cexes: Vec<EnumeratedCex>,
    /// `true` if every equivalence class was enumerated (the final
    /// query was UNSAT), `false` if the cap stopped the round.
    pub exhausted: bool,
    /// Witnesses the replay check rejected (an engine bug if ever
    /// nonzero; they are excluded from `cexes`).
    pub rejected: usize,
    /// The count estimate (present iff [`EnumOptions::count`] was
    /// on and the round completed).
    pub count: Option<CountEstimate>,
    /// `true` if a contained panic (`enum_round` fault site) degraded
    /// this property's enumeration after the supervised retries. The
    /// property's *verdict* is unaffected — it settled before this
    /// pass ran.
    pub faulted: bool,
}

/// Runs the enumeration/counting pass over every falsified property
/// of `report`, sharing one warm BMC unrolling across properties.
///
/// Properties whose round panics are retried up to
/// [`EnumOptions::retries`] times on a fresh solver, then reported
/// with [`PropertyEnumeration::faulted`] — the pass never unwinds
/// into the caller and never touches the verdicts in `report`.
pub fn enumerate_report(
    sys: &TransitionSystem,
    report: &MultiReport,
    opts: &EnumOptions,
) -> Vec<PropertyEnumeration> {
    if !opts.enumerate && !opts.count {
        return Vec::new();
    }
    let falsified: Vec<(PropertyId, usize)> = report
        .results
        .iter()
        .filter_map(|r| r.counterexample().map(|cex| (r.id, cex.depth)))
        .collect();
    let mut out = Vec::new();
    let mut warm: Option<Bmc> = None;
    for (id, depth) in falsified {
        let name = sys.property(id).name.clone();
        let mut entry = None;
        for _attempt in 0..=opts.retries {
            // A panicking round poisons its solver; it is dropped with
            // the unwind and the retry (and the next property) starts
            // from a fresh encoding.
            let mut bmc = warm.take().unwrap_or_else(|| {
                let mut b = Bmc::with_backend(sys, opts.backend);
                b.set_journal(opts.journal.clone());
                b
            });
            let round = catch_unwind(AssertUnwindSafe(|| {
                fault::fire("enum_round", &name);
                let e = enumerate_one(&mut bmc, sys, id, &name, depth, opts);
                (bmc, e)
            }));
            match round {
                Ok((bmc, e)) => {
                    warm = Some(bmc);
                    entry = Some(e);
                    break;
                }
                Err(payload) => opts.journal.event(EventKind::Fault {
                    site: "enum_round".into(),
                    detail: panic_detail(payload.as_ref()),
                }),
            }
        }
        out.push(entry.unwrap_or(PropertyEnumeration {
            id,
            name,
            depth,
            projection: opts.projection,
            projection_bits: 0,
            cexes: Vec::new(),
            exhausted: false,
            rejected: 0,
            count: None,
            faulted: true,
        }));
    }
    out
}

fn enumerate_one(
    bmc: &mut Bmc,
    sys: &TransitionSystem,
    id: PropertyId,
    name: &str,
    depth: usize,
    opts: &EnumOptions,
) -> PropertyEnumeration {
    let mut entry = PropertyEnumeration {
        id,
        name: name.to_string(),
        depth,
        projection: opts.projection,
        projection_bits: 0,
        cexes: Vec::new(),
        exhausted: false,
        rejected: 0,
        count: None,
        faulted: false,
    };
    // Re-derive the minimal counterexample depth: the recorded witness
    // is an upper bound (IC3 traces need not be shallowest), and the
    // canonical depth is what makes enumeration driver-independent.
    let d = match bmc.run(&[id], depth, Budget::unlimited()) {
        BmcResult::Cex { cex, .. } => cex.depth,
        // Defensive: a falsified property always has a BMC witness at
        // its recorded depth; leave the entry empty if not.
        _ => return entry,
    };
    entry.depth = d;
    let projection: Vec<Var> = match opts.projection {
        Projection::Inputs => bmc.input_projection(d),
        Projection::Latches => bmc.state_projection(d, &sys.latch_support(id)),
    };
    entry.projection_bits = projection.len();
    if opts.enumerate {
        let _span = opts.journal.span_labeled(Phase::Enum, name);
        let round = bmc.enumerate_at(id, d, &projection, opts.max_cexes, Budget::unlimited());
        entry.exhausted = round.exhausted;
        for (cex, bits) in round.cexes {
            match replay(sys, &cex.trace) {
                Ok(r) if r.violates_finally(id) => entry.cexes.push(EnumeratedCex {
                    cex,
                    projection: bits,
                }),
                _ => entry.rejected += 1,
            }
        }
        opts.journal.event(EventKind::Enumerated {
            property: name.to_string(),
            depth: d,
            found: entry.cexes.len(),
            exhausted: entry.exhausted,
        });
    }
    if opts.count {
        let _span = opts.journal.span_labeled(Phase::Count, name);
        let est = count_one(bmc, id, d, &projection, opts);
        opts.journal.event(EventKind::Counted {
            property: name.to_string(),
            lo: est.lo,
            hi: est.hi,
            level: est.level,
            trials: est.trials,
            exact: est.exact,
        });
        entry.count = Some(est);
    }
    entry
}

/// The MBound-style up-search: exact below [`EXACT_LIMIT`], otherwise
/// the largest XOR level whose rounds stay majority-SAT, widened by
/// [`SLACK`] powers of two each way.
fn count_one(
    bmc: &mut Bmc,
    id: PropertyId,
    d: usize,
    projection: &[Var],
    opts: &EnumOptions,
) -> CountEstimate {
    let trials = opts.trials.max(1);
    let probe = bmc.enumerate_at(id, d, projection, EXACT_LIMIT, Budget::unlimited());
    let found = probe.cexes.len() as u64;
    if probe.exhausted {
        return CountEstimate {
            lo: found,
            hi: found,
            exact: true,
            level: 0,
            trials,
            epsilon: 0.0,
            delta: 0.0,
        };
    }
    let n = projection.len();
    let pow = |e: usize| 1u64 << e.min(62);
    let mut boundary = 0usize;
    for s in 1..=n {
        let mut sat = 0usize;
        for t in 0..trials {
            let mut rng = SplitMix64::seed_from_u64(stream_seed(opts.seed, id.index(), s, t));
            let xors: Vec<(Vec<Var>, bool)> = (0..s)
                .map(|_| {
                    // Each constraint draws every projection variable
                    // with probability 1/2, plus a fair parity bit —
                    // the pairwise-independent hash family of MBound.
                    let vars: Vec<Var> = projection
                        .iter()
                        .copied()
                        .filter(|_| rng.gen_bool())
                        .collect();
                    let parity = rng.gen_bool();
                    (vars, parity)
                })
                .collect();
            if bmc.solve_with_parity(id, d, &xors, Budget::unlimited()) == SolveResult::Sat {
                sat += 1;
            }
        }
        if sat * 2 > trials {
            boundary = s;
        } else {
            break;
        }
    }
    let lo = pow(boundary.saturating_sub(SLACK)).max(found);
    let hi = pow((boundary + 1 + SLACK).min(n)).max(lo);
    CountEstimate {
        lo,
        hi,
        exact: false,
        level: boundary,
        trials,
        epsilon: (1u64 << SLACK) as f64,
        delta: 0.5f64.powi(trials as i32),
    }
}

/// One SplitMix64 scramble keeps the per-(property, level, trial) XOR
/// streams independent of each other and of every other seeded stream
/// in the system.
fn stream_seed(seed: u64, prop: usize, level: usize, trial: usize) -> u64 {
    let mixed = seed ^ ((prop as u64) << 40) ^ ((level as u64) << 20) ^ trial as u64;
    SplitMix64::seed_from_u64(mixed).next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_parses_and_rejects() {
        assert_eq!("inputs".parse::<Projection>(), Ok(Projection::Inputs));
        assert_eq!("latches".parse::<Projection>(), Ok(Projection::Latches));
        let err = "states".parse::<Projection>().unwrap_err();
        assert!(err.contains("inputs, latches"), "{err}");
        for &p in Projection::ALL {
            assert_eq!(p.name().parse::<Projection>(), Ok(p));
            assert_eq!(p.to_string(), p.name());
        }
    }

    #[test]
    fn stream_seeds_are_distinct_and_stable() {
        let a = stream_seed(7, 1, 2, 3);
        assert_eq!(a, stream_seed(7, 1, 2, 3));
        assert_ne!(a, stream_seed(7, 1, 2, 4));
        assert_ne!(a, stream_seed(7, 1, 3, 3));
        assert_ne!(a, stream_seed(7, 2, 2, 3));
        assert_ne!(a, stream_seed(8, 1, 2, 3));
    }
}
