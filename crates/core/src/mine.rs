//! Composing property mining with the verification drivers.
//!
//! Mining ([`japrove_mine::mine`]) turns a bare design into a
//! `TransitionSystem` carrying hundreds-to-thousands of proved
//! invariants; [`mine_verify`] hands that system to *any* driver —
//! separate, JA, joint, grouped, clustered, parallel — and returns the
//! report next to the mining provenance. Because every promoted
//! candidate is k-induction-proved, a sound driver must report every
//! mined property as holding; [`MinedVerification::all_confirmed`]
//! checks exactly that, which is the cross-engine soundness oracle the
//! mining test-suite leans on.

use crate::MultiReport;
use japrove_mine::{mine, MineOptions, MiningOutcome};
use japrove_tsys::TransitionSystem;

/// A mining pass plus the verification of its product.
#[derive(Clone, Debug)]
pub struct MinedVerification {
    /// The mining product: the `<design>#mined` system, per-property
    /// kinds, and per-stage accounting.
    pub mined: MiningOutcome,
    /// The driver's verdicts over the mined properties.
    pub report: MultiReport,
}

impl MinedVerification {
    /// `true` iff the driver confirmed every mined property (proved
    /// invariants can never fail; an `Unknown` merely means the driver
    /// ran out of budget, a `Falsified` means a soundness bug).
    pub fn all_confirmed(&self) -> bool {
        self.mined
            .sys
            .property_ids()
            .all(|p| self.report.result(p).is_some_and(|r| r.holds()))
    }
}

/// Mines `sys` with `opts`, then runs `verify` on the mined system.
///
/// The closure receives the mined `TransitionSystem` and picks the
/// driver (and its options) — the composition point the CLI's
/// `--mine` flag goes through for every `--mode`.
///
/// # Examples
///
/// ```
/// use japrove_aig::Aig;
/// use japrove_core::{mine_verify, separate_verify, SeparateOptions};
/// use japrove_mine::MineOptions;
/// use japrove_tsys::TransitionSystem;
///
/// let mut aig = Aig::new();
/// let a = aig.add_latch(false);
/// let b = aig.add_latch(false);
/// aig.set_next(a, !a);
/// aig.set_next(b, !b);
/// let sys = TransitionSystem::new("toggles", aig);
///
/// let outcome = mine_verify(&sys, &MineOptions::new(), |mined| {
///     separate_verify(mined, &SeparateOptions::global())
/// });
/// assert!(outcome.mined.sys.num_properties() > 0);
/// assert!(outcome.all_confirmed());
/// ```
pub fn mine_verify<F>(sys: &TransitionSystem, opts: &MineOptions, verify: F) -> MinedVerification
where
    F: FnOnce(&TransitionSystem) -> MultiReport,
{
    let mined = mine(sys, opts);
    let report = verify(&mined.sys);
    MinedVerification { mined, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{clustered_verify, separate_verify, ClusteredOptions, SeparateOptions};
    use japrove_aig::Aig;
    use japrove_tsys::Word;

    fn counter_design() -> TransitionSystem {
        let mut aig = Aig::new();
        let c = Word::latches(&mut aig, 4, 0);
        let n = c.increment(&mut aig);
        c.set_next(&mut aig, &n);
        let stuck = aig.add_latch(false);
        aig.set_next(stuck, stuck);
        TransitionSystem::new("cnt", aig)
    }

    #[test]
    fn mined_properties_verify_under_any_driver() {
        let sys = counter_design();
        let opts = MineOptions::new();
        let separate = mine_verify(&sys, &opts, |m| {
            separate_verify(m, &SeparateOptions::global())
        });
        assert!(separate.mined.sys.num_properties() > 0);
        assert!(separate.all_confirmed(), "{}", separate.report.summary());

        let clustered = mine_verify(&sys, &opts, |m| {
            clustered_verify(m, &ClusteredOptions::new())
        });
        assert!(clustered.all_confirmed(), "{}", clustered.report.summary());
        assert_eq!(
            separate.mined.sys.num_properties(),
            clustered.mined.sys.num_properties(),
            "mining is deterministic across calls"
        );
    }
}
