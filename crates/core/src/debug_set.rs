//! Debugging-set guarantees (Propositions 2–6) as runtime checks.
//!
//! These validators re-check, on the concrete netlist, the claims
//! JA-verification makes about its output. They are used throughout
//! the test suite and exposed publicly so downstream users can audit
//! runs of their own designs.

use crate::{MultiReport, Scope};
use japrove_ic3::TsEncoding;
use japrove_logic::Clause;
use japrove_sat::{SolveResult, Solver};
use japrove_tsys::{replay, PropertyId, TransitionSystem};

/// Validates every local counterexample of a JA-verification report:
///
/// * the trace replays on the netlist (valid initialized trace),
/// * its final state falsifies the reported property,
/// * no ETH property is violated *before* the final state — the
///   defining guarantee of the debugging set (Prop. 6): a debugging-set
///   failure is not preceded by any other property failure.
///
/// # Errors
///
/// Returns a human-readable description of the first violated
/// guarantee.
pub fn validate_debugging_set(
    sys: &TransitionSystem,
    report: &MultiReport,
    assumed: &[PropertyId],
) -> Result<(), String> {
    for result in &report.results {
        if result.scope != Scope::Local || !result.fails() {
            continue;
        }
        let cex = result.counterexample().expect("failing result has a cex");
        let r =
            replay(sys, &cex.trace).map_err(|e| format!("{}: replay failed: {e}", result.name))?;
        if !r.violates_finally(result.id) {
            return Err(format!(
                "{}: final state does not falsify the property",
                result.name
            ));
        }
        for k in 0..cex.trace.len() {
            if let Some(&p) = r.violated_at(k).iter().find(|p| assumed.contains(p)) {
                return Err(format!(
                    "{}: assumed property {p} violated at step {k} (before the final state)",
                    result.name
                ));
            }
        }
    }
    Ok(())
}

/// Checks Proposition 5 on a pair of reports for the same design: if
/// every property holds locally, every property must hold globally.
///
/// # Errors
///
/// Returns a description of the disagreement, if any.
pub fn check_local_global_agreement(
    local: &MultiReport,
    global: &MultiReport,
) -> Result<(), String> {
    let all_local_hold = local.results.iter().all(|r| r.holds());
    if !all_local_hold {
        return Ok(()); // Prop. 5 only speaks about the all-hold case.
    }
    for r in &global.results {
        if r.fails() {
            return Err(format!(
                "{}: holds locally everywhere but fails globally — contradicts Prop. 5",
                r.name
            ));
        }
    }
    Ok(())
}

/// Verifies that a set of clauses (e.g. a [`crate::ClauseDb`]
/// snapshot) is a *sound re-use set*: the conjunction holds initially
/// and is inductive under the design constraints and the assumed
/// properties. Every clause of such a set holds in all reachable
/// states of the (projected) system, which is the §6-B condition for
/// seeding IC3 frames.
///
/// # Errors
///
/// Returns the index of the first clause violating a condition.
pub fn verify_reuse_soundness(
    sys: &TransitionSystem,
    assumed: &[PropertyId],
    clauses: &[Clause],
) -> Result<(), String> {
    let enc = TsEncoding::new(sys);
    for (i, clause) in clauses.iter().enumerate() {
        let init_ok = clause
            .lits()
            .iter()
            .any(|&l| enc.init_lits()[l.var().index() as usize] == l);
        if !init_ok {
            return Err(format!("clause {i} violated by the initial state"));
        }
    }
    let mut solver = Solver::new();
    enc.load_into(&mut solver);
    for clause in clauses {
        solver.add_clause(clause.lits().iter().copied());
    }
    for &c in enc.constraint_lits() {
        solver.add_clause([c]);
    }
    let assumed_lits: Vec<_> = assumed.iter().map(|&p| enc.good_lit(p)).collect();
    for (i, clause) in clauses.iter().enumerate() {
        let mut assumptions = assumed_lits.clone();
        for &l in clause.lits() {
            assumptions.push(!enc.primed(l));
        }
        if solver.solve(&assumptions) == SolveResult::Sat {
            return Err(format!("clause {i} is not inductive relative to the set"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ja_verify, separate_verify, SeparateOptions};
    use japrove_aig::Aig;
    use japrove_tsys::Word;

    /// Two-counter design: counter A must stay below 3 (fails at depth
    /// 3); counter B's property "B < 12" fails only after A's property
    /// already failed (B counts only while A >= 3 is impossible...
    /// simpler: B counts only when A is saturated).
    fn shadowed() -> TransitionSystem {
        let mut aig = Aig::new();
        let a = Word::latches(&mut aig, 3, 0);
        let a_next = a.increment(&mut aig);
        let a_sat = a.eq_const(&mut aig, 7);
        let hold = Word::mux(&mut aig, a_sat, &a, &a_next);
        a.set_next(&mut aig, &hold);
        // b increments only once a == 7.
        let b = Word::latches(&mut aig, 3, 0);
        let b_next = b.increment(&mut aig);
        let b_upd = Word::mux(&mut aig, a_sat, &b_next, &b);
        b.set_next(&mut aig, &b_upd);
        let pa = a.lt_const(&mut aig, 3);
        let pb = b.lt_const(&mut aig, 4);
        let mut sys = TransitionSystem::new("shadowed", aig);
        sys.add_property("a_lt3", pa);
        sys.add_property("b_lt4", pb);
        sys
    }

    #[test]
    fn debugging_set_guarantees_hold() {
        let sys = shadowed();
        let opts = SeparateOptions::local();
        let report = ja_verify(&sys, &opts);
        let assumed = crate::local_assumptions(&sys);
        // Only a_lt3 is in the debugging set: every CEX of b_lt4 first
        // violates a_lt3.
        assert_eq!(report.debugging_set().len(), 1);
        validate_debugging_set(&sys, &report, &assumed).expect("guarantees");
    }

    #[test]
    fn local_global_agreement_on_safe_design() {
        let mut aig = Aig::new();
        let c = Word::latches(&mut aig, 3, 0);
        let n = c.increment(&mut aig);
        c.set_next(&mut aig, &n);
        let p1 = c.lt_const(&mut aig, 8);
        let p2 = c.le_const(&mut aig, 7);
        let mut sys = TransitionSystem::new("safe", aig);
        sys.add_property("lt8", p1);
        sys.add_property("le7", p2);
        let local = ja_verify(&sys, &SeparateOptions::local());
        let global = separate_verify(&sys, &SeparateOptions::global());
        assert_eq!(local.num_true(), 2);
        check_local_global_agreement(&local, &global).expect("prop 5");
    }

    #[test]
    fn reuse_db_is_sound_after_ja() {
        let sys = shadowed();
        let report = ja_verify(&sys, &SeparateOptions::local());
        let assumed = crate::local_assumptions(&sys);
        // Re-derive the clause DB from the certificates in the report.
        let db = crate::ClauseDb::new();
        for r in &report.results {
            if let Some(cert) = r.outcome.certificate() {
                db.publish(cert.clauses.iter().cloned());
            }
        }
        verify_reuse_soundness(&sys, &assumed, &db.snapshot()).expect("sound reuse set");
    }
}
