//! The clause database of §7-B (`clauseDB`).
//!
//! Ja-ver maintains an external store of strengthening clauses: after
//! property `P1` is made inductive, the clauses of `G_P1` are recorded;
//! a later proof of `P2` initializes its frames with them, and appends
//! its own `G_P2`. Every clause in the store holds in all states
//! reachable under the (projected) transition relation, which is
//! exactly the soundness condition for seeding IC3 frames (§6-B).

use japrove_logic::Clause;
use std::sync::{Arc, Mutex, MutexGuard};

/// A shared, thread-safe store of strengthening clauses.
///
/// Clones share the same underlying store, so the sequential and the
/// parallel JA drivers use the same type.
///
/// # Examples
///
/// ```
/// use japrove_core::ClauseDb;
/// use japrove_logic::{Clause, Var};
///
/// let db = ClauseDb::new();
/// db.publish([Clause::unit(Var::new(0).neg())]);
/// assert_eq!(db.len(), 1);
/// let clone = db.clone();
/// assert_eq!(clone.len(), 1); // shared
/// ```
#[derive(Clone, Debug, Default)]
pub struct ClauseDb {
    clauses: Arc<Mutex<Vec<Clause>>>,
}

impl ClauseDb {
    /// Creates an empty store.
    pub fn new() -> Self {
        ClauseDb::default()
    }

    /// Locks the store; a panic while holding the lock cannot corrupt
    /// the clause vector, so poisoning is safely ignored.
    fn lock(&self) -> MutexGuard<'_, Vec<Clause>> {
        self.clauses.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Appends clauses, dropping duplicates and clauses subsumed by an
    /// existing entry. Returns how many were actually added.
    pub fn publish<I: IntoIterator<Item = Clause>>(&self, clauses: I) -> usize {
        let mut store = self.lock();
        let mut added = 0;
        for clause in clauses {
            let normalized = match clause.normalized() {
                Some(n) => n,
                None => continue, // tautology carries no information
            };
            if store.iter().any(|c| c.subsumes_sorted(&normalized)) {
                continue;
            }
            // Remove entries the new clause subsumes.
            store.retain(|c| !normalized.subsumes_sorted(c));
            store.push(normalized);
            added += 1;
        }
        added
    }

    /// A snapshot of the current clauses.
    pub fn snapshot(&self) -> Vec<Clause> {
        self.lock().clone()
    }

    /// Number of stored clauses.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Clears the store.
    pub fn clear(&self) {
        self.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use japrove_logic::Var;

    fn clause(lits: &[(u32, bool)]) -> Clause {
        Clause::from_lits(lits.iter().map(|&(v, n)| Var::new(v).lit(n)))
    }

    #[test]
    fn deduplicates() {
        let db = ClauseDb::new();
        assert_eq!(db.publish([clause(&[(0, true)]), clause(&[(0, true)])]), 1);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn subsumption_both_directions() {
        let db = ClauseDb::new();
        db.publish([clause(&[(0, true), (1, false)])]);
        // A stronger clause replaces the weaker one.
        assert_eq!(db.publish([clause(&[(0, true)])]), 1);
        assert_eq!(db.len(), 1);
        assert_eq!(db.snapshot()[0].len(), 1);
        // A weaker clause is not added.
        assert_eq!(db.publish([clause(&[(0, true), (2, false)])]), 0);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn tautologies_dropped() {
        let db = ClauseDb::new();
        assert_eq!(db.publish([clause(&[(0, true), (0, false)])]), 0);
        assert!(db.is_empty());
    }

    #[test]
    fn clones_share_state() {
        let db = ClauseDb::new();
        let other = db.clone();
        db.publish([clause(&[(3, false)])]);
        assert_eq!(other.len(), 1);
        other.clear();
        assert!(db.is_empty());
    }

    #[test]
    fn concurrent_publish() {
        let db = ClauseDb::new();
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let db = db.clone();
                s.spawn(move || {
                    for i in 0..50u32 {
                        db.publish([clause(&[(t * 100 + i, i % 2 == 0)])]);
                    }
                });
            }
        });
        assert_eq!(db.len(), 200);
    }
}
