//! The clause database of §7-B (`clauseDB`).
//!
//! Ja-ver maintains an external store of strengthening clauses: after
//! property `P1` is made inductive, the clauses of `G_P1` are recorded;
//! a later proof of `P2` initializes its frames with them, and appends
//! its own `G_P2`. Every clause in the store holds in all states
//! reachable under the (projected) transition relation, which is
//! exactly the soundness condition for seeding IC3 frames (§6-B).
//!
//! # Performance
//!
//! The store is built for the parallel driver's hot path, where every
//! worker publishes certificates and snapshots concurrently:
//!
//! * clauses are spread over [`NUM_SHARDS`] independently locked
//!   shards, so publishers serialize only per shard instead of on one
//!   global mutex;
//! * each shard keeps a **literal-occurrence index** plus a 64-bit
//!   **literal signature** per clause, turning both subsumption
//!   directions from full scans into a few candidate probes — the
//!   original `Vec` store made `publish` quadratic in the database
//!   size (see `clausedb_benches` in the bench crate);
//! * a monotone [`ClauseDb::version`] addition cursor plus an
//!   append-only log let long-running engines pull just the clauses
//!   published since their last poll ([`ClauseDb::clauses_since`],
//!   the O(delta) path behind the [`ClauseSource`] impl) instead of
//!   re-cloning the whole store.
//!
//! Sequential semantics are unchanged: a published clause is dropped
//! if some stored clause subsumes it, and evicts every stored clause
//! it subsumes. Under concurrent publishes, the home shard (where a
//! clause is inserted) is re-checked under a single lock, so an
//! *identical* clause can never be stored twice — identical clauses
//! share a home shard. Two *distinct* clauses where one subsumes the
//! other can race past each other's cross-shard checks and coexist
//! until a later publish covers the weaker one — harmless, because
//! every stored clause is sound on its own.

use japrove_ic3::ClauseSource;
use japrove_logic::Clause;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Number of independently locked shards. A small power of two: enough
/// to decongest an 8-worker driver, cheap to scan for snapshots.
const NUM_SHARDS: usize = 8;

/// A 64-bit Bloom-style literal signature: bit `h(l)` is set for every
/// literal `l` of the clause. `sig(a) & !sig(b) != 0` proves that `a`
/// contains a literal `b` lacks, i.e. `a` cannot subsume `b`.
fn signature(clause: &Clause) -> u64 {
    clause.iter().fold(0u64, |sig, &l| {
        sig | 1u64 << ((l.code() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58)
    })
}

/// One lock's worth of clauses plus its indexes. Slots are tombstoned
/// on eviction (`None`) and compacted once the dead outnumber the
/// live, so occurrence lists stay valid without per-eviction cleanup.
#[derive(Debug, Default)]
struct Shard {
    clauses: Vec<Option<Clause>>,
    sigs: Vec<u64>,
    /// Literal code → slots of clauses containing that literal.
    occur: HashMap<u32, Vec<u32>>,
    live: usize,
}

impl Shard {
    /// `true` if some stored clause subsumes `clause`. A subsuming
    /// clause's literals are all literals of `clause`, so it appears in
    /// the occurrence list of each of them — the union of those lists
    /// covers every candidate.
    fn subsumes_new(&self, clause: &Clause, sig: u64) -> bool {
        clause.iter().any(|l| {
            self.occur.get(&l.code()).is_some_and(|slots| {
                slots.iter().any(|&s| {
                    self.sigs[s as usize] & !sig == 0
                        && self.clauses[s as usize]
                            .as_ref()
                            .is_some_and(|c| c.len() <= clause.len() && c.subsumes_sorted(clause))
                })
            })
        })
    }

    /// Evicts every stored clause that `clause` subsumes. A subsumed
    /// clause contains *all* literals of `clause`, so probing the
    /// occurrence list of any single literal (the rarest one) suffices.
    fn evict_subsumed(&mut self, clause: &Clause, sig: u64) {
        let Some(probe) = clause
            .iter()
            .min_by_key(|l| self.occur.get(&l.code()).map_or(0, Vec::len))
        else {
            return; // the empty clause subsumes everything, but is never published
        };
        let slots = match self.occur.get(&probe.code()) {
            Some(slots) => slots.clone(),
            None => return,
        };
        for s in slots {
            let keep = match &self.clauses[s as usize] {
                Some(c) => {
                    sig & !self.sigs[s as usize] != 0
                        || clause.len() > c.len()
                        || !clause.subsumes_sorted(c)
                }
                None => true,
            };
            if !keep {
                self.clauses[s as usize] = None;
                self.live -= 1;
            }
        }
        self.maybe_compact();
    }

    fn insert(&mut self, clause: Clause, sig: u64) {
        let slot = self.clauses.len() as u32;
        for &l in clause.iter() {
            self.occur.entry(l.code()).or_default().push(slot);
        }
        self.clauses.push(Some(clause));
        self.sigs.push(sig);
        self.live += 1;
    }

    /// Rebuilds the slot vectors once tombstones outnumber live
    /// clauses, keeping occurrence lists short.
    fn maybe_compact(&mut self) {
        if self.clauses.len() < 32 || self.live * 2 > self.clauses.len() {
            return;
        }
        let old = std::mem::take(&mut self.clauses);
        self.sigs.clear();
        self.occur.clear();
        self.live = 0;
        for clause in old.into_iter().flatten() {
            let sig = signature(&clause);
            self.insert(clause, sig);
        }
    }
}

/// Cap on the addition log. Beyond it the oldest half is dropped
/// (advancing `base`), so the log cannot grow unboundedly past the
/// live store on eviction-heavy workloads. Readers whose cursor falls
/// behind the compacted window simply miss those mid-run additions —
/// clause re-use is best-effort, so that only costs redundant work,
/// never soundness.
const LOG_CAP: usize = 1 << 15;

/// The append-only addition log behind [`ClauseDb::clauses_since`].
/// `base` counts additions that were logged before the last
/// [`ClauseDb::clear`] or compaction, so cursors stay monotone.
#[derive(Debug, Default)]
struct AddLog {
    base: u64,
    clauses: Vec<Clause>,
}

#[derive(Debug, Default)]
struct DbInner {
    shards: [Mutex<Shard>; NUM_SHARDS],
    /// Every clause ever added, in addition order; the delta feed for
    /// mid-run refreshes (evictions are deliberately not reflected —
    /// a subsumed clause a reader already holds is merely redundant).
    log: Mutex<AddLog>,
    /// Total clauses ever added: the monotone cursor readers poll.
    version: AtomicU64,
}

/// A shared, thread-safe store of strengthening clauses.
///
/// Clones share the same underlying store, so the sequential and the
/// parallel JA drivers use the same type. The store implements
/// [`ClauseSource`], so engines can refresh their imported clauses
/// mid-run with [`japrove_ic3::SolverCtx::check`].
///
/// # Examples
///
/// ```
/// use japrove_core::ClauseDb;
/// use japrove_logic::{Clause, Var};
///
/// let db = ClauseDb::new();
/// db.publish([Clause::unit(Var::new(0).neg())]);
/// assert_eq!(db.len(), 1);
/// let clone = db.clone();
/// assert_eq!(clone.len(), 1); // shared
/// ```
#[derive(Clone, Debug, Default)]
pub struct ClauseDb {
    inner: Arc<DbInner>,
}

impl ClauseDb {
    /// Creates an empty store.
    pub fn new() -> Self {
        ClauseDb::default()
    }

    /// Locks one shard; a panic while holding the lock cannot corrupt
    /// the shard, so poisoning is safely ignored.
    fn lock(&self, i: usize) -> MutexGuard<'_, Shard> {
        self.inner.shards[i]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// The home shard of a clause: a hash of its (normalized) literals.
    fn shard_of(clause: &Clause) -> usize {
        let h = clause.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, &l| {
            (h ^ l.code() as u64).wrapping_mul(0x100_0000_01b3)
        });
        (h % NUM_SHARDS as u64) as usize
    }

    /// Appends clauses, dropping duplicates and clauses subsumed by an
    /// existing entry. Returns how many were actually added.
    pub fn publish<I: IntoIterator<Item = Clause>>(&self, clauses: I) -> usize {
        let mut added = 0;
        for clause in clauses {
            let normalized = match clause.normalized() {
                Some(n) => n,
                None => continue, // tautology carries no information
            };
            let sig = signature(&normalized);
            let home = ClauseDb::shard_of(&normalized);
            // Check and evict in the *other* shards first, one lock at
            // a time. The home shard is handled last, atomically:
            // identical clauses hash to the same home shard, so the
            // re-check under its lock makes duplicate inserts
            // impossible even under concurrent publishes.
            if (0..NUM_SHARDS)
                .filter(|&i| i != home)
                .any(|i| self.lock(i).subsumes_new(&normalized, sig))
            {
                continue;
            }
            for i in (0..NUM_SHARDS).filter(|&i| i != home) {
                self.lock(i).evict_subsumed(&normalized, sig);
            }
            {
                let mut shard = self.lock(home);
                if shard.subsumes_new(&normalized, sig) {
                    continue;
                }
                shard.evict_subsumed(&normalized, sig);
                shard.insert(normalized.clone(), sig);
            }
            {
                let mut log = self.inner.log.lock().unwrap_or_else(|e| e.into_inner());
                log.clauses.push(normalized);
                if log.clauses.len() > LOG_CAP {
                    let drop = log.clauses.len() / 2;
                    log.clauses.drain(..drop);
                    log.base += drop as u64;
                }
            }
            self.inner.version.fetch_add(1, Ordering::Release);
            added += 1;
        }
        added
    }

    /// A snapshot of the current clauses.
    pub fn snapshot(&self) -> Vec<Clause> {
        let mut out = Vec::new();
        for i in 0..NUM_SHARDS {
            out.extend(self.lock(i).clauses.iter().flatten().cloned());
        }
        out
    }

    /// The monotone addition cursor: the number of clauses ever added.
    /// Poll this (cheap) before paying for a [`ClauseDb::snapshot`] or
    /// [`ClauseDb::clauses_since`].
    pub fn version(&self) -> u64 {
        self.inner.version.load(Ordering::Acquire)
    }

    /// The clauses added after cursor `since` (a previous
    /// [`ClauseDb::version`] reading), plus the new cursor. This is the
    /// O(delta) refresh path engines use mid-run; a cursor from before
    /// the last [`ClauseDb::clear`] or log compaction re-delivers
    /// everything still logged, which readers deduplicate.
    pub fn clauses_since(&self, since: u64) -> (Vec<Clause>, u64) {
        let log = self.inner.log.lock().unwrap_or_else(|e| e.into_inner());
        let skip = since.saturating_sub(log.base) as usize;
        let fresh = log.clauses.iter().skip(skip).cloned().collect();
        (fresh, log.base + log.clauses.len() as u64)
    }

    /// Number of stored clauses.
    pub fn len(&self) -> usize {
        (0..NUM_SHARDS).map(|i| self.lock(i).live).sum()
    }

    /// `true` if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clears the store. The addition cursor stays monotone (readers
    /// holding an old cursor simply see no new clauses until the next
    /// publish).
    pub fn clear(&self) {
        for i in 0..NUM_SHARDS {
            let mut shard = self.lock(i);
            *shard = Shard::default();
        }
        let mut log = self.inner.log.lock().unwrap_or_else(|e| e.into_inner());
        log.base += log.clauses.len() as u64;
        log.clauses.clear();
    }
}

impl ClauseSource for ClauseDb {
    fn version(&self) -> u64 {
        ClauseDb::version(self)
    }

    fn clauses(&self) -> Vec<Clause> {
        self.snapshot()
    }

    fn clauses_since(&self, since: u64) -> (Vec<Clause>, u64) {
        ClauseDb::clauses_since(self, since)
    }
}

/// A cluster-scoped clause store layered over the global one: the
/// two-level [`ClauseSource`] of clustered verification.
///
/// The clustered driver gives every cluster its own [`ClauseDb`] and
/// imports its contents *eagerly* at the start of each member check —
/// clauses proved by cluster siblings are the most likely to transfer.
/// Clauses from the *global* store (published by other clusters) flow
/// in lazily through the engine's mid-run refresh: the source exposes
/// one combined monotone cursor, and a freshly built source is primed
/// so the first refresh delivers exactly the global clauses the eager
/// import skipped.
///
/// An unknown cursor (e.g. after the caller mixed sources) degrades to
/// a full two-store snapshot; readers deduplicate, so over-delivery
/// costs redundant work, never soundness.
///
/// # Examples
///
/// ```
/// use japrove_core::{ClauseDb, TwoLevelSource};
/// use japrove_ic3::ClauseSource;
/// use japrove_logic::{Clause, Var};
///
/// let cluster = ClauseDb::new();
/// let global = ClauseDb::new();
/// cluster.publish([Clause::unit(Var::new(0).neg())]);
/// global.publish([Clause::unit(Var::new(1).neg())]);
///
/// let source = TwoLevelSource::new(&cluster, &global);
/// // The primed cursor skips the (eagerly imported) cluster clause:
/// let (fresh, cursor) = source.clauses_since(source.primed_cursor());
/// assert_eq!(fresh, vec![Clause::unit(Var::new(1).neg())]);
/// // Later publishes to either store arrive as a delta.
/// global.publish([Clause::unit(Var::new(2).pos())]);
/// let (next, _) = source.clauses_since(cursor);
/// assert_eq!(next, vec![Clause::unit(Var::new(2).pos())]);
/// ```
#[derive(Debug)]
pub struct TwoLevelSource<'a> {
    cluster: &'a ClauseDb,
    global: &'a ClauseDb,
    /// `(combined, cluster, global)` cursors of the last hand-out, so
    /// a combined cursor can be decomposed back into per-store ones.
    cursors: Mutex<(u64, u64, u64)>,
}

impl<'a> TwoLevelSource<'a> {
    /// Layers `cluster` over `global`, primed at the *current* cluster
    /// version and global version 0: a reader that eagerly imported
    /// the cluster snapshot and starts refreshing from
    /// [`TwoLevelSource::primed_cursor`] receives every global clause
    /// plus only the cluster clauses published after construction.
    pub fn new(cluster: &'a ClauseDb, global: &'a ClauseDb) -> Self {
        let cv = cluster.version();
        TwoLevelSource {
            cluster,
            global,
            cursors: Mutex::new((cv, cv, 0)),
        }
    }

    /// The cursor to start refreshing from after an eager import of
    /// the cluster store (see [`TwoLevelSource::new`]).
    pub fn primed_cursor(&self) -> u64 {
        self.cursors.lock().unwrap_or_else(|e| e.into_inner()).0
    }
}

impl ClauseSource for TwoLevelSource<'_> {
    fn version(&self) -> u64 {
        // Both summands are monotone, so the combined cursor is too.
        self.cluster.version() + self.global.version()
    }

    fn clauses(&self) -> Vec<Clause> {
        let mut all = self.cluster.snapshot();
        all.extend(self.global.snapshot());
        all
    }

    fn clauses_since(&self, since: u64) -> (Vec<Clause>, u64) {
        let mut cur = self.cursors.lock().unwrap_or_else(|e| e.into_inner());
        let (fresh, cc, gc) = if since == cur.0 {
            let (mut a, cc) = self.cluster.clauses_since(cur.1);
            let (b, gc) = self.global.clauses_since(cur.2);
            a.extend(b);
            (a, cc, gc)
        } else {
            // Cursor from before this source's priming (or from another
            // source): resync with a full snapshot.
            let mut all = self.cluster.snapshot();
            all.extend(self.global.snapshot());
            (all, self.cluster.version(), self.global.version())
        };
        *cur = (cc + gc, cc, gc);
        (fresh, cc + gc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use japrove_logic::Var;

    fn clause(lits: &[(u32, bool)]) -> Clause {
        Clause::from_lits(lits.iter().map(|&(v, n)| Var::new(v).lit(n)))
    }

    #[test]
    fn deduplicates() {
        let db = ClauseDb::new();
        assert_eq!(db.publish([clause(&[(0, true)]), clause(&[(0, true)])]), 1);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn subsumption_both_directions() {
        let db = ClauseDb::new();
        db.publish([clause(&[(0, true), (1, false)])]);
        // A stronger clause replaces the weaker one.
        assert_eq!(db.publish([clause(&[(0, true)])]), 1);
        assert_eq!(db.len(), 1);
        assert_eq!(db.snapshot()[0].len(), 1);
        // A weaker clause is not added.
        assert_eq!(db.publish([clause(&[(0, true), (2, false)])]), 0);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn tautologies_dropped() {
        let db = ClauseDb::new();
        assert_eq!(db.publish([clause(&[(0, true), (0, false)])]), 0);
        assert!(db.is_empty());
    }

    #[test]
    fn clones_share_state() {
        let db = ClauseDb::new();
        let other = db.clone();
        db.publish([clause(&[(3, false)])]);
        assert_eq!(other.len(), 1);
        other.clear();
        assert!(db.is_empty());
    }

    #[test]
    fn version_moves_only_on_addition() {
        let db = ClauseDb::new();
        let v0 = db.version();
        db.publish([clause(&[(0, true), (1, true)])]);
        let v1 = db.version();
        assert!(v1 > v0);
        // Subsumed publish: no change, no cursor move.
        db.publish([clause(&[(0, true), (1, true), (2, true)])]);
        assert_eq!(db.version(), v1);
        // Clearing does not rewind the cursor.
        db.clear();
        assert_eq!(db.version(), v1);
        db.publish([clause(&[(5, false)])]);
        assert!(db.version() > v1);
    }

    #[test]
    fn clauses_since_returns_only_the_delta() {
        let db = ClauseDb::new();
        db.publish([clause(&[(0, true)]), clause(&[(1, false)])]);
        let (all, cursor) = db.clauses_since(0);
        assert_eq!(all.len(), 2);
        assert_eq!(cursor, db.version());
        let (none, same) = db.clauses_since(cursor);
        assert!(none.is_empty());
        assert_eq!(same, cursor);
        db.publish([clause(&[(2, true)])]);
        let (fresh, next) = db.clauses_since(cursor);
        assert_eq!(fresh, vec![clause(&[(2, true)])]);
        assert!(next > cursor);
        // A pre-clear cursor re-delivers whatever is still logged.
        db.clear();
        db.publish([clause(&[(3, true)])]);
        let (after_clear, _) = db.clauses_since(0);
        assert_eq!(after_clear, vec![clause(&[(3, true)])]);
    }

    #[test]
    fn addition_log_is_capped() {
        // 40k distinct unit clauses: the store keeps them all, but the
        // delta log compacts to stay within its cap.
        let db = ClauseDb::new();
        let n = 40_000u32;
        db.publish((0..n).map(|v| clause(&[(v, false)])));
        assert_eq!(db.len(), n as usize);
        assert_eq!(db.version(), u64::from(n));
        let (logged, cursor) = db.clauses_since(0);
        assert!(logged.len() <= LOG_CAP, "log holds {}", logged.len());
        assert_eq!(cursor, u64::from(n));
        // Recent additions are still delivered exactly.
        let (tail, _) = db.clauses_since(u64::from(n) - 5);
        assert_eq!(tail.len(), 5);
    }

    #[test]
    fn concurrent_identical_publishes_store_one_copy() {
        // The home-shard re-check under a single lock must make
        // duplicate inserts impossible whatever the interleaving.
        let db = ClauseDb::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let db = db.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        db.publish([clause(&[(7, true), (9, false)])]);
                    }
                });
            }
        });
        assert_eq!(db.len(), 1);
        assert_eq!(db.version(), 1);
    }

    #[test]
    fn subsumption_works_across_shards() {
        // Many multi-literal clauses spread over all shards; a unit
        // clause must evict every weaker clause wherever it lives, and
        // weaker clauses must be rejected regardless of their shard.
        let db = ClauseDb::new();
        let weaker: Vec<Clause> = (1..100u32)
            .map(|v| clause(&[(0, false), (v, v % 2 == 0)]))
            .collect();
        assert_eq!(db.publish(weaker.iter().cloned()), 99);
        assert_eq!(db.publish([clause(&[(0, false)])]), 1);
        assert_eq!(db.len(), 1, "unit must evict all 99 weaker clauses");
        assert_eq!(db.publish(weaker), 0);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn eviction_then_reinsert_compacts_cleanly() {
        let db = ClauseDb::new();
        for round in 0u32..6 {
            let cls: Vec<Clause> = (0..200u32)
                .map(|v| clause(&[(v, false), (1000 + round, true)]))
                .collect();
            db.publish(cls);
            // The stronger units evict all of this round's clauses.
            let units: Vec<Clause> = (0..200u32).map(|v| clause(&[(v, false)])).collect();
            db.publish(units);
            assert_eq!(db.len(), 200, "round {round}");
        }
    }

    #[test]
    fn large_store_stays_consistent_with_reference() {
        // Randomized differential against a straightforward reference
        // implementation.
        use japrove_rng::SplitMix64;
        let mut rng = SplitMix64::seed_from_u64(0xDB);
        let db = ClauseDb::new();
        let mut reference: Vec<Clause> = Vec::new();
        for _ in 0..600 {
            let len = 1 + (rng.next_u64() % 4) as usize;
            let c = Clause::from_lits(
                (0..len)
                    .map(|_| Var::new((rng.next_u64() % 24) as u32).lit(rng.next_u64() % 2 == 0)),
            );
            let Some(n) = c.normalized() else {
                assert_eq!(db.publish([c]), 0);
                continue;
            };
            let expect_add = !reference.iter().any(|r| r.subsumes_sorted(&n));
            if expect_add {
                reference.retain(|r| !n.subsumes_sorted(r));
                reference.push(n.clone());
            }
            assert_eq!(db.publish([c]) == 1, expect_add);
            assert_eq!(db.len(), reference.len());
        }
        let mut got = db.snapshot();
        let mut want = reference;
        got.sort_by(|a, b| a.lits().cmp(b.lits()));
        want.sort_by(|a, b| a.lits().cmp(b.lits()));
        assert_eq!(got, want);
    }

    #[test]
    fn two_level_source_delivers_global_then_deltas() {
        let cluster = ClauseDb::new();
        let global = ClauseDb::new();
        cluster.publish([clause(&[(0, true)])]);
        global.publish([clause(&[(1, true)]), clause(&[(2, false)])]);
        let source = TwoLevelSource::new(&cluster, &global);
        let c0 = source.primed_cursor();
        // Version reflects both stores; the primed refresh hands out
        // exactly the global side.
        assert_eq!(ClauseSource::version(&source), 3);
        let (fresh, c1) = ClauseSource::clauses_since(&source, c0);
        assert_eq!(fresh.len(), 2);
        assert!(fresh.iter().all(|c| c != &clause(&[(0, true)])));
        // Publishes on either layer arrive as one combined delta.
        cluster.publish([clause(&[(3, true)])]);
        global.publish([clause(&[(4, true)])]);
        let (next, c2) = ClauseSource::clauses_since(&source, c1);
        assert_eq!(next.len(), 2);
        assert_eq!(c2, ClauseSource::version(&source));
        let (none, c3) = ClauseSource::clauses_since(&source, c2);
        assert!(none.is_empty());
        assert_eq!(c3, c2);
    }

    #[test]
    fn two_level_source_resyncs_on_unknown_cursor() {
        let cluster = ClauseDb::new();
        let global = ClauseDb::new();
        cluster.publish([clause(&[(0, true)])]);
        global.publish([clause(&[(1, true)])]);
        let source = TwoLevelSource::new(&cluster, &global);
        // A cursor the source never handed out: full two-store snapshot.
        let (all, cursor) = ClauseSource::clauses_since(&source, 0);
        assert_eq!(all.len(), 2);
        assert_eq!(cursor, ClauseSource::version(&source));
        let (none, _) = ClauseSource::clauses_since(&source, cursor);
        assert!(none.is_empty());
        assert_eq!(ClauseSource::clauses(&source).len(), 2);
    }

    #[test]
    fn concurrent_publish() {
        let db = ClauseDb::new();
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let db = db.clone();
                s.spawn(move || {
                    for i in 0..50u32 {
                        db.publish([clause(&[(t * 100 + i, i % 2 == 0)])]);
                    }
                });
            }
        });
        assert_eq!(db.len(), 200);
    }
}
