//! Affinity-based property clustering — the MPBMC direction.
//!
//! The §12 baseline ([`crate::cluster_properties`]) groups properties greedily on
//! a single signal (Jaccard similarity of sequential latch cones).
//! This module promotes clustering to a first-class citizen: it builds
//! a property **affinity graph** from several structural and observed
//! signals and clusters it by agglomerative (average-linkage) merging
//! under a group-size cap, the scheme of MPBMC-style multi-property
//! engines (Guha Roy et al.).
//!
//! The signals, each normalized to `[0, 1]`:
//!
//! * **sequential-COI Jaccard** — overlap of the latch supports, the
//!   baseline signal;
//! * **COI-size ratio** — `min/max` of the sequential cone sizes, so a
//!   tiny property is not merged into a giant one just because its
//!   cone is a subset;
//! * **shared-output structure** — Jaccard overlap of the
//!   *combinational* cones of the property outputs
//!   ([`japrove_aig::Cone::overlap`]): properties computed from the
//!   same gates keep sharing reasoning even when their latch supports
//!   barely differ;
//! * **observed UNSAT-core overlap** — a shallow probing BMC pass
//!   ([`japrove_ic3::Bmc::probe_core`]) records which latch *reset
//!   bits* each property's refutations actually lean on; overlapping
//!   cores are direct evidence that two proofs will share clauses.
//!
//! [`AffinityMetric::Jaccard`] uses the first signal alone (the
//! baseline metric on the new clustering algorithm);
//! [`AffinityMetric::Hybrid`] blends all four.
//!
//! # Examples
//!
//! ```
//! use japrove_aig::Aig;
//! use japrove_core::{affinity_clusters, AffinityMetric};
//! use japrove_tsys::{TransitionSystem, Word};
//!
//! // Two independent counters, two properties each: clustering must
//! // pair the properties per counter and never merge across.
//! let mut aig = Aig::new();
//! let mut sys_props = Vec::new();
//! for _ in 0..2 {
//!     let w = Word::latches(&mut aig, 3, 0);
//!     let n = w.increment(&mut aig);
//!     w.set_next(&mut aig, &n);
//!     sys_props.push(w.lt_const(&mut aig, 6));
//!     sys_props.push(w.le_const(&mut aig, 5));
//! }
//! let mut sys = TransitionSystem::new("two", aig);
//! for (i, good) in sys_props.into_iter().enumerate() {
//!     sys.add_property(format!("p{i}"), good);
//! }
//! for metric in [AffinityMetric::Jaccard, AffinityMetric::Hybrid] {
//!     let clusters = affinity_clusters(&sys, metric, 16, 0.5);
//!     assert_eq!(clusters.len(), 2);
//!     assert_eq!(clusters[0].len(), 2);
//! }
//! ```

use crate::cluster::jaccard;
use crate::costmodel::CostModel;
use japrove_aig::Cone;
use japrove_ic3::Bmc;
use japrove_sat::{BackendChoice, Budget};
use japrove_tsys::{PropertyId, TransitionSystem};
use std::fmt;
use std::str::FromStr;

/// Which affinity signal(s) score a property pair.
///
/// # Examples
///
/// ```
/// use japrove_core::AffinityMetric;
/// assert_eq!("hybrid".parse(), Ok(AffinityMetric::Hybrid));
/// assert_eq!(AffinityMetric::Jaccard.to_string(), "jaccard");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AffinityMetric {
    /// Sequential-COI Jaccard only: the §12 baseline signal on the
    /// agglomerative algorithm.
    Jaccard,
    /// All four signals blended (COI Jaccard, COI-size ratio,
    /// shared-output structure, probed UNSAT-core overlap). The
    /// default.
    #[default]
    Hybrid,
}

impl AffinityMetric {
    /// Short identifier, matching the CLI `--affinity` values.
    pub fn name(self) -> &'static str {
        match self {
            AffinityMetric::Jaccard => "jaccard",
            AffinityMetric::Hybrid => "hybrid",
        }
    }
}

impl fmt::Display for AffinityMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for AffinityMetric {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "jaccard" => Ok(AffinityMetric::Jaccard),
            "hybrid" => Ok(AffinityMetric::Hybrid),
            other => Err(format!(
                "unknown affinity metric '{other}' (available: jaccard, hybrid)"
            )),
        }
    }
}

/// Depth of the probing BMC pass behind the UNSAT-core signal. Shallow
/// on purpose: the probe is a structural fingerprint, not a
/// verification attempt, and deep queries would dominate clustering
/// time.
const PROBE_DEPTH: usize = 2;

/// Conflict allowance per probe query; a query that runs dry simply
/// contributes no core.
const PROBE_CONFLICTS: u64 = 500;

/// Hybrid blend weights: sequential-COI Jaccard, COI-size ratio,
/// shared combinational structure, probed core overlap. They sum to 1
/// so hybrid scores stay in `[0, 1]` and thresholds mean the same
/// thing under both metrics.
const W_SEQ: f64 = 0.4;
const W_SIZE: f64 = 0.2;
const W_COMB: f64 = 0.2;
const W_CORE: f64 = 0.2;

/// Weight of the observed cost signal when a [`CostModel`] covers both
/// endpoints: the structural blend keeps 80% of the say, the recorded
/// cost similarity the remaining 20%. Properties of similar recorded
/// cost tend to exercise the same logic at the same depth, so their
/// proofs share clauses — and batching a cheap property with an
/// expensive one mostly strands the cheap one behind the cluster's
/// long pole.
const W_COST_BLEND: f64 = 0.2;

/// The pairwise property-affinity scores of one design.
///
/// Scores are symmetric, lie in `[0, 1]` and are `1.0` on the
/// diagonal. Build once, then cluster (or inspect) as often as needed.
///
/// # Examples
///
/// ```
/// use japrove_aig::Aig;
/// use japrove_core::{AffinityGraph, AffinityMetric};
/// use japrove_tsys::{TransitionSystem, Word};
///
/// let mut aig = Aig::new();
/// let w = Word::latches(&mut aig, 3, 0);
/// let n = w.increment(&mut aig);
/// w.set_next(&mut aig, &n);
/// let a = w.lt_const(&mut aig, 6);
/// let b = w.le_const(&mut aig, 5);
/// let mut sys = TransitionSystem::new("cnt", aig);
/// sys.add_property("a", a);
/// sys.add_property("b", b);
/// let g = AffinityGraph::build(&sys, AffinityMetric::Hybrid);
/// assert_eq!(g.len(), 2);
/// assert!(g.score(0, 1) > 0.9); // same counter, same cone
/// assert_eq!(g.score(0, 0), 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct AffinityGraph {
    n: usize,
    /// Upper-triangle scores, row-major: entry for `i < j` at
    /// `i * n - i * (i + 1) / 2 + (j - i - 1)`.
    scores: Vec<f64>,
}

impl AffinityGraph {
    /// Scores every property pair of `sys` under `metric`, probing
    /// (for the hybrid metric) on the default SAT backend.
    pub fn build(sys: &TransitionSystem, metric: AffinityMetric) -> Self {
        AffinityGraph::build_with(sys, metric, BackendChoice::default())
    }

    /// Scores every property pair of `sys` under `metric`.
    ///
    /// The Jaccard metric is purely structural. The hybrid metric
    /// additionally runs the shallow probing BMC pass once per
    /// property (bounded depth and conflicts) on `backend`, so
    /// building it costs a little solver time up front — repaid by
    /// better clusters.
    pub fn build_with(
        sys: &TransitionSystem,
        metric: AffinityMetric,
        backend: BackendChoice,
    ) -> Self {
        AffinityGraph::build_with_cost(sys, metric, backend, None)
    }

    /// [`AffinityGraph::build_with`] plus an optional observed-cost
    /// signal. Under the hybrid metric, a pair whose endpoints both
    /// have a [`CostModel`] prediction gets
    /// `(1 - 0.2) * structural + 0.2 * (1 - |cost_i - cost_j|)`:
    /// similar recorded cost pulls properties together, dissimilar cost
    /// pushes them apart. Pairs with a cold endpoint, and the pure
    /// Jaccard metric, are unaffected — so a cold store reproduces
    /// [`AffinityGraph::build_with`] exactly.
    pub fn build_with_cost(
        sys: &TransitionSystem,
        metric: AffinityMetric,
        backend: BackendChoice,
        cost: Option<&CostModel>,
    ) -> Self {
        let aig = sys.aig();
        let n = sys.num_properties();
        let seq_cones: Vec<Cone> = sys
            .properties()
            .iter()
            .map(|p| Cone::sequential(aig, [p.good]))
            .collect();
        let supports: Vec<Vec<usize>> = seq_cones
            .iter()
            .map(|cone| {
                aig.latches()
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| cone.contains(l.node))
                    .map(|(i, _)| i)
                    .collect()
            })
            .collect();

        let (comb_cones, cores) = match metric {
            AffinityMetric::Jaccard => (Vec::new(), Vec::new()),
            AffinityMetric::Hybrid => {
                let comb: Vec<Cone> = sys
                    .properties()
                    .iter()
                    .map(|p| Cone::combinational(aig, [p.good]))
                    .collect();
                let mut bmc = Bmc::probing(sys, backend);
                let cores: Vec<Vec<usize>> = sys
                    .property_ids()
                    .map(|p| bmc.probe_core(p, PROBE_DEPTH, Budget::conflicts(PROBE_CONFLICTS)))
                    .collect();
                (comb, cores)
            }
        };

        // Predicted costs per property, where the model has them.
        let costs: Vec<Option<f64>> = sys
            .properties()
            .iter()
            .map(|p| cost.and_then(|m| m.predicted(&p.name)))
            .collect();

        let mut scores = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                let s_seq = jaccard(&supports[i], &supports[j]);
                let score = match metric {
                    AffinityMetric::Jaccard => s_seq,
                    AffinityMetric::Hybrid => {
                        let (a, b) = (seq_cones[i].size(), seq_cones[j].size());
                        let s_size = if a.max(b) == 0 {
                            1.0
                        } else {
                            a.min(b) as f64 / a.max(b) as f64
                        };
                        let (ca, cb) = (&comb_cones[i], &comb_cones[j]);
                        let inter = ca.overlap(cb);
                        let union = ca.size() + cb.size() - inter;
                        let s_comb = if union == 0 {
                            1.0
                        } else {
                            inter as f64 / union as f64
                        };
                        // An empty core means the probe learned nothing
                        // about that property; fall back to the
                        // structural signal instead of dragging the
                        // pair apart.
                        let s_core = if cores[i].is_empty() || cores[j].is_empty() {
                            s_seq
                        } else {
                            jaccard(&cores[i], &cores[j])
                        };
                        let structural =
                            W_SEQ * s_seq + W_SIZE * s_size + W_COMB * s_comb + W_CORE * s_core;
                        match (costs[i], costs[j]) {
                            (Some(ci), Some(cj)) => {
                                let s_cost = 1.0 - (ci - cj).abs();
                                (1.0 - W_COST_BLEND) * structural + W_COST_BLEND * s_cost
                            }
                            _ => structural,
                        }
                    }
                };
                scores.push(score);
            }
        }
        AffinityGraph { n, scores }
    }

    /// Number of properties.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the design has no properties.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The affinity of properties `a` and `b` (symmetric; `1.0` for
    /// `a == b`).
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn score(&self, a: usize, b: usize) -> f64 {
        assert!(a < self.n && b < self.n, "property index out of range");
        if a == b {
            return 1.0;
        }
        let (i, j) = (a.min(b), a.max(b));
        self.scores[i * self.n - i * (i + 1) / 2 + (j - i - 1)]
    }
}

/// Clusters the properties of `sys` by agglomerative average-linkage
/// merging over the affinity graph.
///
/// Every property starts as a singleton; the pair of clusters with the
/// highest average pairwise affinity is merged, as long as the merged
/// size stays within `max_group_size` and the affinity is at least
/// `min_affinity`. Ties break toward the lowest property indices, so
/// clustering is deterministic. Clusters are returned with members
/// sorted and ordered by their smallest member; together they
/// partition the property set.
///
/// `min_affinity` is clamped into `[0, 1]`; a `max_group_size` of 0 is
/// treated as 1 (singletons).
///
/// # Panics
///
/// Panics if `min_affinity` is NaN.
///
/// # Examples
///
/// ```
/// use japrove_aig::Aig;
/// use japrove_core::{affinity_clusters, AffinityMetric};
/// use japrove_tsys::{TransitionSystem, Word};
///
/// let mut aig = Aig::new();
/// let w = Word::latches(&mut aig, 4, 0);
/// let n = w.increment(&mut aig);
/// w.set_next(&mut aig, &n);
/// let a = w.lt_const(&mut aig, 16);
/// let b = w.le_const(&mut aig, 15);
/// let mut sys = TransitionSystem::new("cnt", aig);
/// sys.add_property("a", a);
/// sys.add_property("b", b);
/// // Same cone: one cluster — unless the size cap forbids it.
/// assert_eq!(affinity_clusters(&sys, AffinityMetric::Hybrid, 16, 0.5).len(), 1);
/// assert_eq!(affinity_clusters(&sys, AffinityMetric::Hybrid, 1, 0.5).len(), 2);
/// ```
pub fn affinity_clusters(
    sys: &TransitionSystem,
    metric: AffinityMetric,
    max_group_size: usize,
    min_affinity: f64,
) -> Vec<Vec<PropertyId>> {
    let graph = AffinityGraph::build(sys, metric);
    agglomerate(&graph, max_group_size, min_affinity)
}

/// [`affinity_clusters`] with an explicit SAT backend for the hybrid
/// metric's probing pass (the clustered driver threads its configured
/// backend through here so `--backend` really covers every engine
/// run).
pub fn affinity_clusters_with(
    sys: &TransitionSystem,
    metric: AffinityMetric,
    max_group_size: usize,
    min_affinity: f64,
    backend: BackendChoice,
) -> Vec<Vec<PropertyId>> {
    let graph = AffinityGraph::build_with(sys, metric, backend);
    agglomerate(&graph, max_group_size, min_affinity)
}

/// [`affinity_clusters_with`] plus an optional observed-cost signal
/// (see [`AffinityGraph::build_with_cost`]); `None` — and any model
/// without predictions for the design — reproduces the structural
/// clustering exactly.
pub fn affinity_clusters_with_cost(
    sys: &TransitionSystem,
    metric: AffinityMetric,
    max_group_size: usize,
    min_affinity: f64,
    backend: BackendChoice,
    cost: Option<&CostModel>,
) -> Vec<Vec<PropertyId>> {
    let graph = AffinityGraph::build_with_cost(sys, metric, backend, cost);
    agglomerate(&graph, max_group_size, min_affinity)
}

/// The merging loop, split out so tests can drive it on a hand-built
/// graph.
fn agglomerate(
    graph: &AffinityGraph,
    max_group_size: usize,
    min_affinity: f64,
) -> Vec<Vec<PropertyId>> {
    assert!(!min_affinity.is_nan(), "min_affinity must not be NaN");
    let min_affinity = min_affinity.clamp(0.0, 1.0);
    let max_group_size = max_group_size.max(1);
    let n = graph.len();
    let mut members: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    let mut alive: Vec<bool> = vec![true; n];
    // Cluster-level affinities, kept exact under average linkage via
    // the Lance–Williams update, so a merge costs O(n) instead of a
    // full pairwise rescore.
    let mut aff: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..n).map(|j| graph.score(i, j)).collect())
        .collect();

    loop {
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..n {
            if !alive[i] {
                continue;
            }
            for j in (i + 1)..n {
                if !alive[j] || members[i].len() + members[j].len() > max_group_size {
                    continue;
                }
                let s = aff[i][j];
                if s >= min_affinity && best.map_or(true, |(_, _, b)| s > b) {
                    best = Some((i, j, s));
                }
            }
        }
        let Some((i, j, _)) = best else { break };
        let (wi, wj) = (members[i].len() as f64, members[j].len() as f64);
        for k in 0..n {
            if alive[k] && k != i && k != j {
                let merged = (wi * aff[i][k] + wj * aff[j][k]) / (wi + wj);
                aff[i][k] = merged;
                aff[k][i] = merged;
            }
        }
        let moved = std::mem::take(&mut members[j]);
        members[i].extend(moved);
        alive[j] = false;
    }

    let mut clusters: Vec<Vec<PropertyId>> = members
        .into_iter()
        .zip(alive)
        .filter(|(_, live)| *live)
        .map(|(mut m, _)| {
            m.sort_unstable();
            m.into_iter().map(PropertyId::new).collect()
        })
        .collect();
    clusters.sort_by_key(|c| c[0]);
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use japrove_aig::Aig;
    use japrove_tsys::Word;

    /// Three counters; properties 0 and 2 share the first counter.
    fn sys_with_shared_cones() -> TransitionSystem {
        let mut aig = Aig::new();
        let mut words = Vec::new();
        for _ in 0..3 {
            let w = Word::latches(&mut aig, 3, 0);
            let n = w.increment(&mut aig);
            w.set_next(&mut aig, &n);
            words.push(w);
        }
        let p0a = words[0].lt_const(&mut aig, 5);
        let p1 = words[1].lt_const(&mut aig, 5);
        let p0b = words[0].le_const(&mut aig, 6);
        let p2 = words[2].lt_const(&mut aig, 5);
        let mut sys = TransitionSystem::new("three", aig);
        sys.add_property("c0_lt5", p0a);
        sys.add_property("c1_lt5", p1);
        sys.add_property("c0_le6", p0b);
        sys.add_property("c2_lt5", p2);
        sys
    }

    #[test]
    fn both_metrics_separate_independent_counters() {
        let sys = sys_with_shared_cones();
        for metric in [AffinityMetric::Jaccard, AffinityMetric::Hybrid] {
            let clusters = affinity_clusters(&sys, metric, 16, 0.5);
            assert_eq!(clusters.len(), 3, "{metric}");
            let shared = &clusters[0];
            assert!(shared.contains(&PropertyId::new(0)), "{metric}");
            assert!(shared.contains(&PropertyId::new(2)), "{metric}");
        }
    }

    #[test]
    fn clusters_partition_the_property_set() {
        let sys = sys_with_shared_cones();
        for metric in [AffinityMetric::Jaccard, AffinityMetric::Hybrid] {
            for max in [1usize, 2, 16] {
                let clusters = affinity_clusters(&sys, metric, max, 0.3);
                let mut seen: Vec<usize> = clusters
                    .iter()
                    .flat_map(|c| c.iter().map(|p| p.index()))
                    .collect();
                seen.sort_unstable();
                assert_eq!(seen, vec![0, 1, 2, 3], "{metric} max={max}");
                assert!(clusters.iter().all(|c| c.len() <= max.max(1)));
            }
        }
    }

    #[test]
    fn scores_are_symmetric_and_bounded() {
        let sys = sys_with_shared_cones();
        for metric in [AffinityMetric::Jaccard, AffinityMetric::Hybrid] {
            let g = AffinityGraph::build(&sys, metric);
            for i in 0..g.len() {
                for j in 0..g.len() {
                    let s = g.score(i, j);
                    assert!((0.0..=1.0).contains(&s), "{metric} {i},{j}: {s}");
                    assert_eq!(s, g.score(j, i));
                }
            }
            assert!(g.score(0, 2) > g.score(0, 1), "{metric}");
        }
    }

    #[test]
    fn zero_min_affinity_merges_up_to_the_size_cap() {
        let sys = sys_with_shared_cones();
        let clusters = affinity_clusters(&sys, AffinityMetric::Jaccard, 4, 0.0);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 4);
        // Out-of-range thresholds are clamped, not trusted.
        let clamped = affinity_clusters(&sys, AffinityMetric::Jaccard, 4, -7.5);
        assert_eq!(clamped.len(), 1);
        let nothing = affinity_clusters(&sys, AffinityMetric::Jaccard, 4, 99.0);
        assert!(nothing.len() >= 3, "threshold above 1 clamps to 1.0");
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_min_affinity_panics() {
        let sys = sys_with_shared_cones();
        let _ = affinity_clusters(&sys, AffinityMetric::Jaccard, 4, f64::NAN);
    }

    #[test]
    fn empty_design_yields_no_clusters() {
        let mut aig = Aig::new();
        let l = aig.add_latch(false);
        aig.set_next(l, l);
        let sys = TransitionSystem::new("empty", aig);
        assert!(affinity_clusters(&sys, AffinityMetric::Hybrid, 8, 0.5).is_empty());
    }

    #[test]
    fn cost_signal_shifts_hybrid_scores_only_for_warm_pairs() {
        use japrove_obs::{FeatureStore, RunRecord};
        let sys = sys_with_shared_cones();
        let design = format!("{:016x}", sys.structural_hash());
        let mut store = FeatureStore::default();
        // Records for the shared-cone pair only: c0_lt5 is cheap,
        // c0_le6 expensive; the other two properties stay cold.
        for (name, time) in [("c0_lt5", 100u64), ("c0_le6", 90_000)] {
            store.upsert(RunRecord {
                design: design.clone(),
                property: name.into(),
                mode: "ja".into(),
                verdict: "holds".into(),
                time_us: time,
                frames: 1,
                conflicts: time,
                decisions: time,
                propagations: 0,
                restarts: 0,
            });
        }
        let model = CostModel::from_store(&store, &sys);
        let base = AffinityGraph::build(&sys, AffinityMetric::Hybrid);
        let cost = AffinityGraph::build_with_cost(
            &sys,
            AffinityMetric::Hybrid,
            BackendChoice::default(),
            Some(&model),
        );
        // Dissimilar recorded cost pushes the warm pair (0, 2) apart...
        assert!(cost.score(0, 2) < base.score(0, 2));
        // ...while pairs with a cold endpoint are untouched.
        assert_eq!(cost.score(0, 1), base.score(0, 1));
        assert_eq!(cost.score(1, 3), base.score(1, 3));
        // Jaccard ignores the model entirely.
        let j = AffinityGraph::build_with_cost(
            &sys,
            AffinityMetric::Jaccard,
            BackendChoice::default(),
            Some(&model),
        );
        assert_eq!(
            j.score(0, 2),
            AffinityGraph::build(&sys, AffinityMetric::Jaccard).score(0, 2)
        );
    }

    #[test]
    fn metric_names_round_trip() {
        for m in [AffinityMetric::Jaccard, AffinityMetric::Hybrid] {
            assert_eq!(m.name().parse::<AffinityMetric>(), Ok(m));
        }
        assert!("cosine".parse::<AffinityMetric>().is_err());
        assert_eq!(AffinityMetric::default(), AffinityMetric::Hybrid);
    }
}
