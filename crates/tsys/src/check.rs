//! Trace replay: validating counterexamples against the design.
//!
//! Every counterexample produced by the engines is replayed on the
//! concrete netlist with the bit-parallel simulator; the replay also
//! records *which* properties fail at *which* steps — the data needed
//! to check the debugging-set guarantees of Propositions 2–6.

use crate::{PropertyId, Trace, TransitionSystem};
use japrove_aig::Simulator;
use std::error::Error;
use std::fmt;

/// Error produced by [`replay`] when a trace is malformed for the
/// system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// A state vector has the wrong number of latches.
    StateWidth {
        /// Step with the offending state.
        step: usize,
    },
    /// An input vector has the wrong number of inputs.
    InputWidth {
        /// Step with the offending inputs.
        step: usize,
    },
    /// The initial state is not an initial state of the system.
    NotInitial,
    /// A transition `states[k] -> states[k+1]` is not allowed by the
    /// transition relation under `inputs[k]`.
    BadTransition {
        /// Index of the offending transition.
        step: usize,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::StateWidth { step } => write!(f, "state {step} has wrong width"),
            ReplayError::InputWidth { step } => write!(f, "inputs {step} have wrong width"),
            ReplayError::NotInitial => write!(f, "trace does not start in an initial state"),
            ReplayError::BadTransition { step } => {
                write!(f, "transition {step} violates the transition relation")
            }
        }
    }
}

impl Error for ReplayError {}

/// Result of replaying a trace: per-step property valuations.
#[derive(Clone, Debug)]
pub struct Replay {
    /// `violations[k]` lists the properties whose good-literal is
    /// false in state `k` (under the step-`k` inputs).
    violations: Vec<Vec<PropertyId>>,
    /// Steps at which a design-level invariant constraint is violated.
    constraint_violations: Vec<usize>,
}

impl Replay {
    /// Properties violated at step `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn violated_at(&self, k: usize) -> &[PropertyId] {
        &self.violations[k]
    }

    /// The first step at which `prop` is violated, if any.
    pub fn first_violation(&self, prop: PropertyId) -> Option<usize> {
        self.violations.iter().position(|v| v.contains(&prop))
    }

    /// The first step at which *any* property is violated, with the
    /// violated properties.
    pub fn first_any_violation(&self) -> Option<(usize, &[PropertyId])> {
        self.violations
            .iter()
            .position(|v| !v.is_empty())
            .map(|k| (k, self.violations[k].as_slice()))
    }

    /// `true` if `prop` is violated in the final state.
    pub fn violates_finally(&self, prop: PropertyId) -> bool {
        self.violations.last().is_some_and(|v| v.contains(&prop))
    }

    /// `true` if some property *other than* `prop` is violated strictly
    /// before the final state (used to detect spurious local
    /// counterexamples, §7-A).
    pub fn violates_before_final(&self, prop: PropertyId) -> bool {
        self.violations[..self.violations.len() - 1]
            .iter()
            .any(|v| v.iter().any(|&p| p != prop))
    }

    /// Steps violating design-level invariant constraints.
    pub fn constraint_violations(&self) -> &[usize] {
        &self.constraint_violations
    }

    /// Number of replayed states.
    pub fn num_states(&self) -> usize {
        self.violations.len()
    }
}

/// Replays `trace` on `sys`, validating widths, the initial state and
/// every transition, and recording property/constraint valuations.
///
/// # Errors
///
/// Returns a [`ReplayError`] if the trace is structurally invalid for
/// the system (wrong widths, not initialized, or containing a
/// transition the netlist cannot take).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use japrove_aig::Aig;
/// use japrove_tsys::{replay, Trace, TransitionSystem};
///
/// let mut aig = Aig::new();
/// let bit = aig.add_latch(false);
/// aig.set_next(bit, !bit);
/// let mut sys = TransitionSystem::new("toggle", aig);
/// let p = sys.add_property("stay_low", !bit);
///
/// let trace = Trace::new(vec![vec![false], vec![true]], vec![vec![], vec![]]);
/// let replay = replay(&sys, &trace)?;
/// assert!(replay.violates_finally(p));
/// assert_eq!(replay.first_violation(p), Some(1));
/// # Ok(())
/// # }
/// ```
pub fn replay(sys: &TransitionSystem, trace: &Trace) -> Result<Replay, ReplayError> {
    let aig = sys.aig();
    let num_latches = aig.num_latches();
    let num_inputs = aig.num_inputs();
    for (k, s) in trace.states().iter().enumerate() {
        if s.len() != num_latches {
            return Err(ReplayError::StateWidth { step: k });
        }
    }
    for (k, i) in trace.inputs().iter().enumerate() {
        if i.len() != num_inputs {
            return Err(ReplayError::InputWidth { step: k });
        }
    }
    // Initial-state check: every latch at its reset value.
    for (latch, &bit) in aig.latches().iter().zip(trace.state(0)) {
        if latch.reset != bit {
            return Err(ReplayError::NotInitial);
        }
    }

    let to_words = |bits: &[bool]| -> Vec<u64> {
        bits.iter().map(|&b| if b { u64::MAX } else { 0 }).collect()
    };

    let mut violations = Vec::with_capacity(trace.num_states());
    let mut constraint_violations = Vec::new();
    for k in 0..trace.num_states() {
        let mut sim = Simulator::with_state(aig, to_words(trace.state(k)));
        let inputs = to_words(trace.input(k));
        sim.eval(aig, &inputs);
        let violated: Vec<PropertyId> = sys
            .property_ids()
            .filter(|&p| !sim.value_bit(sys.property(p).good))
            .collect();
        violations.push(violated);
        if sys.constraints().iter().any(|&c| !sim.value_bit(c)) {
            constraint_violations.push(k);
        }
        if k < trace.len() {
            // Take the transition and compare with the recorded state.
            sim.step(aig, &inputs);
            let got: Vec<bool> = sim.state().iter().map(|&w| w & 1 == 1).collect();
            if got != trace.state(k + 1) {
                return Err(ReplayError::BadTransition { step: k });
            }
        }
    }
    Ok(Replay {
        violations,
        constraint_violations,
    })
}

/// Completes a trace skeleton: given the initial state and the input
/// sequence, derives every intermediate state by simulation.
///
/// This is how the engines materialize counterexamples: SAT models
/// provide inputs; states follow deterministically.
///
/// # Panics
///
/// Panics if `inputs` is empty or the vectors have wrong widths.
pub fn complete_trace(sys: &TransitionSystem, inputs: Vec<Vec<bool>>) -> Trace {
    assert!(!inputs.is_empty(), "need at least the final input vector");
    let aig = sys.aig();
    let mut sim = Simulator::new(aig);
    let mut states = Vec::with_capacity(inputs.len());
    for (k, inp) in inputs.iter().enumerate() {
        assert_eq!(inp.len(), aig.num_inputs(), "input width mismatch");
        states.push(
            sim.state()
                .iter()
                .map(|&w| w & 1 == 1)
                .collect::<Vec<bool>>(),
        );
        if k + 1 < inputs.len() {
            let words: Vec<u64> = inp.iter().map(|&b| if b { u64::MAX } else { 0 }).collect();
            sim.step(aig, &words);
        }
    }
    Trace::new(states, inputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use japrove_aig::Aig;

    /// A 2-bit counter with properties "c < 2" and "c < 3".
    fn counter_sys() -> (TransitionSystem, PropertyId, PropertyId) {
        let mut aig = Aig::new();
        let w = crate::Word::latches(&mut aig, 2, 0);
        let n = w.increment(&mut aig);
        w.set_next(&mut aig, &n);
        let lt2 = w.lt_const(&mut aig, 2);
        let lt3 = w.lt_const(&mut aig, 3);
        let mut sys = TransitionSystem::new("cnt", aig);
        let p2 = sys.add_property("lt2", lt2);
        let p3 = sys.add_property("lt3", lt3);
        (sys, p2, p3)
    }

    fn counter_trace(steps: usize) -> Trace {
        let states = (0..=steps)
            .map(|k| vec![(k & 1) == 1, (k & 2) == 2])
            .collect();
        let inputs = vec![vec![]; steps + 1];
        Trace::new(states, inputs)
    }

    #[test]
    fn replay_tracks_first_violations() {
        let (sys, p2, p3) = counter_sys();
        let r = replay(&sys, &counter_trace(3)).expect("valid trace");
        assert_eq!(r.first_violation(p2), Some(2));
        assert_eq!(r.first_violation(p3), Some(3));
        assert!(r.violates_finally(p3));
        assert!(r.violates_before_final(p3));
        assert!(!r.violates_before_final(p2));
        let (first, props) = r.first_any_violation().expect("some violation");
        assert_eq!(first, 2);
        assert_eq!(props, &[p2]);
    }

    #[test]
    fn rejects_non_initial_start() {
        let (sys, _, _) = counter_sys();
        let t = Trace::new(vec![vec![true, false]], vec![vec![]]);
        match replay(&sys, &t) {
            Err(ReplayError::NotInitial) => {}
            other => panic!("expected NotInitial, got {other:?}"),
        }
    }

    #[test]
    fn rejects_teleporting_transition() {
        let (sys, _, _) = counter_sys();
        let t = Trace::new(
            vec![vec![false, false], vec![false, true]], // 0 -> 2 is not +1
            vec![vec![], vec![]],
        );
        match replay(&sys, &t) {
            Err(ReplayError::BadTransition { step: 0 }) => {}
            other => panic!("expected BadTransition, got {other:?}"),
        }
    }

    #[test]
    fn rejects_wrong_widths() {
        let (sys, _, _) = counter_sys();
        let t = Trace::new(vec![vec![false]], vec![vec![]]);
        match replay(&sys, &t) {
            Err(ReplayError::StateWidth { step: 0 }) => {}
            other => panic!("expected StateWidth, got {other:?}"),
        }
    }

    #[test]
    fn constraints_recorded() {
        let mut aig = Aig::new();
        let w = crate::Word::latches(&mut aig, 2, 0);
        let n = w.increment(&mut aig);
        w.set_next(&mut aig, &n);
        let lt2 = w.lt_const(&mut aig, 2);
        let mut sys = TransitionSystem::new("cnt", aig);
        sys.add_constraint(lt2);
        let r = replay(&sys, &counter_trace(2)).expect("valid");
        assert_eq!(r.constraint_violations(), &[2]);
    }

    #[test]
    fn complete_trace_simulates_states() {
        let (sys, _, p3) = counter_sys();
        let t = complete_trace(&sys, vec![vec![]; 4]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.state(3), &[true, true]);
        let r = replay(&sys, &t).expect("valid");
        assert!(r.violates_finally(p3));
    }

    #[test]
    fn input_dependent_property() {
        // Property "input is high" fails whenever the chosen input bit is 0.
        let mut aig = Aig::new();
        let req = aig.add_input();
        let l = aig.add_latch(false);
        aig.set_next(l, l);
        let mut sys = TransitionSystem::new("io", aig);
        let p = sys.add_property("req_high", req);
        let t = Trace::new(vec![vec![false]], vec![vec![false]]);
        let r = replay(&sys, &t).expect("valid");
        assert!(r.violates_finally(p));
        let t2 = Trace::new(vec![vec![false]], vec![vec![true]]);
        let r2 = replay(&sys, &t2).expect("valid");
        assert!(!r2.violates_finally(p));
    }
}
