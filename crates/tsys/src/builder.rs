//! Word-level circuit construction helpers.
//!
//! The benchmark generators build counters, comparators and FSMs; this
//! module provides the word-level vocabulary on top of [`Aig`] bit
//! operations. Words are little-endian vectors of edges.

use japrove_aig::{Aig, AigLit};

/// A little-endian word of AIG edges (bit 0 first).
///
/// # Examples
///
/// ```
/// use japrove_aig::Aig;
/// use japrove_tsys::Word;
///
/// let mut aig = Aig::new();
/// let w = Word::constant(&mut aig, 5, 4);
/// assert_eq!(w.width(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct Word {
    bits: Vec<AigLit>,
}

impl Word {
    /// Creates a word from explicit bits (little-endian).
    pub fn from_bits(bits: Vec<AigLit>) -> Self {
        Word { bits }
    }

    /// A constant word of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit into `width` bits.
    pub fn constant(_aig: &mut Aig, value: u64, width: usize) -> Self {
        assert!(width >= 64 || value < (1u64 << width), "constant overflow");
        Word {
            bits: (0..width)
                .map(|i| {
                    if (value >> i) & 1 == 1 {
                        AigLit::TRUE
                    } else {
                        AigLit::FALSE
                    }
                })
                .collect(),
        }
    }

    /// A word of fresh primary inputs.
    pub fn inputs(aig: &mut Aig, width: usize) -> Self {
        Word {
            bits: (0..width).map(|_| aig.add_input()).collect(),
        }
    }

    /// A word of fresh latches, all resetting to the bits of `reset`.
    pub fn latches(aig: &mut Aig, width: usize, reset: u64) -> Self {
        Word {
            bits: (0..width)
                .map(|i| aig.add_latch((reset >> i) & 1 == 1))
                .collect(),
        }
    }

    /// Width in bits.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// The bit edges (little-endian).
    pub fn bits(&self) -> &[AigLit] {
        &self.bits
    }

    /// The `i`-th bit.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bit(&self, i: usize) -> AigLit {
        self.bits[i]
    }

    /// Connects the next-state functions of a latch word.
    ///
    /// # Panics
    ///
    /// Panics if widths differ or `self` is not made of latches.
    pub fn set_next(&self, aig: &mut Aig, next: &Word) {
        assert_eq!(self.width(), next.width(), "width mismatch");
        for (l, n) in self.bits.iter().zip(&next.bits) {
            aig.set_next(*l, *n);
        }
    }

    /// `self + 1` with wraparound.
    pub fn increment(&self, aig: &mut Aig) -> Word {
        let mut carry = AigLit::TRUE;
        let mut bits = Vec::with_capacity(self.width());
        for &b in &self.bits {
            bits.push(aig.xor(b, carry));
            carry = aig.and(b, carry);
        }
        Word { bits }
    }

    /// `self + other` with wraparound (widths must match).
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn add(&self, aig: &mut Aig, other: &Word) -> Word {
        assert_eq!(self.width(), other.width(), "width mismatch");
        let mut carry = AigLit::FALSE;
        let mut bits = Vec::with_capacity(self.width());
        for (&a, &b) in self.bits.iter().zip(&other.bits) {
            let axb = aig.xor(a, b);
            bits.push(aig.xor(axb, carry));
            let ab = aig.and(a, b);
            let ac = aig.and(axb, carry);
            carry = aig.or(ab, ac);
        }
        Word { bits }
    }

    /// Equality with a constant.
    pub fn eq_const(&self, aig: &mut Aig, value: u64) -> AigLit {
        let lits: Vec<AigLit> = self
            .bits
            .iter()
            .enumerate()
            .map(|(i, &b)| if (value >> i) & 1 == 1 { b } else { !b })
            .collect();
        aig.and_many(lits)
    }

    /// Unsigned comparison `self <= value`.
    pub fn le_const(&self, aig: &mut Aig, value: u64) -> AigLit {
        // le = !(self > value); build greater-than MSB-down.
        let mut gt = AigLit::FALSE;
        let mut eq = AigLit::TRUE;
        for i in (0..self.width()).rev() {
            let vb = (value >> i) & 1 == 1;
            let b = self.bits[i];
            if !vb {
                // bit set where constant has 0 -> greater, if prefix equal
                let g = aig.and(eq, b);
                gt = aig.or(gt, g);
                eq = aig.and(eq, !b);
            } else {
                eq = aig.and(eq, b);
            }
        }
        !gt
    }

    /// Unsigned comparison `self < value`.
    pub fn lt_const(&self, aig: &mut Aig, value: u64) -> AigLit {
        if value == 0 {
            AigLit::FALSE
        } else {
            self.le_const(aig, value - 1)
        }
    }

    /// Unsigned comparison `self >= value`.
    pub fn ge_const(&self, aig: &mut Aig, value: u64) -> AigLit {
        let lt = self.lt_const(aig, value);
        !lt
    }

    /// Bitwise multiplexer: `if sel then t else e`.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn mux(aig: &mut Aig, sel: AigLit, t: &Word, e: &Word) -> Word {
        assert_eq!(t.width(), e.width(), "width mismatch");
        Word {
            bits: t
                .bits
                .iter()
                .zip(&e.bits)
                .map(|(&a, &b)| aig.mux(sel, a, b))
                .collect(),
        }
    }

    /// OR-reduction of all bits.
    pub fn any(&self, aig: &mut Aig) -> AigLit {
        aig.or_many(self.bits.iter().copied())
    }

    /// AND-reduction of all bits.
    pub fn all(&self, aig: &mut Aig) -> AigLit {
        aig.and_many(self.bits.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use japrove_aig::Simulator;

    /// Evaluates a word in instance 0 of a simulator.
    fn word_value(sim: &Simulator, w: &Word) -> u64 {
        w.bits()
            .iter()
            .enumerate()
            .map(|(i, &b)| (sim.value(b) & 1) << i)
            .sum()
    }

    #[test]
    fn counter_counts() {
        let mut aig = Aig::new();
        let c = Word::latches(&mut aig, 4, 0);
        let n = c.increment(&mut aig);
        c.set_next(&mut aig, &n);
        let mut sim = Simulator::new(&aig);
        for expect in 0..20u64 {
            assert_eq!(word_value(&sim, &c), expect % 16);
            sim.step(&aig, &[]);
        }
    }

    #[test]
    fn addition_matches_arithmetic() {
        let mut aig = Aig::new();
        let a = Word::inputs(&mut aig, 4);
        let b = Word::inputs(&mut aig, 4);
        let s = a.add(&mut aig, &b);
        let mut sim = Simulator::new(&aig);
        for x in 0..16u64 {
            for y in 0..16u64 {
                let inputs: Vec<u64> = (0..4)
                    .map(|i| (x >> i) & 1)
                    .chain((0..4).map(|i| (y >> i) & 1))
                    .collect();
                sim.eval(&aig, &inputs);
                assert_eq!(word_value(&sim, &s), (x + y) % 16, "{x}+{y}");
            }
        }
    }

    #[test]
    fn comparisons_match_arithmetic() {
        let mut aig = Aig::new();
        let w = Word::inputs(&mut aig, 4);
        let consts = [0u64, 1, 7, 8, 15];
        let eqs: Vec<AigLit> = consts.iter().map(|&k| w.eq_const(&mut aig, k)).collect();
        let les: Vec<AigLit> = consts.iter().map(|&k| w.le_const(&mut aig, k)).collect();
        let lts: Vec<AigLit> = consts.iter().map(|&k| w.lt_const(&mut aig, k)).collect();
        let ges: Vec<AigLit> = consts.iter().map(|&k| w.ge_const(&mut aig, k)).collect();
        let mut sim = Simulator::new(&aig);
        for x in 0..16u64 {
            let inputs: Vec<u64> = (0..4).map(|i| (x >> i) & 1).collect();
            sim.eval(&aig, &inputs);
            for (j, &k) in consts.iter().enumerate() {
                assert_eq!(sim.value_bit(eqs[j]), x == k, "eq {x} {k}");
                assert_eq!(sim.value_bit(les[j]), x <= k, "le {x} {k}");
                assert_eq!(sim.value_bit(lts[j]), x < k, "lt {x} {k}");
                assert_eq!(sim.value_bit(ges[j]), x >= k, "ge {x} {k}");
            }
        }
    }

    #[test]
    fn mux_and_reductions() {
        let mut aig = Aig::new();
        let sel = aig.add_input();
        let a = Word::constant(&mut aig, 0b1010, 4);
        let b = Word::constant(&mut aig, 0b0101, 4);
        let m = Word::mux(&mut aig, sel, &a, &b);
        let any = m.any(&mut aig);
        let all = m.all(&mut aig);
        let mut sim = Simulator::new(&aig);
        sim.eval(&aig, &[1]);
        assert_eq!(word_value(&sim, &m), 0b1010);
        assert!(sim.value_bit(any));
        assert!(!sim.value_bit(all));
        sim.eval(&aig, &[0]);
        assert_eq!(word_value(&sim, &m), 0b0101);
    }

    #[test]
    fn latch_reset_values() {
        let mut aig = Aig::new();
        let w = Word::latches(&mut aig, 4, 0b1001);
        for (i, &b) in w.bits().iter().enumerate() {
            let info = aig.latch_info(b);
            assert_eq!(info.reset, (0b1001 >> i) & 1 == 1);
        }
    }

    #[test]
    #[should_panic(expected = "constant overflow")]
    fn oversized_constant_panics() {
        let mut aig = Aig::new();
        let _ = Word::constant(&mut aig, 16, 4);
    }
}
