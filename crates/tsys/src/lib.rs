//! Transition systems, multi-property specifications and traces.
//!
//! This crate defines the `(I, T)`-system abstraction of the paper
//! (§2-A): a netlist ([`japrove_aig::Aig`]) whose latches carry reset
//! values (the initial states `I`) and next-state functions (the
//! transition relation `T`), together with a list of safety
//! [`Property`]s `P1..Pk` and optional design-level invariant
//! constraints.
//!
//! It also provides:
//!
//! * [`Word`] — word-level construction helpers (counters,
//!   comparators, adders) used by the benchmark generators,
//! * [`Trace`] — concrete counterexample witnesses,
//! * [`replay`] — simulation-based validation of traces, recording
//!   which properties fail at which steps (the ground truth used to
//!   check the paper's debugging-set propositions).
//!
//! # Examples
//!
//! ```
//! use japrove_aig::Aig;
//! use japrove_tsys::{TransitionSystem, Word};
//!
//! // An 8-bit counter that must stay below 200.
//! let mut aig = Aig::new();
//! let count = Word::latches(&mut aig, 8, 0);
//! let next = count.increment(&mut aig);
//! count.set_next(&mut aig, &next);
//! let safe = count.lt_const(&mut aig, 200);
//! let mut sys = TransitionSystem::new("counter", aig);
//! let p = sys.add_property("below_200", safe);
//! assert_eq!(sys.property(p).name, "below_200");
//! ```

mod builder;
mod check;
mod property;
mod system;
mod trace;
mod witness;

pub use builder::Word;
pub use check::{complete_trace, replay, Replay, ReplayError};
pub use property::{Expectation, Property, PropertyId};
pub use system::{CoiMap, TransitionSystem};
pub use trace::Trace;
pub use witness::{parse_witness, write_witness, ParseWitnessError};
