//! AIGER witness format I/O.
//!
//! Counterexamples interchange with the HWMCC tool ecosystem through
//! the AIGER witness format:
//!
//! ```text
//! 1            status: satisfiable (property violated)
//! b<i>         the falsified bad-state property
//! 010...       initial latch values
//! 10...        input vector, one line per frame (including the last)
//! .            terminator
//! ```

use crate::{PropertyId, Trace, TransitionSystem};
use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, Write};

/// Writes a counterexample for property `prop` in AIGER witness
/// format.
///
/// A mut reference can be passed as the writer.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use japrove_aig::Aig;
/// use japrove_tsys::{write_witness, PropertyId, Trace, TransitionSystem};
///
/// let mut aig = Aig::new();
/// let bit = aig.add_latch(false);
/// aig.set_next(bit, !bit);
/// let mut sys = TransitionSystem::new("toggle", aig);
/// let p = sys.add_property("stay_low", !bit);
/// let trace = Trace::new(vec![vec![false], vec![true]], vec![vec![], vec![]]);
/// let mut out = Vec::new();
/// write_witness(&mut out, &sys, p, &trace)?;
/// assert_eq!(String::from_utf8(out)?, "1\nb0\n0\n\n\n.\n");
/// # Ok(())
/// # }
/// ```
pub fn write_witness<W: Write>(
    mut w: W,
    _sys: &TransitionSystem,
    prop: PropertyId,
    trace: &Trace,
) -> io::Result<()> {
    writeln!(w, "1")?;
    writeln!(w, "b{}", prop.index())?;
    for &bit in trace.state(0) {
        write!(w, "{}", bit as u8)?;
    }
    writeln!(w)?;
    for inputs in trace.inputs() {
        for &bit in inputs {
            write!(w, "{}", bit as u8)?;
        }
        writeln!(w)?;
    }
    writeln!(w, ".")
}

/// Error produced by [`parse_witness`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseWitnessError {
    /// The witness is not a "1" (satisfiable) stimulus.
    NotSat,
    /// Structurally malformed content.
    Malformed(String),
}

impl fmt::Display for ParseWitnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseWitnessError::NotSat => write!(f, "witness status is not '1'"),
            ParseWitnessError::Malformed(m) => write!(f, "malformed witness: {m}"),
        }
    }
}

impl Error for ParseWitnessError {}

/// Parses an AIGER witness back into a property index and a trace,
/// re-deriving intermediate states by simulation on `sys`.
///
/// # Errors
///
/// Returns [`ParseWitnessError`] for unsatisfiable or malformed
/// witnesses.
pub fn parse_witness<R: BufRead>(
    reader: R,
    sys: &TransitionSystem,
) -> Result<(PropertyId, Trace), ParseWitnessError> {
    let mut lines = reader.lines().map_while(Result::ok);
    let status = lines
        .next()
        .ok_or_else(|| ParseWitnessError::Malformed("empty witness".into()))?;
    if status.trim() != "1" {
        return Err(ParseWitnessError::NotSat);
    }
    let prop_line = lines
        .next()
        .ok_or_else(|| ParseWitnessError::Malformed("missing property line".into()))?;
    let prop_idx: usize = prop_line
        .trim()
        .strip_prefix('b')
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ParseWitnessError::Malformed(format!("bad property line '{prop_line}'")))?;
    let init_line = lines
        .next()
        .ok_or_else(|| ParseWitnessError::Malformed("missing initial state".into()))?;
    let parse_bits =
        |line: &str, expect: usize, what: &str| -> Result<Vec<bool>, ParseWitnessError> {
            let bits: Vec<bool> = line.trim().chars().map(|c| c == '1').collect();
            if bits.len() != expect {
                return Err(ParseWitnessError::Malformed(format!(
                    "{what} has {} bits, expected {expect}",
                    bits.len()
                )));
            }
            Ok(bits)
        };
    let init = parse_bits(&init_line, sys.num_latches(), "initial state")?;
    let mut inputs = Vec::new();
    for line in lines {
        let line = line.trim().to_string();
        if line == "." {
            break;
        }
        inputs.push(parse_bits(&line, sys.num_inputs(), "input vector")?);
    }
    if inputs.is_empty() {
        return Err(ParseWitnessError::Malformed("no input frames".into()));
    }
    // Re-derive states by simulation from the given initial state.
    let aig = sys.aig();
    let words: Vec<u64> = init.iter().map(|&b| if b { u64::MAX } else { 0 }).collect();
    let mut sim = japrove_aig::Simulator::with_state(aig, words);
    let mut states = vec![init];
    for inp in &inputs[..inputs.len() - 1] {
        let in_words: Vec<u64> = inp.iter().map(|&b| if b { u64::MAX } else { 0 }).collect();
        sim.step(aig, &in_words);
        states.push(sim.state().iter().map(|&w| w & 1 == 1).collect());
    }
    Ok((PropertyId::new(prop_idx), Trace::new(states, inputs)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{replay, Word};
    use japrove_aig::Aig;

    fn counter_sys() -> (TransitionSystem, PropertyId) {
        let mut aig = Aig::new();
        let w = Word::latches(&mut aig, 3, 0);
        let n = w.increment(&mut aig);
        w.set_next(&mut aig, &n);
        let safe = w.lt_const(&mut aig, 3);
        let mut sys = TransitionSystem::new("cnt", aig);
        let p = sys.add_property("lt3", safe);
        (sys, p)
    }

    #[test]
    fn round_trip_preserves_trace() {
        let (sys, p) = counter_sys();
        let trace = crate::complete_trace(&sys, vec![vec![]; 4]);
        let mut buf = Vec::new();
        write_witness(&mut buf, &sys, p, &trace).expect("write");
        let (prop, back) = parse_witness(&buf[..], &sys).expect("parse");
        assert_eq!(prop, p);
        assert_eq!(back, trace);
        let r = replay(&sys, &back).expect("valid");
        assert!(r.violates_finally(p));
    }

    #[test]
    fn rejects_unsat_witness() {
        let (sys, _) = counter_sys();
        assert_eq!(
            parse_witness("0\n".as_bytes(), &sys),
            Err(ParseWitnessError::NotSat)
        );
    }

    #[test]
    fn rejects_wrong_widths() {
        let (sys, _) = counter_sys();
        let text = "1\nb0\n00\n\n.\n"; // 2 latch bits instead of 3
        assert!(matches!(
            parse_witness(text.as_bytes(), &sys),
            Err(ParseWitnessError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_garbage_property_line() {
        let (sys, _) = counter_sys();
        let text = "1\nxyz\n000\n\n.\n";
        assert!(matches!(
            parse_witness(text.as_bytes(), &sys),
            Err(ParseWitnessError::Malformed(_))
        ));
    }
}
