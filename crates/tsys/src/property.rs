//! Safety properties and their expectations.

use japrove_aig::AigLit;
use std::fmt;

/// Identifier of a property inside a
/// [`TransitionSystem`](crate::TransitionSystem).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PropertyId(pub(crate) usize);

impl PropertyId {
    /// Creates an id from a raw index.
    pub fn new(index: usize) -> Self {
        PropertyId(index)
    }

    /// The dense index of this property.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for PropertyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Whether a property is Expected To Hold or Expected To Fail
/// (§5 of the paper). ETF properties are excluded from the assumption
/// set during JA-verification so their counterexamples are not
/// suppressed.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Expectation {
    /// Expected To Hold (ETH) — the default.
    #[default]
    Hold,
    /// Expected To Fail (ETF) — e.g. a reachability goal.
    Fail,
}

/// A safety property `P(S)`: holds in a state iff [`Property::good`]
/// evaluates to true there.
#[derive(Clone, Debug)]
pub struct Property {
    /// Human-readable name (from the AIGER symbol table or generator).
    pub name: String,
    /// Edge that is true exactly in the good states.
    pub good: AigLit,
    /// ETH/ETF classification.
    pub expectation: Expectation,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_display_and_index() {
        let id = PropertyId::new(7);
        assert_eq!(id.to_string(), "P7");
        assert_eq!(id.index(), 7);
    }

    #[test]
    fn default_expectation_is_hold() {
        assert_eq!(Expectation::default(), Expectation::Hold);
    }

    #[test]
    fn property_is_cloneable() {
        let p = Property {
            name: "x".into(),
            good: AigLit::TRUE,
            expectation: Expectation::Fail,
        };
        let q = p.clone();
        assert_eq!(q.name, "x");
        assert_eq!(q.expectation, Expectation::Fail);
    }
}
