//! Concrete execution traces (counterexample witnesses).

use std::fmt;

/// A concrete initialized trace: `states[0]` is the initial state and
/// `inputs[k]` are the input values at step `k`.
///
/// There is one input vector *per state* (AIGER witness convention):
/// `inputs[k]` drives the transition from `states[k]` to
/// `states[k + 1]` for `k < len()`, and the final input vector
/// `inputs[len()]` only feeds the combinational logic of the final
/// state — necessary because properties may depend on primary inputs
/// (the paper's `P0: req == 1` is an example).
///
/// Invariant: `states.len() == inputs.len()`.
///
/// # Examples
///
/// ```
/// use japrove_tsys::Trace;
/// let t = Trace::new(vec![vec![false]], vec![vec![true]]);
/// assert_eq!(t.len(), 0); // zero transitions: a single-state trace
/// assert_eq!(t.num_states(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Trace {
    states: Vec<Vec<bool>>,
    inputs: Vec<Vec<bool>>,
}

impl Trace {
    /// Creates a trace from explicit states and per-state inputs.
    ///
    /// # Panics
    ///
    /// Panics unless `states.len() == inputs.len()` and there is at
    /// least one state.
    pub fn new(states: Vec<Vec<bool>>, inputs: Vec<Vec<bool>>) -> Self {
        assert!(!states.is_empty(), "a trace has at least one state");
        assert_eq!(
            states.len(),
            inputs.len(),
            "one input vector per state (the last one is evaluation-only)"
        );
        Trace { states, inputs }
    }

    /// Number of transitions (the paper's counterexample *depth*).
    pub fn len(&self) -> usize {
        self.states.len() - 1
    }

    /// Returns `true` for a single-state trace with no transitions.
    pub fn is_empty(&self) -> bool {
        self.states.len() == 1
    }

    /// Number of states (`len() + 1`).
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// The state at step `k` (one Boolean per latch).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn state(&self, k: usize) -> &[bool] {
        &self.states[k]
    }

    /// The inputs at step `k` (one Boolean per input).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn input(&self, k: usize) -> &[bool] {
        &self.inputs[k]
    }

    /// All states.
    pub fn states(&self) -> &[Vec<bool>] {
        &self.states
    }

    /// All input vectors (one per state).
    pub fn inputs(&self) -> &[Vec<bool>] {
        &self.inputs
    }

    /// The final state.
    pub fn final_state(&self) -> &[bool] {
        self.states.last().expect("trace has at least one state")
    }

    /// The inputs at the final state.
    pub fn final_input(&self) -> &[bool] {
        self.inputs.last().expect("trace has at least one state")
    }

    /// Truncates the trace to `len` transitions.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds the current length.
    pub fn truncate(&mut self, len: usize) {
        assert!(len <= self.len(), "cannot extend by truncation");
        self.states.truncate(len + 1);
        self.inputs.truncate(len + 1);
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "trace with {} transition(s):", self.len())?;
        for (k, state) in self.states.iter().enumerate() {
            write!(f, "  s{k}: ")?;
            for &b in state {
                write!(f, "{}", b as u8)?;
            }
            write!(f, "   i{k}: ")?;
            for &b in &self.inputs[k] {
                write!(f, "{}", b as u8)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Trace::new(
            vec![vec![false, false], vec![true, false], vec![true, true]],
            vec![vec![true], vec![false], vec![true]],
        );
        assert_eq!(t.len(), 2);
        assert_eq!(t.num_states(), 3);
        assert_eq!(t.state(1), &[true, false]);
        assert_eq!(t.input(0), &[true]);
        assert_eq!(t.final_state(), &[true, true]);
        assert_eq!(t.final_input(), &[true]);
    }

    #[test]
    #[should_panic(expected = "one input vector per state")]
    fn mismatched_lengths_panic() {
        let _ = Trace::new(vec![vec![false]], vec![]);
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn empty_trace_panics() {
        let _ = Trace::new(vec![], vec![]);
    }

    #[test]
    fn truncation() {
        let mut t = Trace::new(
            vec![vec![false], vec![true], vec![false]],
            vec![vec![], vec![], vec![]],
        );
        t.truncate(1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.final_state(), &[true]);
    }

    #[test]
    fn display_contains_states() {
        let t = Trace::new(vec![vec![true, false]], vec![vec![]]);
        let s = t.to_string();
        assert!(s.contains("s0: 10"));
    }
}
