//! Transition systems with multiple safety properties.

use crate::{Expectation, Property, PropertyId};
use japrove_aig::{Aig, AigLit, AigerModel};
use std::fmt;

/// An `(I, T)`-system in the paper's sense: a set of initial states
/// (latch resets), a transition relation (latch next-state functions)
/// and a list of safety properties `P1..Pk`.
///
/// Property `i` *holds in a state* iff its good-literal evaluates to
/// true there; a counterexample is an initialized trace whose final
/// state falsifies the literal (cf. §2-A of the paper).
///
/// # Examples
///
/// ```
/// use japrove_aig::Aig;
/// use japrove_tsys::TransitionSystem;
///
/// let mut aig = Aig::new();
/// let bit = aig.add_latch(false);
/// aig.set_next(bit, !bit);
/// let mut sys = TransitionSystem::new("toggle", aig);
/// let p = sys.add_property("never_high", !bit);
/// assert_eq!(sys.num_properties(), 1);
/// assert_eq!(sys.property(p).name, "never_high");
/// ```
#[derive(Clone)]
pub struct TransitionSystem {
    name: String,
    aig: Aig,
    properties: Vec<Property>,
    constraints: Vec<AigLit>,
}

impl TransitionSystem {
    /// Creates a system over the given graph with no properties yet.
    pub fn new(name: impl Into<String>, aig: Aig) -> Self {
        TransitionSystem {
            name: name.into(),
            aig,
            properties: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Builds a system from a parsed AIGER model: each bad-state
    /// literal `b_i` becomes the property `!b_i`, named from the symbol
    /// table when present.
    pub fn from_aiger(name: impl Into<String>, model: AigerModel) -> Self {
        let mut sys = TransitionSystem::new(name, model.aig);
        for (i, &bad) in model.bads.iter().enumerate() {
            let key = format!("b{i}");
            let prop_name = model
                .symbols
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, n)| n.clone())
                .unwrap_or_else(|| format!("p{i}"));
            sys.add_property(prop_name, !bad);
        }
        sys.constraints = model.constraints;
        sys
    }

    /// Converts back to an AIGER model (properties become bad-state
    /// literals, names go to the symbol table).
    pub fn to_aiger(&self) -> AigerModel {
        AigerModel {
            aig: self.aig.clone(),
            outputs: Vec::new(),
            bads: self.properties.iter().map(|p| !p.good).collect(),
            constraints: self.constraints.clone(),
            symbols: self
                .properties
                .iter()
                .enumerate()
                .map(|(i, p)| (format!("b{i}"), p.name.clone()))
                .collect(),
            comments: vec![format!("japrove system '{}'", self.name)],
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying graph.
    pub fn aig(&self) -> &Aig {
        &self.aig
    }

    /// Mutable access to the graph (for adding monitor logic).
    pub fn aig_mut(&mut self) -> &mut Aig {
        &mut self.aig
    }

    /// Number of latches.
    pub fn num_latches(&self) -> usize {
        self.aig.num_latches()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.aig.num_inputs()
    }

    /// Number of properties.
    pub fn num_properties(&self) -> usize {
        self.properties.len()
    }

    /// Registers a property expected to hold; returns its id.
    pub fn add_property(&mut self, name: impl Into<String>, good: AigLit) -> PropertyId {
        self.add_property_with(name, good, Expectation::Hold)
    }

    /// Registers a property with an explicit expectation (ETH/ETF,
    /// cf. §5 of the paper).
    pub fn add_property_with(
        &mut self,
        name: impl Into<String>,
        good: AigLit,
        expectation: Expectation,
    ) -> PropertyId {
        let id = PropertyId(self.properties.len());
        self.properties.push(Property {
            name: name.into(),
            good,
            expectation,
        });
        id
    }

    /// The property with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn property(&self, id: PropertyId) -> &Property {
        &self.properties[id.0]
    }

    /// All properties in declaration order.
    pub fn properties(&self) -> &[Property] {
        &self.properties
    }

    /// All property ids in declaration order.
    pub fn property_ids(&self) -> impl Iterator<Item = PropertyId> + '_ {
        (0..self.properties.len()).map(PropertyId)
    }

    /// Design-level invariant constraints (AIGER `C` lines), assumed
    /// true in every state of every trace.
    pub fn constraints(&self) -> &[AigLit] {
        &self.constraints
    }

    /// Adds a design-level invariant constraint.
    pub fn add_constraint(&mut self, lit: AigLit) {
        self.constraints.push(lit);
    }
}

impl fmt::Debug for TransitionSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TransitionSystem('{}', {} latches, {} inputs, {} properties)",
            self.name,
            self.num_latches(),
            self.num_inputs(),
            self.num_properties()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use japrove_aig::read_aiger;

    #[test]
    fn aiger_round_trip_keeps_properties() {
        let mut aig = Aig::new();
        let l = aig.add_latch(false);
        aig.set_next(l, !l);
        let mut sys = TransitionSystem::new("t", aig);
        sys.add_property("stay_low", !l);
        let model = sys.to_aiger();
        assert_eq!(model.bads.len(), 1);
        let mut text = Vec::new();
        japrove_aig::write_aiger_ascii(&mut text, &model).expect("write");
        let back = TransitionSystem::from_aiger("t2", read_aiger(&text).expect("parse"));
        assert_eq!(back.num_properties(), 1);
        assert_eq!(back.property(PropertyId::new(0)).name, "stay_low");
    }

    #[test]
    fn expectations_recorded() {
        let mut aig = Aig::new();
        let l = aig.add_latch(false);
        aig.set_next(l, l);
        let mut sys = TransitionSystem::new("t", aig);
        let a = sys.add_property("eth", !l);
        let b = sys.add_property_with("etf", l, Expectation::Fail);
        assert_eq!(sys.property(a).expectation, Expectation::Hold);
        assert_eq!(sys.property(b).expectation, Expectation::Fail);
    }

    #[test]
    fn property_ids_enumerate_in_order() {
        let mut aig = Aig::new();
        let l = aig.add_latch(false);
        aig.set_next(l, l);
        let mut sys = TransitionSystem::new("t", aig);
        sys.add_property("a", !l);
        sys.add_property("b", l);
        let ids: Vec<usize> = sys.property_ids().map(|p| p.index()).collect();
        assert_eq!(ids, vec![0, 1]);
    }
}
