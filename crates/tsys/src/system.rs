//! Transition systems with multiple safety properties.

use crate::{Expectation, Property, PropertyId};
use japrove_aig::{Aig, AigLit, AigerModel};
use std::fmt;

/// An `(I, T)`-system in the paper's sense: a set of initial states
/// (latch resets), a transition relation (latch next-state functions)
/// and a list of safety properties `P1..Pk`.
///
/// Property `i` *holds in a state* iff its good-literal evaluates to
/// true there; a counterexample is an initialized trace whose final
/// state falsifies the literal (cf. §2-A of the paper).
///
/// # Examples
///
/// ```
/// use japrove_aig::Aig;
/// use japrove_tsys::TransitionSystem;
///
/// let mut aig = Aig::new();
/// let bit = aig.add_latch(false);
/// aig.set_next(bit, !bit);
/// let mut sys = TransitionSystem::new("toggle", aig);
/// let p = sys.add_property("never_high", !bit);
/// assert_eq!(sys.num_properties(), 1);
/// assert_eq!(sys.property(p).name, "never_high");
/// ```
#[derive(Clone)]
pub struct TransitionSystem {
    name: String,
    aig: Aig,
    properties: Vec<Property>,
    constraints: Vec<AigLit>,
}

impl TransitionSystem {
    /// Creates a system over the given graph with no properties yet.
    pub fn new(name: impl Into<String>, aig: Aig) -> Self {
        TransitionSystem {
            name: name.into(),
            aig,
            properties: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Builds a system from a parsed AIGER model: each bad-state
    /// literal `b_i` becomes the property `!b_i`, named from the symbol
    /// table when present.
    pub fn from_aiger(name: impl Into<String>, model: AigerModel) -> Self {
        let mut sys = TransitionSystem::new(name, model.aig);
        for (i, &bad) in model.bads.iter().enumerate() {
            let key = format!("b{i}");
            let prop_name = model
                .symbols
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, n)| n.clone())
                .unwrap_or_else(|| format!("p{i}"));
            sys.add_property(prop_name, !bad);
        }
        sys.constraints = model.constraints;
        sys
    }

    /// Converts back to an AIGER model (properties become bad-state
    /// literals, names go to the symbol table).
    pub fn to_aiger(&self) -> AigerModel {
        AigerModel {
            aig: self.aig.clone(),
            outputs: Vec::new(),
            bads: self.properties.iter().map(|p| !p.good).collect(),
            constraints: self.constraints.clone(),
            symbols: self
                .properties
                .iter()
                .enumerate()
                .map(|(i, p)| (format!("b{i}"), p.name.clone()))
                .collect(),
            comments: vec![format!("japrove system '{}'", self.name)],
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A stable 64-bit structural hash of the design: FNV-1a over its
    /// ASCII AIGER serialization (graph, resets, properties,
    /// constraints and the symbol table; the design name only appears
    /// in the comment section, which is excluded). Two systems hash
    /// equal iff they serialize identically, which is what the
    /// cross-run feature store keys on.
    pub fn structural_hash(&self) -> u64 {
        let mut model = self.to_aiger();
        model.comments.clear();
        let mut bytes = Vec::new();
        japrove_aig::write_aiger_ascii(&mut bytes, &model).expect("writing to a Vec cannot fail");
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in &bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
        h
    }

    /// The underlying graph.
    pub fn aig(&self) -> &Aig {
        &self.aig
    }

    /// Mutable access to the graph (for adding monitor logic).
    pub fn aig_mut(&mut self) -> &mut Aig {
        &mut self.aig
    }

    /// Number of latches.
    pub fn num_latches(&self) -> usize {
        self.aig.num_latches()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.aig.num_inputs()
    }

    /// Number of properties.
    pub fn num_properties(&self) -> usize {
        self.properties.len()
    }

    /// Registers a property expected to hold; returns its id.
    pub fn add_property(&mut self, name: impl Into<String>, good: AigLit) -> PropertyId {
        self.add_property_with(name, good, Expectation::Hold)
    }

    /// Registers a property with an explicit expectation (ETH/ETF,
    /// cf. §5 of the paper).
    pub fn add_property_with(
        &mut self,
        name: impl Into<String>,
        good: AigLit,
        expectation: Expectation,
    ) -> PropertyId {
        let id = PropertyId(self.properties.len());
        self.properties.push(Property {
            name: name.into(),
            good,
            expectation,
        });
        id
    }

    /// The property with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn property(&self, id: PropertyId) -> &Property {
        &self.properties[id.0]
    }

    /// All properties in declaration order.
    pub fn properties(&self) -> &[Property] {
        &self.properties
    }

    /// All property ids in declaration order.
    pub fn property_ids(&self) -> impl Iterator<Item = PropertyId> + '_ {
        (0..self.properties.len()).map(PropertyId)
    }

    /// Indices of the latches in a property's *sequential* cone of
    /// influence: the state bits that can affect the property's value
    /// in some (possibly distant) time frame.
    ///
    /// The returned indices are sorted; the drivers use the support
    /// both to schedule hardest-first (larger support ≈ deeper proof)
    /// and as the structural affinity signal of property clustering.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    ///
    /// # Examples
    ///
    /// ```
    /// use japrove_aig::Aig;
    /// use japrove_tsys::TransitionSystem;
    ///
    /// let mut aig = Aig::new();
    /// let a = aig.add_latch(false);
    /// let b = aig.add_latch(false);
    /// aig.set_next(a, !a);
    /// aig.set_next(b, a); // b's cone pulls in a
    /// let mut sys = TransitionSystem::new("t", aig);
    /// let pa = sys.add_property("pa", !a);
    /// let pb = sys.add_property("pb", !b);
    /// assert_eq!(sys.latch_support(pa), vec![0]);
    /// assert_eq!(sys.latch_support(pb), vec![0, 1]);
    /// ```
    pub fn latch_support(&self, id: PropertyId) -> Vec<usize> {
        let cone = japrove_aig::Cone::sequential(&self.aig, [self.property(id).good]);
        self.aig
            .latches()
            .iter()
            .enumerate()
            .filter(|(_, l)| cone.contains(l.node))
            .map(|(i, _)| i)
            .collect()
    }

    /// Design-level invariant constraints (AIGER `C` lines), assumed
    /// true in every state of every trace.
    pub fn constraints(&self) -> &[AigLit] {
        &self.constraints
    }

    /// Adds a design-level invariant constraint.
    pub fn add_constraint(&mut self, lit: AigLit) {
        self.constraints.push(lit);
    }

    /// The cone-of-influence reduction of this system to `props`: a
    /// system containing exactly the latches, inputs and gates in the
    /// sequential cones of the given properties (and of every design
    /// constraint), with those properties — and the constraints —
    /// carried over.
    ///
    /// Cone reduction is sound and complete for safety properties: the
    /// kept latches evolve identically in both systems, so a property
    /// holds in the reduction iff it holds here, and reduced
    /// counterexamples lift back (see [`CoiMap::lift_inputs`]). The
    /// clustered driver verifies each property cluster on its
    /// reduction — the whole point of cone-coherent clusters is that
    /// this cut is deep.
    ///
    /// # Panics
    ///
    /// Panics if a property id is out of range.
    ///
    /// # Examples
    ///
    /// ```
    /// use japrove_aig::Aig;
    /// use japrove_tsys::{TransitionSystem, Word};
    ///
    /// let mut aig = Aig::new();
    /// let a = Word::latches(&mut aig, 3, 0);
    /// let na = a.increment(&mut aig);
    /// a.set_next(&mut aig, &na);
    /// let b = Word::latches(&mut aig, 5, 0);
    /// let nb = b.increment(&mut aig);
    /// b.set_next(&mut aig, &nb);
    /// let pa = a.lt_const(&mut aig, 6);
    /// let pb = b.lt_const(&mut aig, 30);
    /// let mut sys = TransitionSystem::new("two", aig);
    /// let p = sys.add_property("a_ok", pa);
    /// sys.add_property("b_ok", pb);
    /// let (sub, map) = sys.restrict_to_cone(&[p]);
    /// assert_eq!(sub.num_latches(), 3); // b's 5 latches are gone
    /// assert_eq!(sub.num_properties(), 1);
    /// assert_eq!(map.properties, vec![p]);
    /// ```
    pub fn restrict_to_cone(&self, props: &[PropertyId]) -> (TransitionSystem, CoiMap) {
        use japrove_aig::{Cone, Node};
        let aig = &self.aig;
        let roots = props
            .iter()
            .map(|&p| self.property(p).good)
            .chain(self.constraints.iter().copied());
        let cone = Cone::sequential(aig, roots);

        let mut sub = Aig::new();
        // Old node id → new (positive) edge, filled in topological
        // order so AND operands are always mapped before their gate.
        let mut node_map: Vec<Option<AigLit>> = vec![None; aig.num_nodes()];
        let mut latches = Vec::new();
        let mut inputs = Vec::new();
        let map_edge = |node_map: &[Option<AigLit>], l: AigLit| -> AigLit {
            let base = node_map[l.node().index()].expect("operands precede their gate");
            if l.is_inverted() {
                !base
            } else {
                base
            }
        };
        for id in aig.node_ids() {
            if !cone.contains(id) {
                continue;
            }
            node_map[id.index()] = Some(match aig.node(id) {
                Node::False => AigLit::FALSE,
                Node::Input(i) => {
                    inputs.push(i as usize);
                    sub.add_input()
                }
                Node::Latch(k) => {
                    latches.push(k as usize);
                    sub.add_latch(aig.latches()[k as usize].reset)
                }
                Node::And(a, b) => {
                    let (a, b) = (map_edge(&node_map, a), map_edge(&node_map, b));
                    sub.and(a, b)
                }
            });
        }
        // Next-state functions in a second pass: they may point forward
        // but stay within the sequential cone by construction.
        for &k in &latches {
            let latch = aig.latches()[k];
            let new_latch = map_edge(&node_map, AigLit::new(latch.node, false));
            let new_next = map_edge(&node_map, latch.next);
            sub.set_next(new_latch, new_next);
        }

        let mut reduced = TransitionSystem::new(format!("{}#coi", self.name), sub);
        for &p in props {
            let prop = self.property(p);
            let good = map_edge(&node_map, prop.good);
            reduced.add_property_with(prop.name.clone(), good, prop.expectation);
        }
        for &c in &self.constraints {
            let lit = map_edge(&node_map, c);
            reduced.add_constraint(lit);
        }
        (
            reduced,
            CoiMap {
                latches,
                inputs,
                properties: props.to_vec(),
                original_inputs: self.num_inputs(),
            },
        )
    }
}

/// How the elements of a [`TransitionSystem::restrict_to_cone`]
/// reduction map back onto the original system.
#[derive(Clone, Debug)]
pub struct CoiMap {
    /// `latches[i]` is the original latch index of reduced latch `i`.
    pub latches: Vec<usize>,
    /// `inputs[i]` is the original input index of reduced input `i`.
    pub inputs: Vec<usize>,
    /// `properties[i]` is the original id of reduced property `i`.
    pub properties: Vec<PropertyId>,
    /// Input count of the original system (for lifting input vectors).
    original_inputs: usize,
}

impl CoiMap {
    /// Lifts per-step input vectors of the reduced system back to the
    /// original input width: kept inputs keep their values, removed
    /// inputs (which cannot affect the kept cone) are driven `false`.
    /// Feeding the result to [`crate::complete_trace`] on the original
    /// system reproduces the reduced trace on the kept latches, which
    /// is how reduced counterexamples are materialized as original
    /// ones.
    pub fn lift_inputs(&self, reduced_inputs: &[Vec<bool>]) -> Vec<Vec<bool>> {
        reduced_inputs
            .iter()
            .map(|step| {
                let mut full = vec![false; self.original_inputs];
                for (ri, &oi) in self.inputs.iter().enumerate() {
                    full[oi] = step[ri];
                }
                full
            })
            .collect()
    }
}

impl fmt::Debug for TransitionSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TransitionSystem('{}', {} latches, {} inputs, {} properties)",
            self.name,
            self.num_latches(),
            self.num_inputs(),
            self.num_properties()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use japrove_aig::read_aiger;

    #[test]
    fn aiger_round_trip_keeps_properties() {
        let mut aig = Aig::new();
        let l = aig.add_latch(false);
        aig.set_next(l, !l);
        let mut sys = TransitionSystem::new("t", aig);
        sys.add_property("stay_low", !l);
        let model = sys.to_aiger();
        assert_eq!(model.bads.len(), 1);
        let mut text = Vec::new();
        japrove_aig::write_aiger_ascii(&mut text, &model).expect("write");
        let back = TransitionSystem::from_aiger("t2", read_aiger(&text).expect("parse"));
        assert_eq!(back.num_properties(), 1);
        assert_eq!(back.property(PropertyId::new(0)).name, "stay_low");
    }

    #[test]
    fn expectations_recorded() {
        let mut aig = Aig::new();
        let l = aig.add_latch(false);
        aig.set_next(l, l);
        let mut sys = TransitionSystem::new("t", aig);
        let a = sys.add_property("eth", !l);
        let b = sys.add_property_with("etf", l, Expectation::Fail);
        assert_eq!(sys.property(a).expectation, Expectation::Hold);
        assert_eq!(sys.property(b).expectation, Expectation::Fail);
    }

    #[test]
    fn coi_reduction_preserves_behaviour_on_kept_latches() {
        use crate::{complete_trace, Word};
        // Two counters, one gated by an input; restrict to the gated
        // one and check step-for-step agreement under lifted inputs.
        let mut aig = Aig::new();
        let gate = aig.add_input();
        let free = Word::latches(&mut aig, 4, 0);
        let nf = free.increment(&mut aig);
        free.set_next(&mut aig, &nf);
        let gated = Word::latches(&mut aig, 3, 0);
        let ng = gated.increment(&mut aig);
        let held = Word::mux(&mut aig, gate, &ng, &gated);
        gated.set_next(&mut aig, &held);
        let pg = gated.lt_const(&mut aig, 6);
        let pf = free.lt_const(&mut aig, 12);
        let mut sys = TransitionSystem::new("two", aig);
        let p_gated = sys.add_property("gated_ok", pg);
        sys.add_property("free_ok", pf);

        let (sub, map) = sys.restrict_to_cone(&[p_gated]);
        assert_eq!(sub.num_latches(), 3);
        assert_eq!(sub.num_inputs(), 1);
        assert_eq!(sub.num_properties(), 1);
        assert_eq!(map.latches.len(), 3);

        // Drive the reduced system with alternating gate values, lift
        // the inputs, and compare the kept-latch columns.
        let reduced_inputs: Vec<Vec<bool>> = (0..8).map(|k| vec![k % 2 == 0]).collect();
        let reduced = complete_trace(&sub, reduced_inputs.clone());
        let lifted = map.lift_inputs(&reduced_inputs);
        assert!(lifted.iter().all(|v| v.len() == sys.num_inputs()));
        let full = complete_trace(&sys, lifted);
        for (k, rstate) in reduced.states().iter().enumerate() {
            for (ri, &oi) in map.latches.iter().enumerate() {
                assert_eq!(rstate[ri], full.state(k)[oi], "step {k} latch {ri}");
            }
        }
    }

    #[test]
    fn coi_reduction_keeps_constraint_cones() {
        use crate::Word;
        let mut aig = Aig::new();
        let a = Word::latches(&mut aig, 3, 0);
        let na = a.increment(&mut aig);
        a.set_next(&mut aig, &na);
        let b = Word::latches(&mut aig, 3, 0);
        let nb = b.increment(&mut aig);
        b.set_next(&mut aig, &nb);
        let pa = a.lt_const(&mut aig, 6);
        let constr = b.lt_const(&mut aig, 4);
        let mut sys = TransitionSystem::new("constrained", aig);
        let p = sys.add_property("a_ok", pa);
        sys.add_constraint(constr);
        // The constraint's cone (counter b) must survive even though
        // the property never looks at it.
        let (sub, _) = sys.restrict_to_cone(&[p]);
        assert_eq!(sub.num_latches(), 6);
        assert_eq!(sub.constraints().len(), 1);
    }

    #[test]
    fn property_ids_enumerate_in_order() {
        let mut aig = Aig::new();
        let l = aig.add_latch(false);
        aig.set_next(l, l);
        let mut sys = TransitionSystem::new("t", aig);
        sys.add_property("a", !l);
        sys.add_property("b", l);
        let ids: Vec<usize> = sys.property_ids().map(|p| p.index()).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn structural_hash_is_stable_and_name_independent() {
        let build = |name: &str, flip: bool| {
            let mut aig = Aig::new();
            let l = aig.add_latch(false);
            aig.set_next(l, !l);
            let mut sys = TransitionSystem::new(name, aig);
            sys.add_property("p", if flip { l } else { !l });
            sys
        };
        let a = build("one", false);
        assert_eq!(a.structural_hash(), a.structural_hash());
        // The name is metadata, not structure.
        assert_eq!(
            a.structural_hash(),
            build("another-name", false).structural_hash()
        );
        // Flipping a property literal changes the structure.
        assert_ne!(a.structural_hash(), build("one", true).structural_hash());
    }
}
