//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultPlan`] is a seeded set of rules that inject panics, delays
//! and truncated store writes at *named sites* in the pipeline. The
//! decision for each `(site, key)` pair — e.g. `("check_one", "p17")`
//! — is a pure hash of the seed, the site, the key and the action
//! kind, **never** the wall clock or an arrival counter: the same
//! ~10% of properties fault on every run regardless of how eight
//! worker threads happen to interleave, which is what makes chaos
//! behavior reproducible in tests and CI.
//!
//! The sites currently instrumented:
//!
//! | site                 | keyed by      | actions honored    |
//! |----------------------|---------------|--------------------|
//! | `check_one`          | property name | `panic`, `delay`   |
//! | `joint_attempt`      | design name   | `panic`, `delay`   |
//! | `enum_round`         | property name | `panic`, `delay`   |
//! | `feature_store_save` | file name     | `truncate`         |
//! | `verdict_cache_save` | file name     | `truncate`         |
//!
//! With no plan installed (the default) every probe is one atomic
//! load, so production runs pay nothing.
//!
//! # Examples
//!
//! ```
//! use japrove_obs::fault::FaultPlan;
//!
//! let plan = FaultPlan::parse("panic@check_one:0.1;delay@check_one:0.2:5", 42).unwrap();
//! // Decisions are a pure function of (seed, site, key, action):
//! let hit = plan.decides("check_one", "p3", "panic", 0.1);
//! assert_eq!(hit, plan.decides("check_one", "p3", "panic", 0.1));
//! ```

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What an injection rule does when its decision fires.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultAction {
    /// Panic at the site (exercises the supervision layer).
    Panic,
    /// Sleep for the given duration (exercises watchdog timeouts).
    Delay(Duration),
    /// Truncate a store write to the given byte count (exercises the
    /// lossy loaders). Honored by persistence sites only.
    Truncate(usize),
}

impl FaultAction {
    /// The wire/spec name of this action kind, also the hash salt that
    /// keeps co-sited rules' decisions independent.
    fn name(&self) -> &'static str {
        match self {
            FaultAction::Panic => "panic",
            FaultAction::Delay(_) => "delay",
            FaultAction::Truncate(_) => "truncate",
        }
    }
}

/// One injection rule: an action fired at `site` with probability
/// `rate` (per distinct key).
#[derive(Clone, Debug, PartialEq)]
pub struct FaultRule {
    /// The named injection site this rule arms.
    pub site: String,
    /// Fraction of keys that fault, in `[0, 1]`.
    pub rate: f64,
    /// What happens when the decision fires.
    pub action: FaultAction,
}

/// A seeded, deterministic set of [`FaultRule`]s.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    seed: u64,
}

/// The grammar reminder appended to every spec parse error.
const SPEC_FORMS: &str =
    "expected panic@SITE:RATE, delay@SITE:RATE:MILLIS or truncate@SITE:RATE:BYTES, \
     clauses separated by ';'";

impl FaultPlan {
    /// Parses a plan spec: `;`-separated clauses of the forms
    /// `panic@SITE:RATE`, `delay@SITE:RATE:MILLIS` and
    /// `truncate@SITE:RATE:BYTES`.
    pub fn parse(spec: &str, seed: u64) -> Result<FaultPlan, String> {
        let mut rules = Vec::new();
        for clause in spec.split(';').map(str::trim).filter(|c| !c.is_empty()) {
            let (kind, rest) = clause
                .split_once('@')
                .ok_or_else(|| format!("bad fault clause '{clause}' ({SPEC_FORMS})"))?;
            let mut parts = rest.split(':');
            let site = parts.next().filter(|s| !s.is_empty()).ok_or_else(|| {
                format!("bad fault clause '{clause}': missing site ({SPEC_FORMS})")
            })?;
            let rate: f64 = parts
                .next()
                .and_then(|r| r.parse().ok())
                .filter(|r| (0.0..=1.0).contains(r))
                .ok_or_else(|| {
                    format!("bad fault clause '{clause}': need a rate in 0..=1 ({SPEC_FORMS})")
                })?;
            let mut amount = |what: &str| {
                parts
                    .next()
                    .and_then(|a| a.parse::<u64>().ok())
                    .ok_or_else(|| {
                        format!("bad fault clause '{clause}': need {what} ({SPEC_FORMS})")
                    })
            };
            let action = match kind {
                "panic" => FaultAction::Panic,
                "delay" => FaultAction::Delay(Duration::from_millis(amount("MILLIS")?)),
                "truncate" => FaultAction::Truncate(amount("BYTES")? as usize),
                other => {
                    return Err(format!("unknown fault action '{other}' ({SPEC_FORMS})"));
                }
            };
            if parts.next().is_some() {
                return Err(format!(
                    "bad fault clause '{clause}': trailing field ({SPEC_FORMS})"
                ));
            }
            rules.push(FaultRule {
                site: site.to_string(),
                rate,
                action,
            });
        }
        Ok(FaultPlan { rules, seed })
    }

    /// Reads a plan from `JAPROVE_FAULT_PLAN` / `JAPROVE_FAULT_SEED`,
    /// so fault injection reaches processes (benches, CI smoke runs)
    /// that grew no flag for it. `Ok(None)` when the variable is unset.
    pub fn from_env() -> Result<Option<FaultPlan>, String> {
        let Ok(spec) = std::env::var("JAPROVE_FAULT_PLAN") else {
            return Ok(None);
        };
        let seed = match std::env::var("JAPROVE_FAULT_SEED") {
            Ok(s) => s
                .parse()
                .map_err(|_| format!("bad JAPROVE_FAULT_SEED '{s}': need an integer"))?,
            Err(_) => 0,
        };
        FaultPlan::parse(&spec, seed).map(Some)
    }

    /// Whether the `(site, key, action)` triple faults under this plan:
    /// a pure hash decision, identical on every run and every thread
    /// interleaving.
    pub fn decides(&self, site: &str, key: &str, action: &str, rate: f64) -> bool {
        let h = splitmix64(self.seed ^ fnv1a(site).rotate_left(17) ^ fnv1a(key) ^ fnv1a(action));
        // 53 high bits → a uniform float in [0, 1).
        ((h >> 11) as f64 / (1u64 << 53) as f64) < rate
    }

    fn action_for(&self, site: &str, key: &str) -> Option<FaultAction> {
        self.rules
            .iter()
            .filter(|r| r.site == site)
            .find(|r| self.decides(site, key, r.action.name(), r.rate))
            .map(|r| r.action)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.rules.iter().enumerate() {
            if i > 0 {
                f.write_str(";")?;
            }
            match r.action {
                FaultAction::Panic => write!(f, "panic@{}:{}", r.site, r.rate)?,
                FaultAction::Delay(d) => {
                    write!(f, "delay@{}:{}:{}", r.site, r.rate, d.as_millis())?
                }
                FaultAction::Truncate(n) => write!(f, "truncate@{}:{}:{n}", r.site, r.rate)?,
            }
        }
        Ok(())
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

// The process-wide installed plan. ARMED is the fast path: with no
// plan installed, `fire`/`truncation` are one relaxed load.
static ARMED: AtomicBool = AtomicBool::new(false);
static PLAN: Mutex<Option<Arc<FaultPlan>>> = Mutex::new(None);

/// Installs `plan` process-wide; subsequent probes consult it.
pub fn install(plan: FaultPlan) {
    *PLAN.lock().unwrap_or_else(|e| e.into_inner()) = Some(Arc::new(plan));
    ARMED.store(true, Ordering::Release);
}

/// Removes the installed plan (tests call this to clean up).
pub fn clear() {
    ARMED.store(false, Ordering::Release);
    *PLAN.lock().unwrap_or_else(|e| e.into_inner()) = None;
}

/// The installed plan, if any.
pub fn active() -> Option<Arc<FaultPlan>> {
    if !ARMED.load(Ordering::Acquire) {
        return None;
    }
    PLAN.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// An execution-site probe: panics or delays if the installed plan says
/// `(site, key)` faults. A panic here unwinds into the supervision
/// layer's `catch_unwind`, exactly like a genuine engine bug would.
pub fn fire(site: &str, key: &str) {
    let Some(plan) = active() else { return };
    match plan.action_for(site, key) {
        Some(FaultAction::Panic) => {
            panic!("injected fault at {site} ({key})");
        }
        Some(FaultAction::Delay(d)) => std::thread::sleep(d),
        Some(FaultAction::Truncate(_)) | None => {}
    }
}

/// A persistence-site probe: the byte count a store write at `(site,
/// key)` must be torn to, if the installed plan says so.
pub fn truncation(site: &str, key: &str) -> Option<usize> {
    match active()?.action_for(site, key) {
        Some(FaultAction::Truncate(n)) => Some(n),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_and_rejects_bad_clauses() {
        let plan = FaultPlan::parse(
            "panic@check_one:0.1; delay@check_one:0.25:5;truncate@s:1:16",
            7,
        )
        .unwrap();
        assert_eq!(plan.rules.len(), 3);
        assert_eq!(
            plan.to_string(),
            "panic@check_one:0.1;delay@check_one:0.25:5;truncate@s:1:16"
        );
        for bad in [
            "panic:0.1",        // no @site
            "panic@:0.1",       // empty site
            "panic@s:1.5",      // rate out of range
            "panic@s:x",        // rate not a number
            "delay@s:0.5",      // missing millis
            "truncate@s:0.5:x", // bytes not a number
            "teleport@s:0.5",   // unknown action
            "panic@s:0.5:7",    // trailing field
        ] {
            let err = FaultPlan::parse(bad, 0).unwrap_err();
            assert!(err.contains("panic@SITE:RATE"), "{bad}: {err}");
        }
        // Empty specs and empty clauses are fine.
        assert_eq!(FaultPlan::parse("", 0).unwrap().rules.len(), 0);
        assert_eq!(FaultPlan::parse("panic@s:1;;", 0).unwrap().rules.len(), 1);
    }

    #[test]
    fn decisions_are_deterministic_and_rate_shaped() {
        let plan = FaultPlan::parse("panic@check_one:0.1", 42).unwrap();
        let hits: Vec<bool> = (0..1000)
            .map(|i| plan.decides("check_one", &format!("p{i}"), "panic", 0.1))
            .collect();
        let again: Vec<bool> = (0..1000)
            .map(|i| plan.decides("check_one", &format!("p{i}"), "panic", 0.1))
            .collect();
        assert_eq!(hits, again, "decisions are a pure function");
        let count = hits.iter().filter(|&&h| h).count();
        assert!((50..200).contains(&count), "~10% of 1000 keys: {count}");
        // Rate 0 never fires, rate 1 always fires.
        assert!((0..100).all(|i| !plan.decides("s", &format!("k{i}"), "panic", 0.0)));
        assert!((0..100).all(|i| plan.decides("s", &format!("k{i}"), "panic", 1.0)));
    }

    #[test]
    fn different_seeds_pick_different_victims() {
        let a = FaultPlan::parse("panic@s:0.5", 1).unwrap();
        let b = FaultPlan::parse("panic@s:0.5", 2).unwrap();
        let pick = |p: &FaultPlan| -> Vec<bool> {
            (0..64)
                .map(|i| p.decides("s", &format!("k{i}"), "panic", 0.5))
                .collect()
        };
        assert_ne!(pick(&a), pick(&b));
    }

    #[test]
    fn co_sited_rules_decide_independently() {
        // With panic and delay armed at the same site and rate, some
        // keys must fall under exactly one of the two — the action-name
        // salt decorrelates them.
        let plan = FaultPlan::parse("panic@s:0.5;delay@s:0.5:1", 9).unwrap();
        let differs = (0..64).any(|i| {
            let k = format!("k{i}");
            plan.decides("s", &k, "panic", 0.5) != plan.decides("s", &k, "delay", 0.5)
        });
        assert!(differs);
    }

    #[test]
    fn truncation_probe_reports_armed_sites_only() {
        // Serialized against other registry users by being the only
        // unit test here that installs a plan (integration tests run in
        // their own process).
        install(FaultPlan::parse("truncate@verdict_cache_save:1:10", 0).unwrap());
        assert_eq!(truncation("verdict_cache_save", "cache.jsonl"), Some(10));
        assert_eq!(truncation("feature_store_save", "cache.jsonl"), None);
        fire("check_one", "p0"); // no rule for this site: a no-op
        clear();
        assert!(active().is_none());
        assert_eq!(truncation("verdict_cache_save", "cache.jsonl"), None);
    }
}
