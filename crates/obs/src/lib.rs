//! # japrove-obs
//!
//! The unified run journal: one event taxonomy for the whole stack
//! instead of per-crate printlns.
//!
//! * [`Journal`] — a lock-cheap span/event sink every layer reports
//!   into: the SAT solver (restart/reduction/conflict-rate samples),
//!   the IC3/BMC engines (per-frame and per-depth timings,
//!   clause-import hit rates) and the multi-property drivers
//!   (per-property and per-cluster phase spans). The disabled journal
//!   is the default and costs one pointer check per call site.
//! * [`journal::parse_jsonl`] — JSONL round-trip and the strict
//!   schema check CI runs on emitted traces.
//! * [`metrics`] — aggregates a journal into the `--metrics`
//!   phase-breakdown table.
//! * [`FeatureStore`] / [`RunRecord`] — persistent per-(design,
//!   property) cost records across runs: the substrate for learned
//!   scheduling.
//! * [`fault`] — the deterministic fault-injection harness: a seeded
//!   [`FaultPlan`](fault::FaultPlan) injects panics, delays and torn
//!   store writes at named sites, so chaos behavior reproduces in
//!   tests and CI.
//! * [`persist`] — checksummed-line atomic JSONL writes, shared by the
//!   feature store and the verdict cache: a crash between saves never
//!   yields an unreadable store.
//!
//! This crate depends on nothing but `std`, so every other crate in
//! the workspace can report into it.
//!
//! # Examples
//!
//! ```
//! use japrove_obs::{EventKind, Journal, Phase};
//!
//! let journal = Journal::new();
//! {
//!     let _run = journal.span(Phase::Run);
//!     let _prop = journal.span_labeled(Phase::Property, "safety[3]");
//!     journal.event(EventKind::Restart { conflicts: 128 });
//! }
//! let mut jsonl = Vec::new();
//! journal.write_jsonl(&mut jsonl).unwrap();
//! let parsed = japrove_obs::journal::parse_jsonl(
//!     std::str::from_utf8(&jsonl).unwrap(),
//! ).unwrap();
//! assert_eq!(parsed, journal.events());
//! ```

pub mod fault;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod persist;
pub mod record;

pub use journal::{Event, EventKind, Journal, Phase, SchemaError, SpanGuard, SAMPLE_INTERVAL};
pub use record::{FeatureStore, RunRecord, StoreError};
