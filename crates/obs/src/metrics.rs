//! End-of-run phase metrics: aggregating a journal's spans into the
//! `--metrics` breakdown table.

use crate::journal::{Event, EventKind, Phase};
use std::fmt::Write as _;

/// Aggregated wall-clock of one phase across a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseRow {
    /// The phase.
    pub phase: Phase,
    /// Number of spans of this phase.
    pub count: usize,
    /// Summed duration of all its spans, in microseconds. Spans of
    /// *different* phases nest (a cluster span contains its joint
    /// attempt and fallbacks), so rows are per-phase totals, not an
    /// exclusive partition.
    pub total_us: u64,
}

/// Sums span durations by phase, in [`Phase::ALL`] order; phases with
/// no spans are omitted.
///
/// # Examples
///
/// ```
/// use japrove_obs::{metrics::phase_breakdown, Journal, Phase};
///
/// let j = Journal::new();
/// drop(j.span(Phase::Encode));
/// drop(j.span(Phase::Property));
/// drop(j.span(Phase::Property));
/// let rows = phase_breakdown(&j.events());
/// assert_eq!(rows.len(), 2);
/// assert_eq!(rows[1].count, 2);
/// ```
pub fn phase_breakdown(events: &[Event]) -> Vec<PhaseRow> {
    let mut rows: Vec<PhaseRow> = Phase::ALL
        .iter()
        .map(|&phase| PhaseRow {
            phase,
            count: 0,
            total_us: 0,
        })
        .collect();
    for e in events {
        if let EventKind::Span { phase, dur_us, .. } = e.kind {
            let row = rows.iter_mut().find(|r| r.phase == phase).unwrap();
            row.count += 1;
            row.total_us += dur_us;
        }
    }
    rows.retain(|r| r.count > 0);
    rows
}

/// Sums the durations of *top-level* phase spans: spans with no
/// parent, or whose parent is the [`Phase::Run`] root. With a single
/// worker these partition the run, so their sum tracks wall-clock —
/// the property the trace-coverage acceptance test checks.
pub fn top_level_span_us(events: &[Event]) -> u64 {
    let run_ids: Vec<u64> = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Span {
                phase: Phase::Run,
                id,
                ..
            } => Some(id),
            _ => None,
        })
        .collect();
    events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Span { phase, dur_us, .. } if phase != Phase::Run => {
                let top = match e.span {
                    None => true,
                    Some(parent) => run_ids.contains(&parent),
                };
                top.then_some(dur_us)
            }
            _ => None,
        })
        .sum()
}

/// Renders the breakdown as a right-aligned text table with each
/// phase's share of the given wall-clock.
pub fn render_breakdown(rows: &[PhaseRow], wall_us: u64) -> String {
    let mut out = String::from("phase            spans        total    share\n");
    for r in rows {
        let share = if wall_us > 0 {
            100.0 * r.total_us as f64 / wall_us as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "{:<15} {:>6} {:>10.3} s {:>7.1}%",
            r.phase.name(),
            r.count,
            r.total_us as f64 / 1e6,
            share
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Journal;

    #[test]
    fn breakdown_counts_and_orders_phases() {
        let j = Journal::new();
        {
            let _run = j.span(Phase::Run);
            drop(j.span(Phase::Encode));
            drop(j.span_labeled(Phase::Cluster, "0"));
            drop(j.span_labeled(Phase::Cluster, "1"));
        }
        let rows = phase_breakdown(&j.events());
        let phases: Vec<Phase> = rows.iter().map(|r| r.phase).collect();
        assert_eq!(phases, vec![Phase::Run, Phase::Encode, Phase::Cluster]);
        assert_eq!(rows[2].count, 2);
        let table = render_breakdown(&rows, 1_000_000);
        assert!(table.contains("cluster"));
        assert!(table.lines().count() == 4);
    }

    #[test]
    fn top_level_sums_only_direct_children_of_run() {
        let j = Journal::new();
        {
            let _run = j.span(Phase::Run);
            let _cluster = j.span(Phase::Cluster);
            // Nested under the cluster: must not be double-counted.
            drop(j.span(Phase::Property));
        }
        let events = j.events();
        let cluster_dur = events
            .iter()
            .find_map(|e| match e.kind {
                EventKind::Span {
                    phase: Phase::Cluster,
                    dur_us,
                    ..
                } => Some(dur_us),
                _ => None,
            })
            .unwrap();
        assert_eq!(top_level_span_us(&events), cluster_dur);
    }
}
