//! A minimal JSON value with serializer and parser.
//!
//! The journal serializes to JSONL and the CI schema check parses it
//! back; neither can rely on external crates, so this module carries a
//! small RFC 8259 subset: objects, arrays, strings, integers, floats,
//! booleans and null. Integers are kept exact (`i64`) so timestamps
//! and counters round-trip without loss.
//!
//! # Examples
//!
//! ```
//! use japrove_obs::json::Value;
//!
//! let v = Value::parse(r#"{"ev":"span","dur_us":12}"#).unwrap();
//! assert_eq!(v.get("ev").and_then(Value::as_str), Some("span"));
//! assert_eq!(v.get("dur_us").and_then(Value::as_u64), Some(12));
//! assert_eq!(v.to_string(), r#"{"ev":"span","dur_us":12}"#);
//! ```

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An integer (kept exact; floats would round large counters).
    Int(i64),
    /// A finite floating-point number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The integer payload as `usize`, if this is a non-negative
    /// integer that fits.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The integer payload as `i64`, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parses a complete JSON document.
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Num(x) => write!(f, "{x}"),
            Value::Str(s) => write_escaped(f, s),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A JSON syntax error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are not produced by our writer;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one full UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if float {
            text.parse::<f64>()
                .map(Value::Num)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err("integer out of i64 range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse("true").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse("-17").unwrap(), Value::Int(-17));
        assert_eq!(Value::parse("1.5").unwrap(), Value::Num(1.5));
        assert_eq!(Value::parse("2e3").unwrap(), Value::Num(2000.0));
        assert_eq!(
            Value::parse("\"a\\nb\"").unwrap(),
            Value::Str("a\nb".into())
        );
    }

    #[test]
    fn round_trips_nested_documents() {
        let text = r#"{"a":[1,2,{"b":"x\"y"}],"c":null,"d":false}"#;
        let v = Value::parse(text).unwrap();
        assert_eq!(v.to_string(), text);
        assert_eq!(Value::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Value::parse("").is_err());
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("{\"a\":1} junk").is_err());
        assert!(Value::parse("nul").is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            Value::parse("\"\\u0041\\u00e9\"").unwrap(),
            Value::Str("Aé".into())
        );
    }

    #[test]
    fn accessors_navigate_objects() {
        let v = Value::parse(r#"{"k":7,"s":"t"}"#).unwrap();
        assert_eq!(v.get("k").and_then(Value::as_usize), Some(7));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("t"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::Int(-1).as_u64(), None);
    }
}
