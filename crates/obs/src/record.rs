//! The persistent feature store: per-(design, property) cost records
//! accumulated across runs.
//!
//! This is the explicit substrate for the learned-scheduling ROADMAP
//! item: a scheduler that wants to order or cluster properties by
//! *observed* cost reads the [`RunRecord`]s of earlier runs instead of
//! guessing from COI size. Records are keyed by the design's
//! structural hash (so renamed files with identical logic share
//! history) plus the property name, and stored as JSONL so stores
//! diff, merge and grep cleanly.

use crate::json::Value;
use crate::persist;
use std::fmt;
use std::io;
use std::path::Path;

/// Observed features of one property's verification in one run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunRecord {
    /// Structural hash of the design, in fixed-width hex.
    pub design: String,
    /// The property's name.
    pub property: String,
    /// The driver mode that produced this record (`ja`, `clustered`,
    /// …).
    pub mode: String,
    /// Final verdict: `holds`, `fails` or `unknown`.
    pub verdict: String,
    /// Wall-clock spent on the property, in microseconds.
    pub time_us: u64,
    /// IC3 frames reached.
    pub frames: u64,
    /// SAT conflicts spent.
    pub conflicts: u64,
    /// SAT decisions spent.
    pub decisions: u64,
    /// Unit propagations performed.
    pub propagations: u64,
    /// Solver restarts performed.
    pub restarts: u64,
}

impl RunRecord {
    /// Serializes to one JSONL object.
    pub fn to_json(&self) -> Value {
        let int = |x: u64| Value::Int(x as i64);
        Value::Obj(vec![
            ("design".into(), Value::Str(self.design.clone())),
            ("property".into(), Value::Str(self.property.clone())),
            ("mode".into(), Value::Str(self.mode.clone())),
            ("verdict".into(), Value::Str(self.verdict.clone())),
            ("time_us".into(), int(self.time_us)),
            ("frames".into(), int(self.frames)),
            ("conflicts".into(), int(self.conflicts)),
            ("decisions".into(), int(self.decisions)),
            ("propagations".into(), int(self.propagations)),
            ("restarts".into(), int(self.restarts)),
        ])
    }

    /// Decodes one JSONL object.
    pub fn from_json(v: &Value) -> Result<RunRecord, StoreError> {
        let s = |name: &'static str| {
            v.get(name)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or(StoreError::Field(name))
        };
        let n = |name: &'static str| {
            v.get(name)
                .and_then(Value::as_u64)
                .ok_or(StoreError::Field(name))
        };
        let record = RunRecord {
            design: s("design")?,
            property: s("property")?,
            mode: s("mode")?,
            verdict: s("verdict")?,
            time_us: n("time_us")?,
            frames: n("frames")?,
            conflicts: n("conflicts")?,
            decisions: n("decisions")?,
            propagations: n("propagations")?,
            restarts: n("restarts")?,
        };
        if !matches!(record.verdict.as_str(), "holds" | "fails" | "unknown") {
            return Err(StoreError::Field("verdict"));
        }
        Ok(record)
    }
}

/// Why a feature-store file failed to load.
#[derive(Debug)]
pub enum StoreError {
    /// The file could not be read or written.
    Io(io::Error),
    /// A line is not valid JSON.
    Json(usize, String),
    /// A line's CRC-32 prefix does not match its body.
    Checksum(usize),
    /// A record is missing or mistypes a field (named).
    Field(&'static str),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "feature store I/O error: {e}"),
            StoreError::Json(line, e) => write!(f, "feature store line {line}: {e}"),
            StoreError::Checksum(line) => {
                write!(f, "feature store line {line}: checksum mismatch")
            }
            StoreError::Field(name) => write!(f, "feature store record: bad field '{name}'"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// A load-merge-save collection of [`RunRecord`]s keyed by
/// `(design, property, mode)` — the newest record per key wins.
///
/// # Examples
///
/// ```
/// use japrove_obs::{FeatureStore, RunRecord};
///
/// let mut store = FeatureStore::default();
/// store.upsert(RunRecord {
///     design: "00000000deadbeef".into(),
///     property: "p0".into(),
///     mode: "clustered".into(),
///     verdict: "holds".into(),
///     time_us: 1500,
///     frames: 3,
///     conflicts: 40,
///     decisions: 90,
///     propagations: 900,
///     restarts: 1,
/// });
/// assert_eq!(store.len(), 1);
/// assert!(store.get("00000000deadbeef", "p0").is_some());
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FeatureStore {
    records: Vec<RunRecord>,
}

impl FeatureStore {
    /// Loads a store from a JSONL file; a missing file is an empty
    /// store (first run), any other error is reported.
    pub fn load(path: impl AsRef<Path>) -> Result<FeatureStore, StoreError> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(FeatureStore::default()),
            Err(e) => return Err(e.into()),
        };
        let mut store = FeatureStore::default();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let body = persist::decode_line(line).map_err(|_| StoreError::Checksum(i + 1))?;
            let v = Value::parse(body).map_err(|e| StoreError::Json(i + 1, e.to_string()))?;
            store.upsert(RunRecord::from_json(&v)?);
        }
        Ok(store)
    }

    /// Writes the store back as JSONL, one checksummed record per line,
    /// through [`persist::atomic_write`] — a crash between saves leaves
    /// either the old or the new complete store, never a torn file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&persist::encode_line(&r.to_json().to_string()));
            out.push('\n');
        }
        persist::atomic_write(path, &out, "feature_store_save")?;
        Ok(())
    }

    /// Loads a store, skipping (instead of rejecting) malformed or
    /// stale lines: lines failing their checksum, lines that are not
    /// valid JSON, records missing or mistyping a field, and records
    /// whose verdict is not one of `holds`/`fails`/`unknown`. Returns
    /// the store together with the number of skipped lines, so callers
    /// can surface a counted warning — a half-corrupted store from a
    /// crashed run must never take the scheduler down with it.
    pub fn load_lossy(path: impl AsRef<Path>) -> Result<(FeatureStore, usize), StoreError> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Ok((FeatureStore::default(), 0))
            }
            Err(e) => return Err(e.into()),
        };
        let mut store = FeatureStore::default();
        let mut skipped = 0usize;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match persist::decode_line(line)
                .ok()
                .and_then(|body| Value::parse(body).ok())
                .and_then(|v| RunRecord::from_json(&v).ok())
            {
                Some(record) => store.upsert(record),
                None => skipped += 1,
            }
        }
        Ok((store, skipped))
    }

    /// Inserts `record`, replacing any existing record with the same
    /// `(design, property, mode)` key.
    pub fn upsert(&mut self, record: RunRecord) {
        match self.records.iter_mut().find(|r| {
            r.design == record.design && r.property == record.property && r.mode == record.mode
        }) {
            Some(existing) => *existing = record,
            None => self.records.push(record),
        }
    }

    /// The most recent record for `(design, property)` in any mode
    /// (the one a scheduler typically wants), preferring exact-mode
    /// lookups via [`FeatureStore::records`] when it matters.
    pub fn get(&self, design: &str, property: &str) -> Option<&RunRecord> {
        self.records
            .iter()
            .find(|r| r.design == design && r.property == property)
    }

    /// Every stored record, in insertion order.
    pub fn records(&self) -> &[RunRecord] {
        &self.records
    }

    /// Every record for one design (by structural-hash hex key), in
    /// insertion order — the query a cost model starts from. Because
    /// records are keyed by [`japrove's structural hash`](RunRecord::design)
    /// rather than the file name, a renamed-but-identical design still
    /// finds its history.
    pub fn for_design<'a>(&'a self, design: &'a str) -> impl Iterator<Item = &'a RunRecord> + 'a {
        self.records.iter().filter(move |r| r.design == design)
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(property: &str, mode: &str, time_us: u64) -> RunRecord {
        RunRecord {
            design: "0123456789abcdef".into(),
            property: property.into(),
            mode: mode.into(),
            verdict: "holds".into(),
            time_us,
            frames: 2,
            conflicts: 10,
            decisions: 20,
            propagations: 200,
            restarts: 0,
        }
    }

    #[test]
    fn upsert_replaces_same_key_only() {
        let mut store = FeatureStore::default();
        store.upsert(record("p0", "ja", 100));
        store.upsert(record("p0", "clustered", 200));
        store.upsert(record("p0", "ja", 150));
        assert_eq!(store.len(), 2);
        let ja = store.records().iter().find(|r| r.mode == "ja").unwrap();
        assert_eq!(ja.time_us, 150);
    }

    #[test]
    fn load_save_round_trip() {
        let dir = std::env::temp_dir().join(format!("japrove_store_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.jsonl");
        let mut store = FeatureStore::default();
        store.upsert(record("p0", "ja", 100));
        store.upsert(record("p1", "ja", 250));
        store.save(&path).unwrap();
        let loaded = FeatureStore::load(&path).unwrap();
        assert_eq!(loaded, store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn saved_lines_are_checksummed_and_corruption_is_caught() {
        let dir = std::env::temp_dir().join(format!("japrove_store_crc_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.jsonl");
        let mut store = FeatureStore::default();
        store.upsert(record("p0", "ja", 100));
        store.upsert(record("p1", "ja", 250));
        store.save(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.lines().all(|l| l.as_bytes()[8] == b' '),
            "every saved line carries a crc prefix"
        );
        // Flip a byte inside the second line's body: strict load names
        // the line, lossy load skips it and keeps the rest.
        std::fs::write(
            &path,
            text.replacen("\"time_us\":250", "\"time_us\":999", 1),
        )
        .unwrap();
        match FeatureStore::load(&path) {
            Err(StoreError::Checksum(2)) => {}
            other => panic!("expected a checksum error on line 2, got {other:?}"),
        }
        let (lossy, skipped) = FeatureStore::load_lossy(&path).unwrap();
        assert_eq!((lossy.len(), skipped), (1, 1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_an_empty_store() {
        let store = FeatureStore::load("/nonexistent/japrove/store.jsonl").unwrap();
        assert!(store.is_empty());
    }

    #[test]
    fn malformed_lines_are_reported_with_numbers() {
        let dir = std::env::temp_dir().join(format!("japrove_store_bad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.jsonl");
        std::fs::write(&path, "{\"design\":\"x\"}\n").unwrap();
        match FeatureStore::load(&path) {
            Err(StoreError::Field(name)) => assert_eq!(name, "property"),
            other => panic!("expected a field error, got {other:?}"),
        }
        std::fs::write(&path, "not json\n").unwrap();
        assert!(matches!(
            FeatureStore::load(&path),
            Err(StoreError::Json(1, _))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
