//! The run journal: a lock-cheap span/event sink shared by every
//! layer of the stack.
//!
//! A [`Journal`] is a cheap cloneable handle. The *disabled* journal
//! (the default) has no buffer at all: every recording call is a
//! single pointer check, so engines can carry a journal field
//! unconditionally with no measurable overhead — the property the
//! `journal_benches` microbench asserts. An *enabled* journal buffers
//! [`Event`]s in sharded mutex-protected vectors (one lock per
//! recording thread shard, taken only for a push) and serializes to
//! JSONL at the end of the run.
//!
//! Spans nest: [`Journal::span`] returns a [`SpanGuard`] that records
//! one [`EventKind::Span`] on drop, with the enclosing span (tracked
//! per thread) as its parent. Point events record the innermost
//! enclosing span the same way, so a trace reader can attribute every
//! solver restart to the property check that caused it.
//!
//! # Examples
//!
//! ```
//! use japrove_obs::{EventKind, Journal, Phase};
//!
//! let journal = Journal::new();
//! {
//!     let _run = journal.span(Phase::Run);
//!     let _enc = journal.span(Phase::Encode);
//!     journal.event(EventKind::Restart { conflicts: 42 });
//! }
//! let events = journal.events();
//! assert_eq!(events.len(), 3); // restart + two spans
//!
//! // The disabled journal records nothing.
//! let off = Journal::disabled();
//! off.event(EventKind::Restart { conflicts: 1 });
//! assert!(!off.enabled());
//! assert!(off.events().is_empty());
//! ```

use crate::json::Value;
use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of independently locked event buffers.
const SHARDS: usize = 16;

/// The phase taxonomy: what a span measures.
///
/// One shared vocabulary across every driver, instead of per-crate
/// println conventions. `docs/ARCHITECTURE.md` documents which layer
/// emits which phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// The whole verification run (the root span).
    Run,
    /// The planning stage of the scheduling pipeline: verdict-cache
    /// consultation, clustering and cost-model unit ordering.
    Plan,
    /// Building the shared CNF encoding of the design.
    Encode,
    /// Affinity-graph construction incl. the probing BMC pass.
    AffinityProbe,
    /// One cluster's end-to-end verification (joint + fallback).
    Cluster,
    /// A budgeted joint attempt on an aggregate/cone-reduced design.
    JointAttempt,
    /// One property's IC3 check (separate drivers and cluster
    /// fallback).
    Property,
    /// The shallow BMC front-end of the joint driver.
    BmcFrontend,
    /// A whole property-mining pass (candidate generation through
    /// promotion) on one design.
    Mine,
    /// A simulation stage of mining: the candidate-guessing run or the
    /// random filtering runs (labelled `generate` / `filter`).
    MineSim,
    /// A joint k-induction check (mining's promotion stage, or any
    /// direct `KInduction` use).
    Induction,
    /// One property's counterexample-enumeration round (post-verdict).
    Enum,
    /// One property's XOR-hash bad-state counting round (post-verdict).
    Count,
}

impl Phase {
    /// Every phase, in display order.
    pub const ALL: &'static [Phase] = &[
        Phase::Run,
        Phase::Plan,
        Phase::Encode,
        Phase::AffinityProbe,
        Phase::Cluster,
        Phase::JointAttempt,
        Phase::Property,
        Phase::BmcFrontend,
        Phase::Mine,
        Phase::MineSim,
        Phase::Induction,
        Phase::Enum,
        Phase::Count,
    ];

    /// The wire name used in JSONL (`phase` field).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Run => "run",
            Phase::Plan => "plan",
            Phase::Encode => "encode",
            Phase::AffinityProbe => "affinity_probe",
            Phase::Cluster => "cluster",
            Phase::JointAttempt => "joint_attempt",
            Phase::Property => "property",
            Phase::BmcFrontend => "bmc_frontend",
            Phase::Mine => "mine",
            Phase::MineSim => "mine_sim",
            Phase::Induction => "induction",
            Phase::Enum => "enum",
            Phase::Count => "count",
        }
    }

    fn parse(name: &str) -> Option<Phase> {
        Phase::ALL.iter().copied().find(|p| p.name() == name)
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The typed payload of a journal record.
///
/// The `ev` wire names are the trace schema; [`Event::from_json`]
/// rejects unknown kinds, which is what the CI schema check relies on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A closed span: `dur_us` of `phase`, starting at the event's
    /// timestamp. `label` carries the property name / cluster index.
    Span {
        /// What the span measures.
        phase: Phase,
        /// Run-unique span id (parents are recorded via
        /// [`Event::span`]).
        id: u64,
        /// Wall-clock duration in microseconds.
        dur_us: u64,
        /// Optional human label (property name, cluster index, …).
        label: Option<String>,
    },
    /// A SAT-solver restart, with the cumulative conflict count.
    Restart {
        /// Conflicts encountered so far by this solver.
        conflicts: u64,
    },
    /// A learnt-clause database reduction.
    Reduce {
        /// Learnt clauses before the reduction.
        learnt: usize,
        /// Clauses removed by it.
        removed: usize,
    },
    /// A periodic solver progress sample (every
    /// [`SAMPLE_INTERVAL`] conflicts); consecutive samples give the
    /// conflict rate.
    Sample {
        /// Cumulative conflicts.
        conflicts: u64,
        /// Cumulative decisions.
        decisions: u64,
        /// Cumulative propagations.
        propagations: u64,
    },
    /// One completed IC3 frame.
    Frame {
        /// Frame number `k`.
        frame: usize,
        /// Time spent on this frame in microseconds.
        dur_us: u64,
        /// Blocked clauses added during the frame.
        clauses: u64,
        /// Proof obligations handled during the frame.
        obligations: u64,
        /// Literals dropped by generalization during the frame.
        gen_lits: u64,
    },
    /// One completed BMC unrolling depth.
    Unroll {
        /// The depth checked.
        depth: usize,
        /// Time spent on this depth in microseconds.
        dur_us: u64,
    },
    /// A clause-import refresh from a [`ClauseSource`]: how many
    /// clauses the source offered and how many were new to the
    /// engine (the rest were duplicate misses).
    ///
    /// [`ClauseSource`]: https://docs.rs/japrove-ic3
    Import {
        /// Clauses offered by the source delta.
        offered: usize,
        /// Clauses actually added (not already imported).
        added: usize,
    },
    /// A contained fault: an engine panic caught by the supervision
    /// layer, a worker thread lost mid-run, or an injected chaos
    /// action. The run continues; this record is the audit trail (and
    /// what the chaos-smoke CI job greps for).
    Fault {
        /// The named site the fault surfaced at (`check_one`,
        /// `joint_attempt`, `worker`, …).
        site: String,
        /// Human-readable detail: the panic payload or injection note.
        detail: String,
    },
    /// Per-kind provenance of one mining pass: how many candidates of
    /// one taxonomy kind (`const`, `equiv`, `implication`, `one_hot`,
    /// `range`) were generated and where each was retired. Invariant:
    /// `generated = sim_killed + induction_killed + promoted`.
    Mined {
        /// Candidate-kind wire name (the mining taxonomy).
        kind: String,
        /// Candidates of this kind guessed from the signature run.
        generated: usize,
        /// Killed by the random-simulation filter.
        sim_killed: usize,
        /// Killed by the joint k-induction check (base or step).
        induction_killed: usize,
        /// Survivors promoted to real properties.
        promoted: usize,
    },
    /// One falsified property's counterexample-enumeration summary:
    /// how many distinct (projection-set) witnesses were collected at
    /// the minimal counterexample depth.
    Enumerated {
        /// Property name.
        property: String,
        /// Depth the enumeration ran at.
        depth: usize,
        /// Distinct replay-checked counterexamples collected.
        found: usize,
        /// `true` if the projection set was exhausted (no further
        /// distinct witness exists), `false` if the `--enum-max` cap
        /// or a budget stopped the round first.
        exhausted: bool,
    },
    /// One falsified property's XOR-hash bad-state count estimate.
    Counted {
        /// Property name.
        property: String,
        /// Lower end of the `[lo, hi]` estimate.
        lo: u64,
        /// Upper end of the `[lo, hi]` estimate.
        hi: u64,
        /// The XOR-constraint level `s*` at the SAT/UNSAT boundary
        /// (0 when the count is exact).
        level: usize,
        /// Solver trials per level.
        trials: usize,
        /// `true` if the estimate is an exact enumeration, not a hash
        /// bracket.
        exact: bool,
    },
}

/// How often the solver emits [`EventKind::Sample`] records, in
/// conflicts.
pub const SAMPLE_INTERVAL: u64 = 4096;

impl EventKind {
    /// The wire name used in JSONL (`ev` field).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Span { .. } => "span",
            EventKind::Restart { .. } => "restart",
            EventKind::Reduce { .. } => "reduce",
            EventKind::Sample { .. } => "sample",
            EventKind::Frame { .. } => "frame",
            EventKind::Unroll { .. } => "unroll",
            EventKind::Import { .. } => "import",
            EventKind::Fault { .. } => "fault",
            EventKind::Mined { .. } => "mined",
            EventKind::Enumerated { .. } => "enumerated",
            EventKind::Counted { .. } => "counted",
        }
    }
}

/// A single journal record: a timestamped, thread-attributed
/// [`EventKind`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Microseconds since the journal was created (for spans: the
    /// span's *start*).
    pub ts_us: u64,
    /// Dense id of the recording thread.
    pub thread: u32,
    /// Innermost enclosing span at record time (the *parent* for span
    /// records), if any.
    pub span: Option<u64>,
    /// The typed payload.
    pub kind: EventKind,
}

impl Event {
    /// Serializes to one JSONL object.
    pub fn to_json(&self) -> Value {
        let mut pairs = vec![
            ("ev".to_string(), Value::Str(self.kind.name().to_string())),
            ("ts_us".to_string(), Value::Int(self.ts_us as i64)),
            ("thread".to_string(), Value::Int(self.thread as i64)),
        ];
        if let Some(s) = self.span {
            pairs.push(("span".to_string(), Value::Int(s as i64)));
        }
        let int = |x: u64| Value::Int(x as i64);
        match &self.kind {
            EventKind::Span {
                phase,
                id,
                dur_us,
                label,
            } => {
                pairs.push(("phase".into(), Value::Str(phase.name().into())));
                pairs.push(("id".into(), int(*id)));
                pairs.push(("dur_us".into(), int(*dur_us)));
                if let Some(l) = label {
                    pairs.push(("label".into(), Value::Str(l.clone())));
                }
            }
            EventKind::Restart { conflicts } => {
                pairs.push(("conflicts".into(), int(*conflicts)));
            }
            EventKind::Reduce { learnt, removed } => {
                pairs.push(("learnt".into(), int(*learnt as u64)));
                pairs.push(("removed".into(), int(*removed as u64)));
            }
            EventKind::Sample {
                conflicts,
                decisions,
                propagations,
            } => {
                pairs.push(("conflicts".into(), int(*conflicts)));
                pairs.push(("decisions".into(), int(*decisions)));
                pairs.push(("propagations".into(), int(*propagations)));
            }
            EventKind::Frame {
                frame,
                dur_us,
                clauses,
                obligations,
                gen_lits,
            } => {
                pairs.push(("frame".into(), int(*frame as u64)));
                pairs.push(("dur_us".into(), int(*dur_us)));
                pairs.push(("clauses".into(), int(*clauses)));
                pairs.push(("obligations".into(), int(*obligations)));
                pairs.push(("gen_lits".into(), int(*gen_lits)));
            }
            EventKind::Unroll { depth, dur_us } => {
                pairs.push(("depth".into(), int(*depth as u64)));
                pairs.push(("dur_us".into(), int(*dur_us)));
            }
            EventKind::Import { offered, added } => {
                pairs.push(("offered".into(), int(*offered as u64)));
                pairs.push(("added".into(), int(*added as u64)));
            }
            EventKind::Fault { site, detail } => {
                pairs.push(("site".into(), Value::Str(site.clone())));
                pairs.push(("detail".into(), Value::Str(detail.clone())));
            }
            EventKind::Mined {
                kind,
                generated,
                sim_killed,
                induction_killed,
                promoted,
            } => {
                pairs.push(("kind".into(), Value::Str(kind.clone())));
                pairs.push(("generated".into(), int(*generated as u64)));
                pairs.push(("sim_killed".into(), int(*sim_killed as u64)));
                pairs.push(("induction_killed".into(), int(*induction_killed as u64)));
                pairs.push(("promoted".into(), int(*promoted as u64)));
            }
            EventKind::Enumerated {
                property,
                depth,
                found,
                exhausted,
            } => {
                pairs.push(("property".into(), Value::Str(property.clone())));
                pairs.push(("depth".into(), int(*depth as u64)));
                pairs.push(("found".into(), int(*found as u64)));
                pairs.push(("exhausted".into(), Value::Bool(*exhausted)));
            }
            EventKind::Counted {
                property,
                lo,
                hi,
                level,
                trials,
                exact,
            } => {
                pairs.push(("property".into(), Value::Str(property.clone())));
                pairs.push(("lo".into(), int(*lo)));
                pairs.push(("hi".into(), int(*hi)));
                pairs.push(("level".into(), int(*level as u64)));
                pairs.push(("trials".into(), int(*trials as u64)));
                pairs.push(("exact".into(), Value::Bool(*exact)));
            }
        }
        Value::Obj(pairs)
    }

    /// Decodes one JSONL object, rejecting unknown event kinds and
    /// missing fields (the trace schema check).
    pub fn from_json(v: &Value) -> Result<Event, SchemaError> {
        let field = |name: &'static str| {
            v.get(name)
                .ok_or(SchemaError::MissingField(name))
                .and_then(|f| f.as_u64().ok_or(SchemaError::BadField(name)))
        };
        let usize_field = |name: &'static str| {
            field(name).and_then(|x| usize::try_from(x).map_err(|_| SchemaError::BadField(name)))
        };
        let ev = v
            .get("ev")
            .and_then(Value::as_str)
            .ok_or(SchemaError::MissingField("ev"))?;
        let kind = match ev {
            "span" => {
                let phase_name = v
                    .get("phase")
                    .and_then(Value::as_str)
                    .ok_or(SchemaError::MissingField("phase"))?;
                let phase = Phase::parse(phase_name)
                    .ok_or_else(|| SchemaError::UnknownPhase(phase_name.to_string()))?;
                EventKind::Span {
                    phase,
                    id: field("id")?,
                    dur_us: field("dur_us")?,
                    label: v
                        .get("label")
                        .map(|l| {
                            l.as_str()
                                .map(str::to_string)
                                .ok_or(SchemaError::BadField("label"))
                        })
                        .transpose()?,
                }
            }
            "restart" => EventKind::Restart {
                conflicts: field("conflicts")?,
            },
            "reduce" => EventKind::Reduce {
                learnt: usize_field("learnt")?,
                removed: usize_field("removed")?,
            },
            "sample" => EventKind::Sample {
                conflicts: field("conflicts")?,
                decisions: field("decisions")?,
                propagations: field("propagations")?,
            },
            "frame" => EventKind::Frame {
                frame: usize_field("frame")?,
                dur_us: field("dur_us")?,
                clauses: field("clauses")?,
                obligations: field("obligations")?,
                gen_lits: field("gen_lits")?,
            },
            "unroll" => EventKind::Unroll {
                depth: usize_field("depth")?,
                dur_us: field("dur_us")?,
            },
            "import" => EventKind::Import {
                offered: usize_field("offered")?,
                added: usize_field("added")?,
            },
            "fault" => {
                let text = |name: &'static str| {
                    v.get(name)
                        .and_then(Value::as_str)
                        .map(str::to_string)
                        .ok_or(SchemaError::MissingField(name))
                };
                EventKind::Fault {
                    site: text("site")?,
                    detail: text("detail")?,
                }
            }
            "mined" => EventKind::Mined {
                kind: v
                    .get("kind")
                    .and_then(Value::as_str)
                    .ok_or(SchemaError::MissingField("kind"))?
                    .to_string(),
                generated: usize_field("generated")?,
                sim_killed: usize_field("sim_killed")?,
                induction_killed: usize_field("induction_killed")?,
                promoted: usize_field("promoted")?,
            },
            "enumerated" | "counted" => {
                let property = v
                    .get("property")
                    .and_then(Value::as_str)
                    .ok_or(SchemaError::MissingField("property"))?
                    .to_string();
                let bool_field = |name: &'static str| {
                    v.get(name)
                        .ok_or(SchemaError::MissingField(name))
                        .and_then(|f| f.as_bool().ok_or(SchemaError::BadField(name)))
                };
                if ev == "enumerated" {
                    EventKind::Enumerated {
                        property,
                        depth: usize_field("depth")?,
                        found: usize_field("found")?,
                        exhausted: bool_field("exhausted")?,
                    }
                } else {
                    EventKind::Counted {
                        property,
                        lo: field("lo")?,
                        hi: field("hi")?,
                        level: usize_field("level")?,
                        trials: usize_field("trials")?,
                        exact: bool_field("exact")?,
                    }
                }
            }
            other => return Err(SchemaError::UnknownEvent(other.to_string())),
        };
        Ok(Event {
            ts_us: field("ts_us")?,
            thread: field("thread")? as u32,
            span: v
                .get("span")
                .map(|s| s.as_u64().ok_or(SchemaError::BadField("span")))
                .transpose()?,
            kind,
        })
    }
}

/// Why a trace line failed schema validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// The line is not valid JSON.
    Json(String),
    /// The `ev` field names a kind this build does not know.
    UnknownEvent(String),
    /// A span names a phase this build does not know.
    UnknownPhase(String),
    /// A required field is absent.
    MissingField(&'static str),
    /// A field has the wrong type or range.
    BadField(&'static str),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::Json(e) => write!(f, "not valid JSON: {e}"),
            SchemaError::UnknownEvent(ev) => write!(f, "unknown event kind '{ev}'"),
            SchemaError::UnknownPhase(p) => write!(f, "unknown span phase '{p}'"),
            SchemaError::MissingField(name) => write!(f, "missing field '{name}'"),
            SchemaError::BadField(name) => write!(f, "malformed field '{name}'"),
        }
    }
}

impl std::error::Error for SchemaError {}

/// Parses a JSONL trace, validating every line against the schema.
///
/// Returns the offending line number (1-based) with the first error.
/// Empty lines are ignored.
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, (usize, SchemaError)> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = Value::parse(line).map_err(|e| (i + 1, SchemaError::Json(e.to_string())))?;
        events.push(Event::from_json(&v).map_err(|e| (i + 1, e))?);
    }
    Ok(events)
}

// Dense per-thread ids and the per-thread span stack. The stack keys
// entries by journal id so two live journals on one thread cannot
// corrupt each other's nesting.
static NEXT_THREAD: AtomicU32 = AtomicU32::new(0);
static NEXT_JOURNAL: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ID: u32 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
    static SPAN_STACK: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

#[derive(Debug)]
struct Inner {
    id: u64,
    epoch: Instant,
    shards: Vec<Mutex<Vec<Event>>>,
    next_span: AtomicU64,
}

/// A cheap handle onto a shared event buffer; see the [module
/// docs](self).
///
/// `Journal::default()` is the disabled journal, so structs can hold
/// one unconditionally.
#[derive(Clone, Debug, Default)]
pub struct Journal {
    inner: Option<Arc<Inner>>,
}

impl Journal {
    /// Creates an enabled journal with a fresh buffer; `ts_us`
    /// timestamps count from this call.
    pub fn new() -> Journal {
        Journal {
            inner: Some(Arc::new(Inner {
                id: NEXT_JOURNAL.fetch_add(1, Ordering::Relaxed),
                epoch: Instant::now(),
                shards: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
                next_span: AtomicU64::new(0),
            })),
        }
    }

    /// The disabled journal: every recording call is a no-op behind
    /// one pointer check.
    pub fn disabled() -> Journal {
        Journal { inner: None }
    }

    /// Whether events are being recorded. Callers computing expensive
    /// payloads should guard on this.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records a point event (no-op when disabled).
    #[inline]
    pub fn event(&self, kind: EventKind) {
        let Some(inner) = &self.inner else { return };
        Self::push(inner, kind);
    }

    fn push(inner: &Inner, kind: EventKind) {
        let thread = THREAD_ID.with(|t| *t);
        let span = SPAN_STACK.with(|s| {
            s.borrow()
                .iter()
                .rev()
                .find(|(j, _)| *j == inner.id)
                .map(|&(_, id)| id)
        });
        let ev = Event {
            ts_us: inner.epoch.elapsed().as_micros() as u64,
            thread,
            span,
            kind,
        };
        let shard = &inner.shards[thread as usize % SHARDS];
        shard.lock().unwrap_or_else(|e| e.into_inner()).push(ev);
    }

    /// Opens an unlabeled span; the returned guard records it on drop.
    #[inline]
    pub fn span(&self, phase: Phase) -> SpanGuard {
        self.span_inner(phase, None)
    }

    /// Opens a span labeled with a property name, cluster index, etc.
    #[inline]
    pub fn span_labeled(&self, phase: Phase, label: impl Into<String>) -> SpanGuard {
        if self.inner.is_none() {
            return SpanGuard {
                journal: Journal::disabled(),
                phase,
                id: 0,
                start_us: 0,
                label: None,
            };
        }
        self.span_inner(phase, Some(label.into()))
    }

    fn span_inner(&self, phase: Phase, label: Option<String>) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard {
                journal: Journal::disabled(),
                phase,
                id: 0,
                start_us: 0,
                label: None,
            };
        };
        let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        let start_us = inner.epoch.elapsed().as_micros() as u64;
        SPAN_STACK.with(|s| s.borrow_mut().push((inner.id, id)));
        SpanGuard {
            journal: self.clone(),
            phase,
            id,
            start_us,
            label,
        }
    }

    /// A sorted snapshot of every event recorded so far (by start
    /// timestamp, then thread).
    pub fn events(&self) -> Vec<Event> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut all = Vec::new();
        for shard in &inner.shards {
            all.extend(
                shard
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .iter()
                    .cloned(),
            );
        }
        all.sort_by_key(|e| (e.ts_us, e.thread));
        all
    }

    /// Writes the journal as JSONL (one event object per line).
    pub fn write_jsonl<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        for ev in self.events() {
            writeln!(w, "{}", ev.to_json())?;
        }
        Ok(())
    }
}

/// An open span; records one [`EventKind::Span`] into its journal on
/// drop. Returned by [`Journal::span`].
#[derive(Debug)]
pub struct SpanGuard {
    journal: Journal,
    phase: Phase,
    id: u64,
    start_us: u64,
    label: Option<String>,
}

impl SpanGuard {
    /// The run-unique span id (0 for guards of a disabled journal).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = &self.journal.inner else {
            return;
        };
        // Unwind this span from the per-thread stack *before*
        // recording, so the event's enclosing span is the parent.
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack
                .iter()
                .rposition(|&(j, id)| j == inner.id && id == self.id)
            {
                stack.remove(pos);
            }
        });
        let dur_us = (inner.epoch.elapsed().as_micros() as u64).saturating_sub(self.start_us);
        let thread = THREAD_ID.with(|t| *t);
        let span = SPAN_STACK.with(|s| {
            s.borrow()
                .iter()
                .rev()
                .find(|(j, _)| *j == inner.id)
                .map(|&(_, id)| id)
        });
        let ev = Event {
            ts_us: self.start_us,
            thread,
            span,
            kind: EventKind::Span {
                phase: self.phase,
                id: self.id,
                dur_us,
                label: self.label.take(),
            },
        };
        let shard = &inner.shards[thread as usize % SHARDS];
        shard.lock().unwrap_or_else(|e| e.into_inner()).push(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_journal_records_nothing() {
        let j = Journal::disabled();
        assert!(!j.enabled());
        j.event(EventKind::Restart { conflicts: 1 });
        {
            let g = j.span(Phase::Run);
            assert_eq!(g.id(), 0);
            j.event(EventKind::Reduce {
                learnt: 10,
                removed: 5,
            });
        }
        assert!(j.events().is_empty());
        assert!(!Journal::default().enabled());
    }

    #[test]
    fn spans_nest_and_attribute_events() {
        let j = Journal::new();
        let run_id;
        let inner_id;
        {
            let run = j.span(Phase::Run);
            run_id = run.id();
            {
                let p = j.span_labeled(Phase::Property, "p0");
                inner_id = p.id();
                j.event(EventKind::Restart { conflicts: 3 });
            }
            j.event(EventKind::Sample {
                conflicts: 1,
                decisions: 2,
                propagations: 3,
            });
        }
        let events = j.events();
        assert_eq!(events.len(), 4);
        let restart = events
            .iter()
            .find(|e| matches!(e.kind, EventKind::Restart { .. }))
            .unwrap();
        assert_eq!(restart.span, Some(inner_id));
        let sample = events
            .iter()
            .find(|e| matches!(e.kind, EventKind::Sample { .. }))
            .unwrap();
        assert_eq!(sample.span, Some(run_id));
        let prop = events
            .iter()
            .find(|e| {
                matches!(
                    e.kind,
                    EventKind::Span {
                        phase: Phase::Property,
                        ..
                    }
                )
            })
            .unwrap();
        assert_eq!(prop.span, Some(run_id), "property span's parent is run");
        let run = events
            .iter()
            .find(|e| {
                matches!(
                    e.kind,
                    EventKind::Span {
                        phase: Phase::Run,
                        ..
                    }
                )
            })
            .unwrap();
        assert_eq!(run.span, None);
    }

    #[test]
    fn two_journals_on_one_thread_do_not_cross() {
        let a = Journal::new();
        let b = Journal::new();
        let _ga = a.span(Phase::Run);
        {
            let _gb = b.span(Phase::Encode);
            a.event(EventKind::Restart { conflicts: 1 });
        }
        let ev = &a.events()[0];
        // a's event must be parented to a's span, not b's.
        assert_eq!(ev.span, Some(_ga.id()));
        assert!(matches!(
            b.events()[0].kind,
            EventKind::Span {
                phase: Phase::Encode,
                ..
            }
        ));
    }

    #[test]
    fn concurrent_workers_keep_independent_stacks() {
        let j = Journal::new();
        let root = j.span(Phase::Run);
        let root_id = root.id();
        std::thread::scope(|scope| {
            for w in 0..4 {
                let j = j.clone();
                scope.spawn(move || {
                    for i in 0..8 {
                        let outer = j.span_labeled(Phase::Cluster, format!("w{w}c{i}"));
                        let _inner = j.span_labeled(Phase::Property, format!("w{w}p{i}"));
                        j.event(EventKind::Import {
                            offered: w,
                            added: i,
                        });
                        drop(_inner);
                        drop(outer);
                    }
                });
            }
        });
        drop(root);
        let events = j.events();
        // 4 workers × 8 iterations × (2 spans + 1 event) + root span.
        assert_eq!(events.len(), 4 * 8 * 3 + 1);
        // Worker spans never nest under another worker's span: each
        // cluster span is top-level (no parent — workers started after
        // the root opened on a *different* thread, so the root is not
        // on their stacks), and each property span's parent is a
        // cluster span from the same thread.
        let mut by_id = std::collections::HashMap::new();
        for e in &events {
            if let EventKind::Span { id, .. } = e.kind {
                by_id.insert(id, e);
            }
        }
        for e in &events {
            match &e.kind {
                EventKind::Span {
                    phase: Phase::Property,
                    ..
                } => {
                    let parent = by_id[&e.span.expect("property span has a parent")];
                    assert!(matches!(
                        parent.kind,
                        EventKind::Span {
                            phase: Phase::Cluster,
                            ..
                        }
                    ));
                    assert_eq!(parent.thread, e.thread, "parent on the same worker");
                }
                EventKind::Import { .. } => {
                    let parent = by_id[&e.span.expect("event inside a span")];
                    assert_eq!(parent.thread, e.thread);
                }
                EventKind::Span {
                    phase: Phase::Cluster,
                    id,
                    ..
                } => {
                    assert!(e.span.is_none(), "cluster span {id} must be top-level");
                }
                _ => {}
            }
        }
        assert!(by_id.contains_key(&root_id));
    }

    #[test]
    fn jsonl_round_trips_exactly() {
        let j = Journal::new();
        {
            let _run = j.span(Phase::Run);
            let _p = j.span_labeled(Phase::Property, "safety[0]");
            j.event(EventKind::Restart { conflicts: 17 });
            j.event(EventKind::Reduce {
                learnt: 100,
                removed: 50,
            });
            j.event(EventKind::Sample {
                conflicts: 4096,
                decisions: 9999,
                propagations: 123456,
            });
            j.event(EventKind::Frame {
                frame: 3,
                dur_us: 250,
                clauses: 12,
                obligations: 7,
                gen_lits: 30,
            });
            j.event(EventKind::Unroll {
                depth: 9,
                dur_us: 77,
            });
            j.event(EventKind::Import {
                offered: 40,
                added: 13,
            });
            j.event(EventKind::Fault {
                site: "check_one".into(),
                detail: "injected fault at check_one (p0)".into(),
            });
            j.event(EventKind::Mined {
                kind: "equiv".into(),
                generated: 120,
                sim_killed: 30,
                induction_killed: 15,
                promoted: 75,
            });
            j.event(EventKind::Enumerated {
                property: "lt3".into(),
                depth: 3,
                found: 4,
                exhausted: true,
            });
            j.event(EventKind::Counted {
                property: "lt3".into(),
                lo: 64,
                hi: 1024,
                level: 8,
                trials: 5,
                exact: false,
            });
        }
        let mut buf = Vec::new();
        j.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed, j.events());
    }

    #[test]
    fn schema_rejects_unknown_event_kinds() {
        let good = r#"{"ev":"restart","ts_us":1,"thread":0,"conflicts":2}"#;
        assert!(parse_jsonl(good).is_ok());
        let unknown = r#"{"ev":"teleport","ts_us":1,"thread":0}"#;
        assert_eq!(
            parse_jsonl(unknown),
            Err((1, SchemaError::UnknownEvent("teleport".into())))
        );
        let bad_phase = r#"{"ev":"span","ts_us":1,"thread":0,"phase":"warp","id":0,"dur_us":1}"#;
        assert_eq!(
            parse_jsonl(bad_phase),
            Err((1, SchemaError::UnknownPhase("warp".into())))
        );
        let missing = r#"{"ev":"restart","ts_us":1,"thread":0}"#;
        assert_eq!(
            parse_jsonl(missing),
            Err((1, SchemaError::MissingField("conflicts")))
        );
        let not_json = "this is not json";
        assert!(matches!(
            parse_jsonl(not_json),
            Err((1, SchemaError::Json(_)))
        ));
        // Line numbers point at the offending line.
        let two_lines = format!("{good}\n{unknown}");
        assert_eq!(
            parse_jsonl(&two_lines),
            Err((2, SchemaError::UnknownEvent("teleport".into())))
        );
    }

    #[test]
    fn phase_names_round_trip() {
        for &p in Phase::ALL {
            assert_eq!(Phase::parse(p.name()), Some(p));
            assert_eq!(p.to_string(), p.name());
        }
        assert_eq!(Phase::parse("nope"), None);
    }
}
