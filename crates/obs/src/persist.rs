//! Crash-safe JSONL persistence: checksummed lines and atomic writes.
//!
//! Both persistent stores (the feature store and the verdict cache)
//! save through [`atomic_write`]: the full contents go to a sibling
//! temporary file, which is fsynced and then atomically renamed over
//! the target. A reader — or a process killed between saves — only
//! ever sees the old complete file or the new complete file, never a
//! torn mix.
//!
//! Each line additionally carries a CRC-32 prefix (`<8-hex-crc>
//! <json>`), written by [`encode_line`] and verified by
//! [`decode_line`]. The checksum catches the corruption the rename
//! cannot: a line damaged at rest, or a legacy store torn by the plain
//! `fs::write` that predates this module. Lines without a prefix are
//! accepted unverified, so pre-existing stores keep loading.

use std::io::{self, Write};
use std::path::Path;

/// CRC-32 (IEEE, reflected). Bitwise — store saves are cold paths, so
/// a lookup table would buy nothing.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// Prefixes one JSONL line with its checksum: `<8-hex-crc> <body>`.
pub fn encode_line(body: &str) -> String {
    format!("{:08x} {body}", crc32(body.as_bytes()))
}

/// Why a checksummed line failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChecksumMismatch;

/// Strips and verifies the checksum prefix of one line. A line without
/// a prefix (legacy stores: the body starts with `{`, never eight hex
/// digits and a space) passes through unverified.
pub fn decode_line(line: &str) -> Result<&str, ChecksumMismatch> {
    let bytes = line.as_bytes();
    let prefixed =
        bytes.len() > 9 && bytes[8] == b' ' && bytes[..8].iter().all(u8::is_ascii_hexdigit);
    if !prefixed {
        return Ok(line);
    }
    let stored = u32::from_str_radix(&line[..8], 16).map_err(|_| ChecksumMismatch)?;
    let body = &line[9..];
    if crc32(body.as_bytes()) == stored {
        Ok(body)
    } else {
        Err(ChecksumMismatch)
    }
}

/// Writes `text` to `path` via write-tmp + fsync + atomic rename, so a
/// crash at any point leaves either the old or the new complete file.
///
/// `site` names the write for the fault-injection harness: an armed
/// `truncate@site` rule (keyed by the target's file name) bypasses the
/// atomic path and writes the torn prefix straight to `path`,
/// simulating the legacy non-atomic write the lossy loaders must
/// survive.
pub fn atomic_write(path: impl AsRef<Path>, text: &str, site: &str) -> io::Result<()> {
    let path = path.as_ref();
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
    if let Some(n) = crate::fault::truncation(site, name) {
        return std::fs::write(path, &text.as_bytes()[..text.len().min(n)]);
    }
    let tmp = path.with_file_name(format!("{name}.tmp{}", std::process::id()));
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(text.as_bytes())?;
    f.sync_all()?;
    drop(f);
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    // Best-effort directory fsync: makes the rename itself durable on
    // filesystems that need it; not supported everywhere, hence ignored.
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_decode_round_trip() {
        let body = r#"{"cone":"abc","property":"p0"}"#;
        let line = encode_line(body);
        assert_eq!(decode_line(&line), Ok(body));
    }

    #[test]
    fn corrupted_lines_are_detected() {
        let line = encode_line(r#"{"a":1}"#);
        let torn = &line[..line.len() - 2];
        assert_eq!(decode_line(torn), Err(ChecksumMismatch));
        let flipped = line.replace(":1", ":2");
        assert_eq!(decode_line(&flipped), Err(ChecksumMismatch));
    }

    #[test]
    fn legacy_lines_pass_through() {
        let legacy = r#"{"design":"x","property":"p"}"#;
        assert_eq!(decode_line(legacy), Ok(legacy));
        // Nine hex digits (no space at index 8) is still legacy.
        assert_eq!(decode_line("deadbeef9 x"), Ok("deadbeef9 x"));
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join(format!("japrove_persist_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.jsonl");
        atomic_write(&path, "first\n", "feature_store_save").unwrap();
        atomic_write(&path, "second\n", "feature_store_save").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second\n");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
