//! Conjunctions of literals (cubes), the currency of IC3.

use crate::{Clause, Lit};
use std::fmt;

/// A cube: a conjunction of literals, kept sorted and duplicate-free.
///
/// IC3 manipulates (generalized) states as cubes; blocking a cube adds
/// its negation — a clause — to a frame. The sorted representation
/// makes subsumption checks and set-like operations linear.
///
/// # Examples
///
/// ```
/// use japrove_logic::{Cube, Var};
/// let x = Var::new(0);
/// let y = Var::new(1);
/// let c = Cube::from_lits([y.neg(), x.pos()]);
/// assert_eq!(c.lits(), &[x.pos(), y.neg()]); // sorted
/// assert_eq!(c.to_clause().lits(), &[x.neg(), y.pos()]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Cube {
    lits: Vec<Lit>,
}

impl Cube {
    /// Creates the empty cube (`true`).
    pub fn new() -> Self {
        Cube { lits: Vec::new() }
    }

    /// Creates a cube from literals; sorts and deduplicates.
    ///
    /// # Panics
    ///
    /// Panics if the literals contain a variable together with its
    /// negation (an inconsistent cube).
    pub fn from_lits<I: IntoIterator<Item = Lit>>(lits: I) -> Self {
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        lits.sort_unstable();
        lits.dedup();
        for w in lits.windows(2) {
            assert!(w[0].var() != w[1].var(), "inconsistent cube: {:?}", w);
        }
        Cube { lits }
    }

    /// Returns the literals of this cube in sorted order.
    #[inline]
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// Number of literals.
    #[inline]
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Returns `true` for the empty cube.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// Returns `true` if the cube contains `lit`.
    pub fn contains(&self, lit: Lit) -> bool {
        self.lits.binary_search(&lit).is_ok()
    }

    /// Iterates over the literals.
    pub fn iter(&self) -> std::slice::Iter<'_, Lit> {
        self.lits.iter()
    }

    /// Returns the negation of this cube as a clause.
    pub fn to_clause(&self) -> Clause {
        Clause::from_lits(self.lits.iter().map(|&l| !l))
    }

    /// Returns a copy without the literal at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn without_index(&self, index: usize) -> Cube {
        let mut lits = self.lits.clone();
        lits.remove(index);
        Cube { lits }
    }

    /// Returns a copy without the given literal (no-op if absent).
    pub fn without_lit(&self, lit: Lit) -> Cube {
        Cube {
            lits: self.lits.iter().copied().filter(|&l| l != lit).collect(),
        }
    }

    /// Set-like subsumption: `true` if every literal of `self` occurs
    /// in `other` (so `other` implies `self` as conjunctions).
    pub fn subsumes(&self, other: &Cube) -> bool {
        if self.len() > other.len() {
            return false;
        }
        let mut oi = 0;
        for &l in &self.lits {
            loop {
                if oi == other.lits.len() {
                    return false;
                }
                let o = other.lits[oi];
                oi += 1;
                if o == l {
                    break;
                }
                if o > l {
                    return false;
                }
            }
        }
        true
    }

    /// Consumes the cube and returns its sorted literal vector.
    pub fn into_lits(self) -> Vec<Lit> {
        self.lits
    }
}

impl FromIterator<Lit> for Cube {
    fn from_iter<I: IntoIterator<Item = Lit>>(iter: I) -> Self {
        Cube::from_lits(iter)
    }
}

impl<'a> IntoIterator for &'a Cube {
    type Item = &'a Lit;
    type IntoIter = std::slice::Iter<'a, Lit>;

    fn into_iter(self) -> Self::IntoIter {
        self.lits.iter()
    }
}

impl IntoIterator for Cube {
    type Item = Lit;
    type IntoIter = std::vec::IntoIter<Lit>;

    fn into_iter(self) -> Self::IntoIter {
        self.lits.into_iter()
    }
}

impl fmt::Debug for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, l) in self.lits.iter().enumerate() {
            if i > 0 {
                write!(f, " & ")?;
            }
            write!(f, "{l:?}")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Var;

    fn lit(i: u32, neg: bool) -> Lit {
        Var::new(i).lit(neg)
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let c = Cube::from_lits([lit(3, true), lit(1, false), lit(3, true)]);
        assert_eq!(c.lits(), &[lit(1, false), lit(3, true)]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    #[should_panic(expected = "inconsistent cube")]
    fn inconsistent_cube_panics() {
        let _ = Cube::from_lits([lit(0, false), lit(0, true)]);
    }

    #[test]
    fn clause_cube_duality() {
        let cube = Cube::from_lits([lit(0, false), lit(2, true)]);
        let clause = cube.to_clause();
        assert_eq!(clause.to_cube(), cube);
    }

    #[test]
    fn subsumption_is_subset_relation() {
        let small = Cube::from_lits([lit(1, false)]);
        let big = Cube::from_lits([lit(0, true), lit(1, false), lit(2, false)]);
        assert!(small.subsumes(&big));
        assert!(!big.subsumes(&small));
        assert!(Cube::new().subsumes(&small));
    }

    #[test]
    fn literal_removal() {
        let c = Cube::from_lits([lit(0, false), lit(1, true), lit(2, false)]);
        assert_eq!(c.without_index(1).lits(), &[lit(0, false), lit(2, false)]);
        assert_eq!(c.without_lit(lit(2, false)).len(), 2);
        assert_eq!(c.without_lit(lit(9, false)).len(), 3);
    }

    #[test]
    fn membership_via_binary_search() {
        let c = Cube::from_lits([lit(0, false), lit(5, true)]);
        assert!(c.contains(lit(5, true)));
        assert!(!c.contains(lit(5, false)));
    }
}
