//! CNF formulas.

use crate::{Assignment, Clause, LBool, Lit, Var};
use std::fmt;

/// A formula in conjunctive normal form.
///
/// Tracks the number of variables (clauses may not mention them all)
/// and owns its clauses.
///
/// # Examples
///
/// ```
/// use japrove_logic::{Cnf, Clause, Var};
/// let mut cnf = Cnf::new();
/// let x = cnf.fresh_var();
/// let y = cnf.fresh_var();
/// cnf.add_clause(Clause::from_lits([x.pos(), y.pos()]));
/// cnf.add_clause(Clause::unit(x.neg()));
/// assert_eq!(cnf.num_vars(), 2);
/// assert_eq!(cnf.num_clauses(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Cnf {
    num_vars: u32,
    clauses: Vec<Clause>,
}

impl Cnf {
    /// Creates an empty formula with no variables.
    pub fn new() -> Self {
        Cnf::default()
    }

    /// Creates an empty formula that already accounts for `num_vars`
    /// variables.
    pub fn with_vars(num_vars: u32) -> Self {
        Cnf {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Number of variables.
    #[inline]
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Number of clauses.
    #[inline]
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Returns the clauses.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Allocates a fresh variable.
    pub fn fresh_var(&mut self) -> Var {
        let v = Var::new(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Ensures the formula accounts for variables `0..num_vars`.
    pub fn ensure_vars(&mut self, num_vars: u32) {
        self.num_vars = self.num_vars.max(num_vars);
    }

    /// Adds a clause, growing the variable count as needed.
    pub fn add_clause(&mut self, clause: Clause) {
        for &l in clause.lits() {
            self.num_vars = self.num_vars.max(l.var().index() + 1);
        }
        self.clauses.push(clause);
    }

    /// Adds a clause built from the given literals.
    pub fn add_lits<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        self.add_clause(Clause::from_lits(lits));
    }

    /// Appends all clauses of `other`.
    pub fn append(&mut self, other: &Cnf) {
        self.num_vars = self.num_vars.max(other.num_vars);
        self.clauses.extend(other.clauses.iter().cloned());
    }

    /// Evaluates the formula under a (possibly partial) assignment.
    pub fn eval(&self, assignment: &Assignment) -> LBool {
        let mut all_true = true;
        for c in &self.clauses {
            match assignment.eval_clause(c) {
                LBool::False => return LBool::False,
                LBool::True => {}
                LBool::Undef => all_true = false,
            }
        }
        if all_true {
            LBool::True
        } else {
            LBool::Undef
        }
    }

    /// Iterates over the clauses.
    pub fn iter(&self) -> std::slice::Iter<'_, Clause> {
        self.clauses.iter()
    }
}

impl FromIterator<Clause> for Cnf {
    fn from_iter<I: IntoIterator<Item = Clause>>(iter: I) -> Self {
        let mut cnf = Cnf::new();
        for c in iter {
            cnf.add_clause(c);
        }
        cnf
    }
}

impl Extend<Clause> for Cnf {
    fn extend<I: IntoIterator<Item = Clause>>(&mut self, iter: I) {
        for c in iter {
            self.add_clause(c);
        }
    }
}

impl<'a> IntoIterator for &'a Cnf {
    type Item = &'a Clause;
    type IntoIter = std::slice::Iter<'a, Clause>;

    fn into_iter(self) -> Self::IntoIter {
        self.clauses.iter()
    }
}

impl fmt::Debug for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Cnf({} vars, {} clauses)",
            self.num_vars,
            self.clauses.len()
        )?;
        for c in &self.clauses {
            writeln!(f, "  {c:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variable_count_tracks_clauses() {
        let mut cnf = Cnf::new();
        cnf.add_lits([Var::new(4).pos()]);
        assert_eq!(cnf.num_vars(), 5);
        let v = cnf.fresh_var();
        assert_eq!(v.index(), 5);
        assert_eq!(cnf.num_vars(), 6);
    }

    #[test]
    fn append_merges_formulas() {
        let mut a = Cnf::with_vars(2);
        a.add_lits([Var::new(0).pos()]);
        let mut b = Cnf::with_vars(4);
        b.add_lits([Var::new(3).neg()]);
        a.append(&b);
        assert_eq!(a.num_vars(), 4);
        assert_eq!(a.num_clauses(), 2);
    }

    #[test]
    fn evaluation_three_valued() {
        let x = Var::new(0);
        let y = Var::new(1);
        let cnf: Cnf = [Clause::from_lits([x.pos(), y.pos()]), Clause::unit(y.neg())]
            .into_iter()
            .collect();
        let mut a = Assignment::new(2);
        assert!(cnf.eval(&a).is_undef());
        a.assign(y, false);
        assert!(cnf.eval(&a).is_undef());
        a.assign(x, true);
        assert!(cnf.eval(&a).is_true());
        a.assign(x, false);
        assert!(cnf.eval(&a).is_false());
    }
}
