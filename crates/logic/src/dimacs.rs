//! DIMACS CNF reading and writing.

use crate::{Clause, Cnf, Lit, Var};
use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, Write};

/// Error produced by [`parse_dimacs`].
#[derive(Debug)]
pub enum ParseDimacsError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed content, with a line number and message.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseDimacsError::Io(e) => write!(f, "i/o error while reading dimacs: {e}"),
            ParseDimacsError::Syntax { line, message } => {
                write!(f, "dimacs syntax error on line {line}: {message}")
            }
        }
    }
}

impl Error for ParseDimacsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseDimacsError::Io(e) => Some(e),
            ParseDimacsError::Syntax { .. } => None,
        }
    }
}

impl From<io::Error> for ParseDimacsError {
    fn from(e: io::Error) -> Self {
        ParseDimacsError::Io(e)
    }
}

/// Parses a DIMACS CNF file.
///
/// Accepts the usual liberal format: comment lines starting with `c`,
/// an optional `p cnf <vars> <clauses>` header, and clauses terminated
/// by `0` possibly spanning lines. A mut reference can be passed as the
/// reader.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] on I/O failure or malformed input
/// (non-integer token, clause not terminated, literal out of range).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use japrove_logic::parse_dimacs;
/// let text = "c example\np cnf 2 2\n1 -2 0\n2 0\n";
/// let cnf = parse_dimacs(text.as_bytes())?;
/// assert_eq!(cnf.num_vars(), 2);
/// assert_eq!(cnf.num_clauses(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_dimacs<R: BufRead>(reader: R) -> Result<Cnf, ParseDimacsError> {
    let mut cnf = Cnf::new();
    let mut current: Vec<Lit> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if line.starts_with('p') {
            let mut parts = line.split_whitespace();
            let _p = parts.next();
            let kind = parts.next().unwrap_or("");
            if kind != "cnf" {
                return Err(ParseDimacsError::Syntax {
                    line: lineno + 1,
                    message: format!("expected 'p cnf' header, found 'p {kind}'"),
                });
            }
            if let Some(vars) = parts.next() {
                let vars: u32 = vars.parse().map_err(|_| ParseDimacsError::Syntax {
                    line: lineno + 1,
                    message: format!("invalid variable count '{vars}'"),
                })?;
                cnf.ensure_vars(vars);
            }
            continue;
        }
        for tok in line.split_whitespace() {
            let value: i64 = tok.parse().map_err(|_| ParseDimacsError::Syntax {
                line: lineno + 1,
                message: format!("invalid literal '{tok}'"),
            })?;
            if value == 0 {
                cnf.add_clause(Clause::from_lits(current.drain(..)));
            } else {
                let var_index = value.unsigned_abs() - 1;
                if var_index > Var::MAX_INDEX as u64 {
                    return Err(ParseDimacsError::Syntax {
                        line: lineno + 1,
                        message: format!("literal '{tok}' out of range"),
                    });
                }
                current.push(Var::new(var_index as u32).lit(value < 0));
            }
        }
    }
    if !current.is_empty() {
        return Err(ParseDimacsError::Syntax {
            line: 0,
            message: "last clause not terminated by 0".to_string(),
        });
    }
    Ok(cnf)
}

/// Writes a formula in DIMACS CNF format.
///
/// A mut reference can be passed as the writer.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use japrove_logic::{write_dimacs, Cnf, Clause, Var};
/// let mut cnf = Cnf::new();
/// cnf.add_clause(Clause::from_lits([Var::new(0).pos(), Var::new(1).neg()]));
/// let mut out = Vec::new();
/// write_dimacs(&mut out, &cnf)?;
/// assert_eq!(String::from_utf8(out)?, "p cnf 2 1\n1 -2 0\n");
/// # Ok(())
/// # }
/// ```
pub fn write_dimacs<W: Write>(mut writer: W, cnf: &Cnf) -> io::Result<()> {
    writeln!(writer, "p cnf {} {}", cnf.num_vars(), cnf.num_clauses())?;
    for clause in cnf.clauses() {
        for &l in clause.lits() {
            let v = l.var().index() as i64 + 1;
            if l.is_negated() {
                write!(writer, "-{v} ")?;
            } else {
                write!(writer, "{v} ")?;
            }
        }
        writeln!(writer, "0")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let text = "p cnf 3 3\n1 -2 0\n2 3 0\n-1 0\n";
        let cnf = parse_dimacs(text.as_bytes()).expect("parse");
        let mut out = Vec::new();
        write_dimacs(&mut out, &cnf).expect("write");
        assert_eq!(String::from_utf8(out).expect("utf8"), text);
    }

    #[test]
    fn multiline_clause_and_comments() {
        let text = "c hello\nc world\np cnf 2 1\n1\n-2\n0\n";
        let cnf = parse_dimacs(text.as_bytes()).expect("parse");
        assert_eq!(cnf.num_clauses(), 1);
        assert_eq!(cnf.clauses()[0].len(), 2);
    }

    #[test]
    fn missing_terminator_is_error() {
        let text = "p cnf 1 1\n1\n";
        assert!(parse_dimacs(text.as_bytes()).is_err());
    }

    #[test]
    fn garbage_token_is_error() {
        let text = "p cnf 1 1\n1 foo 0\n";
        let err = parse_dimacs(text.as_bytes()).unwrap_err();
        assert!(matches!(err, ParseDimacsError::Syntax { line: 2, .. }));
    }

    #[test]
    fn header_grows_vars_even_without_clauses() {
        let cnf = parse_dimacs("p cnf 10 0\n".as_bytes()).expect("parse");
        assert_eq!(cnf.num_vars(), 10);
        assert_eq!(cnf.num_clauses(), 0);
    }
}
