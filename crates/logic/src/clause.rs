//! Disjunctions of literals.

use crate::{Cube, Lit};
use std::fmt;

/// A clause: a disjunction of literals.
///
/// The empty clause represents `false`. Literal order is preserved as
/// given; [`Clause::normalized`] produces a sorted, duplicate-free copy
/// and reports tautologies.
///
/// # Examples
///
/// ```
/// use japrove_logic::{Clause, Var};
/// let x = Var::new(0);
/// let c = Clause::from_lits([x.pos(), x.neg()]);
/// assert!(c.normalized().is_none()); // x | !x is a tautology
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Clause {
    lits: Vec<Lit>,
}

impl Clause {
    /// Creates the empty clause (`false`).
    pub fn new() -> Self {
        Clause { lits: Vec::new() }
    }

    /// Creates a clause from the given literals, preserving order.
    pub fn from_lits<I: IntoIterator<Item = Lit>>(lits: I) -> Self {
        Clause {
            lits: lits.into_iter().collect(),
        }
    }

    /// Creates the unit clause containing only `lit`.
    pub fn unit(lit: Lit) -> Self {
        Clause { lits: vec![lit] }
    }

    /// Returns the literals of this clause.
    #[inline]
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// Number of literals.
    #[inline]
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Returns `true` for the empty clause.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// Returns `true` if the clause contains `lit`.
    pub fn contains(&self, lit: Lit) -> bool {
        self.lits.contains(&lit)
    }

    /// Iterates over the literals.
    pub fn iter(&self) -> std::slice::Iter<'_, Lit> {
        self.lits.iter()
    }

    /// Appends a literal.
    pub fn push(&mut self, lit: Lit) {
        self.lits.push(lit);
    }

    /// Returns a sorted, duplicate-free copy, or `None` if the clause
    /// is a tautology (contains both `l` and `!l`).
    pub fn normalized(&self) -> Option<Clause> {
        let mut lits = self.lits.clone();
        lits.sort_unstable();
        lits.dedup();
        for w in lits.windows(2) {
            if w[0].var() == w[1].var() {
                return None;
            }
        }
        Some(Clause { lits })
    }

    /// Returns the negation of this clause as a cube of literals.
    ///
    /// `!(a | b | c)` is the cube `!a & !b & !c`.
    pub fn to_cube(&self) -> Cube {
        Cube::from_lits(self.lits.iter().map(|&l| !l))
    }

    /// Structural subsumption check: `true` if every literal of `self`
    /// occurs in `other` (then `self` implies `other`).
    ///
    /// Both clauses must be sorted (e.g. produced by
    /// [`Clause::normalized`]); otherwise the result is meaningless.
    pub fn subsumes_sorted(&self, other: &Clause) -> bool {
        if self.len() > other.len() {
            return false;
        }
        let mut oi = 0;
        for &l in &self.lits {
            loop {
                if oi == other.lits.len() {
                    return false;
                }
                let o = other.lits[oi];
                oi += 1;
                if o == l {
                    break;
                }
                if o > l {
                    return false;
                }
            }
        }
        true
    }

    /// Consumes the clause and returns its literal vector.
    pub fn into_lits(self) -> Vec<Lit> {
        self.lits
    }
}

impl FromIterator<Lit> for Clause {
    fn from_iter<I: IntoIterator<Item = Lit>>(iter: I) -> Self {
        Clause::from_lits(iter)
    }
}

impl Extend<Lit> for Clause {
    fn extend<I: IntoIterator<Item = Lit>>(&mut self, iter: I) {
        self.lits.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Clause {
    type Item = &'a Lit;
    type IntoIter = std::slice::Iter<'a, Lit>;

    fn into_iter(self) -> Self::IntoIter {
        self.lits.iter()
    }
}

impl IntoIterator for Clause {
    type Item = Lit;
    type IntoIter = std::vec::IntoIter<Lit>;

    fn into_iter(self) -> Self::IntoIter {
        self.lits.into_iter()
    }
}

impl From<Vec<Lit>> for Clause {
    fn from(lits: Vec<Lit>) -> Self {
        Clause { lits }
    }
}

impl fmt::Debug for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, l) in self.lits.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{l:?}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Var;

    fn lit(i: u32, neg: bool) -> Lit {
        Var::new(i).lit(neg)
    }

    #[test]
    fn normalize_sorts_and_dedups() {
        let c = Clause::from_lits([lit(2, false), lit(0, true), lit(2, false)]);
        let n = c.normalized().expect("not a tautology");
        assert_eq!(n.lits(), &[lit(0, true), lit(2, false)]);
    }

    #[test]
    fn normalize_detects_tautology() {
        let c = Clause::from_lits([lit(1, false), lit(1, true)]);
        assert!(c.normalized().is_none());
    }

    #[test]
    fn negation_gives_cube() {
        let c = Clause::from_lits([lit(0, false), lit(1, true)]);
        let cube = c.to_cube();
        assert_eq!(cube.lits(), &[lit(0, true), lit(1, false)]);
    }

    #[test]
    fn subsumption_on_sorted_clauses() {
        let small = Clause::from_lits([lit(0, false), lit(3, true)]);
        let big = Clause::from_lits([lit(0, false), lit(1, false), lit(3, true)]);
        assert!(small.subsumes_sorted(&big));
        assert!(!big.subsumes_sorted(&small));
        let other = Clause::from_lits([lit(0, true), lit(3, true)]);
        assert!(!other.subsumes_sorted(&big));
    }

    #[test]
    fn empty_clause_properties() {
        let c = Clause::new();
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        assert!(c.subsumes_sorted(&Clause::unit(lit(0, false))));
    }

    #[test]
    fn collect_and_iterate() {
        let c: Clause = [lit(0, false), lit(1, false)].into_iter().collect();
        let back: Vec<Lit> = c.iter().copied().collect();
        assert_eq!(back.len(), 2);
        assert!(c.contains(lit(1, false)));
        assert!(!c.contains(lit(1, true)));
    }
}
