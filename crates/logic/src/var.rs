//! Boolean variables and literals.

use std::fmt;

/// A Boolean variable, identified by a dense non-negative index.
///
/// Variables are cheap `u32` newtypes; engines allocate them densely so
/// that variable-indexed arrays stay compact.
///
/// # Examples
///
/// ```
/// use japrove_logic::Var;
/// let v = Var::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(v.pos().var(), v);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// Maximum representable variable index.
    pub const MAX_INDEX: u32 = (u32::MAX >> 1) - 1;

    /// Creates the variable with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds [`Var::MAX_INDEX`].
    #[inline]
    pub fn new(index: u32) -> Self {
        assert!(index <= Self::MAX_INDEX, "variable index overflow");
        Var(index)
    }

    /// Returns the dense index of this variable.
    #[inline]
    pub fn index(self) -> u32 {
        self.0
    }

    /// Returns the positive literal of this variable.
    #[inline]
    pub fn pos(self) -> Lit {
        Lit::new(self, false)
    }

    /// Returns the negative literal of this variable.
    // `v.neg()` pairs with `v.pos()` (the MiniSat idiom); `Neg` cannot
    // be implemented instead because the output type differs from Self.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn neg(self) -> Lit {
        Lit::new(self, true)
    }

    /// Returns the literal of this variable with the given sign
    /// (`negated == true` yields the negative literal).
    #[inline]
    pub fn lit(self, negated: bool) -> Lit {
        Lit::new(self, negated)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable or its negation.
///
/// Encoded MiniSat-style as `2 * var + sign`, so literals can directly
/// index watch lists and assignment arrays.
///
/// # Examples
///
/// ```
/// use japrove_logic::{Lit, Var};
/// let v = Var::new(7);
/// let l = v.neg();
/// assert!(l.is_negated());
/// assert_eq!(!l, v.pos());
/// assert_eq!(l.var(), v);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal from a variable and a sign.
    #[inline]
    pub fn new(var: Var, negated: bool) -> Self {
        Lit((var.0 << 1) | negated as u32)
    }

    /// Reconstructs a literal from its dense code (see [`Lit::code`]).
    #[inline]
    pub fn from_code(code: u32) -> Self {
        Lit(code)
    }

    /// Returns the dense code `2 * var + sign` of this literal.
    #[inline]
    pub fn code(self) -> u32 {
        self.0
    }

    /// Returns the underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Returns `true` if this is a negated literal.
    #[inline]
    pub fn is_negated(self) -> bool {
        self.0 & 1 == 1
    }

    /// Returns `true` if this is a positive literal.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Returns this literal with the requested sign applied on top of
    /// its current sign (`xor`).
    #[inline]
    pub fn apply_sign(self, negate: bool) -> Self {
        Lit(self.0 ^ negate as u32)
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negated() {
            write!(f, "!v{}", self.var().index())
        } else {
            write!(f, "v{}", self.var().index())
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<Var> for Lit {
    #[inline]
    fn from(v: Var) -> Lit {
        v.pos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_codes_round_trip() {
        for idx in [0u32, 1, 2, 17, 1 << 20] {
            let v = Var::new(idx);
            assert_eq!(v.pos().code(), idx * 2);
            assert_eq!(v.neg().code(), idx * 2 + 1);
            assert_eq!(Lit::from_code(v.pos().code()), v.pos());
            assert_eq!(Lit::from_code(v.neg().code()), v.neg());
        }
    }

    #[test]
    fn negation_is_involution() {
        let l = Var::new(5).neg();
        assert_eq!(!!l, l);
        assert_ne!(!l, l);
        assert_eq!((!l).var(), l.var());
    }

    #[test]
    fn sign_accessors_agree() {
        let v = Var::new(9);
        assert!(v.pos().is_positive());
        assert!(!v.pos().is_negated());
        assert!(v.neg().is_negated());
        assert_eq!(v.lit(true), v.neg());
        assert_eq!(v.lit(false), v.pos());
        assert_eq!(v.pos().apply_sign(true), v.neg());
        assert_eq!(v.pos().apply_sign(false), v.pos());
    }

    #[test]
    #[should_panic(expected = "variable index overflow")]
    fn variable_overflow_panics() {
        let _ = Var::new(u32::MAX);
    }

    #[test]
    fn ordering_follows_codes() {
        let a = Var::new(1).pos();
        let b = Var::new(1).neg();
        let c = Var::new(2).pos();
        assert!(a < b && b < c);
    }
}
