//! Ternary-valued assignments.

use crate::{Clause, Cube, Lit, Var};
use std::fmt;
use std::ops::Not;

/// A lifted Boolean: true, false or undefined.
///
/// # Examples
///
/// ```
/// use japrove_logic::LBool;
/// assert_eq!(!LBool::True, LBool::False);
/// assert_eq!(!LBool::Undef, LBool::Undef);
/// assert!(LBool::True.is_true());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Not assigned.
    #[default]
    Undef,
}

impl LBool {
    /// Lifts a concrete Boolean.
    #[inline]
    pub fn from_bool(b: bool) -> Self {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// Returns `true` iff the value is [`LBool::True`].
    #[inline]
    pub fn is_true(self) -> bool {
        self == LBool::True
    }

    /// Returns `true` iff the value is [`LBool::False`].
    #[inline]
    pub fn is_false(self) -> bool {
        self == LBool::False
    }

    /// Returns `true` iff the value is [`LBool::Undef`].
    #[inline]
    pub fn is_undef(self) -> bool {
        self == LBool::Undef
    }

    /// Converts to a concrete Boolean if defined.
    #[inline]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }

    /// Applies a sign: `xor(self, negate)` with `Undef` absorbing.
    #[inline]
    pub fn apply_sign(self, negate: bool) -> Self {
        if negate {
            !self
        } else {
            self
        }
    }
}

impl Not for LBool {
    type Output = LBool;

    #[inline]
    fn not(self) -> LBool {
        match self {
            LBool::True => LBool::False,
            LBool::False => LBool::True,
            LBool::Undef => LBool::Undef,
        }
    }
}

impl From<bool> for LBool {
    #[inline]
    fn from(b: bool) -> Self {
        LBool::from_bool(b)
    }
}

impl fmt::Display for LBool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LBool::True => write!(f, "1"),
            LBool::False => write!(f, "0"),
            LBool::Undef => write!(f, "x"),
        }
    }
}

/// A dense ternary assignment over variables `0..n`.
///
/// # Examples
///
/// ```
/// use japrove_logic::{Assignment, LBool, Var};
/// let mut a = Assignment::new(4);
/// a.assign(Var::new(2), true);
/// assert_eq!(a.value(Var::new(2)), LBool::True);
/// assert_eq!(a.lit_value(Var::new(2).neg()), LBool::False);
/// assert!(a.value(Var::new(0)).is_undef());
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Assignment {
    values: Vec<LBool>,
}

impl Assignment {
    /// Creates an all-undefined assignment over `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        Assignment {
            values: vec![LBool::Undef; num_vars],
        }
    }

    /// Number of variables covered.
    pub fn num_vars(&self) -> usize {
        self.values.len()
    }

    /// Grows the assignment to cover at least `num_vars` variables.
    pub fn grow(&mut self, num_vars: usize) {
        if num_vars > self.values.len() {
            self.values.resize(num_vars, LBool::Undef);
        }
    }

    /// Sets the value of `var`.
    pub fn assign(&mut self, var: Var, value: bool) {
        self.grow(var.index() as usize + 1);
        self.values[var.index() as usize] = LBool::from_bool(value);
    }

    /// Makes the literal true (assigns its variable accordingly).
    pub fn assign_lit(&mut self, lit: Lit) {
        self.assign(lit.var(), lit.is_positive());
    }

    /// Clears the value of `var`.
    pub fn unassign(&mut self, var: Var) {
        if (var.index() as usize) < self.values.len() {
            self.values[var.index() as usize] = LBool::Undef;
        }
    }

    /// Returns the value of `var` (`Undef` if out of range).
    #[inline]
    pub fn value(&self, var: Var) -> LBool {
        self.values
            .get(var.index() as usize)
            .copied()
            .unwrap_or(LBool::Undef)
    }

    /// Returns the value of a literal under this assignment.
    #[inline]
    pub fn lit_value(&self, lit: Lit) -> LBool {
        self.value(lit.var()).apply_sign(lit.is_negated())
    }

    /// Evaluates a clause: true if some literal is true, false if all
    /// literals are false, undefined otherwise.
    pub fn eval_clause(&self, clause: &Clause) -> LBool {
        let mut all_false = true;
        for &l in clause.lits() {
            match self.lit_value(l) {
                LBool::True => return LBool::True,
                LBool::False => {}
                LBool::Undef => all_false = false,
            }
        }
        if all_false {
            LBool::False
        } else {
            LBool::Undef
        }
    }

    /// Evaluates a cube: false if some literal is false, true if all
    /// literals are true, undefined otherwise.
    pub fn eval_cube(&self, cube: &Cube) -> LBool {
        let mut all_true = true;
        for &l in cube.lits() {
            match self.lit_value(l) {
                LBool::False => return LBool::False,
                LBool::True => {}
                LBool::Undef => all_true = false,
            }
        }
        if all_true {
            LBool::True
        } else {
            LBool::Undef
        }
    }

    /// Iterates over the assigned literals (skips undefined variables).
    pub fn assigned_lits(&self) -> impl Iterator<Item = Lit> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.to_bool().map(|b| Var::new(i as u32).lit(!b)))
    }
}

impl fmt::Debug for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Assignment[")?;
        for v in &self.values {
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lbool_negation_table() {
        assert_eq!(!LBool::True, LBool::False);
        assert_eq!(!LBool::False, LBool::True);
        assert_eq!(!LBool::Undef, LBool::Undef);
    }

    #[test]
    fn assignment_basic_flow() {
        let mut a = Assignment::new(2);
        let v = Var::new(1);
        assert!(a.value(v).is_undef());
        a.assign(v, false);
        assert!(a.value(v).is_false());
        assert!(a.lit_value(v.neg()).is_true());
        a.unassign(v);
        assert!(a.value(v).is_undef());
    }

    #[test]
    fn out_of_range_reads_are_undef() {
        let a = Assignment::new(1);
        assert!(a.value(Var::new(10)).is_undef());
    }

    #[test]
    fn clause_and_cube_evaluation() {
        let x = Var::new(0);
        let y = Var::new(1);
        let mut a = Assignment::new(2);
        let clause = Clause::from_lits([x.pos(), y.pos()]);
        let cube = Cube::from_lits([x.pos(), y.pos()]);
        assert!(a.eval_clause(&clause).is_undef());
        a.assign(x, false);
        assert!(a.eval_clause(&clause).is_undef());
        assert!(a.eval_cube(&cube).is_false());
        a.assign(y, true);
        assert!(a.eval_clause(&clause).is_true());
        a.assign(y, false);
        assert!(a.eval_clause(&clause).is_false());
    }

    #[test]
    fn assigned_lits_round_trip() {
        let mut a = Assignment::new(3);
        a.assign_lit(Var::new(0).neg());
        a.assign_lit(Var::new(2).pos());
        let lits: Vec<Lit> = a.assigned_lits().collect();
        assert_eq!(lits, vec![Var::new(0).neg(), Var::new(2).pos()]);
    }
}
