//! Boolean foundations shared by every japrove engine.
//!
//! This crate defines the vocabulary used by the SAT solver
//! (`japrove-sat`), the AIG package (`japrove-aig`) and the model
//! checkers: [`Var`], [`Lit`], [`Clause`], [`Cube`], [`Cnf`],
//! ternary-valued [`Assignment`]s and DIMACS I/O.
//!
//! The literal encoding follows the MiniSat convention: variable `v`
//! yields literals `2*v` (positive) and `2*v + 1` (negative), so a
//! literal fits in a `u32` and array indexing by literal is free.
//!
//! # Examples
//!
//! ```
//! use japrove_logic::{Lit, Var, Clause, Cnf};
//!
//! let x = Var::new(0);
//! let y = Var::new(1);
//! let mut cnf = Cnf::new();
//! cnf.add_clause(Clause::from_lits([x.pos(), y.neg()]));
//! assert_eq!(cnf.num_clauses(), 1);
//! assert!(cnf.num_vars() >= 2);
//! ```

mod assignment;
mod clause;
mod cnf;
mod cube;
mod dimacs;
mod var;

pub use assignment::{Assignment, LBool};
pub use clause::Clause;
pub use cnf::Cnf;
pub use cube::Cube;
pub use dimacs::{parse_dimacs, write_dimacs, ParseDimacsError};
pub use var::{Lit, Var};
