//! Table VI — separate verification with global vs local proofs on the
//! all-true designs of Table IV.
//!
//! Both variants use clause re-use; the only difference is the proof
//! scope. The paper's effect: both variants are comparable on correct designs;
//! differences only show up on a few designs (local proofs still help
//! when invariants shrink under assumptions).

use japrove_bench::{fmt_time, limits, Table};
use japrove_core::{separate_verify, SeparateOptions};
use japrove_genbench::all_true_specs;
use std::time::Instant;

fn main() {
    let mut table = Table::new(
        "Table VI: separate verification, global vs local proofs (all-true designs)",
        &[
            "name",
            "#props",
            "global #unsolved",
            "global time",
            "local #unsolved",
            "local time",
        ],
    );
    for spec in all_true_specs() {
        let design = spec.generate();
        let sys = &design.sys;

        let t0 = Instant::now();
        let global = separate_verify(
            sys,
            &SeparateOptions::global()
                .per_property_timeout(limits::per_property())
                .total_timeout(limits::total()),
        );
        let global_time = t0.elapsed();

        let t0 = Instant::now();
        let local = separate_verify(
            sys,
            &SeparateOptions::local()
                .per_property_timeout(limits::per_property())
                .total_timeout(limits::total()),
        );
        let local_time = t0.elapsed();

        table.row(&[
            sys.name(),
            &sys.num_properties().to_string(),
            &global.num_unsolved().to_string(),
            &fmt_time(global_time),
            &local.num_unsolved().to_string(),
            &fmt_time(local_time),
        ]);
    }
    table.print();
}
