//! Table III — designs with failing properties.
//!
//! Joint verification (with and without a BMC front-end, the latter
//! standing in for the ABC baseline) against JA-verification with
//! clause re-use. The paper's effect: many properties are false
//! globally but true locally; JA finds the small debugging set quickly
//! while joint verification spends its time computing deep
//! counterexamples.

use japrove_bench::{fmt_time, limits, Table};
use japrove_core::{ja_verify, joint_verify, JointOptions, SeparateOptions};
use japrove_genbench::failing_specs;
use std::time::Instant;

fn main() {
    let mut table = Table::new(
        "Table III: designs with failing properties",
        &[
            "name",
            "#latch",
            "#props",
            "abc-style #false(#true)",
            "abc-style time",
            "joint #false(#true)",
            "joint time",
            "ja #false(#true)",
            "ja time",
            "|debug set|",
        ],
    );
    for spec in failing_specs() {
        let design = spec.generate();
        let sys = &design.sys;

        let t0 = Instant::now();
        let abc = joint_verify(
            sys,
            &JointOptions::new()
                .bmc_depth(40)
                .total_timeout(limits::total()),
        );
        let abc_time = t0.elapsed();

        let t0 = Instant::now();
        let joint = joint_verify(sys, &JointOptions::new().total_timeout(limits::total()));
        let joint_time = t0.elapsed();

        let t0 = Instant::now();
        let ja = ja_verify(
            sys,
            &SeparateOptions::local().per_property_timeout(limits::per_property()),
        );
        let ja_time = t0.elapsed();

        table.row(&[
            sys.name(),
            &sys.num_latches().to_string(),
            &sys.num_properties().to_string(),
            &format!("{} ({})", abc.num_false(), abc.num_true()),
            &fmt_time(abc_time),
            &format!("{} ({})", joint.num_false(), joint.num_true()),
            &fmt_time(joint_time),
            &format!("{} ({})", ja.num_false(), ja.num_true()),
            &fmt_time(ja_time),
            &ja.debugging_set().len().to_string(),
        ]);
    }
    table.print();
    println!("(ja #false counts locally-failing properties: the debugging set)");
}
