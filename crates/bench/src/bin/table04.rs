//! Table IV — designs where all properties are true.
//!
//! Joint verification against JA-verification with clause re-use on
//! all-true designs. The paper's effect: joint verification is
//! slightly ahead or comparable here (one inductive invariant proves
//! everything at once), with JA competitive thanks to clause re-use.

use japrove_bench::{fmt_time, limits, Table};
use japrove_core::{ja_verify, joint_verify, JointOptions, SeparateOptions};
use japrove_genbench::all_true_specs;
use std::time::Instant;

fn main() {
    let mut table = Table::new(
        "Table IV: all properties are true",
        &[
            "name",
            "#latch",
            "#props",
            "abc-style time",
            "joint time",
            "ja #unsolved",
            "ja time",
        ],
    );
    for spec in all_true_specs() {
        let design = spec.generate();
        let sys = &design.sys;

        let t0 = Instant::now();
        let _abc = joint_verify(
            sys,
            &JointOptions::new()
                .bmc_depth(20)
                .total_timeout(limits::total()),
        );
        let abc_time = t0.elapsed();

        let t0 = Instant::now();
        let _joint = joint_verify(sys, &JointOptions::new().total_timeout(limits::total()));
        let joint_time = t0.elapsed();

        let t0 = Instant::now();
        let ja = ja_verify(
            sys,
            &SeparateOptions::local().per_property_timeout(limits::per_property()),
        );
        let ja_time = t0.elapsed();

        table.row(&[
            sys.name(),
            &sys.num_latches().to_string(),
            &sys.num_properties().to_string(),
            &fmt_time(abc_time),
            &fmt_time(joint_time),
            &ja.num_unsolved().to_string(),
            &fmt_time(ja_time),
        ]);
    }
    table.print();
}
