//! Table I — the buggy counter of Example 1.
//!
//! Compares solving both properties globally (BMC, then IC3) against
//! solving them locally (JA-verification). The paper's effect: BMC
//! explodes exponentially in the counter width, IC3 grows quickly, and
//! the local approach is flat (independent of width).

use japrove_bench::{fmt_time, limits, Table};
use japrove_core::{ja_verify, SeparateOptions};
use japrove_genbench::buggy_counter;
use japrove_ic3::{Bmc, BmcResult, CheckOutcome, Ic3, Ic3Options};
use japrove_sat::Budget;
use std::time::Instant;

fn main() {
    let mut table = Table::new(
        "Table I: counter example (time limit per engine run: 20 s)",
        &[
            "#bits",
            "bmc #frames",
            "bmc time",
            "ic3 #frames",
            "ic3 time",
            "ja-local time",
        ],
    );
    for bits in [4usize, 6, 8, 10, 12] {
        let (sys, props) = buggy_counter(bits);
        let cex_depth = (1usize << (bits - 1)) + 1;

        // Global BMC on both properties (the deep one dominates).
        let t0 = Instant::now();
        let mut bmc = Bmc::new(&sys);
        let budget = Budget::timeout(limits::single());
        let mut bmc_frames = String::from("*");
        let mut solved = 0;
        for p in [props.p0, props.p1] {
            match bmc.run(&[p], cex_depth + 2, budget) {
                BmcResult::Cex { cex, .. } => {
                    bmc_frames = format!("{}", cex.depth);
                    solved += 1;
                }
                _ => break,
            }
        }
        let bmc_time = if solved == 2 {
            fmt_time(t0.elapsed())
        } else {
            bmc_frames = "*".into();
            "*".into()
        };

        // Global IC3 on both properties.
        let t0 = Instant::now();
        let mut ic3_frames = 0usize;
        let mut ic3_ok = true;
        for p in [props.p0, props.p1] {
            let opts = Ic3Options::new().budget(Budget::timeout(limits::single()));
            let mut engine = Ic3::new(&sys, p, opts);
            match engine.run() {
                CheckOutcome::Falsified(_) => ic3_frames = ic3_frames.max(engine.stats().frames),
                CheckOutcome::Proved(_) => ic3_frames = ic3_frames.max(engine.stats().frames),
                CheckOutcome::Unknown(_) => ic3_ok = false,
            }
        }
        let (ic3_frames, ic3_time) = if ic3_ok {
            (format!("{ic3_frames}"), fmt_time(t0.elapsed()))
        } else {
            ("*".into(), "*".into())
        };

        // JA-verification (local proofs).
        let t0 = Instant::now();
        let report = ja_verify(
            &sys,
            &SeparateOptions::local().per_property_timeout(limits::single()),
        );
        let ja_time = if report.num_unsolved() == 0 {
            fmt_time(t0.elapsed())
        } else {
            "*".into()
        };

        table.row(&[
            &bits.to_string(),
            &bmc_frames,
            &bmc_time,
            &ic3_frames,
            &ic3_time,
            &ja_time,
        ]);
    }
    table.print();
    println!("(global counterexample depth for P1 is 2^(bits-1) + 1; the local run is flat)");
}
