//! Mining ablation: per-stage accounting and wall-clock of the
//! guess → simulation-filter → k-induction pipeline, plus the cost of
//! verifying the mined workload with the separate and clustered
//! drivers.
//!
//! For every Table VII-style all-true family the binary reports, per
//! candidate kind and in total:
//!
//! * how many candidates the signature pass generated,
//! * how many the random-simulation filter killed (genuinely false,
//!   with a concrete witnessing run),
//! * how many k-induction killed (base case: genuinely false; step
//!   case: not provable at this depth),
//! * how many survived as proved properties of the mined system,
//!
//! together with the wall-clock of each stage and of the downstream
//! verification. Verdict parity between the separate baseline and the
//! clustered driver is asserted on every mined workload, and no mined
//! property may be falsified — the bench doubles as a soundness run.
//!
//! `--json <path>` writes the rows; the committed `BENCH_mining.json`
//! at the repository root is regenerated exactly this way. `--small`
//! reduces to two families so release-mode CI can smoke-run the binary
//! in seconds.

use japrove_bench::{fmt_time, write_json, Json, Table};
use japrove_core::{clustered_verify, separate_verify, ClusteredOptions, SeparateOptions};
use japrove_genbench::{resolve_spec, FamilyParams};
use japrove_mine::{mine, CandidateKind, MineOptions, MiningOutcome};
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!("usage: mining_ablation [--small] [--json <path>] [--mine-depth <k>]");
    std::process::exit(2)
}

/// The family slice: all-true generator families whose mined workload
/// lands in the hundreds (the paper's Table VII regime).
fn full_specs() -> Vec<FamilyParams> {
    [
        "syn_6s135",
        "syn_6s139",
        "syn_6s256",
        "syn_6s273",
        "syn_6s275",
    ]
    .iter()
    .map(|name| resolve_spec(name).expect("known family"))
    .collect()
}

fn small_specs() -> Vec<FamilyParams> {
    ["syn_6s135", "syn_6s275"]
        .iter()
        .map(|name| resolve_spec(name).expect("known family"))
        .collect()
}

fn per_kind_json(outcome: &MiningOutcome) -> Json {
    Json::arr(CandidateKind::ALL.iter().map(|&kind| {
        let s = outcome.stats.kind(kind);
        Json::obj([
            ("kind", Json::str(kind.name())),
            ("generated", Json::int(s.generated as u64)),
            ("sim_killed", Json::int(s.sim_killed as u64)),
            ("base_killed", Json::int(s.base_killed as u64)),
            ("step_killed", Json::int(s.step_killed as u64)),
            ("promoted", Json::int(s.promoted as u64)),
        ])
    }))
}

fn main() -> ExitCode {
    let mut json_path: Option<String> = None;
    let mut small = false;
    let mut k = 2usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--small" => small = true,
            "--json" => match args.next() {
                Some(p) => json_path = Some(p),
                None => usage(),
            },
            "--mine-depth" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => k = n,
                _ => usage(),
            },
            _ => usage(),
        }
    }

    let specs = if small { small_specs() } else { full_specs() };

    let mut table = Table::new(
        "Mining ablation: guess / sim-filter / k-induction, then verify",
        &[
            "design", "#cand", "sim-kill", "ind-kill", "mined", "t(gen)", "t(sim)", "t(ind)",
            "t(sep)", "t(clu)",
        ],
    );
    let mut rows: Vec<Json> = Vec::new();

    for spec in specs {
        let sys = spec.generate().sys;
        let opts = MineOptions::new().k(k);

        let t = Instant::now();
        let outcome = mine(&sys, &opts);
        let mine_total = t.elapsed();
        let s = &outcome.stats;
        assert_eq!(
            s.generated(),
            s.sim_killed() + s.induction_killed() + s.promoted(),
            "{}: stage accounting must balance",
            sys.name()
        );

        let t = Instant::now();
        let separate = separate_verify(&outcome.sys, &SeparateOptions::global());
        let sep_time = t.elapsed();
        let t = Instant::now();
        let clustered = clustered_verify(
            &outcome.sys,
            &ClusteredOptions::new().separate(SeparateOptions::global()),
        );
        let clu_time = t.elapsed();

        // Soundness gate: mined invariants are k-induction proved, so
        // neither driver may falsify (or fail to re-prove) any of them.
        for (a, b) in separate.results.iter().zip(&clustered.results) {
            assert_eq!(a.id, b.id);
            assert!(
                a.holds(),
                "{}/{}: separate lost a mined proof",
                sys.name(),
                a.name
            );
            assert!(
                b.holds(),
                "{}/{}: clustered lost a mined proof",
                sys.name(),
                b.name
            );
        }

        table.row(&[
            sys.name(),
            &s.generated().to_string(),
            &s.sim_killed().to_string(),
            &s.induction_killed().to_string(),
            &s.promoted().to_string(),
            &fmt_time(Duration::from_micros(s.gen_us)),
            &fmt_time(Duration::from_micros(s.sim_us)),
            &fmt_time(Duration::from_micros(s.induction_us)),
            &fmt_time(sep_time),
            &fmt_time(clu_time),
        ]);
        rows.push(Json::obj([
            ("design", Json::str(sys.name())),
            ("latches", Json::int(sys.num_latches() as u64)),
            ("mine_depth", Json::int(k as u64)),
            ("generated", Json::int(s.generated() as u64)),
            ("sim_killed", Json::int(s.sim_killed() as u64)),
            ("induction_killed", Json::int(s.induction_killed() as u64)),
            ("promoted", Json::int(s.promoted() as u64)),
            ("truncated", Json::int(s.truncated as u64)),
            ("cegar_rounds", Json::int(s.rounds as u64)),
            ("gen_us", Json::int(s.gen_us)),
            ("sim_us", Json::int(s.sim_us)),
            ("induction_us", Json::int(s.induction_us)),
            ("mine_total_us", Json::int(mine_total.as_micros() as u64)),
            ("verify_separate_us", Json::int(sep_time.as_micros() as u64)),
            (
                "verify_clustered_us",
                Json::int(clu_time.as_micros() as u64),
            ),
            ("per_kind", per_kind_json(&outcome)),
        ]));
    }

    table.print();
    println!(
        "(sim-kill: falsified by the random-simulation filter; ind-kill: rejected by \
         k={k} induction; every mined property re-proves under both drivers)"
    );

    if let Some(path) = json_path {
        let doc = Json::obj([
            ("bench", Json::str("mining_ablation")),
            ("provenance", japrove_bench::provenance()),
            ("small", Json::bool(small)),
            ("mine_depth", Json::int(k as u64)),
            ("rows", Json::Arr(rows)),
        ]);
        if let Err(e) = write_json(&path, &doc) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}
