//! §11 — JA-verification and parallel computing.
//!
//! Runs JA-verification on the parallel probe design with increasing
//! worker counts, once per registered SAT backend, in **three** driver
//! arms: the pre-incremental cold/FIFO baseline, the incremental
//! driver (shared encoding, warm solvers, hardest-first work
//! stealing), and the learned arm — the incremental driver dispatching
//! in the order a cost model predicts from the incremental run's own
//! per-property records, i.e. the second-run-warm configuration. The
//! per-row speedup is incremental vs. cold at the same thread count,
//! i.e. the win of the incrementality itself; on a many-core host the
//! thread columns additionally show the (near embarrassing) parallel
//! scaling the paper argues for.
//!
//! `--json <path>` writes the rows in a CI-friendly schema; the
//! committed `BENCH_parallel_scaling.json` baseline at the repository
//! root is regenerated exactly this way. `--small` switches to a
//! reduced family so release-mode CI can smoke-run the whole binary in
//! seconds.

use japrove_bench::{fmt_time, write_json, Json, Table};
use japrove_core::{
    parallel_ja_verify_with, CostModel, MultiReport, ParallelMode, SchedulePolicy, SeparateOptions,
    Session,
};
use japrove_genbench::FamilyParams;
use japrove_obs::{FeatureStore, RunRecord};
use japrove_sat::BackendChoice;
use japrove_tsys::TransitionSystem;
use std::process::ExitCode;
use std::time::Instant;

fn usage() -> ! {
    eprintln!("usage: parallel_scaling [--small] [--repeat <n>] [--json <path>]");
    std::process::exit(2)
}

/// Runs `f` `repeat` times and returns the best (minimum) wall-clock
/// time together with *that run's* report, asserting every repeat
/// reached identical verdicts. Minimum-of-N is the standard way to
/// strip scheduler noise from wall-clock comparisons on shared hosts.
fn timed_best<F: FnMut() -> MultiReport>(
    repeat: usize,
    mut f: F,
) -> (std::time::Duration, MultiReport) {
    let mut best: Option<(std::time::Duration, MultiReport)> = None;
    for _ in 0..repeat.max(1) {
        let t = Instant::now();
        let r = f();
        let elapsed = t.elapsed();
        match &best {
            Some((best_time, best_report)) => {
                assert_eq!(
                    verdict_fingerprint(best_report),
                    verdict_fingerprint(&r),
                    "verdicts must be identical across repeats"
                );
                if elapsed < *best_time {
                    best = Some((elapsed, r));
                }
            }
            None => best = Some((elapsed, r)),
        }
    }
    best.expect("at least one run")
}

/// The reduced family for CI smoke runs: same structure, fewer and
/// shallower modules.
fn small_spec() -> FamilyParams {
    FamilyParams::new("syn_parallel_small", 1111)
        .chain(8, 24)
        .ring(8, 8)
        .easy_true(4)
}

fn verdict_fingerprint(report: &MultiReport) -> Vec<(bool, bool)> {
    report
        .results
        .iter()
        .map(|r| (r.holds(), r.fails()))
        .collect()
}

/// A feature store seeded from `report`'s per-property records — the
/// in-memory equivalent of a first `--feature-store` run, so the
/// learned arm measures the realistic second-run-warm configuration.
fn warm_store(sys: &TransitionSystem, report: &MultiReport) -> FeatureStore {
    let design = format!("{:016x}", sys.structural_hash());
    let mut store = FeatureStore::default();
    for r in &report.results {
        let verdict = if r.holds() {
            "holds"
        } else if r.fails() {
            "fails"
        } else {
            "unknown"
        };
        store.upsert(RunRecord {
            design: design.clone(),
            property: r.name.clone(),
            mode: "parallel".into(),
            verdict: verdict.into(),
            time_us: r.time.as_micros() as u64,
            frames: r.frames as u64,
            conflicts: r.stats.sat.conflicts,
            decisions: r.stats.sat.decisions,
            propagations: r.stats.sat.propagations,
            restarts: r.stats.sat.restarts,
        });
    }
    store
}

fn main() -> ExitCode {
    let mut json_path: Option<String> = None;
    let mut small = false;
    let mut repeat = 3usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--small" => small = true,
            "--json" => match args.next() {
                Some(p) => json_path = Some(p),
                None => usage(),
            },
            "--repeat" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => repeat = n,
                _ => usage(),
            },
            _ => usage(),
        }
    }

    let spec = if small {
        small_spec()
    } else {
        japrove_genbench::parallel_spec()
    };
    let design = spec.generate();
    let sys = &design.sys;
    let thread_counts: &[usize] = if small { &[1, 2] } else { &[1, 2, 4, 8] };

    let mut table = Table::new(
        "Section 11: parallel JA-verification, cold vs incremental vs learned, per backend",
        &[
            "backend",
            "threads",
            "cold-fifo",
            "incremental",
            "learned",
            "speedup",
            "#true",
            "#unsolved",
        ],
    );
    let mut rows: Vec<Json> = Vec::new();
    for &backend in BackendChoice::ALL {
        let opts = SeparateOptions::local().backend(backend);
        for &threads in thread_counts {
            let (cold_time, cold) = timed_best(repeat, || {
                parallel_ja_verify_with(sys, threads, &opts, ParallelMode::ColdFifo)
            });
            let (incr_time, incr) = timed_best(repeat, || {
                parallel_ja_verify_with(sys, threads, &opts, ParallelMode::Incremental)
            });
            // The learned arm is warm by construction: its cost model
            // is fed by the incremental run it is compared against.
            let store = warm_store(sys, &incr);
            let (learned_time, learned) = timed_best(repeat, || {
                Session::parallel(opts.clone(), threads)
                    .schedule(SchedulePolicy::Learned)
                    .cost_model(CostModel::from_store(&store, sys))
                    .run(sys)
            });
            assert_eq!(
                verdict_fingerprint(&cold),
                verdict_fingerprint(&incr),
                "{backend} x{threads}: drivers must agree on every verdict"
            );
            assert_eq!(
                verdict_fingerprint(&incr),
                verdict_fingerprint(&learned),
                "{backend} x{threads}: the learned schedule must not change verdicts"
            );
            let speedup = cold_time.as_secs_f64() / incr_time.as_secs_f64();
            table.row(&[
                backend.name(),
                &threads.to_string(),
                &fmt_time(cold_time),
                &fmt_time(incr_time),
                &fmt_time(learned_time),
                &format!("{speedup:.2}x"),
                &incr.num_true().to_string(),
                &incr.num_unsolved().to_string(),
            ]);
            for (mode, report, seconds) in [
                ("cold-fifo", &cold, cold_time),
                ("incremental", &incr, incr_time),
                ("learned", &learned, learned_time),
            ] {
                let mut row = Json::obj([
                    ("backend", Json::str(backend.name())),
                    ("threads", Json::int(threads as u64)),
                    ("mode", Json::str(mode)),
                    ("seconds", Json::num(seconds.as_secs_f64())),
                    ("best_of", Json::int(repeat as u64)),
                    ("num_true", Json::int(report.num_true() as u64)),
                    ("num_false", Json::int(report.num_false() as u64)),
                    ("num_unsolved", Json::int(report.num_unsolved() as u64)),
                ]);
                if mode != "cold-fifo" {
                    row.push(
                        "speedup_vs_cold",
                        Json::num(cold_time.as_secs_f64() / seconds.as_secs_f64()),
                    );
                }
                rows.push(row);
            }
        }
    }
    table.print();
    println!(
        "(design: {} properties, {} latches; host exposes {} CPU(s) — the speedup column \
         isolates the incremental driver's win at equal thread counts)",
        sys.num_properties(),
        sys.num_latches(),
        host_cpus()
    );

    if let Some(path) = json_path {
        let doc = Json::obj([
            ("bench", Json::str("parallel_scaling")),
            ("provenance", japrove_bench::provenance()),
            ("design", Json::str(sys.name())),
            ("properties", Json::int(sys.num_properties() as u64)),
            ("latches", Json::int(sys.num_latches() as u64)),
            ("host_cpus", Json::int(host_cpus() as u64)),
            ("rows", Json::Arr(rows)),
        ]);
        if let Err(e) = write_json(&path, &doc) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}

fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}
