//! §11 — JA-verification and parallel computing.
//!
//! Runs JA-verification on the probe design with increasing worker
//! counts, once per registered SAT backend. The paper argues the
//! workload is embarrassingly parallel: local proofs get *easier* as
//! the property set grows, and the need for clause exchange shrinks,
//! so speedup should be close to linear — and the per-backend rows
//! show whether that holds independent of the solver.

use japrove_bench::{fmt_time, Table};
use japrove_core::{parallel_ja_verify, SeparateOptions};
use japrove_genbench::parallel_spec;
use japrove_sat::BackendChoice;
use std::time::Instant;

fn main() {
    let design = parallel_spec().generate();
    let sys = &design.sys;
    let mut table = Table::new(
        "Section 11: parallel JA-verification scaling, per backend",
        &[
            "backend",
            "threads",
            "time",
            "speedup",
            "#true",
            "#unsolved",
        ],
    );
    for &backend in BackendChoice::ALL {
        let opts = SeparateOptions::local().backend(backend);
        let mut base = None;
        for threads in [1usize, 2, 4, 8] {
            let t0 = Instant::now();
            let report = parallel_ja_verify(sys, threads, &opts);
            let elapsed = t0.elapsed();
            let base_time = *base.get_or_insert(elapsed);
            table.row(&[
                backend.name(),
                &threads.to_string(),
                &fmt_time(elapsed),
                &format!("{:.2}x", base_time.as_secs_f64() / elapsed.as_secs_f64()),
                &report.num_true().to_string(),
                &report.num_unsolved().to_string(),
            ]);
        }
    }
    table.print();
    println!(
        "(design: {} properties, {} latches; host exposes {} CPU(s) — speedup is bounded by that)",
        sys.num_properties(),
        sys.num_latches(),
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
}
