//! §11 — JA-verification and parallel computing.
//!
//! Runs JA-verification on the parallel probe design with increasing
//! worker counts, once per registered SAT backend, in **both** driver
//! modes: the pre-incremental cold/FIFO baseline and the incremental
//! driver (shared encoding, warm solvers, hardest-first work
//! stealing). The per-row speedup is incremental vs. cold at the same
//! thread count, i.e. the win of the incrementality itself; on a
//! many-core host the thread columns additionally show the (near
//! embarrassing) parallel scaling the paper argues for.
//!
//! `--json <path>` writes the rows in a CI-friendly schema; the
//! committed `BENCH_parallel_scaling.json` baseline at the repository
//! root is regenerated exactly this way. `--small` switches to a
//! reduced family so release-mode CI can smoke-run the whole binary in
//! seconds.

use japrove_bench::{fmt_time, write_json, Json, Table};
use japrove_core::{parallel_ja_verify_with, MultiReport, ParallelMode, SeparateOptions};
use japrove_genbench::FamilyParams;
use japrove_sat::BackendChoice;
use std::process::ExitCode;
use std::time::Instant;

fn usage() -> ! {
    eprintln!("usage: parallel_scaling [--small] [--repeat <n>] [--json <path>]");
    std::process::exit(2)
}

/// Runs `f` `repeat` times and returns the best (minimum) wall-clock
/// time together with *that run's* report, asserting every repeat
/// reached identical verdicts. Minimum-of-N is the standard way to
/// strip scheduler noise from wall-clock comparisons on shared hosts.
fn timed_best<F: FnMut() -> MultiReport>(
    repeat: usize,
    mut f: F,
) -> (std::time::Duration, MultiReport) {
    let mut best: Option<(std::time::Duration, MultiReport)> = None;
    for _ in 0..repeat.max(1) {
        let t = Instant::now();
        let r = f();
        let elapsed = t.elapsed();
        match &best {
            Some((best_time, best_report)) => {
                assert_eq!(
                    verdict_fingerprint(best_report),
                    verdict_fingerprint(&r),
                    "verdicts must be identical across repeats"
                );
                if elapsed < *best_time {
                    best = Some((elapsed, r));
                }
            }
            None => best = Some((elapsed, r)),
        }
    }
    best.expect("at least one run")
}

/// The reduced family for CI smoke runs: same structure, fewer and
/// shallower modules.
fn small_spec() -> FamilyParams {
    FamilyParams::new("syn_parallel_small", 1111)
        .chain(8, 24)
        .ring(8, 8)
        .easy_true(4)
}

fn verdict_fingerprint(report: &MultiReport) -> Vec<(bool, bool)> {
    report
        .results
        .iter()
        .map(|r| (r.holds(), r.fails()))
        .collect()
}

fn main() -> ExitCode {
    let mut json_path: Option<String> = None;
    let mut small = false;
    let mut repeat = 3usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--small" => small = true,
            "--json" => match args.next() {
                Some(p) => json_path = Some(p),
                None => usage(),
            },
            "--repeat" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => repeat = n,
                _ => usage(),
            },
            _ => usage(),
        }
    }

    let spec = if small {
        small_spec()
    } else {
        japrove_genbench::parallel_spec()
    };
    let design = spec.generate();
    let sys = &design.sys;
    let thread_counts: &[usize] = if small { &[1, 2] } else { &[1, 2, 4, 8] };

    let mut table = Table::new(
        "Section 11: parallel JA-verification, incremental vs cold driver, per backend",
        &[
            "backend",
            "threads",
            "cold-fifo",
            "incremental",
            "speedup",
            "#true",
            "#unsolved",
        ],
    );
    let mut rows: Vec<Json> = Vec::new();
    for &backend in BackendChoice::ALL {
        let opts = SeparateOptions::local().backend(backend);
        for &threads in thread_counts {
            let (cold_time, cold) = timed_best(repeat, || {
                parallel_ja_verify_with(sys, threads, &opts, ParallelMode::ColdFifo)
            });
            let (incr_time, incr) = timed_best(repeat, || {
                parallel_ja_verify_with(sys, threads, &opts, ParallelMode::Incremental)
            });
            assert_eq!(
                verdict_fingerprint(&cold),
                verdict_fingerprint(&incr),
                "{backend} x{threads}: drivers must agree on every verdict"
            );
            let speedup = cold_time.as_secs_f64() / incr_time.as_secs_f64();
            table.row(&[
                backend.name(),
                &threads.to_string(),
                &fmt_time(cold_time),
                &fmt_time(incr_time),
                &format!("{speedup:.2}x"),
                &incr.num_true().to_string(),
                &incr.num_unsolved().to_string(),
            ]);
            for (mode, report, seconds) in [
                ("cold-fifo", &cold, cold_time),
                ("incremental", &incr, incr_time),
            ] {
                let mut row = Json::obj([
                    ("backend", Json::str(backend.name())),
                    ("threads", Json::int(threads as u64)),
                    ("mode", Json::str(mode)),
                    ("seconds", Json::num(seconds.as_secs_f64())),
                    ("best_of", Json::int(repeat as u64)),
                    ("num_true", Json::int(report.num_true() as u64)),
                    ("num_false", Json::int(report.num_false() as u64)),
                    ("num_unsolved", Json::int(report.num_unsolved() as u64)),
                ]);
                if mode == "incremental" {
                    row.push("speedup_vs_cold", Json::num(speedup));
                }
                rows.push(row);
            }
        }
    }
    table.print();
    println!(
        "(design: {} properties, {} latches; host exposes {} CPU(s) — the speedup column \
         isolates the incremental driver's win at equal thread counts)",
        sys.num_properties(),
        sys.num_latches(),
        host_cpus()
    );

    if let Some(path) = json_path {
        let doc = Json::obj([
            ("bench", Json::str("parallel_scaling")),
            ("provenance", japrove_bench::provenance()),
            ("design", Json::str(sys.name())),
            ("properties", Json::int(sys.num_properties() as u64)),
            ("latches", Json::int(sys.num_latches() as u64)),
            ("host_cpus", Json::int(host_cpus() as u64)),
            ("rows", Json::Arr(rows)),
        ]);
        if let Err(e) = write_json(&path, &doc) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}

fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}
