//! Table VIII — state lifting respecting vs ignoring property
//! constraints, on the failing designs of Table III (§7-A).
//!
//! The paper's effect: both versions are comparable on failing
//! designs; ignoring constraints may produce spurious counterexamples
//! that force a constrained re-run (counted in the "retries" column).

use japrove_bench::{fmt_time, limits, Table};
use japrove_core::{separate_verify, SeparateOptions};
use japrove_genbench::failing_specs;
use japrove_ic3::Lifting;
use std::time::Instant;

fn main() {
    let mut table = Table::new(
        "Table VIII: lifting respecting vs ignoring property constraints (failing designs)",
        &[
            "name",
            "#props",
            "respect #unsolved",
            "respect time",
            "ignore #unsolved",
            "ignore time",
            "retries",
        ],
    );
    for spec in failing_specs() {
        let design = spec.generate();
        let sys = &design.sys;

        let t0 = Instant::now();
        let respect = separate_verify(
            sys,
            &SeparateOptions::local()
                .lifting(Lifting::Respect)
                .per_property_timeout(limits::per_property())
                .total_timeout(limits::total()),
        );
        let respect_time = t0.elapsed();

        let t0 = Instant::now();
        let ignore = separate_verify(
            sys,
            &SeparateOptions::local()
                .lifting(Lifting::Ignore)
                .per_property_timeout(limits::per_property())
                .total_timeout(limits::total()),
        );
        let ignore_time = t0.elapsed();
        let retries = ignore.results.iter().filter(|r| r.retried).count();

        table.row(&[
            sys.name(),
            &sys.num_properties().to_string(),
            &respect.num_unsolved().to_string(),
            &fmt_time(respect_time),
            &ignore.num_unsolved().to_string(),
            &fmt_time(ignore_time),
            &retries.to_string(),
        ]);
    }
    table.print();
}
