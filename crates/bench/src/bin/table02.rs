//! Table II — designs with a large number of properties.
//!
//! Verifies the first k properties of each large design with joint
//! verification and with JA-verification. The paper's effect: joint
//! verification degrades or times out as k grows (the aggregate
//! property spans many cones and contains a deep failure), while
//! JA-verification stays robust; on one design (6s403) joint wins.

use japrove_bench::{fmt_time, limits, Table};
use japrove_core::{joint_verify, separate_verify, JointOptions, SeparateOptions};
use japrove_genbench::many_props_specs;
use japrove_tsys::PropertyId;
use std::time::Instant;

fn main() {
    let mut table = Table::new(
        "Table II: a few designs with a large number of properties",
        &[
            "name",
            "#props",
            "tried",
            "joint #unsolved",
            "joint time",
            "ja #unsolved",
            "ja time",
        ],
    );
    for spec in many_props_specs() {
        let design = spec.generate();
        let total = design.sys.num_properties();
        for k in [total / 4, total / 2, total] {
            let subset: Vec<PropertyId> = design.sys.property_ids().take(k).collect();

            let t0 = Instant::now();
            let joint = joint_verify(
                &design.sys,
                &JointOptions::new()
                    .total_timeout(limits::total())
                    .subset(subset.clone()),
            );
            let joint_time = t0.elapsed();

            let t0 = Instant::now();
            let ja = separate_verify(
                &design.sys,
                &SeparateOptions::local()
                    .per_property_timeout(limits::per_property())
                    .total_timeout(limits::total())
                    .order(subset),
            );
            let ja_time = t0.elapsed();

            table.row(&[
                design.sys.name(),
                &total.to_string(),
                &k.to_string(),
                &joint.num_unsolved().to_string(),
                &fmt_time(joint_time),
                &ja.num_unsolved().to_string(),
                &fmt_time(ja_time),
            ]);
        }
    }
    table.print();
}
