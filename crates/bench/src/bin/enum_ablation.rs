//! Enumeration ablation: the cost and yield of post-verdict
//! counterexample enumeration and XOR-hash counting, per projection
//! set.
//!
//! For every failing generator family the binary first runs the plain
//! JA driver (the verdict cost that enumeration rides on), then the
//! enumeration/counting pass once per projection set. Per falsified
//! property it reports:
//!
//! * the minimal counterexample depth the pass re-derived,
//! * how many distinct witnesses the blocking loop found, and whether
//!   it exhausted the projection space or hit the cap,
//! * the `[lo, hi]` XOR-hash count bracket (or the exact count when
//!   the probe exhausted), with the boundary level,
//! * the wall-clock of the pass, separated from the verdict cost.
//!
//! Every witness the pass returns is replay-checked internally; the
//! bench asserts none were rejected, doubling as a soundness run.
//!
//! `--json <path>` writes the rows; the committed `BENCH_enum.json` at
//! the repository root is regenerated exactly this way. `--small`
//! reduces to two families so release-mode CI can smoke-run the binary
//! in seconds.

use japrove_bench::{fmt_time, write_json, Json, Table};
use japrove_core::{enumerate_report, ja_verify, EnumOptions, Projection, SeparateOptions};
use japrove_genbench::{resolve_spec, FamilyParams};
use std::process::ExitCode;
use std::time::Instant;

fn usage() -> ! {
    eprintln!("usage: enum_ablation [--small] [--json <path>] [--enum-max <n>]");
    std::process::exit(2)
}

/// The family slice: failing families (Tables III/V regime) whose
/// shallow failures give the enumerator real work. Families whose
/// failures sit at depth >= 3 over wide input words (e.g. syn_6s335)
/// are excluded: their input-projection XOR instances are out of reach
/// for a CDCL solver without Gaussian elimination.
fn full_specs() -> Vec<FamilyParams> {
    [
        "syn_6s104",
        "syn_6s260",
        "syn_6s175",
        "syn_6s254",
        "syn_6s258",
    ]
    .iter()
    .map(|name| resolve_spec(name).expect("known family"))
    .collect()
}

fn small_specs() -> Vec<FamilyParams> {
    ["syn_6s260", "syn_6s175"]
        .iter()
        .map(|name| resolve_spec(name).expect("known family"))
        .collect()
}

fn main() -> ExitCode {
    let mut json_path: Option<String> = None;
    let mut small = false;
    let mut max_cexes = 64usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--small" => small = true,
            "--json" => match args.next() {
                Some(p) => json_path = Some(p),
                None => usage(),
            },
            "--enum-max" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => max_cexes = n,
                _ => usage(),
            },
            _ => usage(),
        }
    }

    let specs = if small { small_specs() } else { full_specs() };

    let mut table = Table::new(
        "Enumeration ablation: distinct-failure yield and counting cost per projection",
        &[
            "design",
            "property",
            "proj",
            "depth",
            "bits",
            "distinct",
            "all?",
            "count",
            "t(verify)",
            "t(enum)",
        ],
    );
    let mut rows: Vec<Json> = Vec::new();

    for spec in specs {
        let sys = spec.generate().sys;
        let t = Instant::now();
        let report = ja_verify(&sys, &SeparateOptions::local());
        let verify_time = t.elapsed();
        assert!(
            report.num_false() > 0,
            "{}: a failing family must falsify something",
            sys.name()
        );

        for projection in [Projection::Inputs, Projection::Latches] {
            let opts = EnumOptions::new()
                .enumerate(true)
                .count(true)
                .max_cexes(max_cexes)
                .projection(projection);
            let t = Instant::now();
            let enums = enumerate_report(&sys, &report, &opts);
            let enum_time = t.elapsed();
            let per_prop = if enums.is_empty() {
                enum_time
            } else {
                enum_time / enums.len() as u32
            };

            for e in &enums {
                assert!(!e.faulted, "{}/{}: pass faulted", sys.name(), e.name);
                assert_eq!(
                    e.rejected,
                    0,
                    "{}/{}: every witness must replay",
                    sys.name(),
                    e.name
                );
                let count = e.count.as_ref().expect("counting was on");
                let bracket = if count.exact {
                    format!("={}", count.lo)
                } else {
                    format!("[{},{}]", count.lo, count.hi)
                };
                table.row(&[
                    sys.name(),
                    &e.name,
                    projection.name(),
                    &e.depth.to_string(),
                    &e.projection_bits.to_string(),
                    &e.cexes.len().to_string(),
                    if e.exhausted { "yes" } else { "cap" },
                    &bracket,
                    &fmt_time(verify_time),
                    &fmt_time(per_prop),
                ]);
                rows.push(Json::obj([
                    ("design", Json::str(sys.name())),
                    ("property", Json::str(&e.name)),
                    ("projection", Json::str(projection.name())),
                    ("depth", Json::int(e.depth as u64)),
                    ("projection_bits", Json::int(e.projection_bits as u64)),
                    ("distinct", Json::int(e.cexes.len() as u64)),
                    ("exhausted", Json::bool(e.exhausted)),
                    ("count_lo", Json::int(count.lo)),
                    ("count_hi", Json::int(count.hi)),
                    ("count_exact", Json::bool(count.exact)),
                    ("count_level", Json::int(count.level as u64)),
                    ("count_trials", Json::int(count.trials as u64)),
                    ("verify_us", Json::int(verify_time.as_micros() as u64)),
                    ("enum_us", Json::int(per_prop.as_micros() as u64)),
                ]));
            }
        }
    }

    table.print();
    println!(
        "(distinct: replay-checked witnesses no two of which agree on the projection set; \
         count: exact when the probe exhausted, else the XOR-hash bracket; \
         t(enum) is per falsified property, cap {max_cexes})"
    );

    if let Some(path) = json_path {
        let doc = Json::obj([
            ("bench", Json::str("enum_ablation")),
            ("provenance", japrove_bench::provenance()),
            ("small", Json::bool(small)),
            ("enum_max", Json::int(max_cexes as u64)),
            ("rows", Json::Arr(rows)),
        ]);
        if let Err(e) = write_json(&path, &doc) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}
