//! Table X — single properties of a many-property design solved
//! globally vs locally (§11).
//!
//! Randomly-picked individual properties of the probe design are
//! verified with a global proof and with a local proof (no clause
//! exchange between the runs). The paper's effect: global proofs need
//! ~10+ frames, local proofs converge at frame 1-2 in a fraction of
//! the time — the basis of the parallel-verification argument.
//!
//! Every sampled property is solved once per registered SAT backend,
//! so the table doubles as a per-backend timing comparison for the
//! portfolio assignment. `--json <path>` additionally writes the rows
//! in the CI-friendly schema shared with `parallel_scaling`.

use japrove_bench::{fmt_time, write_json, Json, Table};
use japrove_core::Scope;
use japrove_core::{local_assumptions, ClauseDb, SeparateOptions};
use japrove_genbench::probe_spec;
use japrove_sat::BackendChoice;
use japrove_tsys::PropertyId;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match (arg.as_str(), args.next()) {
            ("--json", Some(p)) => json_path = Some(p),
            _ => {
                eprintln!("usage: table10 [--json <path>]");
                return ExitCode::from(2);
            }
        }
    }
    let design = probe_spec().generate();
    let sys = &design.sys;
    let n = sys.num_properties();
    // A deterministic sample of *sink* properties — the analogue of the
    // 6s289 properties, which depend on a small cone whose global proof
    // needs the neighbour module's invariant (like the paper's indices
    // 20, 137, 500, ...).
    let sinks: Vec<usize> = (0..n)
        .filter(|&i| sys.properties()[i].name.starts_with("chain_sink"))
        .collect();
    let sample: Vec<usize> = (0..9).map(|i| sinks[(i * 7 + 3) % sinks.len()]).collect();

    let mut table = Table::new(
        "Table X: single properties solved globally vs locally, per backend",
        &[
            "prop index",
            "backend",
            "global #frames",
            "global time",
            "local #frames",
            "local time",
        ],
    );
    let db = ClauseDb::new(); // never published to: no clause exchange
    let assumed = local_assumptions(sys);
    let mut rows: Vec<Json> = Vec::new();
    for &backend in BackendChoice::ALL {
        let mut max_gf = 0usize;
        let mut max_lf = 0usize;
        for &i in &sample {
            let id = PropertyId::new(i);
            let global = japrove_core::check_one_property(
                sys,
                id,
                &[],
                &db,
                &SeparateOptions::global().backend(backend),
                None,
            );
            let local = japrove_core::check_one_property(
                sys,
                id,
                &assumed,
                &db,
                &SeparateOptions::local().backend(backend),
                None,
            );
            assert_eq!(global.scope, Scope::Global);
            assert_eq!(global.backend, backend);
            max_gf = max_gf.max(global.frames);
            max_lf = max_lf.max(local.frames);
            rows.push(Json::obj([
                ("prop_index", Json::int(i as u64)),
                ("backend", Json::str(backend.name())),
                ("global_frames", Json::int(global.frames as u64)),
                ("global_seconds", Json::num(global.time.as_secs_f64())),
                ("local_frames", Json::int(local.frames as u64)),
                ("local_seconds", Json::num(local.time.as_secs_f64())),
            ]));
            table.row(&[
                &i.to_string(),
                backend.name(),
                &global.frames.to_string(),
                &fmt_time(global.time),
                &local.frames.to_string(),
                &fmt_time(local.time),
            ]);
        }
        table.row(&[
            "max",
            backend.name(),
            &max_gf.to_string(),
            "",
            &max_lf.to_string(),
            "",
        ]);
    }
    table.print();
    println!(
        "(design has {} properties; local proofs converge almost immediately on every backend)",
        n
    );
    if let Some(path) = json_path {
        let doc = Json::obj([
            ("bench", Json::str("table10")),
            ("design", Json::str(sys.name())),
            ("properties", Json::int(n as u64)),
            ("rows", Json::Arr(rows)),
        ]);
        if let Err(e) = write_json(&path, &doc) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}
