//! Table V — separate verification with global vs local proofs on the
//! failing designs of Table III.
//!
//! Both variants use clause re-use; the only difference is the proof
//! scope. The paper's effect: local proofs dramatically outperform
//! global proofs when properties fail, because deep counterexamples
//! are replaced by shallow local proofs.

use japrove_bench::{fmt_time, limits, Table};
use japrove_core::{separate_verify, SeparateOptions};
use japrove_genbench::failing_specs;
use std::time::Instant;

fn main() {
    let mut table = Table::new(
        "Table V: separate verification, global vs local proofs (failing designs)",
        &[
            "name",
            "#props",
            "global #unsolved",
            "global time",
            "local #unsolved",
            "local time",
        ],
    );
    for spec in failing_specs() {
        let design = spec.generate();
        let sys = &design.sys;

        let t0 = Instant::now();
        let global = separate_verify(
            sys,
            &SeparateOptions::global()
                .per_property_timeout(limits::per_property())
                .total_timeout(limits::total()),
        );
        let global_time = t0.elapsed();

        let t0 = Instant::now();
        let local = separate_verify(
            sys,
            &SeparateOptions::local()
                .per_property_timeout(limits::per_property())
                .total_timeout(limits::total()),
        );
        let local_time = t0.elapsed();

        table.row(&[
            sys.name(),
            &sys.num_properties().to_string(),
            &global.num_unsolved().to_string(),
            &fmt_time(global_time),
            &local.num_unsolved().to_string(),
            &fmt_time(local_time),
        ]);
    }
    table.print();
}
