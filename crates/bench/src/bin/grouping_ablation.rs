//! Ablation: JA-verification vs structural property grouping (§12).
//!
//! The related-work baseline groups properties by cone-of-influence
//! similarity and verifies each group jointly. The paper predicts:
//! grouping is competitive on correct designs but loses on designs
//! with broken properties that fail for different reasons — and it
//! never yields debugging-set information.

use japrove_bench::{fmt_time, limits, Table};
use japrove_core::{
    cluster_properties, grouped_verify, ja_verify, GroupingOptions, JointOptions, SeparateOptions,
};
use japrove_genbench::{all_true_specs, failing_specs};
use std::time::Instant;

fn main() {
    let mut table = Table::new(
        "Ablation (§12): structural grouping vs JA-verification",
        &[
            "name",
            "#props",
            "#groups",
            "grouped #false",
            "grouped time",
            "ja #false",
            "ja time",
        ],
    );
    let specs = failing_specs()
        .into_iter()
        .take(4)
        .chain(all_true_specs().into_iter().take(4));
    for spec in specs {
        let design = spec.generate();
        let sys = &design.sys;
        let gopts =
            GroupingOptions::new().joint(JointOptions::new().total_timeout(limits::total()));
        let groups = cluster_properties(sys, &gopts);

        let t0 = Instant::now();
        let grouped = grouped_verify(sys, &gopts);
        let grouped_time = t0.elapsed();

        let t0 = Instant::now();
        let ja = ja_verify(
            sys,
            &SeparateOptions::local().per_property_timeout(limits::per_property()),
        );
        let ja_time = t0.elapsed();

        table.row(&[
            sys.name(),
            &sys.num_properties().to_string(),
            &groups.len().to_string(),
            &grouped.num_false().to_string(),
            &fmt_time(grouped_time),
            &ja.num_false().to_string(),
            &fmt_time(ja_time),
        ]);
    }
    table.print();
    println!("(grouped #false counts global failures; ja #false is the debugging set)");
}
