//! Grouping ablation: separate vs joint vs grouped baseline vs
//! affinity-clustered verification.
//!
//! The §12 discussion contrasts JA-verification with structure-aware
//! grouping; this experiment measures the whole spectrum on the Table
//! VII generator families (correct designs — grouping's sweet spot)
//! plus a slice of the failing families (its weak spot):
//!
//! * `separate` — one global proof per property ([`separate_verify`]);
//! * `joint` — one aggregate for the whole design ([`joint_verify`]);
//! * `grouped` — the greedy single-signal §12 baseline
//!   ([`grouped_verify`]);
//! * `clustered-jaccard` / `clustered-hybrid` — the first-class
//!   clustering mode ([`clustered_verify`]) under both affinity
//!   metrics: agglomerative affinity clusters, budgeted per-cluster
//!   joint attempts, warm per-property fallback with two-level clause
//!   re-use.
//!
//! All modes produce *global* verdicts, so the binary asserts verdict
//! parity across every mode on every design. `--json <path>` writes
//! the rows plus per-family wall-clock totals; the committed
//! `BENCH_grouping.json` at the repository root is regenerated exactly
//! this way. `--small` switches to two reduced designs so release-mode
//! CI can smoke-run the binary in seconds.

use japrove_bench::{fmt_time, limits, write_json, Json, Table};
use japrove_core::{
    clustered_verify, grouped_verify, joint_verify, separate_verify, AffinityMetric,
    ClusteredOptions, GroupingOptions, JointOptions, MultiReport, SeparateOptions,
};
use japrove_genbench::{all_true_specs, failing_specs, FamilyParams};
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!("usage: grouping_ablation [--small] [--repeat <n>] [--json <path>]");
    std::process::exit(2)
}

/// Verdict fingerprint in property-id order (drivers report in
/// different orders; joint emits results as they resolve).
fn fingerprint(report: &MultiReport) -> Vec<(usize, bool, bool)> {
    let mut v: Vec<(usize, bool, bool)> = report
        .results
        .iter()
        .map(|r| (r.id.index(), r.holds(), r.fails()))
        .collect();
    v.sort_unstable();
    v
}

/// The group/cluster count a grouped or clustered driver embedded in
/// its method label (`"... (N groups)"` / `"... (N clusters)"`) — so
/// the bench need not re-run the (hybrid: solver-backed) clustering
/// just to count units.
fn unit_count(report: &MultiReport) -> usize {
    report
        .method
        .rsplit('(')
        .next()
        .and_then(|tail| tail.split_whitespace().next())
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("no unit count in method label '{}'", report.method))
}

/// Runs `f` `repeat` times, asserting identical verdicts, and returns
/// the best wall-clock time with that run's report.
fn timed_best<F: FnMut() -> MultiReport>(repeat: usize, mut f: F) -> (Duration, MultiReport) {
    let mut best: Option<(Duration, MultiReport)> = None;
    for _ in 0..repeat.max(1) {
        let t = Instant::now();
        let r = f();
        let elapsed = t.elapsed();
        match &best {
            Some((bt, br)) => {
                assert_eq!(
                    fingerprint(br),
                    fingerprint(&r),
                    "verdicts must be identical across repeats"
                );
                if elapsed < *bt {
                    best = Some((elapsed, r));
                }
            }
            None => best = Some((elapsed, r)),
        }
    }
    best.expect("at least one run")
}

/// The reduced designs for CI smoke runs.
fn small_specs() -> Vec<(FamilyParams, &'static str)> {
    vec![
        (
            FamilyParams::new("syn_small_true", 7)
                .chain(3, 6)
                .easy_true(3)
                .sinks(6, 6),
            "all-true",
        ),
        (
            FamilyParams::new("syn_small_fail", 8)
                .easy_true(2)
                .shallow_fails(vec![2, 3])
                .shadow_group(2, vec![9]),
            "failing",
        ),
    ]
}

fn main() -> ExitCode {
    let mut json_path: Option<String> = None;
    let mut small = false;
    let mut repeat = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--small" => small = true,
            "--json" => match args.next() {
                Some(p) => json_path = Some(p),
                None => usage(),
            },
            "--repeat" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => repeat = n,
                _ => usage(),
            },
            _ => usage(),
        }
    }

    let specs: Vec<(FamilyParams, &'static str)> = if small {
        small_specs()
    } else {
        // Failing designs whose deepest failure resolves within the
        // per-property limit on a laptop; the two specs with
        // depth-6000 shadows are skipped because the separate baseline
        // cannot decide them in-budget and verdict parity is asserted.
        let failing = ["syn_6s260", "syn_6s207", "syn_6s335"];
        all_true_specs()
            .into_iter()
            .take(4)
            .map(|s| (s, "all-true"))
            .chain(
                failing_specs()
                    .into_iter()
                    .filter(|s| failing.contains(&s.name.as_str()))
                    .map(|s| (s, "failing")),
            )
            .collect()
    };

    let mut table = Table::new(
        "Grouping ablation: separate / joint / grouped (§12) / clustered (affinity)",
        &[
            "name", "family", "#props", "mode", "#units", "#false", "time",
        ],
    );
    let mut rows: Vec<Json> = Vec::new();
    // (family, mode) → summed best-of wall-clock.
    let mut totals: Vec<(String, String, f64)> = Vec::new();
    let mut add_total = |family: &str, mode: &str, secs: f64| match totals
        .iter_mut()
        .find(|(f, m, _)| f == family && m == mode)
    {
        Some((_, _, t)) => *t += secs,
        None => totals.push((family.to_string(), mode.to_string(), secs)),
    };

    for (spec, family) in specs {
        let design = spec.generate();
        let sys = &design.sys;
        let sep_opts = SeparateOptions::global().per_property_timeout(limits::per_property());
        let joint_opts = JointOptions::new().total_timeout(limits::total());
        let grouping = GroupingOptions::new().joint(joint_opts.clone());

        // (mode, best time, report, verification units)
        let mut runs: Vec<(String, Duration, MultiReport, usize)> = Vec::new();

        let (t, r) = timed_best(repeat, || separate_verify(sys, &sep_opts));
        runs.push(("separate".into(), t, r, sys.num_properties()));

        let (t, r) = timed_best(repeat, || joint_verify(sys, &joint_opts));
        runs.push(("joint".into(), t, r, 1));

        let (t, r) = timed_best(repeat, || grouped_verify(sys, &grouping));
        let groups = unit_count(&r);
        runs.push(("grouped".into(), t, r, groups));

        for metric in [AffinityMetric::Jaccard, AffinityMetric::Hybrid] {
            let copts = ClusteredOptions::new()
                .metric(metric)
                .separate(sep_opts.clone());
            let (t, r) = timed_best(repeat, || clustered_verify(sys, &copts));
            let clusters = unit_count(&r);
            runs.push((format!("clustered-{metric}"), t, r, clusters));
        }

        // Every mode is global: verdicts must agree everywhere.
        let reference = fingerprint(&runs[0].2);
        for (mode, _, report, _) in &runs[1..] {
            assert_eq!(
                reference,
                fingerprint(report),
                "{}: mode '{mode}' disagrees with separate",
                sys.name()
            );
        }

        for (mode, time, report, units) in &runs {
            table.row(&[
                sys.name(),
                family,
                &sys.num_properties().to_string(),
                mode,
                &units.to_string(),
                &report.num_false().to_string(),
                &fmt_time(*time),
            ]);
            add_total(family, mode, time.as_secs_f64());
            rows.push(Json::obj([
                ("design", Json::str(sys.name())),
                ("family", Json::str(family.to_string())),
                ("properties", Json::int(sys.num_properties() as u64)),
                ("mode", Json::str(mode.clone())),
                ("units", Json::int(*units as u64)),
                ("seconds", Json::num(time.as_secs_f64())),
                ("best_of", Json::int(repeat as u64)),
                ("num_true", Json::int(report.num_true() as u64)),
                ("num_false", Json::int(report.num_false() as u64)),
                ("num_unsolved", Json::int(report.num_unsolved() as u64)),
            ]));
        }
    }

    table.print();
    println!(
        "(#units: verification units per run — properties for separate, 1 for joint, \
         groups/clusters otherwise; verdict parity is asserted across all modes)"
    );
    let mut totals_table = Table::new(
        "Per-family wall-clock totals",
        &["family", "mode", "total time"],
    );
    for (family, mode, secs) in &totals {
        totals_table.row(&[family, mode, &fmt_time(Duration::from_secs_f64(*secs))]);
    }
    totals_table.print();

    if let Some(path) = json_path {
        let doc = Json::obj([
            ("bench", Json::str("grouping_ablation")),
            ("provenance", japrove_bench::provenance()),
            ("small", Json::bool(small)),
            ("rows", Json::Arr(rows)),
            (
                "totals",
                Json::arr(totals.iter().map(|(family, mode, secs)| {
                    Json::obj([
                        ("family", Json::str(family.clone())),
                        ("mode", Json::str(mode.clone())),
                        ("seconds", Json::num(*secs)),
                    ])
                })),
            ),
        ]);
        if let Err(e) = write_json(&path, &doc) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}
