//! Table VII — the benefit of clause re-use.
//!
//! JA-verification with and without re-using strengthening clauses on
//! the all-true designs of Table IV. The paper's effect: re-use wins
//! significantly except on designs with very few properties.

use japrove_bench::{fmt_time, limits, Table};
use japrove_core::{separate_verify, SeparateOptions};
use japrove_genbench::all_true_specs;
use std::time::Instant;

fn main() {
    let mut table = Table::new(
        "Table VII: JA-verification with and without clause re-use",
        &[
            "name",
            "#props",
            "no-reuse #unsolved",
            "no-reuse time",
            "reuse #unsolved",
            "reuse time",
        ],
    );
    for spec in all_true_specs() {
        let design = spec.generate();
        let sys = &design.sys;

        let t0 = Instant::now();
        let without = separate_verify(
            sys,
            &SeparateOptions::local()
                .reuse(false)
                .per_property_timeout(limits::per_property())
                .total_timeout(limits::total()),
        );
        let without_time = t0.elapsed();

        let t0 = Instant::now();
        let with = separate_verify(
            sys,
            &SeparateOptions::local()
                .reuse(true)
                .per_property_timeout(limits::per_property())
                .total_timeout(limits::total()),
        );
        let with_time = t0.elapsed();

        table.row(&[
            sys.name(),
            &sys.num_properties().to_string(),
            &without.num_unsolved().to_string(),
            &fmt_time(without_time),
            &with.num_unsolved().to_string(),
            &fmt_time(with_time),
        ]);
    }
    table.print();
}
