//! Shared harness utilities for the table-regeneration binaries.
//!
//! Each `table*` binary reproduces one table of the paper at laptop
//! scale; this library provides the common table formatting, timing
//! helpers and scaled-down time limits.

use std::time::Duration;

/// Formats a duration the way the paper's tables do: seconds below an
/// hour, hours above.
///
/// # Examples
///
/// ```
/// use japrove_bench::fmt_time;
/// use std::time::Duration;
/// assert_eq!(fmt_time(Duration::from_millis(2500)), "2.50 s");
/// assert_eq!(fmt_time(Duration::from_secs(7200)), "2.00 h");
/// ```
pub fn fmt_time(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 3600.0 {
        format!("{:.2} h", secs / 3600.0)
    } else if secs >= 100.0 {
        format!("{:.0} s", secs)
    } else {
        format!("{:.2} s", secs)
    }
}

/// A plain-text table printer with right-aligned columns.
///
/// # Examples
///
/// ```
/// use japrove_bench::Table;
/// let mut t = Table::new("demo", &["name", "time"]);
/// t.row(&["a", "1.0 s"]);
/// let out = t.render();
/// assert!(out.contains("name"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.headers.len(), "cell count mismatch");
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }
}

/// A minimal JSON value with a serializer, so the bench binaries can
/// emit machine-readable results (`--json <path>`) without external
/// dependencies. Strings are escaped per RFC 8259; numbers must be
/// finite.
///
/// # Examples
///
/// ```
/// use japrove_bench::Json;
/// let v = Json::obj([
///     ("name", Json::str("run")),
///     ("threads", Json::int(8)),
///     ("seconds", Json::num(0.25)),
///     ("rows", Json::arr([Json::bool(true)])),
/// ]);
/// assert_eq!(
///     v.to_string(),
///     r#"{"name":"run","threads":8,"seconds":0.25,"rows":[true]}"#
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A string.
    Str(String),
    /// A finite floating-point number.
    Num(f64),
    /// An integer (kept exact; `Num` would round large values).
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A finite number value.
    ///
    /// # Panics
    ///
    /// Panics on NaN or infinity (not representable in JSON).
    pub fn num(x: f64) -> Json {
        assert!(x.is_finite(), "JSON numbers must be finite");
        Json::Num(x)
    }

    /// An integer value.
    ///
    /// # Panics
    ///
    /// Panics if `x` exceeds `i64::MAX`.
    pub fn int(x: impl TryInto<i64>) -> Json {
        Json::Int(x.try_into().ok().expect("integer out of i64 range"))
    }

    /// A boolean value.
    pub fn bool(b: bool) -> Json {
        Json::Bool(b)
    }

    /// An array value.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// An object value with the given key/value pairs.
    pub fn obj<'k>(pairs: impl IntoIterator<Item = (&'k str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Appends a pair to an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn push(&mut self, key: &str, value: Json) {
        match self {
            Json::Obj(pairs) => pairs.push((key.to_string(), value)),
            _ => panic!("Json::push on a non-object"),
        }
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Json::Str(s) => {
                f.write_str("\"")?;
                for c in s.chars() {
                    match c {
                        '"' => f.write_str("\\\"")?,
                        '\\' => f.write_str("\\\\")?,
                        '\n' => f.write_str("\\n")?,
                        '\r' => f.write_str("\\r")?,
                        '\t' => f.write_str("\\t")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => write!(f, "{c}")?,
                    }
                }
                f.write_str("\"")
            }
            Json::Num(x) => write!(f, "{x}"),
            Json::Int(x) => write!(f, "{x}"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", Json::Str(k.clone()))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Writes a JSON document to `path` (with a trailing newline, so the
/// committed baselines diff cleanly).
pub fn write_json(path: &str, value: &Json) -> std::io::Result<()> {
    std::fs::write(path, format!("{value}\n"))
}

/// The schema version embedded in every bench JSON document; bump when
/// a field changes meaning or shape.
pub const BENCH_SCHEMA_VERSION: i64 = 2;

/// Provenance block for bench JSON output: schema version, the git
/// revision the numbers were produced from (`"unknown"` outside a git
/// checkout), and the host triple the run cannot be compared across.
///
/// # Examples
///
/// ```
/// use japrove_bench::provenance;
/// let p = provenance().to_string();
/// assert!(p.contains("\"schema_version\":2"));
/// assert!(p.contains("\"host\""));
/// ```
pub fn provenance() -> Json {
    let git_rev = std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get() as i64)
        .unwrap_or(0);
    Json::obj([
        ("schema_version", Json::Int(BENCH_SCHEMA_VERSION)),
        ("git_rev", Json::str(git_rev)),
        (
            "host",
            Json::obj([
                ("os", Json::str(std::env::consts::OS)),
                ("arch", Json::str(std::env::consts::ARCH)),
                ("cpus", Json::Int(cpus)),
            ]),
        ),
    ])
}

/// Scaled-down stand-ins for the paper's wall-clock limits.
pub mod limits {
    use std::time::Duration;

    /// Stand-in for the paper's 10-hour total limit per benchmark.
    pub fn total() -> Duration {
        Duration::from_secs(60)
    }

    /// Stand-in for the per-property limits (0.3 h .. 2.8 h).
    pub fn per_property() -> Duration {
        Duration::from_secs(5)
    }

    /// Stand-in for Table I's 1-hour-per-instance limit.
    pub fn single() -> Duration {
        Duration::from_secs(20)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_aligns() {
        let mut t = Table::new("t", &["a", "bbbb"]);
        t.row(&["xxx", "1"]);
        let r = t.render();
        assert!(r.contains("== t =="));
        assert!(r.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "cell count mismatch")]
    fn wrong_cell_count_panics() {
        let mut t = Table::new("t", &["a"]);
        t.row(&["x", "y"]);
    }

    #[test]
    fn time_formats() {
        assert_eq!(fmt_time(Duration::from_millis(10)), "0.01 s");
        assert_eq!(fmt_time(Duration::from_secs(120)), "120 s");
    }

    #[test]
    fn json_escapes_and_nests() {
        let v = Json::obj([
            ("s", Json::str("a\"b\\c\nd")),
            ("n", Json::num(1.5)),
            ("i", Json::int(42u32)),
            ("b", Json::bool(false)),
            ("a", Json::arr([Json::int(1), Json::int(2)])),
            ("o", Json::obj([("k", Json::str("v"))])),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"s":"a\"b\\c\nd","n":1.5,"i":42,"b":false,"a":[1,2],"o":{"k":"v"}}"#
        );
    }

    #[test]
    fn json_push_extends_objects() {
        let mut v = Json::obj([]);
        v.push("x", Json::int(1));
        assert_eq!(v.to_string(), r#"{"x":1}"#);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn json_rejects_nan() {
        let _ = Json::num(f64::NAN);
    }
}
