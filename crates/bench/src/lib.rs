//! Shared harness utilities for the table-regeneration binaries.
//!
//! Each `table*` binary reproduces one table of the paper at laptop
//! scale; this library provides the common table formatting, timing
//! helpers and scaled-down time limits.

use std::time::Duration;

/// Formats a duration the way the paper's tables do: seconds below an
/// hour, hours above.
///
/// # Examples
///
/// ```
/// use japrove_bench::fmt_time;
/// use std::time::Duration;
/// assert_eq!(fmt_time(Duration::from_millis(2500)), "2.50 s");
/// assert_eq!(fmt_time(Duration::from_secs(7200)), "2.00 h");
/// ```
pub fn fmt_time(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 3600.0 {
        format!("{:.2} h", secs / 3600.0)
    } else if secs >= 100.0 {
        format!("{:.0} s", secs)
    } else {
        format!("{:.2} s", secs)
    }
}

/// A plain-text table printer with right-aligned columns.
///
/// # Examples
///
/// ```
/// use japrove_bench::Table;
/// let mut t = Table::new("demo", &["name", "time"]);
/// t.row(&["a", "1.0 s"]);
/// let out = t.render();
/// assert!(out.contains("name"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.headers.len(), "cell count mismatch");
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }
}

/// Scaled-down stand-ins for the paper's wall-clock limits.
pub mod limits {
    use std::time::Duration;

    /// Stand-in for the paper's 10-hour total limit per benchmark.
    pub fn total() -> Duration {
        Duration::from_secs(60)
    }

    /// Stand-in for the per-property limits (0.3 h .. 2.8 h).
    pub fn per_property() -> Duration {
        Duration::from_secs(5)
    }

    /// Stand-in for Table I's 1-hour-per-instance limit.
    pub fn single() -> Duration {
        Duration::from_secs(20)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_aligns() {
        let mut t = Table::new("t", &["a", "bbbb"]);
        t.row(&["xxx", "1"]);
        let r = t.render();
        assert!(r.contains("== t =="));
        assert!(r.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "cell count mismatch")]
    fn wrong_cell_count_panics() {
        let mut t = Table::new("t", &["a"]);
        t.row(&["x", "y"]);
    }

    #[test]
    fn time_formats() {
        assert_eq!(fmt_time(Duration::from_millis(10)), "0.01 s");
        assert_eq!(fmt_time(Duration::from_secs(120)), "120 s");
    }
}
