//! Criterion benchmarks for the multi-property drivers: the headline
//! joint-vs-JA comparison and the clause re-use ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use japrove_core::{ja_verify, joint_verify, separate_verify, JointOptions, SeparateOptions};
use japrove_genbench::FamilyParams;

fn failing_design() -> japrove_genbench::GeneratedDesign {
    FamilyParams::new("bench_failing", 13)
        .easy_true(4)
        .chain(4, 6)
        .shallow_fails(vec![2])
        .shadow_group(2, vec![20, 30])
        .generate()
}

fn all_true_design() -> japrove_genbench::GeneratedDesign {
    FamilyParams::new("bench_true", 31)
        .chain(8, 8)
        .ring(8, 8)
        .generate()
}

fn bench_ja_vs_joint(c: &mut Criterion) {
    let design = failing_design();
    let mut group = c.benchmark_group("multiprop/failing_design");
    group.sample_size(10);
    group.bench_function("ja", |b| {
        b.iter(|| {
            let report = ja_verify(&design.sys, &SeparateOptions::local());
            assert!(report.num_false() >= 1);
        })
    });
    group.bench_function("joint", |b| {
        b.iter(|| {
            let report = joint_verify(&design.sys, &JointOptions::new());
            assert!(report.num_false() >= 1);
        })
    });
    group.bench_function("separate_global", |b| {
        b.iter(|| {
            let report = separate_verify(&design.sys, &SeparateOptions::global());
            assert!(report.num_false() >= 1);
        })
    });
    group.finish();
}

fn bench_clause_reuse(c: &mut Criterion) {
    let design = all_true_design();
    let mut group = c.benchmark_group("multiprop/clause_reuse");
    group.sample_size(10);
    group.bench_function("with_reuse", |b| {
        b.iter(|| {
            let report = separate_verify(&design.sys, &SeparateOptions::local().reuse(true));
            assert_eq!(report.num_unsolved(), 0);
        })
    });
    group.bench_function("without_reuse", |b| {
        b.iter(|| {
            let report = separate_verify(&design.sys, &SeparateOptions::local().reuse(false));
            assert_eq!(report.num_unsolved(), 0);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ja_vs_joint, bench_clause_reuse);
criterion_main!(benches);
