//! Criterion benchmarks for the model-checking engines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use japrove_aig::Aig;
use japrove_ic3::{Bmc, BmcResult, Ic3, Ic3Options};
use japrove_sat::Budget;
use japrove_tsys::{PropertyId, TransitionSystem, Word};

fn wrapping_counter(bits: usize, wrap: u64, limit: u64) -> (TransitionSystem, PropertyId) {
    let mut aig = Aig::new();
    let c = Word::latches(&mut aig, bits, 0);
    let at = c.eq_const(&mut aig, wrap);
    let inc = c.increment(&mut aig);
    let zero = Word::constant(&mut aig, 0, bits);
    let next = Word::mux(&mut aig, at, &zero, &inc);
    c.set_next(&mut aig, &next);
    let safe = c.lt_const(&mut aig, limit);
    let mut sys = TransitionSystem::new("wrap", aig);
    let p = sys.add_property("bound", safe);
    (sys, p)
}

fn free_counter(bits: usize, limit: u64) -> (TransitionSystem, PropertyId) {
    let mut aig = Aig::new();
    let c = Word::latches(&mut aig, bits, 0);
    let inc = c.increment(&mut aig);
    c.set_next(&mut aig, &inc);
    let safe = c.lt_const(&mut aig, limit);
    let mut sys = TransitionSystem::new("free", aig);
    let p = sys.add_property("bound", safe);
    (sys, p)
}

fn bench_ic3_prove(c: &mut Criterion) {
    let mut group = c.benchmark_group("ic3/prove_wrapping_counter");
    group.sample_size(10);
    for bits in [6usize, 8] {
        let (sys, p) = wrapping_counter(bits, (1 << bits) - 6, 1 << bits);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, _| {
            b.iter(|| {
                let outcome = Ic3::new(&sys, p, Ic3Options::new()).run();
                assert!(outcome.is_proved());
            })
        });
    }
    group.finish();
}

fn bench_ic3_deep_cex(c: &mut Criterion) {
    let mut group = c.benchmark_group("ic3/deep_cex");
    group.sample_size(10);
    for depth in [50u64, 150] {
        let (sys, p) = free_counter(9, depth);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| {
                let outcome = Ic3::new(&sys, p, Ic3Options::new()).run();
                assert_eq!(outcome.counterexample().unwrap().depth as u64, depth);
            })
        });
    }
    group.finish();
}

fn bench_bmc_unroll(c: &mut Criterion) {
    let mut group = c.benchmark_group("bmc/unroll_to_cex");
    group.sample_size(10);
    for depth in [32u64, 64] {
        let (sys, p) = free_counter(8, depth);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| {
                let mut bmc = Bmc::new(&sys);
                match bmc.run(&[p], depth as usize + 2, Budget::unlimited()) {
                    BmcResult::Cex { cex, .. } => assert_eq!(cex.depth as u64, depth),
                    other => panic!("expected cex, got {other:?}"),
                }
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ic3_prove,
    bench_ic3_deep_cex,
    bench_bmc_unroll
);
criterion_main!(benches);
