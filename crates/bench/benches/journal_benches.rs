//! Journal overhead micro-benchmarks.
//!
//! The observability layer promises *zero measurable overhead when
//! disabled*: a disabled [`Journal`] reduces every `event`/`span` call
//! to one `Option` check. These benches pin that down at two scales —
//! the raw per-call cost (disabled vs enabled), and an end-to-end
//! pigeonhole solve with the solver's restart/reduce/sample hooks
//! compiled in but the journal disabled vs enabled.

use criterion::{criterion_group, criterion_main, Criterion};
use japrove_obs::{EventKind, Journal, Phase};
use japrove_sat::{SolveResult, Solver};

/// Unsatisfiable pigeonhole instance: n+1 pigeons, n holes.
fn pigeonhole(n: usize) -> Solver {
    let mut s = Solver::new();
    let vars: Vec<Vec<_>> = (0..n + 1)
        .map(|_| (0..n).map(|_| s.new_var()).collect())
        .collect();
    for row in &vars {
        s.add_clause(row.iter().map(|v| v.pos()));
    }
    for (a, row_a) in vars.iter().enumerate() {
        for row_b in &vars[a + 1..] {
            for (va, vb) in row_a.iter().zip(row_b) {
                s.add_clause([va.neg(), vb.neg()]);
            }
        }
    }
    s
}

fn bench_raw_calls(c: &mut Criterion) {
    let mut group = c.benchmark_group("journal/raw");
    let disabled = Journal::disabled();
    group.bench_function("event_disabled", |b| {
        b.iter(|| disabled.event(EventKind::Restart { conflicts: 1 }))
    });
    group.bench_function("span_disabled", |b| {
        b.iter(|| drop(disabled.span(Phase::Encode)))
    });
    let enabled = Journal::new();
    group.bench_function("event_enabled", |b| {
        b.iter(|| enabled.event(EventKind::Restart { conflicts: 1 }))
    });
    group.bench_function("span_enabled", |b| {
        b.iter(|| drop(enabled.span(Phase::Encode)))
    });
    group.finish();
}

fn bench_solver_overhead(c: &mut Criterion) {
    // The acceptance criterion: a solve with the journal disabled must
    // be within noise (<1%) of the pre-observability solver. Compare
    // against an enabled journal to see the (bounded) worst case.
    let mut group = c.benchmark_group("journal/pigeonhole_solve");
    group.sample_size(10);
    group.bench_function("disabled", |b| {
        b.iter(|| {
            let mut s = pigeonhole(7);
            assert_eq!(s.solve(&[]), SolveResult::Unsat);
        })
    });
    group.bench_function("enabled", |b| {
        b.iter(|| {
            let mut s = pigeonhole(7);
            s.set_journal(Journal::new());
            assert_eq!(s.solve(&[]), SolveResult::Unsat);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_raw_calls, bench_solver_overhead);
criterion_main!(benches);
