//! Criterion micro-benchmarks for the CDCL solver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use japrove_logic::Lit;
use japrove_sat::{SolveResult, Solver};

/// Unsatisfiable pigeonhole instance: n+1 pigeons, n holes.
fn pigeonhole(n: usize) -> Solver {
    let mut s = Solver::new();
    let vars: Vec<Vec<_>> = (0..n + 1)
        .map(|_| (0..n).map(|_| s.new_var()).collect())
        .collect();
    for row in &vars {
        s.add_clause(row.iter().map(|v| v.pos()));
    }
    for (a, row_a) in vars.iter().enumerate() {
        for row_b in &vars[a + 1..] {
            for (va, vb) in row_a.iter().zip(row_b) {
                s.add_clause([va.neg(), vb.neg()]);
            }
        }
    }
    s
}

fn bench_pigeonhole(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat/pigeonhole_unsat");
    group.sample_size(10);
    for n in [5usize, 6, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut s = pigeonhole(n);
                assert_eq!(s.solve(&[]), SolveResult::Unsat);
            })
        });
    }
    group.finish();
}

fn bench_incremental_assumptions(c: &mut Criterion) {
    // Implication chain solved under many alternating assumptions.
    c.bench_function("sat/incremental_chain", |b| {
        let mut s = Solver::new();
        let vars: Vec<_> = (0..400).map(|_| s.new_var()).collect();
        for w in vars.windows(2) {
            s.add_clause([w[0].neg(), w[1].pos()]);
        }
        b.iter(|| {
            let sat = s.solve(&[vars[0].pos()]);
            assert_eq!(sat, SolveResult::Sat);
            let unsat = s.solve(&[vars[0].pos(), vars[399].neg()]);
            assert_eq!(unsat, SolveResult::Unsat);
            let core: Vec<Lit> = s.unsat_core().to_vec();
            assert!(!core.is_empty());
        })
    });
}

criterion_group!(benches, bench_pigeonhole, bench_incremental_assumptions);
criterion_main!(benches);
