//! Microbenchmarks for the shared clause store (`ClauseDb`).
//!
//! `publish` used to scan the whole store per clause (quadratic in the
//! database size); the literal-signature/occurrence index makes it
//! near-linear. The three sizes (10², 10³, 10⁴) straddle the range
//! where the old implementation hit its cliff — with the index, the
//! per-clause cost must stay flat across them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use japrove_core::ClauseDb;
use japrove_logic::{Clause, Var};
use japrove_rng::SplitMix64;

/// Random sorted clauses of 2–6 literals over a variable space sized
/// with the clause count, mimicking certificate clauses of a large
/// design (mostly unrelated, occasional subsumption pairs).
fn random_clauses(n: usize, seed: u64) -> Vec<Clause> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let space = (4 * n).max(64) as u64;
    (0..n)
        .map(|_| {
            let len = 2 + (rng.next_u64() % 5) as usize;
            Clause::from_lits(
                (0..len).map(|_| Var::new((rng.next_u64() % space) as u32).lit(rng.gen_bool())),
            )
        })
        .collect()
}

fn bench_publish(c: &mut Criterion) {
    let mut group = c.benchmark_group("clausedb_publish");
    group.sample_size(10);
    for &n in &[100usize, 1_000, 10_000] {
        let clauses = random_clauses(n, 0xC1A5);
        group.bench_with_input(BenchmarkId::from_parameter(n), &clauses, |b, clauses| {
            b.iter(|| {
                let db = ClauseDb::new();
                db.publish(clauses.iter().cloned())
            })
        });
    }
    group.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("clausedb_snapshot");
    group.sample_size(10);
    for &n in &[100usize, 1_000, 10_000] {
        let db = ClauseDb::new();
        db.publish(random_clauses(n, 0x5A47));
        group.bench_with_input(BenchmarkId::from_parameter(n), &db, |b, db| {
            b.iter(|| db.snapshot().len())
        });
    }
    group.finish();
}

fn bench_concurrent_publish(c: &mut Criterion) {
    let mut group = c.benchmark_group("clausedb_publish_4workers");
    group.sample_size(10);
    for &n in &[1_000usize, 10_000] {
        let chunks: Vec<Vec<Clause>> = (0..4u64)
            .map(|t| random_clauses(n / 4, 0xBEEF ^ t))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &chunks, |b, chunks| {
            b.iter(|| {
                let db = ClauseDb::new();
                std::thread::scope(|s| {
                    for chunk in chunks {
                        let db = db.clone();
                        s.spawn(move || db.publish(chunk.iter().cloned()));
                    }
                });
                db.len()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_publish,
    bench_snapshot,
    bench_concurrent_publish
);
criterion_main!(benches);
