//! Randomized cross-validation of the engines.
//!
//! Generates arbitrary small sequential netlists (random AND/XOR/MUX
//! cones over latches and inputs, random resets) and checks that:
//!
//! * IC3 and BMC agree on every property (verdict and, for failures,
//!   the minimal counterexample depth),
//! * every counterexample replays on the netlist,
//! * every certificate re-verifies with independent SAT queries,
//! * local proofs with both lifting modes agree with each other and
//!   respect the local-vs-global lattice (Prop. 2).

use japrove_aig::{Aig, AigLit};
use japrove_ic3::{verify_certificate, Bmc, BmcResult, CheckOutcome, Ic3, Ic3Options, Lifting};
use japrove_rng::SplitMix64;
use japrove_sat::Budget;
use japrove_tsys::{replay, PropertyId, TransitionSystem};

const BMC_DEPTH: usize = 20;
const CASES: u64 = 48;

#[derive(Debug, Clone)]
struct Plan {
    num_inputs: usize,
    latches: Vec<bool>, // reset values
    gates: Vec<(u8, usize, usize, bool, bool)>,
    nexts: Vec<(usize, bool)>,
    props: Vec<(usize, bool)>,
}

fn random_plan(rng: &mut SplitMix64) -> Plan {
    let num_inputs = rng.gen_index(1, 3);
    let latches: Vec<bool> = (0..rng.gen_index(1, 5)).map(|_| rng.gen_bool()).collect();
    let ng = rng.gen_index(1, 14);
    let pool0 = 1 + num_inputs + latches.len();
    let gates = (0..ng)
        .map(|_| {
            (
                rng.gen_range(0, 3) as u8,
                rng.gen_index(0, pool0 + 16),
                rng.gen_index(0, pool0 + 16),
                rng.gen_bool(),
                rng.gen_bool(),
            )
        })
        .collect();
    let nexts = (0..latches.len())
        .map(|_| (rng.gen_index(0, pool0 + 16), rng.gen_bool()))
        .collect();
    let props = (0..rng.gen_index(1, 4))
        .map(|_| (rng.gen_index(0, pool0 + 16), rng.gen_bool()))
        .collect();
    Plan {
        num_inputs,
        latches,
        gates,
        nexts,
        props,
    }
}

fn inv(l: AigLit, yes: bool) -> AigLit {
    if yes {
        !l
    } else {
        l
    }
}

fn build(plan: &Plan) -> TransitionSystem {
    let mut aig = Aig::new();
    let mut pool: Vec<AigLit> = vec![AigLit::TRUE];
    for _ in 0..plan.num_inputs {
        pool.push(aig.add_input());
    }
    let latches: Vec<AigLit> = plan.latches.iter().map(|&r| aig.add_latch(r)).collect();
    pool.extend(&latches);
    for &(kind, a, b, na, nb) in &plan.gates {
        let x = inv(pool[a % pool.len()], na);
        let y = inv(pool[b % pool.len()], nb);
        let g = match kind % 3 {
            0 => aig.and(x, y),
            1 => aig.xor(x, y),
            _ => aig.or(x, y),
        };
        pool.push(g);
    }
    for (k, &(n, i)) in plan.nexts.iter().enumerate() {
        aig.set_next(latches[k], inv(pool[n % pool.len()], i));
    }
    let mut sys = TransitionSystem::new("random", aig);
    for (k, &(n, i)) in plan.props.iter().enumerate() {
        sys.add_property(format!("p{k}"), inv(pool[n % pool.len()], i));
    }
    sys
}

#[test]
fn ic3_and_bmc_agree() {
    for case in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(0x1c3b_0000 + case);
        let sys = build(&random_plan(&mut rng));
        for p in sys.property_ids() {
            let outcome = Ic3::new(&sys, p, Ic3Options::new().max_frames(64)).run();
            let mut bmc = Bmc::new(&sys);
            let bmc_res = bmc.run(&[p], BMC_DEPTH, Budget::unlimited());
            match (&outcome, &bmc_res) {
                (CheckOutcome::Falsified(cex), BmcResult::Cex { cex: b, .. }) => {
                    assert_eq!(cex.depth, b.depth, "case {case}: cex depth mismatch");
                    let r = replay(&sys, &cex.trace).expect("replayable");
                    assert!(r.violates_finally(p), "case {case}");
                    assert_eq!(
                        r.first_violation(p),
                        Some(cex.depth),
                        "case {case}: ic3 cex not minimal for its own property"
                    );
                }
                (CheckOutcome::Proved(cert), BmcResult::NoCexUpTo(_)) => {
                    assert!(
                        verify_certificate(&sys, p, &[], cert).is_ok(),
                        "case {case}: certificate rejected"
                    );
                }
                (a, b) => panic!("case {case}: verdict mismatch: ic3={a:?} bmc={b:?}"),
            }
        }
    }
}

#[test]
fn local_proofs_respect_the_lattice() {
    for case in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(0x7a77_0000 + case);
        let sys = build(&random_plan(&mut rng));
        let assumed: Vec<PropertyId> = sys.property_ids().collect();
        for p in sys.property_ids() {
            let global = Ic3::new(&sys, p, Ic3Options::new().max_frames(64)).run();
            for lifting in [Lifting::Ignore, Lifting::Respect] {
                let opts = Ic3Options::new().max_frames(64).lifting(lifting);
                let local = Ic3::with_context(&sys, p, opts, assumed.clone(), Vec::new()).run();
                // Prop. 2: holds globally => holds locally.
                if global.is_proved() {
                    assert!(
                        local.is_proved(),
                        "case {case}, {lifting:?}: property holds globally but failed locally"
                    );
                }
                // Local failure witnesses must be genuine traces whose
                // final state violates the property.
                if let CheckOutcome::Falsified(cex) = &local {
                    let r = replay(&sys, &cex.trace).expect("replayable");
                    assert!(r.violates_finally(p), "case {case}");
                    // In respect mode, no assumed property may be
                    // violated before the final state.
                    if lifting == Lifting::Respect {
                        for k in 0..cex.trace.len() {
                            assert!(
                                r.violated_at(k).is_empty(),
                                "case {case}: respect-mode cex violates an assumption at step {k}"
                            );
                        }
                    }
                }
                // Local certificates verify under the assumptions.
                if let CheckOutcome::Proved(cert) = &local {
                    assert!(
                        verify_certificate(&sys, p, &assumed, cert).is_ok(),
                        "case {case}"
                    );
                }
            }
        }
    }
}
