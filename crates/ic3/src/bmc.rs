//! Bounded model checking by incremental unrolling.

use crate::{Counterexample, UnknownReason};
use japrove_aig::CnfEncoder;
use japrove_logic::{Lit, Var};
use japrove_sat::{BackendChoice, Budget, SatBackend, SolveResult};
use japrove_tsys::{PropertyId, Trace, TransitionSystem};

/// Outcome of a BMC run.
#[derive(Clone, Debug)]
pub enum BmcResult {
    /// A counterexample was found, together with the subset of the
    /// queried properties its final state falsifies.
    Cex {
        /// The concrete witness.
        cex: Counterexample,
        /// Queried properties falsified by the final state.
        falsified: Vec<PropertyId>,
    },
    /// No counterexample exists up to (and including) the given depth.
    NoCexUpTo(usize),
    /// Resources ran out first.
    Unknown(UnknownReason),
}

impl BmcResult {
    /// `true` if a counterexample was found.
    pub fn is_cex(&self) -> bool {
        matches!(self, BmcResult::Cex { .. })
    }
}

/// An incremental bounded model checker.
///
/// Unrolls the transition relation frame by frame inside one
/// incremental SAT solver; per-depth queries are assumption-based so
/// the unrolling is shared across depths and across properties
/// (including the aggregate-property queries of joint verification).
///
/// # Examples
///
/// ```
/// use japrove_aig::Aig;
/// use japrove_ic3::{Bmc, BmcResult};
/// use japrove_sat::Budget;
/// use japrove_tsys::{TransitionSystem, Word};
///
/// let mut aig = Aig::new();
/// let c = Word::latches(&mut aig, 3, 0);
/// let n = c.increment(&mut aig);
/// c.set_next(&mut aig, &n);
/// let safe = c.lt_const(&mut aig, 5);
/// let mut sys = TransitionSystem::new("cnt", aig);
/// let p = sys.add_property("lt5", safe);
///
/// let mut bmc = Bmc::new(&sys);
/// match bmc.run(&[p], 16, Budget::unlimited()) {
///     BmcResult::Cex { cex, .. } => assert_eq!(cex.depth, 5),
///     other => panic!("expected counterexample, got {other:?}"),
/// }
/// ```
#[derive(Debug)]
pub struct Bmc<'a> {
    sys: &'a TransitionSystem,
    solver: Box<dyn SatBackend>,
    /// Present-state variables per unrolled frame.
    state_vars: Vec<Vec<Var>>,
    /// Input variables per frame.
    input_vars: Vec<Vec<Var>>,
    /// Good-literals per frame, one per property.
    good_lits: Vec<Vec<Lit>>,
}

impl<'a> Bmc<'a> {
    /// Creates a checker with frame 0 (the initial state) encoded,
    /// running on the default SAT backend.
    pub fn new(sys: &'a TransitionSystem) -> Self {
        Bmc::with_backend(sys, BackendChoice::default())
    }

    /// Creates a checker on the given SAT backend.
    pub fn with_backend(sys: &'a TransitionSystem, backend: BackendChoice) -> Self {
        let mut bmc = Bmc {
            sys,
            solver: backend.build(),
            state_vars: Vec::new(),
            input_vars: Vec::new(),
            good_lits: Vec::new(),
        };
        // Frame 0 state variables, constrained to the initial state.
        let vars: Vec<Var> = sys
            .aig()
            .latches()
            .iter()
            .map(|_| bmc.solver.new_var())
            .collect();
        for (v, latch) in vars.iter().zip(sys.aig().latches()) {
            bmc.solver.add_clause(&[v.lit(!latch.reset)]);
        }
        bmc.state_vars.push(vars);
        bmc.encode_frame_logic();
        bmc
    }

    /// Name of the SAT backend this checker runs on.
    pub fn backend_name(&self) -> &'static str {
        self.solver.backend_name()
    }

    /// Number of fully encoded frames (depths `0..frames()` are
    /// queryable).
    pub fn frames(&self) -> usize {
        self.good_lits.len()
    }

    /// Encodes the combinational logic (properties, constraints, next
    /// state) of the latest frame and prepares the next frame's state
    /// variables.
    fn encode_frame_logic(&mut self) {
        let aig = self.sys.aig();
        let t = self.state_vars.len() - 1;
        let mut enc = CnfEncoder::starting_at(self.solver.num_vars());
        for (latch, &v) in aig.latches().iter().zip(&self.state_vars[t]) {
            enc.pin_to(latch.node, v);
        }
        let inputs: Vec<Var> = aig.inputs().iter().map(|&n| enc.pin(n)).collect();
        let goods: Vec<Lit> = self
            .sys
            .properties()
            .iter()
            .map(|p| enc.lit_for(aig, p.good))
            .collect();
        let constraints: Vec<Lit> = self
            .sys
            .constraints()
            .iter()
            .map(|&c| enc.lit_for(aig, c))
            .collect();
        let nexts: Vec<Lit> = aig
            .latches()
            .iter()
            .map(|l| enc.lit_for(aig, l.next))
            .collect();
        let next_vars: Vec<Var> = (0..aig.num_latches()).map(|_| enc.fresh()).collect();
        let cnf = enc.take_new_clauses();
        self.solver.ensure_vars(cnf.num_vars());
        for c in cnf.clauses() {
            self.solver.add_clause(c.lits());
        }
        // Design constraints hold at every step.
        for &c in &constraints {
            self.solver.add_clause(&[c]);
        }
        for (&v, &f) in next_vars.iter().zip(&nexts) {
            self.solver.add_clause(&[v.neg(), f]);
            self.solver.add_clause(&[v.pos(), !f]);
        }
        self.input_vars.push(inputs);
        self.good_lits.push(goods);
        self.state_vars.push(next_vars);
    }

    /// Ensures depth `k` is queryable.
    fn extend_to(&mut self, k: usize) {
        while self.frames() <= k {
            self.encode_frame_logic();
        }
    }

    /// Checks whether some property in `props` can be violated at
    /// exactly depth `k`. Returns the witness on success.
    pub fn check_at(&mut self, props: &[PropertyId], k: usize, budget: Budget) -> BmcResult {
        self.extend_to(k);
        self.solver.set_budget(budget);
        // OR of the bad literals at frame k, via an auxiliary variable.
        let bads: Vec<Lit> = props
            .iter()
            .map(|&p| !self.good_lits[k][p.index()])
            .collect();
        let result = if bads.len() == 1 {
            self.solver.solve(&bads)
        } else {
            let aux = self.solver.new_var();
            let mut clause: Vec<Lit> = vec![aux.neg()];
            clause.extend(&bads);
            self.solver.add_clause(&clause);
            let r = self.solver.solve(&[aux.pos()]);
            // Permanently disable the auxiliary definition.
            self.solver.add_clause(&[aux.neg()]);
            r
        };
        match result {
            SolveResult::Unknown => BmcResult::Unknown(UnknownReason::Budget),
            SolveResult::Unsat => BmcResult::NoCexUpTo(k),
            SolveResult::Sat => {
                let trace = self.extract_trace(k);
                let falsified = self.falsified_at(props, k);
                BmcResult::Cex {
                    cex: Counterexample { depth: k, trace },
                    falsified,
                }
            }
        }
    }

    /// Searches depths `0..=max_depth` in order and returns the first
    /// counterexample, if any.
    pub fn run(&mut self, props: &[PropertyId], max_depth: usize, budget: Budget) -> BmcResult {
        for k in 0..=max_depth {
            match self.check_at(props, k, budget) {
                BmcResult::NoCexUpTo(_) => continue,
                other => return other,
            }
        }
        BmcResult::NoCexUpTo(max_depth)
    }

    fn extract_trace(&self, k: usize) -> Trace {
        let value = |v: Var| self.solver.model_value(v.pos()).to_bool().unwrap_or(false);
        let states: Vec<Vec<bool>> = self.state_vars[..=k]
            .iter()
            .map(|vars| vars.iter().map(|&v| value(v)).collect())
            .collect();
        let inputs: Vec<Vec<bool>> = self.input_vars[..=k]
            .iter()
            .map(|vars| vars.iter().map(|&v| value(v)).collect())
            .collect();
        Trace::new(states, inputs)
    }

    fn falsified_at(&self, props: &[PropertyId], k: usize) -> Vec<PropertyId> {
        props
            .iter()
            .copied()
            .filter(|p| {
                self.solver
                    .model_value(self.good_lits[k][p.index()])
                    .is_false()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use japrove_aig::Aig;
    use japrove_tsys::{replay, Word};

    fn counter(bits: usize, limit: u64) -> (TransitionSystem, PropertyId) {
        let mut aig = Aig::new();
        let c = Word::latches(&mut aig, bits, 0);
        let n = c.increment(&mut aig);
        c.set_next(&mut aig, &n);
        let safe = c.lt_const(&mut aig, limit);
        let mut sys = TransitionSystem::new("cnt", aig);
        let p = sys.add_property("bound", safe);
        (sys, p)
    }

    #[test]
    fn finds_cex_at_exact_depth() {
        let (sys, p) = counter(4, 9);
        let mut bmc = Bmc::new(&sys);
        match bmc.run(&[p], 32, Budget::unlimited()) {
            BmcResult::Cex { cex, falsified } => {
                assert_eq!(cex.depth, 9);
                assert_eq!(falsified, vec![p]);
                let r = replay(&sys, &cex.trace).expect("replayable");
                assert!(r.violates_finally(p));
                assert_eq!(r.first_violation(p), Some(9));
            }
            other => panic!("expected cex, got {other:?}"),
        }
    }

    #[test]
    fn reports_no_cex_for_true_property() {
        let (sys, p) = counter(3, 8); // 3-bit counter always < 8
        let mut bmc = Bmc::new(&sys);
        match bmc.run(&[p], 20, Budget::unlimited()) {
            BmcResult::NoCexUpTo(20) => {}
            other => panic!("expected no cex, got {other:?}"),
        }
    }

    #[test]
    fn aggregate_query_reports_all_falsified() {
        let mut aig = Aig::new();
        let c = Word::latches(&mut aig, 3, 0);
        let n = c.increment(&mut aig);
        c.set_next(&mut aig, &n);
        let lt3 = c.lt_const(&mut aig, 3);
        let lt4 = c.lt_const(&mut aig, 4);
        let ne3 = c.eq_const(&mut aig, 3);
        let mut sys = TransitionSystem::new("cnt", aig);
        let p_lt3 = sys.add_property("lt3", lt3);
        let p_lt4 = sys.add_property("lt4", lt4);
        let p_ne3 = sys.add_property("ne3", !ne3);
        let mut bmc = Bmc::new(&sys);
        match bmc.run(&[p_lt3, p_lt4, p_ne3], 10, Budget::unlimited()) {
            BmcResult::Cex { cex, falsified } => {
                // First failure is at depth 3 where lt3 and ne3 both break.
                assert_eq!(cex.depth, 3);
                assert!(falsified.contains(&p_lt3));
                assert!(falsified.contains(&p_ne3));
                assert!(!falsified.contains(&p_lt4));
            }
            other => panic!("expected cex, got {other:?}"),
        }
    }

    #[test]
    fn input_dependent_property_fails_at_depth_zero() {
        let mut aig = Aig::new();
        let req = aig.add_input();
        let l = aig.add_latch(false);
        aig.set_next(l, l);
        let mut sys = TransitionSystem::new("io", aig);
        let p = sys.add_property("req_high", req);
        let mut bmc = Bmc::new(&sys);
        match bmc.run(&[p], 4, Budget::unlimited()) {
            BmcResult::Cex { cex, .. } => {
                assert_eq!(cex.depth, 0);
                let r = replay(&sys, &cex.trace).expect("replayable");
                assert!(r.violates_finally(p));
            }
            other => panic!("expected cex, got {other:?}"),
        }
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        let (sys, p) = counter(10, 900);
        let mut bmc = Bmc::new(&sys);
        let res = bmc.run(&[p], 1000, Budget::conflicts(1));
        assert!(matches!(
            res,
            BmcResult::Unknown(UnknownReason::Budget) | BmcResult::Cex { .. }
        ));
    }

    #[test]
    fn design_constraints_restrict_traces() {
        // Counter with constraint "count < 4": the property "count < 6"
        // can then never fail.
        let mut aig = Aig::new();
        let c = Word::latches(&mut aig, 3, 0);
        let n = c.increment(&mut aig);
        c.set_next(&mut aig, &n);
        let lt4 = c.lt_const(&mut aig, 4);
        let lt6 = c.lt_const(&mut aig, 6);
        let mut sys = TransitionSystem::new("cnt", aig);
        sys.add_constraint(lt4);
        let p = sys.add_property("lt6", lt6);
        let mut bmc = Bmc::new(&sys);
        match bmc.run(&[p], 12, Budget::unlimited()) {
            BmcResult::NoCexUpTo(12) => {}
            other => panic!("expected no cex, got {other:?}"),
        }
    }
}
