//! Bounded model checking by incremental unrolling.

use crate::{Counterexample, UnknownReason};
use japrove_aig::CnfEncoder;
use japrove_logic::{Lit, Var};
use japrove_obs::{EventKind, Journal};
use japrove_sat::{BackendChoice, Budget, SatBackend, SolveResult};
use japrove_tsys::{PropertyId, Trace, TransitionSystem};
use std::time::Instant;

/// Outcome of a BMC run.
#[derive(Clone, Debug)]
pub enum BmcResult {
    /// A counterexample was found, together with the subset of the
    /// queried properties its final state falsifies.
    Cex {
        /// The concrete witness.
        cex: Counterexample,
        /// Queried properties falsified by the final state.
        falsified: Vec<PropertyId>,
    },
    /// No counterexample exists up to (and including) the given depth.
    NoCexUpTo(usize),
    /// Resources ran out first.
    Unknown(UnknownReason),
}

impl BmcResult {
    /// `true` if a counterexample was found.
    pub fn is_cex(&self) -> bool {
        matches!(self, BmcResult::Cex { .. })
    }
}

/// The result of one [`Bmc::enumerate_at`] round: the distinct
/// counterexamples found, each with its projection-set assignment.
#[derive(Clone, Debug)]
pub struct BmcEnumeration {
    /// Distinct counterexamples, in discovery order. Each pairs the
    /// witness with the Boolean assignment of the projection set it
    /// was blocked on (so two entries never agree on every bit).
    pub cexes: Vec<(Counterexample, Vec<bool>)>,
    /// `true` if the final query was UNSAT: every equivalence class of
    /// the projection set has been enumerated.
    pub exhausted: bool,
}

/// An incremental bounded model checker.
///
/// Unrolls the transition relation frame by frame inside one
/// incremental SAT solver; per-depth queries are assumption-based so
/// the unrolling is shared across depths and across properties
/// (including the aggregate-property queries of joint verification).
///
/// # Examples
///
/// ```
/// use japrove_aig::Aig;
/// use japrove_ic3::{Bmc, BmcResult};
/// use japrove_sat::Budget;
/// use japrove_tsys::{TransitionSystem, Word};
///
/// let mut aig = Aig::new();
/// let c = Word::latches(&mut aig, 3, 0);
/// let n = c.increment(&mut aig);
/// c.set_next(&mut aig, &n);
/// let safe = c.lt_const(&mut aig, 5);
/// let mut sys = TransitionSystem::new("cnt", aig);
/// let p = sys.add_property("lt5", safe);
///
/// let mut bmc = Bmc::new(&sys);
/// match bmc.run(&[p], 16, Budget::unlimited()) {
///     BmcResult::Cex { cex, .. } => assert_eq!(cex.depth, 5),
///     other => panic!("expected counterexample, got {other:?}"),
/// }
/// ```
#[derive(Debug)]
pub struct Bmc<'a> {
    sys: &'a TransitionSystem,
    solver: Box<dyn SatBackend>,
    /// Present-state variables per unrolled frame.
    state_vars: Vec<Vec<Var>>,
    /// Input variables per frame.
    input_vars: Vec<Vec<Var>>,
    /// Good-literals per frame, one per property.
    good_lits: Vec<Vec<Lit>>,
    /// In probing mode the initial state is given as *assumptions*
    /// (one literal per latch, at its reset value) instead of unit
    /// clauses, so an UNSAT answer comes with a core naming the reset
    /// bits the refutation actually needed.
    init_assumptions: Vec<Lit>,
    journal: Journal,
}

impl<'a> Bmc<'a> {
    /// Creates a checker with frame 0 (the initial state) encoded,
    /// running on the default SAT backend.
    pub fn new(sys: &'a TransitionSystem) -> Self {
        Bmc::with_backend(sys, BackendChoice::default())
    }

    /// Creates a checker on the given SAT backend.
    pub fn with_backend(sys: &'a TransitionSystem, backend: BackendChoice) -> Self {
        Bmc::build(sys, backend, false)
    }

    /// Creates a *probing* checker: the initial latch values are passed
    /// as per-query assumptions instead of unit clauses, so UNSAT
    /// answers expose which reset bits the refutation depended on (see
    /// [`Bmc::probe_core`]). Verdicts are identical to a plain checker;
    /// queries are marginally more expensive.
    pub fn probing(sys: &'a TransitionSystem, backend: BackendChoice) -> Self {
        Bmc::build(sys, backend, true)
    }

    fn build(sys: &'a TransitionSystem, backend: BackendChoice, probing: bool) -> Self {
        let mut bmc = Bmc {
            sys,
            solver: backend.build(),
            state_vars: Vec::new(),
            input_vars: Vec::new(),
            good_lits: Vec::new(),
            init_assumptions: Vec::new(),
            journal: Journal::disabled(),
        };
        // Frame 0 state variables, constrained to the initial state —
        // by unit clauses normally, by recorded assumptions in probing
        // mode.
        let vars: Vec<Var> = sys
            .aig()
            .latches()
            .iter()
            .map(|_| bmc.solver.new_var())
            .collect();
        for (v, latch) in vars.iter().zip(sys.aig().latches()) {
            let init = v.lit(!latch.reset);
            if probing {
                bmc.init_assumptions.push(init);
            } else {
                bmc.solver.add_clause(&[init]);
            }
        }
        bmc.state_vars.push(vars);
        bmc.encode_frame_logic();
        bmc
    }

    /// Name of the SAT backend this checker runs on.
    pub fn backend_name(&self) -> &'static str {
        self.solver.backend_name()
    }

    /// Attaches an observability journal; each queried depth emits an
    /// `unroll` event with its duration and the solver reports its
    /// restart/reduction/conflict samples into the same journal.
    pub fn set_journal(&mut self, journal: Journal) {
        self.solver.set_journal(journal.clone());
        self.journal = journal;
    }

    /// Number of fully encoded frames (depths `0..frames()` are
    /// queryable).
    pub fn frames(&self) -> usize {
        self.good_lits.len()
    }

    /// Encodes the combinational logic (properties, constraints, next
    /// state) of the latest frame and prepares the next frame's state
    /// variables.
    fn encode_frame_logic(&mut self) {
        let aig = self.sys.aig();
        let t = self.state_vars.len() - 1;
        let mut enc = CnfEncoder::starting_at(self.solver.num_vars());
        for (latch, &v) in aig.latches().iter().zip(&self.state_vars[t]) {
            enc.pin_to(latch.node, v);
        }
        let inputs: Vec<Var> = aig.inputs().iter().map(|&n| enc.pin(n)).collect();
        let goods: Vec<Lit> = self
            .sys
            .properties()
            .iter()
            .map(|p| enc.lit_for(aig, p.good))
            .collect();
        let constraints: Vec<Lit> = self
            .sys
            .constraints()
            .iter()
            .map(|&c| enc.lit_for(aig, c))
            .collect();
        let nexts: Vec<Lit> = aig
            .latches()
            .iter()
            .map(|l| enc.lit_for(aig, l.next))
            .collect();
        let next_vars: Vec<Var> = (0..aig.num_latches()).map(|_| enc.fresh()).collect();
        let cnf = enc.take_new_clauses();
        self.solver.ensure_vars(cnf.num_vars());
        for c in cnf.clauses() {
            self.solver.add_clause(c.lits());
        }
        // Design constraints hold at every step.
        for &c in &constraints {
            self.solver.add_clause(&[c]);
        }
        for (&v, &f) in next_vars.iter().zip(&nexts) {
            self.solver.add_clause(&[v.neg(), f]);
            self.solver.add_clause(&[v.pos(), !f]);
        }
        self.input_vars.push(inputs);
        self.good_lits.push(goods);
        self.state_vars.push(next_vars);
    }

    /// Ensures depth `k` is queryable.
    fn extend_to(&mut self, k: usize) {
        while self.frames() <= k {
            self.encode_frame_logic();
        }
    }

    /// Checks whether some property in `props` can be violated at
    /// exactly depth `k`. Returns the witness on success.
    pub fn check_at(&mut self, props: &[PropertyId], k: usize, budget: Budget) -> BmcResult {
        let started = self.journal.enabled().then(Instant::now);
        let result = self.check_at_inner(props, k, budget);
        if let Some(started) = started {
            self.journal.event(EventKind::Unroll {
                depth: k,
                dur_us: started.elapsed().as_micros() as u64,
            });
        }
        result
    }

    fn check_at_inner(&mut self, props: &[PropertyId], k: usize, budget: Budget) -> BmcResult {
        self.extend_to(k);
        self.solver.set_budget(budget);
        // OR of the bad literals at frame k, via an auxiliary variable.
        let bads: Vec<Lit> = props
            .iter()
            .map(|&p| !self.good_lits[k][p.index()])
            .collect();
        let mut assumptions = self.init_assumptions.clone();
        let result = if bads.len() == 1 {
            assumptions.extend(&bads);
            self.solver.solve(&assumptions)
        } else {
            let aux = self.solver.new_var();
            let mut clause: Vec<Lit> = vec![aux.neg()];
            clause.extend(&bads);
            self.solver.add_clause(&clause);
            assumptions.push(aux.pos());
            let r = self.solver.solve(&assumptions);
            // Permanently disable the auxiliary definition.
            self.solver.add_clause(&[aux.neg()]);
            r
        };
        match result {
            SolveResult::Unknown => BmcResult::Unknown(UnknownReason::Budget),
            SolveResult::Unsat => BmcResult::NoCexUpTo(k),
            SolveResult::Sat => {
                let trace = self.extract_trace(k);
                let falsified = self.falsified_at(props, k);
                BmcResult::Cex {
                    cex: Counterexample { depth: k, trace },
                    falsified,
                }
            }
        }
    }

    /// Searches depths `0..=max_depth` in order and returns the first
    /// counterexample, if any.
    pub fn run(&mut self, props: &[PropertyId], max_depth: usize, budget: Budget) -> BmcResult {
        for k in 0..=max_depth {
            match self.check_at(props, k, budget) {
                BmcResult::NoCexUpTo(_) => continue,
                other => return other,
            }
        }
        BmcResult::NoCexUpTo(max_depth)
    }

    /// Solves for the initialized trace that follows the given concrete
    /// stimulus (`inputs[t]` holds one Boolean per design input for
    /// step `t`) and returns it. With every input pinned the unrolling
    /// is deterministic, so the returned trace's latch valuations are
    /// *the* valuations the design reaches — the differential oracle
    /// the simulator is checked against. Returns `None` only if the
    /// stimulus is infeasible (it violates a design constraint).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty or any step does not carry exactly
    /// one Boolean per design input.
    pub fn trace_with_stimulus(&mut self, inputs: &[Vec<bool>]) -> Option<Trace> {
        assert!(!inputs.is_empty(), "at least one step of stimulus");
        let k = inputs.len() - 1;
        self.extend_to(k);
        let mut assumptions = self.init_assumptions.clone();
        for (frame, step) in inputs.iter().enumerate() {
            assert_eq!(
                step.len(),
                self.sys.num_inputs(),
                "one Boolean per input at step {frame}"
            );
            for (&var, &bit) in self.input_vars[frame].iter().zip(step) {
                assumptions.push(var.lit(!bit));
            }
        }
        self.solver.set_budget(Budget::unlimited());
        match self.solver.solve(&assumptions) {
            SolveResult::Sat => Some(self.extract_trace(k)),
            _ => None,
        }
    }

    /// Probes `prop` at depths `0..=max_depth` and returns the sorted
    /// latch indices whose *reset values* appeared in some depth's
    /// UNSAT core — the state bits shallow refutations of the property
    /// actually lean on. The probe stops early (returning what it has)
    /// when a depth query is satisfiable or runs out of budget, so the
    /// result is a best-effort structural signature, not a verdict.
    ///
    /// Property clustering feeds the overlap of these signatures back
    /// into its affinity graph: two properties whose shallow proofs
    /// needed the same reset bits tend to keep sharing reasoning at
    /// depth.
    ///
    /// # Panics
    ///
    /// Panics unless this checker was created with [`Bmc::probing`]
    /// (without init assumptions there is no core to read).
    pub fn probe_core(&mut self, prop: PropertyId, max_depth: usize, budget: Budget) -> Vec<usize> {
        assert!(
            !self.init_assumptions.is_empty() || self.sys.num_latches() == 0,
            "probe_core requires a probing-mode checker (Bmc::probing)"
        );
        let mut latches: Vec<usize> = Vec::new();
        for k in 0..=max_depth {
            match self.check_at(&[prop], k, budget) {
                BmcResult::NoCexUpTo(_) => {
                    for (i, &init) in self.init_assumptions.clone().iter().enumerate() {
                        if self.solver.core_contains(init) && !latches.contains(&i) {
                            latches.push(i);
                        }
                    }
                }
                BmcResult::Cex { .. } | BmcResult::Unknown(_) => break,
            }
        }
        latches.sort_unstable();
        latches
    }

    /// The input variables of frames `0..=k` — the *inputs* projection
    /// set: two depth-`k` traces are distinct iff they differ on some
    /// bit of this set (the design is deterministic given its inputs).
    pub fn input_projection(&mut self, k: usize) -> Vec<Var> {
        self.extend_to(k);
        self.input_vars[..=k].iter().flatten().copied().collect()
    }

    /// The frame-`k` state variables of the given latches — the
    /// *latch-support* projection set: distinct assignments are
    /// distinct bad states as seen by a property whose cone reads
    /// exactly those latches.
    pub fn state_projection(&mut self, k: usize, latches: &[usize]) -> Vec<Var> {
        self.extend_to(k);
        latches.iter().map(|&i| self.state_vars[k][i]).collect()
    }

    /// Enumerates counterexamples to `prop` at exactly depth `k`,
    /// distinct on the `projection` variables, up to `max` of them.
    ///
    /// Each found model is blocked with a clause over the projection
    /// set, guarded by a fresh activation literal that is retired when
    /// the round ends — so the unrolling stays warm and unpolluted for
    /// the next property's round (the same re-query discipline the
    /// warm consecution solvers use).
    pub fn enumerate_at(
        &mut self,
        prop: PropertyId,
        k: usize,
        projection: &[Var],
        max: usize,
        budget: Budget,
    ) -> BmcEnumeration {
        self.extend_to(k);
        self.solver.set_budget(budget);
        let act = self.solver.new_var();
        let mut assumptions = self.init_assumptions.clone();
        assumptions.push(!self.good_lits[k][prop.index()]);
        assumptions.push(act.pos());
        let mut cexes: Vec<(Counterexample, Vec<bool>)> = Vec::new();
        let mut exhausted = false;
        while cexes.len() < max {
            match self.solver.solve(&assumptions) {
                SolveResult::Sat => {
                    let trace = self.extract_trace(k);
                    let bits: Vec<bool> = projection
                        .iter()
                        .map(|&v| self.solver.model_value(v.pos()).to_bool().unwrap_or(false))
                        .collect();
                    // The blocking clause: differ from this model on
                    // some projection bit. An empty projection has a
                    // single equivalence class, so one witness is all
                    // of them.
                    let block: Vec<Lit> = projection
                        .iter()
                        .zip(&bits)
                        .map(|(&v, &b)| v.lit(b))
                        .collect();
                    cexes.push((Counterexample { depth: k, trace }, bits));
                    if block.is_empty() {
                        exhausted = true;
                        break;
                    }
                    self.solver.add_clause_guarded(act, &block);
                }
                SolveResult::Unsat => {
                    exhausted = true;
                    break;
                }
                SolveResult::Unknown => break,
            }
        }
        self.solver.retire(act);
        self.solver.simplify();
        BmcEnumeration { cexes, exhausted }
    }

    /// Solves "`prop` fails at exactly depth `k`" under the given
    /// random parity constraints — one round of XOR-hash counting.
    /// Each entry of `xors` is a variable subset with a target parity;
    /// all of them are added guarded by one fresh activation literal
    /// and retired before returning, so consecutive rounds never see
    /// each other's constraints.
    pub fn solve_with_parity(
        &mut self,
        prop: PropertyId,
        k: usize,
        xors: &[(Vec<Var>, bool)],
        budget: Budget,
    ) -> SolveResult {
        self.extend_to(k);
        self.solver.set_budget(budget);
        let act = self.solver.new_var();
        for (vars, parity) in xors {
            self.solver.add_xor_guarded(act, vars, *parity);
        }
        let mut assumptions = self.init_assumptions.clone();
        assumptions.push(!self.good_lits[k][prop.index()]);
        assumptions.push(act.pos());
        let result = self.solver.solve(&assumptions);
        self.solver.retire(act);
        self.solver.simplify();
        result
    }

    fn extract_trace(&self, k: usize) -> Trace {
        let value = |v: Var| self.solver.model_value(v.pos()).to_bool().unwrap_or(false);
        let states: Vec<Vec<bool>> = self.state_vars[..=k]
            .iter()
            .map(|vars| vars.iter().map(|&v| value(v)).collect())
            .collect();
        let inputs: Vec<Vec<bool>> = self.input_vars[..=k]
            .iter()
            .map(|vars| vars.iter().map(|&v| value(v)).collect())
            .collect();
        Trace::new(states, inputs)
    }

    fn falsified_at(&self, props: &[PropertyId], k: usize) -> Vec<PropertyId> {
        props
            .iter()
            .copied()
            .filter(|p| {
                self.solver
                    .model_value(self.good_lits[k][p.index()])
                    .is_false()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use japrove_aig::Aig;
    use japrove_tsys::{replay, Word};

    fn counter(bits: usize, limit: u64) -> (TransitionSystem, PropertyId) {
        let mut aig = Aig::new();
        let c = Word::latches(&mut aig, bits, 0);
        let n = c.increment(&mut aig);
        c.set_next(&mut aig, &n);
        let safe = c.lt_const(&mut aig, limit);
        let mut sys = TransitionSystem::new("cnt", aig);
        let p = sys.add_property("bound", safe);
        (sys, p)
    }

    #[test]
    fn finds_cex_at_exact_depth() {
        let (sys, p) = counter(4, 9);
        let mut bmc = Bmc::new(&sys);
        match bmc.run(&[p], 32, Budget::unlimited()) {
            BmcResult::Cex { cex, falsified } => {
                assert_eq!(cex.depth, 9);
                assert_eq!(falsified, vec![p]);
                let r = replay(&sys, &cex.trace).expect("replayable");
                assert!(r.violates_finally(p));
                assert_eq!(r.first_violation(p), Some(9));
            }
            other => panic!("expected cex, got {other:?}"),
        }
    }

    #[test]
    fn reports_no_cex_for_true_property() {
        let (sys, p) = counter(3, 8); // 3-bit counter always < 8
        let mut bmc = Bmc::new(&sys);
        match bmc.run(&[p], 20, Budget::unlimited()) {
            BmcResult::NoCexUpTo(20) => {}
            other => panic!("expected no cex, got {other:?}"),
        }
    }

    #[test]
    fn aggregate_query_reports_all_falsified() {
        let mut aig = Aig::new();
        let c = Word::latches(&mut aig, 3, 0);
        let n = c.increment(&mut aig);
        c.set_next(&mut aig, &n);
        let lt3 = c.lt_const(&mut aig, 3);
        let lt4 = c.lt_const(&mut aig, 4);
        let ne3 = c.eq_const(&mut aig, 3);
        let mut sys = TransitionSystem::new("cnt", aig);
        let p_lt3 = sys.add_property("lt3", lt3);
        let p_lt4 = sys.add_property("lt4", lt4);
        let p_ne3 = sys.add_property("ne3", !ne3);
        let mut bmc = Bmc::new(&sys);
        match bmc.run(&[p_lt3, p_lt4, p_ne3], 10, Budget::unlimited()) {
            BmcResult::Cex { cex, falsified } => {
                // First failure is at depth 3 where lt3 and ne3 both break.
                assert_eq!(cex.depth, 3);
                assert!(falsified.contains(&p_lt3));
                assert!(falsified.contains(&p_ne3));
                assert!(!falsified.contains(&p_lt4));
            }
            other => panic!("expected cex, got {other:?}"),
        }
    }

    #[test]
    fn input_dependent_property_fails_at_depth_zero() {
        let mut aig = Aig::new();
        let req = aig.add_input();
        let l = aig.add_latch(false);
        aig.set_next(l, l);
        let mut sys = TransitionSystem::new("io", aig);
        let p = sys.add_property("req_high", req);
        let mut bmc = Bmc::new(&sys);
        match bmc.run(&[p], 4, Budget::unlimited()) {
            BmcResult::Cex { cex, .. } => {
                assert_eq!(cex.depth, 0);
                let r = replay(&sys, &cex.trace).expect("replayable");
                assert!(r.violates_finally(p));
            }
            other => panic!("expected cex, got {other:?}"),
        }
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        let (sys, p) = counter(10, 900);
        let mut bmc = Bmc::new(&sys);
        let res = bmc.run(&[p], 1000, Budget::conflicts(1));
        assert!(matches!(
            res,
            BmcResult::Unknown(UnknownReason::Budget) | BmcResult::Cex { .. }
        ));
    }

    #[test]
    fn probing_mode_matches_plain_verdicts() {
        for limit in [9u64, 16] {
            let (sys, p) = counter(4, limit);
            let plain = Bmc::new(&sys).run(&[p], 12, Budget::unlimited());
            let probing =
                Bmc::probing(&sys, BackendChoice::default()).run(&[p], 12, Budget::unlimited());
            match (plain, probing) {
                (BmcResult::Cex { cex: a, .. }, BmcResult::Cex { cex: b, .. }) => {
                    assert_eq!(a.depth, b.depth)
                }
                (BmcResult::NoCexUpTo(a), BmcResult::NoCexUpTo(b)) => assert_eq!(a, b),
                (a, b) => panic!("probing changed the verdict: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn probe_cores_stay_within_the_property_cone() {
        // Two independent 3-bit counters; each property's probe core
        // must only name latches of its own counter.
        let mut aig = Aig::new();
        let a = Word::latches(&mut aig, 3, 0);
        let na = a.increment(&mut aig);
        a.set_next(&mut aig, &na);
        let b = Word::latches(&mut aig, 3, 0);
        let nb = b.increment(&mut aig);
        b.set_next(&mut aig, &nb);
        let pa = a.lt_const(&mut aig, 8);
        let pb = b.lt_const(&mut aig, 8);
        let mut sys = TransitionSystem::new("two", aig);
        let p0 = sys.add_property("a_ok", pa);
        let p1 = sys.add_property("b_ok", pb);
        let mut bmc = Bmc::probing(&sys, BackendChoice::default());
        let core_a = bmc.probe_core(p0, 4, Budget::unlimited());
        let core_b = bmc.probe_core(p1, 4, Budget::unlimited());
        assert!(core_a.iter().all(|&i| i < 3), "{core_a:?}");
        assert!(core_b.iter().all(|&i| i >= 3), "{core_b:?}");
    }

    #[test]
    fn probe_core_stops_at_a_counterexample() {
        let (sys, p) = counter(3, 2);
        let mut bmc = Bmc::probing(&sys, BackendChoice::default());
        // The property fails at depth 2; whatever was collected at
        // depths 0..2 is returned without panicking.
        let core = bmc.probe_core(p, 8, Budget::unlimited());
        assert!(core.iter().all(|&i| i < 3));
    }

    /// `k` latches loaded directly from `k` inputs, with "good" iff
    /// the latch word stays below `bad_from` — so at depth 1 exactly
    /// `2^k - bad_from` distinct bad states are reachable.
    fn loadable(bits: usize, bad_from: u64) -> (TransitionSystem, PropertyId) {
        let mut aig = Aig::new();
        let ins = Word::inputs(&mut aig, bits);
        let w = Word::latches(&mut aig, bits, 0);
        w.set_next(&mut aig, &ins);
        let good = w.lt_const(&mut aig, bad_from);
        let mut sys = TransitionSystem::new("load", aig);
        let p = sys.add_property("below", good);
        (sys, p)
    }

    #[test]
    fn enumeration_is_exhaustive_and_duplicate_free() {
        let (sys, p) = loadable(4, 11); // 16 - 11 = 5 bad states
        let mut bmc = Bmc::new(&sys);
        let proj = bmc.state_projection(1, &sys.latch_support(p));
        let round = bmc.enumerate_at(p, 1, &proj, 64, Budget::unlimited());
        assert!(round.exhausted);
        assert_eq!(round.cexes.len(), 5);
        let mut seen: Vec<&Vec<bool>> = Vec::new();
        for (cex, bits) in &round.cexes {
            assert_eq!(cex.depth, 1);
            let r = replay(&sys, &cex.trace).expect("replayable");
            assert!(r.violates_finally(p));
            assert!(!seen.contains(&bits), "duplicate projection {bits:?}");
            seen.push(bits);
        }
        // The cap is honored and leaves the round unexhausted.
        let capped = bmc.enumerate_at(p, 1, &proj, 2, Budget::unlimited());
        assert_eq!(capped.cexes.len(), 2);
        assert!(!capped.exhausted);
        // Retired rounds leave no blocking behind: a plain re-query
        // still finds a counterexample.
        assert!(bmc.check_at(&[p], 1, Budget::unlimited()).is_cex());
    }

    #[test]
    fn input_projection_separates_distinct_stimuli() {
        let (sys, p) = loadable(2, 3); // bad iff both latch bits set
        let mut bmc = Bmc::new(&sys);
        let proj = bmc.input_projection(1);
        assert_eq!(proj.len(), 2 * 2, "two inputs over two frames");
        let round = bmc.enumerate_at(p, 1, &proj, 64, Budget::unlimited());
        // Frame-0 inputs must both be set; frame-1 inputs are free.
        assert!(round.exhausted);
        assert_eq!(round.cexes.len(), 4);
    }

    #[test]
    fn parity_rounds_halve_and_retire_cleanly() {
        let (sys, p) = loadable(3, 0); // all 8 states bad
        let mut bmc = Bmc::new(&sys);
        let proj = bmc.state_projection(1, &[0, 1, 2]);
        // One XOR over the full projection keeps exactly half the
        // states, for either parity.
        for parity in [false, true] {
            let xors = vec![(proj.clone(), parity)];
            assert_eq!(
                bmc.solve_with_parity(p, 1, &xors, Budget::unlimited()),
                SolveResult::Sat
            );
        }
        // Three independent single-bit "XOR"s pin one exact state;
        // adding the complementary unit makes the round UNSAT.
        let pin: Vec<(Vec<Var>, bool)> = proj.iter().map(|&v| (vec![v], true)).collect();
        assert_eq!(
            bmc.solve_with_parity(p, 1, &pin, Budget::unlimited()),
            SolveResult::Sat
        );
        let mut contradictory = pin.clone();
        contradictory.push((vec![proj[0]], false));
        assert_eq!(
            bmc.solve_with_parity(p, 1, &contradictory, Budget::unlimited()),
            SolveResult::Unsat
        );
        // Rounds retire their constraints: the plain query is still SAT.
        assert!(bmc.check_at(&[p], 1, Budget::unlimited()).is_cex());
    }

    #[test]
    fn design_constraints_restrict_traces() {
        // Counter with constraint "count < 4": the property "count < 6"
        // can then never fail.
        let mut aig = Aig::new();
        let c = Word::latches(&mut aig, 3, 0);
        let n = c.increment(&mut aig);
        c.set_next(&mut aig, &n);
        let lt4 = c.lt_const(&mut aig, 4);
        let lt6 = c.lt_const(&mut aig, 6);
        let mut sys = TransitionSystem::new("cnt", aig);
        sys.add_constraint(lt4);
        let p = sys.add_property("lt6", lt6);
        let mut bmc = Bmc::new(&sys);
        match bmc.run(&[p], 12, Budget::unlimited()) {
            BmcResult::NoCexUpTo(12) => {}
            other => panic!("expected no cex, got {other:?}"),
        }
    }
}
