//! Engine configuration.

use japrove_sat::{BackendChoice, Budget};

/// How state lifting treats the property constraints of a local proof
/// (§7-A of the paper).
///
/// Respecting guarantees every state of a lifted cube satisfies the
/// constraints; ignoring lifts against the raw transition relation,
/// which produces larger cubes but can yield spurious counterexamples
/// (detected by replay, after which the engine is re-run in respecting
/// mode).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Lifting {
    /// Conjoin the constraints into the lifting query.
    Respect,
    /// Ignore the constraints while lifting (the paper's default).
    #[default]
    Ignore,
}

/// Options for a single IC3 (or BMC) run.
///
/// # Examples
///
/// ```
/// use japrove_ic3::{Ic3Options, Lifting};
/// use japrove_sat::Budget;
/// use std::time::Duration;
///
/// let opts = Ic3Options::new()
///     .lifting(Lifting::Respect)
///     .max_frames(100)
///     .budget(Budget::timeout(Duration::from_secs(1)));
/// assert_eq!(opts.lifting, Lifting::Respect);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Ic3Options {
    /// Lifting mode for local proofs.
    pub lifting: Lifting,
    /// Hard cap on the number of frames (time frames unrolled).
    pub max_frames: usize,
    /// Wall-clock / conflict budget for the whole run.
    pub budget: Budget,
    /// Maximum literal-dropping passes during inductive generalization.
    pub generalize_passes: usize,
    /// Re-enqueue blocked obligations one frame up (finds deep
    /// counterexamples with few frames, as ABC's `pdr` does).
    pub push_obligations: bool,
    /// Rebuild the consecution solver after this many temporary
    /// activation clauses have accumulated.
    pub rebuild_interval: usize,
    /// SAT backend this run builds its solvers from. Rebuilt solvers
    /// stay on the same backend, so one engine run is homogeneous; the
    /// multi-property drivers may pick a different backend per
    /// property.
    pub backend: BackendChoice,
}

impl Ic3Options {
    /// Default options: ignore-mode lifting, generous limits.
    pub fn new() -> Self {
        Ic3Options {
            lifting: Lifting::default(),
            max_frames: 100_000,
            budget: Budget::unlimited(),
            generalize_passes: 1,
            push_obligations: true,
            rebuild_interval: 3000,
            backend: BackendChoice::default(),
        }
    }

    /// Sets the lifting mode.
    pub fn lifting(mut self, lifting: Lifting) -> Self {
        self.lifting = lifting;
        self
    }

    /// Sets the frame cap.
    pub fn max_frames(mut self, max_frames: usize) -> Self {
        self.max_frames = max_frames;
        self
    }

    /// Sets the run budget.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the number of generalization passes.
    pub fn generalize_passes(mut self, passes: usize) -> Self {
        self.generalize_passes = passes;
        self
    }

    /// Enables or disables obligation re-enqueueing.
    pub fn push_obligations(mut self, yes: bool) -> Self {
        self.push_obligations = yes;
        self
    }

    /// Selects the SAT backend.
    pub fn backend(mut self, backend: BackendChoice) -> Self {
        self.backend = backend;
        self
    }
}

impl Default for Ic3Options {
    fn default() -> Self {
        Ic3Options::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let o = Ic3Options::new()
            .max_frames(5)
            .generalize_passes(3)
            .push_obligations(false)
            .backend(BackendChoice::ChronoCdcl);
        assert_eq!(o.max_frames, 5);
        assert_eq!(o.generalize_passes, 3);
        assert!(!o.push_obligations);
        assert_eq!(o.lifting, Lifting::Ignore);
        assert_eq!(o.backend, BackendChoice::ChronoCdcl);
        assert_eq!(Ic3Options::new().backend, BackendChoice::Cdcl);
    }
}
