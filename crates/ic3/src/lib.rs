//! Model-checking engines: IC3/PDR and BMC.
//!
//! This crate re-implements the paper's verification back-end:
//!
//! * [`Ic3`] — property-directed reachability (Bradley VMCAI'11,
//!   Eén/Mishchenko/Brayton FMCAD'11) with inductive generalization,
//!   state lifting with *respect*/*ignore* constraint modes (§7-A of
//!   the paper), local-proof constraints realizing the `T^P`
//!   projection (§2-C), and clause import for the re-use optimization
//!   (§6),
//! * [`Bmc`] — incremental bounded model checking (the paper's BMC
//!   baseline of Table I),
//! * [`KInduction`] — joint k-induction over whole candidate sets
//!   with a CEGAR drop loop (the promotion filter of property mining),
//! * [`verify_certificate`] — independent SAT-based checking of the
//!   inductive invariants the engines emit,
//! * [`TsEncoding`] — the shared CNF encoding of an `(I, T)`-system,
//! * [`SolverCtx`] — warm per-worker solver contexts that keep the
//!   encoding loaded across consecutive property checks (encode once,
//!   check many), with [`ClauseSource`] for mid-run clause refresh.
//!
//! # Examples
//!
//! ```
//! use japrove_aig::Aig;
//! use japrove_ic3::{Ic3, Ic3Options};
//! use japrove_tsys::{TransitionSystem, Word};
//!
//! // A counter that wraps at 8 must stay below 12.
//! let mut aig = Aig::new();
//! let c = Word::latches(&mut aig, 4, 0);
//! let wrap = c.eq_const(&mut aig, 7);
//! let inc = c.increment(&mut aig);
//! let zero = Word::constant(&mut aig, 0, 4);
//! let next = Word::mux(&mut aig, wrap, &zero, &inc);
//! c.set_next(&mut aig, &next);
//! let safe = c.lt_const(&mut aig, 12);
//! let mut sys = TransitionSystem::new("wrap8", aig);
//! let p = sys.add_property("lt12", safe);
//!
//! let outcome = Ic3::new(&sys, p, Ic3Options::new()).run();
//! assert!(outcome.is_proved());
//! ```

mod bmc;
mod ctx;
mod encode;
mod engine;
mod invariant;
mod kind;
mod options;
mod result;

pub use bmc::{Bmc, BmcEnumeration, BmcResult};
pub use ctx::{ClauseSource, SolverCtx};
pub use encode::TsEncoding;
pub use engine::Ic3;
pub use invariant::{verify_certificate, CertificateError};
pub use kind::{KInduction, KInductionResult};
pub use options::{Ic3Options, Lifting};
pub use result::{Certificate, CheckOutcome, Counterexample, RunStats, UnknownReason};

#[cfg(test)]
mod tests {
    use super::*;
    use japrove_aig::Aig;
    use japrove_tsys::{replay, PropertyId, TransitionSystem, Word};

    /// Free-running counter with property `count < limit`.
    fn counter(bits: usize, limit: u64) -> (TransitionSystem, PropertyId) {
        let mut aig = Aig::new();
        let c = Word::latches(&mut aig, bits, 0);
        let n = c.increment(&mut aig);
        c.set_next(&mut aig, &n);
        let safe = c.lt_const(&mut aig, limit);
        let mut sys = TransitionSystem::new("cnt", aig);
        let p = sys.add_property("bound", safe);
        (sys, p)
    }

    /// The buggy counter of the paper's Example 1 at a given width.
    fn paper_counter(bits: usize) -> (TransitionSystem, PropertyId, PropertyId) {
        let mut aig = Aig::new();
        let enable = aig.add_input();
        let req = aig.add_input();
        let rval = 1u64 << (bits - 1);
        let val = Word::latches(&mut aig, bits, 0);
        let at_rval = val.eq_const(&mut aig, rval);
        // Buggy: reset requires req.
        let reset = aig.and(at_rval, req);
        let inc = val.increment(&mut aig);
        let zero = Word::constant(&mut aig, 0, bits);
        let updated = Word::mux(&mut aig, reset, &zero, &inc);
        let next = Word::mux(&mut aig, enable, &updated, &val);
        val.set_next(&mut aig, &next);
        let le_rval = val.le_const(&mut aig, rval);
        let mut sys = TransitionSystem::new("paper_counter", aig);
        let p0 = sys.add_property("req_high", req);
        let p1 = sys.add_property("val_le_rval", le_rval);
        (sys, p0, p1)
    }

    #[test]
    fn proves_true_counter_property() {
        let (sys, p) = counter(4, 16);
        let mut engine = Ic3::new(&sys, p, Ic3Options::new());
        let outcome = engine.run();
        let cert = outcome.certificate().expect("proved");
        assert!(verify_certificate(&sys, p, &[], cert).is_ok());
    }

    #[test]
    fn proves_nontrivial_invariant() {
        // Counter wraps at 10 (4 bits); property count < 12 requires
        // strengthening clauses.
        let mut aig = Aig::new();
        let c = Word::latches(&mut aig, 4, 0);
        let wrap = c.eq_const(&mut aig, 9);
        let inc = c.increment(&mut aig);
        let zero = Word::constant(&mut aig, 0, 4);
        let next = Word::mux(&mut aig, wrap, &zero, &inc);
        c.set_next(&mut aig, &next);
        let safe = c.lt_const(&mut aig, 12);
        let mut sys = TransitionSystem::new("wrap10", aig);
        let p = sys.add_property("lt12", safe);
        let outcome = Ic3::new(&sys, p, Ic3Options::new()).run();
        let cert = outcome.certificate().expect("proved");
        assert!(verify_certificate(&sys, p, &[], cert).is_ok());
    }

    #[test]
    fn finds_shallow_cex() {
        let (sys, p) = counter(4, 3);
        let outcome = Ic3::new(&sys, p, Ic3Options::new()).run();
        let cex = outcome.counterexample().expect("falsified");
        assert_eq!(cex.depth, 3);
        let r = replay(&sys, &cex.trace).expect("replayable");
        assert!(r.violates_finally(p));
    }

    #[test]
    fn finds_deep_cex_with_few_frames() {
        // 6-bit counter, bound 50: the counterexample needs 50 steps.
        let (sys, p) = counter(6, 50);
        let mut engine = Ic3::new(&sys, p, Ic3Options::new());
        let outcome = engine.run();
        let cex = outcome.counterexample().expect("falsified");
        assert_eq!(cex.depth, 50);
        let r = replay(&sys, &cex.trace).expect("replayable");
        assert!(r.violates_finally(p));
        assert_eq!(r.first_violation(p), Some(50));
        // Far fewer frames than the counterexample depth (deep-CEX
        // behaviour of obligation re-enqueueing).
        assert!(
            engine.stats().frames < 50,
            "frames = {}",
            engine.stats().frames
        );
    }

    #[test]
    fn input_dependent_property_fails_at_depth_zero() {
        let (sys, p0, _) = paper_counter(4);
        let outcome = Ic3::new(&sys, p0, Ic3Options::new()).run();
        let cex = outcome.counterexample().expect("falsified");
        assert_eq!(cex.depth, 0);
        let r = replay(&sys, &cex.trace).expect("replayable");
        assert!(r.violates_finally(p0));
    }

    #[test]
    fn paper_example_p1_fails_globally() {
        let (sys, _, p1) = paper_counter(4);
        let outcome = Ic3::new(&sys, p1, Ic3Options::new()).run();
        let cex = outcome.counterexample().expect("p1 is false globally");
        // val must climb to rval + 1 = 9: depth 9 with enable on.
        assert_eq!(cex.depth, 9);
        let r = replay(&sys, &cex.trace).expect("replayable");
        assert!(r.violates_finally(p1));
    }

    #[test]
    fn paper_example_p1_holds_locally() {
        // Assuming P0 (req == 1), property P1 becomes inductive: the
        // counter always resets at rval.
        let (sys, p0, p1) = paper_counter(8);
        let mut engine = Ic3::with_context(&sys, p1, Ic3Options::new(), vec![p0, p1], Vec::new());
        let outcome = engine.run();
        let cert = outcome.certificate().expect("p1 holds locally");
        assert!(verify_certificate(&sys, p1, &[p0, p1], cert).is_ok());
        // The local proof needs very few frames independent of the
        // counter width (Table I's point): far fewer than the 2^7 + 1
        // steps a global counterexample would have to traverse.
        assert!(
            engine.stats().frames <= 10,
            "frames = {}",
            engine.stats().frames
        );
    }

    #[test]
    fn paper_example_p0_fails_locally() {
        // P0 fails even assuming P1: the debugging set is {P0}.
        let (sys, p0, p1) = paper_counter(4);
        let outcome =
            Ic3::with_context(&sys, p0, Ic3Options::new(), vec![p0, p1], Vec::new()).run();
        let cex = outcome.counterexample().expect("p0 fails locally");
        assert_eq!(cex.depth, 0);
    }

    #[test]
    fn every_backend_agrees_on_the_paper_example() {
        use japrove_sat::BackendChoice;
        let (sys, p0, p1) = paper_counter(4);
        for &backend in BackendChoice::ALL {
            let opts = Ic3Options::new().backend(backend);
            let mut engine = Ic3::new(&sys, p1, opts);
            assert_eq!(engine.backend_name(), backend.name());
            let cex = engine.run().counterexample().cloned().unwrap_or_else(|| {
                panic!("{backend}: p1 must fail globally");
            });
            let r = replay(&sys, &cex.trace).expect("replayable");
            assert!(r.violates_finally(p1), "{backend}");
            // Local proof of p1 succeeds on every backend too.
            let outcome = Ic3::with_context(&sys, p1, opts, vec![p0, p1], Vec::new()).run();
            let cert = outcome
                .certificate()
                .unwrap_or_else(|| panic!("{backend}: p1 must hold locally"));
            assert!(
                verify_certificate(&sys, p1, &[p0, p1], cert).is_ok(),
                "{backend}"
            );
        }
    }

    #[test]
    fn bmc_backends_agree_on_cex_depth() {
        use japrove_sat::{BackendChoice, Budget};
        let (sys, p) = counter(4, 9);
        for &backend in BackendChoice::ALL {
            let mut bmc = Bmc::with_backend(&sys, backend);
            assert_eq!(bmc.backend_name(), backend.name());
            match bmc.run(&[p], 32, Budget::unlimited()) {
                BmcResult::Cex { cex, .. } => assert_eq!(cex.depth, 9, "{backend}"),
                other => panic!("{backend}: expected cex, got {other:?}"),
            }
        }
    }

    #[test]
    fn respect_mode_agrees_with_ignore_mode() {
        let (sys, p0, p1) = paper_counter(5);
        for lifting in [Lifting::Ignore, Lifting::Respect] {
            let opts = Ic3Options::new().lifting(lifting);
            let outcome = Ic3::with_context(&sys, p1, opts, vec![p0, p1], Vec::new()).run();
            assert!(outcome.is_proved(), "lifting mode {lifting:?}");
        }
    }

    /// Counter that wraps at `wrap` with property `count < limit`.
    fn wrapping_counter(bits: usize, wrap: u64, limit: u64) -> (TransitionSystem, PropertyId) {
        let mut aig = Aig::new();
        let c = Word::latches(&mut aig, bits, 0);
        let at_wrap = c.eq_const(&mut aig, wrap);
        let inc = c.increment(&mut aig);
        let zero = Word::constant(&mut aig, 0, bits);
        let next = Word::mux(&mut aig, at_wrap, &zero, &inc);
        c.set_next(&mut aig, &next);
        let safe = c.lt_const(&mut aig, limit);
        let mut sys = TransitionSystem::new("wrap", aig);
        let p = sys.add_property("bound", safe);
        (sys, p)
    }

    #[test]
    fn imported_clauses_accepted_and_recertified() {
        let (sys, p) = wrapping_counter(4, 9, 12);
        // First run exports a certificate.
        let outcome = Ic3::new(&sys, p, Ic3Options::new()).run();
        let cert = outcome.certificate().expect("proved").clone();
        // Second run on a weaker property imports those clauses.
        let mut sys2 = sys.clone();
        let aig = sys2.aig_mut();
        // (re-derive the comparison over the same latches)
        let c = Word::from_bits(
            aig.latches()
                .iter()
                .map(|l| japrove_aig::AigLit::new(l.node, false))
                .collect(),
        );
        let weaker = c.lt_const(aig, 14);
        let q = sys2.add_property("lt14", weaker);
        let outcome2 = Ic3::with_context(
            &sys2,
            q,
            Ic3Options::new(),
            Vec::new(),
            cert.clauses.clone(),
        )
        .run();
        let cert2 = outcome2.certificate().expect("proved with imports");
        assert!(verify_certificate(&sys2, q, &[], cert2).is_ok());
    }

    #[test]
    fn frame_limit_reports_unknown() {
        let (sys, p) = counter(6, 50);
        let outcome = Ic3::new(
            &sys,
            p,
            Ic3Options::new().max_frames(2).push_obligations(false),
        )
        .run();
        assert!(outcome.is_unknown() || outcome.is_falsified());
    }

    #[test]
    fn budget_reports_unknown() {
        use japrove_sat::Budget;
        use std::time::Duration;
        let (sys, p) = counter(10, 1000);
        let opts = Ic3Options::new().budget(Budget::timeout(Duration::from_millis(1)));
        let outcome = Ic3::new(&sys, p, opts).run();
        assert!(outcome.is_unknown() || outcome.is_falsified());
    }

    #[test]
    fn budget_exhaustion_never_reports_proved() {
        // Regression: a budget-exhausted bad-state query used to read
        // as "frame clear"; with the frame still empty the next
        // propagation pass then returned a bogus *proof* of a
        // falsifiable property. Whatever the conflict allowance, a
        // falsifiable property must never come back Proved.
        use japrove_sat::Budget;
        let (sys, p) = counter(8, 200); // fails (globally) at depth 200
        for conflicts in [0u64, 1, 2, 4, 8, 16, 64, 256] {
            let opts = Ic3Options::new().budget(Budget::conflicts(conflicts));
            let outcome = Ic3::new(&sys, p, opts).run();
            assert!(
                !outcome.is_proved(),
                "conflict budget {conflicts}: falsifiable property reported proved"
            );
        }
    }
}
