//! Independent certificate checking.
//!
//! A [`Certificate`] claims that the conjunction `R` of its clauses is
//! an inductive over-approximation of the reachable states (of the
//! possibly projected system) excluding all bad states. This module
//! re-checks that claim with fresh SAT queries, independently of the
//! engine that produced it — the ground truth for the test suite.

use crate::{Certificate, TsEncoding};
use japrove_sat::{SolveResult, Solver};
use japrove_tsys::{PropertyId, TransitionSystem};
use std::error::Error;
use std::fmt;

/// Why a certificate failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertificateError {
    /// A clause is violated by the initial state.
    InitViolated {
        /// Index of the offending clause.
        clause: usize,
    },
    /// A clause is not preserved by the (constrained) transition
    /// relation relative to the whole clause set.
    NotInductive {
        /// Index of the offending clause.
        clause: usize,
    },
    /// The clause set does not exclude the bad states.
    BadReachable,
}

impl fmt::Display for CertificateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertificateError::InitViolated { clause } => {
                write!(
                    f,
                    "certificate clause {clause} is violated by the initial state"
                )
            }
            CertificateError::NotInductive { clause } => {
                write!(f, "certificate clause {clause} is not inductive")
            }
            CertificateError::BadReachable => {
                write!(f, "certificate does not exclude the bad states")
            }
        }
    }
}

impl Error for CertificateError {}

/// Verifies a certificate produced by a run on `prop` with the given
/// assumed properties (empty for a global proof).
///
/// Checks, with fresh SAT queries:
///
/// 1. the initial state satisfies every clause;
/// 2. `R ∧ constraints ∧ assumed ∧ T → R'` clause by clause;
/// 3. `R ∧ constraints ∧ bad` is unsatisfiable (no state of `R` is bad
///    under any inputs).
///
/// # Errors
///
/// Returns the first failed condition as a [`CertificateError`].
///
/// # Examples
///
/// ```
/// use japrove_aig::Aig;
/// use japrove_ic3::{verify_certificate, Ic3, Ic3Options};
/// use japrove_tsys::{TransitionSystem, Word};
///
/// let mut aig = Aig::new();
/// let c = Word::latches(&mut aig, 4, 0);
/// let wrap = c.eq_const(&mut aig, 9);
/// let inc = c.increment(&mut aig);
/// let zero = Word::constant(&mut aig, 0, 4);
/// let next = Word::mux(&mut aig, wrap, &zero, &inc);
/// c.set_next(&mut aig, &next); // counts 0..=9 then wraps
/// let safe = c.lt_const(&mut aig, 12);
/// let mut sys = TransitionSystem::new("cnt", aig);
/// let p = sys.add_property("lt12", safe);
/// let outcome = Ic3::new(&sys, p, Ic3Options::new()).run();
/// let cert = outcome.certificate().expect("holds");
/// assert!(verify_certificate(&sys, p, &[], cert).is_ok());
/// ```
pub fn verify_certificate(
    sys: &TransitionSystem,
    prop: PropertyId,
    assumed: &[PropertyId],
    cert: &Certificate,
) -> Result<(), CertificateError> {
    let enc = TsEncoding::new(sys);

    // 1. Initial state satisfies every clause (syntactic: the initial
    // state is unique).
    for (i, clause) in cert.clauses.iter().enumerate() {
        let satisfied = clause
            .lits()
            .iter()
            .any(|&l| enc.init_lits()[l.var().index() as usize] == l);
        if !satisfied {
            return Err(CertificateError::InitViolated { clause: i });
        }
    }

    // Solver with T, R, design constraints and assumed properties.
    let mut solver = Solver::new();
    enc.load_into(&mut solver);
    for clause in &cert.clauses {
        solver.add_clause(clause.lits().iter().copied());
    }
    for &c in enc.constraint_lits() {
        solver.add_clause([c]);
    }
    let assumed_lits: Vec<_> = assumed.iter().map(|&p| enc.good_lit(p)).collect();

    // 2. Relative induction of every clause.
    for (i, clause) in cert.clauses.iter().enumerate() {
        let mut assumptions = assumed_lits.clone();
        for &l in clause.lits() {
            assumptions.push(!enc.primed(l)); // assume the clause fails next
        }
        if solver.solve(&assumptions) == SolveResult::Sat {
            return Err(CertificateError::NotInductive { clause: i });
        }
    }

    // 3. Bad states excluded (final state: no assumed-property
    // constraints, but design constraints still apply — checked in a
    // solver without the assumed literals).
    let mut bad_solver = Solver::new();
    enc.load_into(&mut bad_solver);
    for clause in &cert.clauses {
        bad_solver.add_clause(clause.lits().iter().copied());
    }
    for &c in enc.constraint_lits() {
        bad_solver.add_clause([c]);
    }
    if bad_solver.solve(&[enc.bad_lit(prop)]) == SolveResult::Sat {
        return Err(CertificateError::BadReachable);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use japrove_logic::{Clause, Var};

    use japrove_aig::Aig;
    use japrove_tsys::Word;

    fn counter_sys(bits: usize, limit: u64) -> (TransitionSystem, PropertyId) {
        let mut aig = Aig::new();
        let c = Word::latches(&mut aig, bits, 0);
        let n = c.increment(&mut aig);
        c.set_next(&mut aig, &n);
        let safe = c.lt_const(&mut aig, limit);
        let mut sys = TransitionSystem::new("cnt", aig);
        let p = sys.add_property("bound", safe);
        (sys, p)
    }

    #[test]
    fn bogus_certificate_rejected() {
        let (sys, p) = counter_sys(3, 6);
        // The empty certificate does not exclude count >= 6.
        let cert = Certificate::default();
        assert_eq!(
            verify_certificate(&sys, p, &[], &cert),
            Err(CertificateError::BadReachable)
        );
    }

    #[test]
    fn init_violating_clause_rejected() {
        let (sys, p) = counter_sys(3, 8);
        // Clause "bit0" is false initially.
        let cert = Certificate {
            clauses: vec![Clause::unit(Var::new(0).pos())],
        };
        assert_eq!(
            verify_certificate(&sys, p, &[], &cert),
            Err(CertificateError::InitViolated { clause: 0 })
        );
    }

    #[test]
    fn non_inductive_clause_rejected() {
        let (sys, p) = counter_sys(3, 8);
        // "count < 4" (bit2 = 0) is not inductive: 3 -> 4 breaks it.
        // (The property "count < 8" itself is fine, so bad check passes.)
        let cert = Certificate {
            clauses: vec![Clause::unit(Var::new(2).neg())],
        };
        assert_eq!(
            verify_certificate(&sys, p, &[], &cert),
            Err(CertificateError::NotInductive { clause: 0 })
        );
    }

    #[test]
    fn hand_built_certificate_accepted() {
        // 2-bit counter that wraps at 2: next = (count + 1) mod 2 by
        // forcing bit1 to stay 0 ... simpler: property "count < 4" on a
        // 2-bit counter is vacuously true with the empty certificate
        // once bad states are impossible.
        let (sys, p) = counter_sys(2, 4);
        let cert = Certificate::default();
        assert!(verify_certificate(&sys, p, &[], &cert).is_ok());
    }
}
