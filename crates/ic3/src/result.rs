//! Verdicts, certificates and statistics.

use japrove_logic::Clause;
use japrove_sat::SolverStats;
use japrove_tsys::Trace;
use std::fmt;

/// An inductive-invariant certificate over *state* variables.
///
/// Clause literals use variable index `i` for latch `i`; the invariant
/// is the conjunction of the property with these clauses. Certificates
/// are the currency of the paper's clause re-use (§6): they
/// over-approximate the reachable states and may seed the frames of a
/// later IC3 run on the same `(I, T)`-system.
#[derive(Clone, Debug, Default)]
pub struct Certificate {
    /// Strengthening clauses over latch variables.
    pub clauses: Vec<Clause>,
}

impl Certificate {
    /// Number of strengthening clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// `true` if the certificate needs no strengthening clauses (the
    /// property itself is inductive).
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }
}

/// A counterexample: a concrete trace plus bookkeeping.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The concrete witness; its final state (under its final inputs)
    /// violates the property.
    pub trace: Trace,
    /// Number of transitions (the paper's CEX depth).
    pub depth: usize,
}

/// Why a run ended without an answer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnknownReason {
    /// The conflict or wall-clock budget was exhausted.
    Budget,
    /// The frame cap was reached.
    FrameLimit,
    /// An engine produced a counterexample that failed to replay or
    /// falsified no queried property. Drivers report this instead of
    /// crashing so one bad trace cannot take down a serving process.
    SpuriousCex,
    /// The engine panicked mid-check and the panic was contained by the
    /// pipeline's supervision layer. Only this property degrades; the
    /// worker's solver context is discarded and rebuilt, and the run
    /// continues.
    EngineFault,
}

impl fmt::Display for UnknownReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnknownReason::Budget => write!(f, "budget exhausted"),
            UnknownReason::FrameLimit => write!(f, "frame limit reached"),
            UnknownReason::SpuriousCex => write!(f, "spurious counterexample"),
            UnknownReason::EngineFault => write!(f, "engine fault"),
        }
    }
}

/// Outcome of a model-checking run on one property.
#[derive(Clone, Debug)]
pub enum CheckOutcome {
    /// The property holds; the certificate strengthens it to an
    /// inductive invariant.
    Proved(Certificate),
    /// The property fails; a concrete counterexample is attached.
    Falsified(Counterexample),
    /// Resources ran out first.
    Unknown(UnknownReason),
}

impl CheckOutcome {
    /// `true` if the property was proved.
    pub fn is_proved(&self) -> bool {
        matches!(self, CheckOutcome::Proved(_))
    }

    /// `true` if the property was falsified.
    pub fn is_falsified(&self) -> bool {
        matches!(self, CheckOutcome::Falsified(_))
    }

    /// `true` if the run was inconclusive.
    pub fn is_unknown(&self) -> bool {
        matches!(self, CheckOutcome::Unknown(_))
    }

    /// The counterexample, if falsified.
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match self {
            CheckOutcome::Falsified(cex) => Some(cex),
            _ => None,
        }
    }

    /// The certificate, if proved.
    pub fn certificate(&self) -> Option<&Certificate> {
        match self {
            CheckOutcome::Proved(cert) => Some(cert),
            _ => None,
        }
    }
}

impl fmt::Display for CheckOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckOutcome::Proved(c) => write!(f, "proved ({} clauses)", c.len()),
            CheckOutcome::Falsified(cex) => write!(f, "falsified (depth {})", cex.depth),
            CheckOutcome::Unknown(r) => write!(f, "unknown ({r})"),
        }
    }
}

/// Counters describing one engine run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Frames opened (paper tables report this as "#time frames").
    pub frames: usize,
    /// Consecution/bad/lift SAT queries issued.
    pub queries: u64,
    /// Clauses currently retained across all frames.
    pub clauses: usize,
    /// Obligations processed.
    pub obligations: u64,
    /// Counterexamples-to-induction generalized away.
    pub generalized_lits: u64,
    /// SAT-solver counters spent by this run (the consecution and
    /// lifting solvers' deltas — warm solvers subtract their
    /// pre-existing counts, so this is attributable to *this* run).
    pub sat: SolverStats,
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "frames={} queries={} clauses={} obligations={} {}",
            self.frames, self.queries, self.clauses, self.obligations, self.sat
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_accessors() {
        let proved = CheckOutcome::Proved(Certificate::default());
        assert!(proved.is_proved());
        assert!(proved.certificate().is_some());
        assert!(proved.counterexample().is_none());
        let unknown = CheckOutcome::Unknown(UnknownReason::Budget);
        assert!(unknown.is_unknown());
        assert!(unknown.to_string().contains("budget"));
    }

    #[test]
    fn certificate_emptiness() {
        let c = Certificate::default();
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
    }
}
