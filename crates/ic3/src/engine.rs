//! The IC3/PDR engine.
//!
//! A faithful re-implementation of the Ic3-db baseline of the paper:
//! property-directed reachability with inductive generalization, state
//! lifting (Chockler et al., FMCAD'11), deep-counterexample obligation
//! re-enqueueing (as in ABC's `pdr`), plus the two features the paper
//! adds for multi-property verification:
//!
//! * **local proofs** (§4, §7-A): a set of *assumed properties* is
//!   treated as present-state constraints of every consecution query,
//!   realizing the projected transition relation `T^P`;
//! * **clause re-use** (§6): externally supplied state clauses that
//!   over-approximate the reachable states seed every frame.

use crate::ctx::{base_cons, base_lift, ClauseSource, SolverCtx};
use crate::{
    Certificate, CheckOutcome, Counterexample, Ic3Options, Lifting, RunStats, TsEncoding,
    UnknownReason,
};
use japrove_logic::{Clause, Cube, Lit, Var};
use japrove_obs::{EventKind, Journal};
use japrove_sat::{SatBackend, SolveResult, SolverStats};
use japrove_tsys::{complete_trace, PropertyId, TransitionSystem};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::sync::Arc;
use std::time::Instant;

/// Result of a consecution query.
enum Consecution {
    /// The cube is unreachable from the previous frame; a core-shrunk
    /// sub-cube (still excluding the initial state) is returned.
    Blocked(Cube),
    /// A predecessor (state, inputs) was found.
    Predecessor(Vec<bool>, Vec<bool>),
    /// The budget ran out mid-query.
    OutOfBudget,
}

/// A proof obligation: block `cube` at `frame`.
struct Obligation {
    cube: Cube,
    frame: usize,
    /// Arena index of the successor obligation (toward the bad state).
    parent: Option<usize>,
    /// Inputs: for inner obligations, the step from this obligation's
    /// state toward the parent's cube; for the root, the final-state
    /// evaluation inputs.
    inputs: Vec<bool>,
}

enum BlockOutcome {
    Blocked,
    Cex(usize),
    OutOfBudget,
}

/// Result of a bad-state query at a frame.
enum BadState {
    /// A bad (state, inputs) pair in the queried frame.
    Found(Vec<bool>, Vec<bool>),
    /// The frame provably contains no bad state.
    None,
    /// The budget ran out mid-query — *not* the same as `None`.
    OutOfBudget,
}

/// The IC3 model checker for a single property of a
/// [`TransitionSystem`].
///
/// # Examples
///
/// ```
/// use japrove_aig::Aig;
/// use japrove_ic3::{Ic3, Ic3Options};
/// use japrove_tsys::{TransitionSystem, Word};
///
/// let mut aig = Aig::new();
/// let c = Word::latches(&mut aig, 4, 0);
/// let n = c.increment(&mut aig);
/// c.set_next(&mut aig, &n);
/// let safe = c.lt_const(&mut aig, 16); // trivially true
/// let mut sys = TransitionSystem::new("cnt", aig);
/// let p = sys.add_property("in_range", safe);
///
/// let outcome = Ic3::new(&sys, p, Ic3Options::new()).run();
/// assert!(outcome.is_proved());
/// ```
pub struct Ic3<'a> {
    sys: &'a TransitionSystem,
    enc: Arc<TsEncoding>,
    prop: PropertyId,
    opts: Ic3Options,
    assumed: Vec<PropertyId>,
    imported: Vec<Clause>,
    /// Activation literal guarding every imported clause; present iff
    /// clauses were imported or a refresh source is attached. Guarding
    /// (instead of adding the clauses outright) lets a warm solver
    /// retire one property's imports before the next property's run.
    imported_act: Option<Var>,
    /// Live store to poll for clauses published while this engine runs.
    source: Option<&'a dyn ClauseSource>,
    /// Last [`ClauseSource::version`] already folded into `imported`.
    source_version: u64,
    /// Normalized forms of `imported`, for refresh deduplication (only
    /// maintained when `source` is attached).
    imported_set: HashSet<Clause>,
    /// Delta-encoded frames: `frames[j]` holds the cubes blocked
    /// exactly at level `j`; level 0 is the initial-state frame.
    frames: Vec<Vec<Cube>>,
    cons: Box<dyn SatBackend>,
    frame_act: Vec<Var>,
    prop_cons_act: Option<Var>,
    cons_temp: usize,
    lift: Box<dyn SatBackend>,
    lift_temp: usize,
    stats: RunStats,
    obligations: Vec<Obligation>,
    journal: Journal,
    /// SAT counters folded in from solvers this run already replaced
    /// (see [`Ic3::rebuild_cons`]).
    sat_acc: SolverStats,
    /// Counter snapshots of the *current* solver pair at attach time;
    /// warm solvers arrive with history that is not this run's.
    cons_base: SolverStats,
    lift_base: SolverStats,
    /// In-progress frame timing for the journal's `frame` events.
    frame_mark: Option<FrameMark>,
}

/// Progress snapshot taken when a frame opens, turned into one
/// [`EventKind::Frame`] when the frame finishes.
struct FrameMark {
    frame: usize,
    started: Instant,
    obligations: u64,
    gen_lits: u64,
    clauses: usize,
}

impl<'a> Ic3<'a> {
    /// Creates an engine for a *global* proof of `prop` (no assumed
    /// properties, no imported clauses).
    pub fn new(sys: &'a TransitionSystem, prop: PropertyId, opts: Ic3Options) -> Self {
        Ic3::with_context(sys, prop, opts, Vec::new(), Vec::new())
    }

    /// Creates an engine with a *local-proof* context: `assumed`
    /// properties are constrained true in every non-final state (the
    /// `T^P` projection), and `imported` clauses — known to hold in
    /// every reachable state of the (projected) system — seed the
    /// frames.
    pub fn with_context(
        sys: &'a TransitionSystem,
        prop: PropertyId,
        opts: Ic3Options,
        assumed: Vec<PropertyId>,
        imported: Vec<Clause>,
    ) -> Self {
        let enc = Arc::new(TsEncoding::new(sys));
        let cons = base_cons(&enc, opts.backend);
        let lift = base_lift(&enc, opts.backend);
        Ic3::build(sys, enc, cons, lift, prop, opts, assumed, imported, None)
    }

    /// Creates an engine on a warm [`SolverCtx`]: the shared encoding
    /// and (if available) the parked solver pair are taken from the
    /// context instead of being rebuilt from the AIG. The engine must
    /// be handed back with [`Ic3::release`] once the run is over;
    /// [`SolverCtx::check`] wraps the full cycle.
    ///
    /// # Panics
    ///
    /// Panics if the context's encoding disagrees with `sys` (design
    /// name, latch, input or property count) — a mismatched context
    /// would silently solve a different design's transition relation.
    pub(crate) fn warm(
        sys: &'a TransitionSystem,
        prop: PropertyId,
        opts: Ic3Options,
        assumed: Vec<PropertyId>,
        imported: Vec<Clause>,
        ctx: &mut SolverCtx,
        source: Option<(&'a dyn ClauseSource, u64)>,
    ) -> Self {
        let enc = Arc::clone(ctx.encoding());
        assert!(
            enc.design() == sys.name()
                && enc.num_latches() == sys.aig().num_latches()
                && enc.num_inputs() == sys.aig().num_inputs()
                && enc.num_properties() == sys.num_properties(),
            "solver context encodes design '{}', not '{}'",
            enc.design(),
            sys.name()
        );
        let cons = ctx.take_cons();
        let lift = ctx.take_lift();
        let mut engine = Ic3::build(sys, enc, cons, lift, prop, opts, assumed, imported, source);
        engine.set_journal(ctx.journal().clone());
        engine
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        sys: &'a TransitionSystem,
        enc: Arc<TsEncoding>,
        cons: Box<dyn SatBackend>,
        lift: Box<dyn SatBackend>,
        prop: PropertyId,
        opts: Ic3Options,
        assumed: Vec<PropertyId>,
        imported: Vec<Clause>,
        source: Option<(&'a dyn ClauseSource, u64)>,
    ) -> Self {
        let imported_set = if source.is_some() {
            imported.iter().filter_map(Clause::normalized).collect()
        } else {
            HashSet::new()
        };
        let (source, source_version) = match source {
            Some((s, v)) => (Some(s), v),
            None => (None, 0),
        };
        let cons_base = *cons.stats();
        let lift_base = *lift.stats();
        let mut engine = Ic3 {
            sys,
            enc,
            prop,
            opts,
            assumed,
            imported,
            imported_act: None,
            source,
            source_version,
            imported_set,
            frames: vec![Vec::new()],
            cons,
            frame_act: Vec::new(),
            prop_cons_act: None,
            cons_temp: 0,
            lift,
            lift_temp: 0,
            stats: RunStats::default(),
            obligations: Vec::new(),
            journal: Journal::disabled(),
            sat_acc: SolverStats::default(),
            cons_base,
            lift_base,
            frame_mark: None,
        };
        engine.install_cons_run();
        engine
    }

    /// Ends a warm run: retires every per-run activation literal, lets
    /// the solvers reclaim the retired clauses and parks the pair in
    /// `ctx` for the next property.
    pub(crate) fn release(mut self, ctx: &mut SolverCtx) {
        if let Some(a) = self.imported_act {
            self.cons.retire(a);
        }
        if let Some(a) = self.prop_cons_act {
            self.cons.retire(a);
        }
        for &a in &self.frame_act {
            self.cons.retire(a);
        }
        self.cons.simplify();
        self.lift.simplify();
        ctx.put_back(self.cons, self.lift);
    }

    /// Statistics of the run so far.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Attaches an observability journal to the engine and its solver
    /// pair; the engine reports per-frame timings and clause-import
    /// hit rates, the solvers restarts/reductions/samples.
    pub fn set_journal(&mut self, journal: Journal) {
        self.cons.set_journal(journal.clone());
        self.lift.set_journal(journal.clone());
        self.journal = journal;
    }

    /// SAT counters attributable to this run: the current solver
    /// pair's deltas over their attach-time snapshots, plus whatever
    /// replaced solvers accumulated.
    fn current_sat(&self) -> SolverStats {
        self.sat_acc + (*self.cons.stats() - self.cons_base) + (*self.lift.stats() - self.lift_base)
    }

    /// Name of the SAT backend this engine runs on.
    pub fn backend_name(&self) -> &'static str {
        self.cons.backend_name()
    }

    /// Runs the engine to completion (or budget exhaustion).
    pub fn run(&mut self) -> CheckOutcome {
        let outcome = self.run_inner();
        self.flush_frame_mark();
        self.stats.sat = self.current_sat();
        outcome
    }

    fn run_inner(&mut self) -> CheckOutcome {
        // 0-step base case: an initial state (under some inputs)
        // violating the property.
        self.stats.queries += 1;
        self.cons.set_budget(self.opts.budget);
        let mut assumptions = self.init_frame_assumptions();
        assumptions.push(self.enc.bad_lit(self.prop));
        match self.cons.solve(&assumptions) {
            SolveResult::Unknown => return CheckOutcome::Unknown(UnknownReason::Budget),
            SolveResult::Sat => {
                let inputs = self.model_inputs();
                let trace = complete_trace(self.sys, vec![inputs]);
                return CheckOutcome::Falsified(Counterexample { trace, depth: 0 });
            }
            SolveResult::Unsat => {}
        }

        self.open_frame(); // frame 1
        let mut k = 1;
        loop {
            self.stats.frames = k;
            self.begin_frame_mark(k);
            // Pick up clauses other workers published since the last
            // frame — long-running proofs see more than their initial
            // snapshot.
            self.refresh_imports();
            // Blocking phase: clear all bad states from F_k.
            loop {
                if self.opts.budget.deadline_passed() {
                    return CheckOutcome::Unknown(UnknownReason::Budget);
                }
                match self.bad_state_at(k) {
                    BadState::None => break,
                    BadState::OutOfBudget => return CheckOutcome::Unknown(UnknownReason::Budget),
                    BadState::Found(state, inputs) => match self.block(state, inputs, k) {
                        BlockOutcome::Blocked => {}
                        BlockOutcome::OutOfBudget => {
                            return CheckOutcome::Unknown(UnknownReason::Budget)
                        }
                        BlockOutcome::Cex(idx) => {
                            let cex = self.materialize_cex(idx);
                            return CheckOutcome::Falsified(cex);
                        }
                    },
                }
            }
            if k >= self.opts.max_frames {
                return CheckOutcome::Unknown(UnknownReason::FrameLimit);
            }
            // Open the next frame and propagate clauses forward.
            self.open_frame();
            k += 1;
            for j in 1..k {
                let cubes: Vec<Cube> = self.frames[j].clone();
                for cube in cubes {
                    if !self.frames[j].contains(&cube) {
                        continue; // subsumed away in the meantime
                    }
                    match self.consecution(&cube, j + 1) {
                        Consecution::Blocked(_) => {
                            self.frames[j].retain(|c| c != &cube);
                            self.add_blocked(cube, j + 1);
                        }
                        Consecution::Predecessor(..) => {}
                        Consecution::OutOfBudget => {
                            return CheckOutcome::Unknown(UnknownReason::Budget)
                        }
                    }
                }
                if self.frames[j].is_empty() {
                    return CheckOutcome::Proved(self.certificate(j + 1));
                }
            }
        }
    }

    // ----- solver construction ------------------------------------------

    /// Installs the per-run state into `self.cons`, which must hold
    /// exactly the base content (encoding + design constraints): the
    /// imported clauses, the assumed-property constraints and the frame
    /// clauses, each behind activation literals so a warm solver can
    /// retire them when the run ends.
    fn install_cons_run(&mut self) {
        // Imported clauses behind one activation literal. Allocated
        // even for an empty import when a refresh source is attached —
        // refreshed clauses reuse the same guard.
        self.imported_act = if self.imported.is_empty() && self.source.is_none() {
            None
        } else {
            let a = self.cons.new_var();
            for clause in &self.imported {
                self.cons.add_clause_guarded(a, clause.lits());
            }
            Some(a)
        };
        // Assumed-property constraints behind one activation literal.
        self.prop_cons_act = if self.assumed.is_empty() {
            None
        } else {
            let a = self.cons.new_var();
            for &p in &self.assumed {
                let lit = self.enc.good_lit(p);
                self.cons.add_clause_guarded(a, &[lit]);
            }
            Some(a)
        };
        // Frame activation literals and frame clauses.
        self.frame_act.clear();
        for level in 0..self.frames.len() {
            let a = self.cons.new_var();
            self.frame_act.push(a);
            if level == 0 {
                for &init in self.enc.init_lits() {
                    self.cons.add_clause_guarded(a, &[init]);
                }
            } else {
                for cube in &self.frames[level] {
                    let clause: Vec<Lit> = cube.iter().map(|&l| !l).collect();
                    self.cons.add_clause_guarded(a, &clause);
                }
            }
        }
    }

    fn rebuild_cons(&mut self) {
        // Fold the retiring solver's contribution into the run's SAT
        // stats before dropping it.
        self.sat_acc += *self.cons.stats() - self.cons_base;
        self.cons = base_cons(&self.enc, self.opts.backend);
        self.cons.set_journal(self.journal.clone());
        self.cons_base = *self.cons.stats();
        self.cons_temp = 0;
        self.install_cons_run();
    }

    fn rebuild_lift(&mut self) {
        self.sat_acc += *self.lift.stats() - self.lift_base;
        self.lift = base_lift(&self.enc, self.opts.backend);
        self.lift.set_journal(self.journal.clone());
        self.lift_base = *self.lift.stats();
        self.lift_temp = 0;
    }

    /// Closes the pending frame mark (if any) as a journal `frame`
    /// event and opens one for frame `k`. No-op on a disabled journal.
    fn begin_frame_mark(&mut self, k: usize) {
        if !self.journal.enabled() {
            return;
        }
        self.flush_frame_mark();
        self.frame_mark = Some(FrameMark {
            frame: k,
            started: Instant::now(),
            obligations: self.stats.obligations,
            gen_lits: self.stats.generalized_lits,
            clauses: self.stats.clauses,
        });
    }

    /// Emits the in-progress frame's `frame` event, reporting the
    /// counter deltas accumulated since the frame opened.
    fn flush_frame_mark(&mut self) {
        let Some(m) = self.frame_mark.take() else {
            return;
        };
        self.journal.event(EventKind::Frame {
            frame: m.frame,
            dur_us: m.started.elapsed().as_micros() as u64,
            clauses: (self.stats.clauses as u64).saturating_sub(m.clauses as u64),
            obligations: self.stats.obligations - m.obligations,
            gen_lits: self.stats.generalized_lits - m.gen_lits,
        });
    }

    /// Folds clauses published to the attached [`ClauseSource`] since
    /// the last poll into the run: new clauses are added to the solver
    /// under the import guard and recorded for the certificate. Sound
    /// because every source clause holds in all reachable states, so it
    /// may strengthen every frame at any point of the run (§6-B).
    fn refresh_imports(&mut self) {
        let Some(source) = self.source else {
            return;
        };
        let version = source.version();
        if version == self.source_version {
            return;
        }
        let (fresh, cursor) = source.clauses_since(self.source_version);
        self.source_version = cursor;
        let act = self
            .imported_act
            .expect("import guard allocated when a source is attached");
        let offered = fresh.len();
        let mut added = 0usize;
        for clause in fresh {
            let Some(normalized) = clause.normalized() else {
                continue;
            };
            if self.imported_set.insert(normalized.clone()) {
                self.cons.add_clause_guarded(act, normalized.lits());
                self.imported.push(normalized);
                added += 1;
            }
        }
        if offered > 0 {
            // Import hit/miss: `added` of the `offered` delta were new
            // to this engine, the rest were already present.
            self.journal.event(EventKind::Import { offered, added });
        }
    }

    fn open_frame(&mut self) {
        self.frames.push(Vec::new());
        let a = self.cons.new_var();
        self.frame_act.push(a);
    }

    fn init_frame_assumptions(&self) -> Vec<Lit> {
        self.frame_assumptions(0)
    }

    /// Assumptions activating `F_frame` (all levels `>= frame`) plus
    /// the imported strengthening clauses, which hold in every
    /// reachable state and therefore apply to every query.
    fn frame_assumptions(&self, frame: usize) -> Vec<Lit> {
        let mut assumptions: Vec<Lit> = self.frame_act[frame..].iter().map(|a| a.pos()).collect();
        if let Some(a) = self.imported_act {
            assumptions.push(a.pos());
        }
        assumptions
    }

    // ----- queries -------------------------------------------------------

    /// Looks for a bad state in `F_k` (no property constraints: the
    /// final state of a local counterexample is unconstrained).
    ///
    /// Budget exhaustion is reported distinctly: treating it as "no
    /// bad state" would let the main loop conclude `F_k` is clear and,
    /// with an empty frame, unsoundly report a *proof* on a property
    /// whose falsification the solver simply never got to.
    fn bad_state_at(&mut self, k: usize) -> BadState {
        self.stats.queries += 1;
        self.cons.set_budget(self.opts.budget);
        let mut assumptions = self.frame_assumptions(k);
        assumptions.push(self.enc.bad_lit(self.prop));
        match self.cons.solve(&assumptions) {
            SolveResult::Sat => BadState::Found(self.model_state(), self.model_inputs()),
            SolveResult::Unsat => BadState::None,
            SolveResult::Unknown => BadState::OutOfBudget,
        }
    }

    /// Consecution query: is `cube` unreachable from `F_{frame-1}` in
    /// one (constrained) step, assuming `!cube` as well?
    fn consecution(&mut self, cube: &Cube, frame: usize) -> Consecution {
        debug_assert!(frame >= 1);
        self.maybe_rebuild();
        self.stats.queries += 1;
        self.cons.set_budget(self.opts.budget);
        // Temporary activation for the !cube clause.
        let t = self.cons.new_var();
        let mut not_cube: Vec<Lit> = vec![t.neg()];
        not_cube.extend(cube.iter().map(|&l| !l));
        self.cons.add_clause(&not_cube);
        let mut assumptions = self.frame_assumptions(frame - 1);
        if let Some(a) = self.prop_cons_act {
            assumptions.push(a.pos());
        }
        assumptions.push(t.pos());
        let primed = self.enc.primed_cube(cube);
        assumptions.extend(&primed);
        let result = self.cons.solve(&assumptions);
        let outcome = match result {
            SolveResult::Unknown => Consecution::OutOfBudget,
            SolveResult::Sat => Consecution::Predecessor(self.model_state(), self.model_inputs()),
            SolveResult::Unsat => {
                // Core-based shrinking: keep literals whose primed
                // versions appear in the final conflict.
                let mut kept: Vec<Lit> = cube
                    .iter()
                    .zip(&primed)
                    .filter(|&(_, &pl)| self.cons.core_contains(pl))
                    .map(|(&l, _)| l)
                    .collect();
                if kept.is_empty() {
                    kept = cube.lits().to_vec();
                }
                let mut shrunk = Cube::from_lits(kept);
                if self.enc.cube_intersects_init(&shrunk) {
                    shrunk = self.restore_init_exclusion(shrunk, cube);
                }
                Consecution::Blocked(shrunk)
            }
        };
        self.cons.add_clause(&[t.neg()]);
        self.cons_temp += 1;
        outcome
    }

    /// Re-adds a literal of `original` that disagrees with the initial
    /// state (one must exist because `original` excludes it).
    fn restore_init_exclusion(&self, shrunk: Cube, original: &Cube) -> Cube {
        for &l in original.iter() {
            let i = l.var().index() as usize;
            if self.enc.init_lits()[i] != l && !shrunk.contains(l) {
                let mut lits = shrunk.into_lits();
                lits.push(l);
                return Cube::from_lits(lits);
            }
        }
        panic!("original cube already intersected the initial state");
    }

    fn maybe_rebuild(&mut self) {
        if self.cons_temp >= self.opts.rebuild_interval {
            self.rebuild_cons();
        }
        if self.lift_temp >= self.opts.rebuild_interval {
            self.rebuild_lift();
        }
    }

    fn model_state(&self) -> Vec<bool> {
        (0..self.enc.num_latches())
            .map(|i| {
                self.cons
                    .model_value(self.enc.state_var(i).pos())
                    .to_bool()
                    .unwrap_or(false)
            })
            .collect()
    }

    fn model_inputs(&self) -> Vec<bool> {
        (0..self.enc.num_inputs())
            .map(|i| {
                self.cons
                    .model_value(self.enc.input_var(i).pos())
                    .to_bool()
                    .unwrap_or(false)
            })
            .collect()
    }

    // ----- lifting (§6-C, §7-A) -------------------------------------------

    /// Lifts a concrete state to a cube of states that all reach the
    /// target (the successor cube, or the bad states) under `inputs`.
    fn lift_state(&mut self, state: &[bool], inputs: &[bool], target: Option<&Cube>) -> Cube {
        self.stats.queries += 1;
        self.lift.set_budget(self.opts.budget);
        let t = self.lift.new_var();
        let mut clause: Vec<Lit> = vec![t.neg()];
        match target {
            // Successor cube target: !(cube' & constraints [& assumed]).
            Some(cube) => {
                clause.extend(self.enc.primed_cube(cube).iter().map(|&pl| !pl));
                clause.extend(self.enc.constraint_lits().iter().map(|&c| !c));
                if self.opts.lifting == Lifting::Respect {
                    for &p in &self.assumed {
                        clause.push(!self.enc.good_lit(p));
                    }
                }
            }
            // Bad target: !(bad & constraints).
            None => {
                clause.push(self.enc.good_lit(self.prop));
                clause.extend(self.enc.constraint_lits().iter().map(|&c| !c));
            }
        }
        self.lift.add_clause(&clause);
        let state_lits: Vec<Lit> = state
            .iter()
            .enumerate()
            .map(|(i, &b)| self.enc.state_var(i).lit(!b))
            .collect();
        let mut assumptions = vec![t.pos()];
        assumptions.extend(&state_lits);
        assumptions.extend(
            inputs
                .iter()
                .enumerate()
                .map(|(i, &b)| self.enc.input_var(i).lit(!b)),
        );
        let result = self.lift.solve(&assumptions);
        let cube = match result {
            SolveResult::Unsat => {
                let kept: Vec<Lit> = state_lits
                    .iter()
                    .copied()
                    .filter(|&l| self.lift.core_contains(l))
                    .collect();
                self.stats.generalized_lits += (state_lits.len() - kept.len()) as u64;
                Cube::from_lits(kept)
            }
            // Defensive: lifting must be UNSAT; fall back to the full state.
            _ => Cube::from_lits(state_lits.iter().copied()),
        };
        self.lift.add_clause(&[t.neg()]);
        self.lift_temp += 1;
        // Keep obligation cubes disjoint from the initial state.
        if self.enc.cube_intersects_init(&cube) {
            let full = Cube::from_lits(
                state
                    .iter()
                    .enumerate()
                    .map(|(i, &b)| self.enc.state_var(i).lit(!b)),
            );
            self.restore_init_exclusion(cube, &full)
        } else {
            cube
        }
    }

    // ----- blocking -------------------------------------------------------

    fn block(&mut self, bad_state: Vec<bool>, bad_inputs: Vec<bool>, k: usize) -> BlockOutcome {
        self.obligations.clear();
        let root_cube = self.lift_state(&bad_state, &bad_inputs, None);
        self.obligations.push(Obligation {
            cube: root_cube,
            frame: k,
            parent: None,
            inputs: bad_inputs,
        });
        let mut queue: BinaryHeap<Reverse<(usize, usize)>> = BinaryHeap::new();
        queue.push(Reverse((k, 0)));
        while let Some(Reverse((frame, idx))) = queue.pop() {
            if self.opts.budget.deadline_passed() {
                return BlockOutcome::OutOfBudget;
            }
            self.stats.obligations += 1;
            let cube = self.obligations[idx].cube.clone();
            if self.is_blocked_syntactically(&cube, frame) {
                if self.opts.push_obligations && frame < k {
                    self.obligations[idx].frame = frame + 1;
                    queue.push(Reverse((frame + 1, idx)));
                }
                continue;
            }
            match self.consecution(&cube, frame) {
                Consecution::OutOfBudget => return BlockOutcome::OutOfBudget,
                Consecution::Blocked(shrunk) => {
                    let generalized = self.generalize(shrunk, frame);
                    // Push the blocked cube as far forward as it stays
                    // inductive.
                    let mut level = frame;
                    while level < k {
                        match self.consecution(&generalized, level + 1) {
                            Consecution::Blocked(_) => level += 1,
                            Consecution::OutOfBudget => return BlockOutcome::OutOfBudget,
                            Consecution::Predecessor(..) => break,
                        }
                    }
                    self.add_blocked(generalized, level);
                    if self.opts.push_obligations && level < k {
                        self.obligations[idx].frame = level + 1;
                        queue.push(Reverse((level + 1, idx)));
                    }
                }
                Consecution::Predecessor(state, inputs) => {
                    if state == self.init_state() || frame == 1 {
                        // Predecessor in F_0: the chain is complete.
                        let pred = Obligation {
                            cube: Cube::new(),
                            frame: 0,
                            parent: Some(idx),
                            inputs,
                        };
                        self.obligations.push(pred);
                        return BlockOutcome::Cex(self.obligations.len() - 1);
                    }
                    let pred_cube = self.lift_state(&state, &inputs, Some(&cube));
                    self.obligations.push(Obligation {
                        cube: pred_cube,
                        frame: frame - 1,
                        parent: Some(idx),
                        inputs,
                    });
                    queue.push(Reverse((frame - 1, self.obligations.len() - 1)));
                    queue.push(Reverse((frame, idx)));
                }
            }
        }
        BlockOutcome::Blocked
    }

    fn init_state(&self) -> Vec<bool> {
        self.enc
            .init_lits()
            .iter()
            .map(|l| l.is_positive())
            .collect()
    }

    fn is_blocked_syntactically(&self, cube: &Cube, frame: usize) -> bool {
        self.frames[frame..]
            .iter()
            .any(|level| level.iter().any(|c| c.subsumes(cube)))
    }

    fn generalize(&mut self, mut cube: Cube, frame: usize) -> Cube {
        for _ in 0..self.opts.generalize_passes {
            let mut changed = false;
            for lit in cube.lits().to_vec() {
                if cube.len() <= 1 || !cube.contains(lit) {
                    continue;
                }
                let candidate = cube.without_lit(lit);
                if self.enc.cube_intersects_init(&candidate) {
                    continue;
                }
                if let Consecution::Blocked(shrunk) = self.consecution(&candidate, frame) {
                    self.stats.generalized_lits += (cube.len() - shrunk.len()) as u64;
                    cube = shrunk;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        cube
    }

    fn add_blocked(&mut self, cube: Cube, level: usize) {
        // Subsumption: drop weaker cubes at this level and below.
        for l in 1..=level {
            self.frames[l].retain(|c| !cube.subsumes(c));
        }
        let act = self.frame_act[level];
        let mut clause: Vec<Lit> = vec![act.neg()];
        clause.extend(cube.iter().map(|&l| !l));
        self.cons.add_clause(&clause);
        self.frames[level].push(cube);
        self.stats.clauses = self.frames.iter().map(Vec::len).sum();
    }

    // ----- results --------------------------------------------------------

    fn certificate(&self, from_level: usize) -> Certificate {
        let mut clauses: Vec<Clause> = self.frames[from_level..]
            .iter()
            .flat_map(|level| level.iter().map(Cube::to_clause))
            .collect();
        clauses.extend(self.imported.iter().cloned());
        Certificate { clauses }
    }

    fn materialize_cex(&self, terminal: usize) -> Counterexample {
        // Walk from the initial obligation toward the bad state,
        // collecting input vectors; states then follow by simulation.
        let mut inputs = Vec::new();
        let mut cursor = Some(terminal);
        while let Some(idx) = cursor {
            inputs.push(self.obligations[idx].inputs.clone());
            cursor = self.obligations[idx].parent;
        }
        let depth = inputs.len() - 1;
        let trace = complete_trace(self.sys, inputs);
        Counterexample { trace, depth }
    }
}
