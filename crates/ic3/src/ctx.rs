//! Warm solver contexts: encode once, check many.
//!
//! In a multi-property run the transition relation is the same for
//! every property, yet the original drivers re-encoded the AIG and
//! rebuilt a fresh SAT solver per property. A [`SolverCtx`] removes
//! both costs: the [`TsEncoding`] is computed once per design and
//! shared (via `Arc`, also across worker threads), and the consecution
//! and lifting solvers stay loaded between consecutive property checks
//! on the same worker. Everything property-specific lives behind
//! activation literals ([`SatBackend::add_clause_guarded`]), which are
//! retired and simplified away when a check finishes, so the next
//! property starts from a *warm* solver that still holds the encoding
//! (and its accumulated learnt clauses).
//!
//! [`SatBackend::add_clause_guarded`]: japrove_sat::SatBackend::add_clause_guarded

use crate::{CheckOutcome, Ic3, Ic3Options, RunStats, TsEncoding};
use japrove_logic::Clause;
use japrove_obs::Journal;
use japrove_sat::{BackendChoice, SatBackend};
use japrove_tsys::{PropertyId, TransitionSystem};
use std::sync::Arc;

/// A live, growing source of strengthening clauses.
///
/// The multi-property drivers publish each proof's certificate into a
/// shared store; engines that run for a long time can *refresh* their
/// imported set mid-run instead of seeing only the snapshot taken when
/// they started. Every clause the source hands out must hold in all
/// reachable states of the (projected) transition system — the §6-B
/// re-use soundness condition.
pub trait ClauseSource {
    /// A monotone cursor counting clauses ever added to the source.
    /// Engines poll this (it must be cheap) and fetch clauses only
    /// when it moved past their own cursor.
    fn version(&self) -> u64;

    /// A snapshot of all clauses currently in the source.
    fn clauses(&self) -> Vec<Clause>;

    /// The clauses added after cursor `since`, plus the new cursor to
    /// resume from. The default falls back to a full snapshot (callers
    /// deduplicate), but sources with an addition log — like the
    /// drivers' clause store — hand out only the delta, which keeps a
    /// per-frame poll O(new clauses) instead of O(store).
    fn clauses_since(&self, since: u64) -> (Vec<Clause>, u64) {
        let _ = since;
        (self.clauses(), self.version())
    }
}

/// Number of fresh variables a warm solver may accumulate beyond the
/// encoding before it is dropped instead of being reused (temporary
/// activation variables are never reclaimed, only their clauses are).
const VAR_HEADROOM: u32 = 100_000;

/// A reusable per-worker solver context for checking many properties
/// of one design.
///
/// Holds the design's shared [`TsEncoding`] plus warm consecution and
/// lifting solvers. [`SolverCtx::check`] runs one full IC3 check
/// (including clause import and an optional mid-run refresh source) and
/// returns the solvers to the context afterwards.
///
/// # Examples
///
/// ```
/// use japrove_aig::Aig;
/// use japrove_ic3::{Ic3Options, SolverCtx};
/// use japrove_tsys::{TransitionSystem, Word};
///
/// let mut aig = Aig::new();
/// let c = Word::latches(&mut aig, 4, 0);
/// let n = c.increment(&mut aig);
/// c.set_next(&mut aig, &n);
/// let ok = c.lt_const(&mut aig, 16);
/// let le15 = c.le_const(&mut aig, 15);
/// let mut sys = TransitionSystem::new("cnt", aig);
/// let p = sys.add_property("lt16", ok);
/// let q = sys.add_property("le15", le15);
///
/// let mut ctx = SolverCtx::new(&sys);
/// // Both checks share one encoding and one warm solver pair.
/// let (out_p, _) = ctx.check(&sys, p, Ic3Options::new(), &[], Vec::new(), None);
/// let (out_q, _) = ctx.check(&sys, q, Ic3Options::new(), &[], Vec::new(), None);
/// assert!(out_p.is_proved() && out_q.is_proved());
/// ```
pub struct SolverCtx {
    enc: Arc<TsEncoding>,
    backend: BackendChoice,
    cons: Option<Box<dyn SatBackend>>,
    lift: Option<Box<dyn SatBackend>>,
    journal: Journal,
}

impl std::fmt::Debug for SolverCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolverCtx")
            .field("backend", &self.backend)
            .field("vars", &self.enc.num_vars())
            .field("warm_cons", &self.cons.is_some())
            .field("warm_lift", &self.lift.is_some())
            .finish()
    }
}

impl SolverCtx {
    /// A context on the default backend, encoding `sys` now.
    pub fn new(sys: &TransitionSystem) -> Self {
        SolverCtx::with_encoding(Arc::new(TsEncoding::new(sys)), BackendChoice::default())
    }

    /// A context over an already-shared encoding (the multi-worker
    /// case: encode the design once, hand the `Arc` to every worker).
    pub fn with_encoding(enc: Arc<TsEncoding>, backend: BackendChoice) -> Self {
        SolverCtx {
            enc,
            backend,
            cons: None,
            lift: None,
            journal: Journal::disabled(),
        }
    }

    /// The shared encoding.
    pub fn encoding(&self) -> &Arc<TsEncoding> {
        &self.enc
    }

    /// Attaches an observability journal; every engine warmed on this
    /// context (and its solver pair) reports into it.
    pub fn set_journal(&mut self, journal: Journal) {
        self.journal = journal;
    }

    /// The attached journal (disabled by default).
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// The backend every solver of this context is built on.
    pub fn backend(&self) -> BackendChoice {
        self.backend
    }

    /// `true` if a warm consecution solver is currently parked here.
    pub fn is_warm(&self) -> bool {
        self.cons.is_some()
    }

    /// Checks `prop` with a (re)warmed engine: local-proof assumptions
    /// `assumed`, initially `imported` strengthening clauses, and an
    /// optional refresh source the engine polls for clauses published
    /// while it runs. The `u64` alongside the source is its
    /// [`ClauseSource::version`] observed *before* `imported` was
    /// snapshotted from it, so the engine only re-reads the source once
    /// it actually changed (pass `0` to force a first refresh). Returns
    /// the verdict and the run statistics.
    ///
    /// # Panics
    ///
    /// Panics if `sys` is not the design this context encodes (design
    /// name, latch, input or property count differs).
    pub fn check(
        &mut self,
        sys: &TransitionSystem,
        prop: PropertyId,
        opts: Ic3Options,
        assumed: &[PropertyId],
        imported: Vec<Clause>,
        source: Option<(&dyn ClauseSource, u64)>,
    ) -> (CheckOutcome, RunStats) {
        let opts = opts.backend(self.backend);
        let mut engine = Ic3::warm(sys, prop, opts, assumed.to_vec(), imported, self, source);
        let outcome = engine.run();
        let stats = *engine.stats();
        engine.release(self);
        (outcome, stats)
    }

    /// Takes the warm consecution solver, or builds a fresh one with
    /// the encoding and the design constraints loaded.
    pub(crate) fn take_cons(&mut self) -> Box<dyn SatBackend> {
        self.cons
            .take()
            .unwrap_or_else(|| base_cons(&self.enc, self.backend))
    }

    /// Takes the warm lifting solver, or builds a fresh one with the
    /// encoding loaded.
    pub(crate) fn take_lift(&mut self) -> Box<dyn SatBackend> {
        self.lift
            .take()
            .unwrap_or_else(|| base_lift(&self.enc, self.backend))
    }

    /// Parks a released solver pair for the next check. Solvers that
    /// grew past the variable headroom (activation variables are never
    /// reclaimed) or hit an unconditional contradiction are dropped, so
    /// the next [`SolverCtx::take_cons`] starts clean.
    pub(crate) fn put_back(&mut self, cons: Box<dyn SatBackend>, lift: Box<dyn SatBackend>) {
        let cap = self.enc.num_vars().saturating_add(VAR_HEADROOM);
        if cons.is_ok() && cons.num_vars() <= cap {
            self.cons = Some(cons);
        }
        if lift.is_ok() && lift.num_vars() <= cap {
            self.lift = Some(lift);
        }
    }
}

/// A fresh consecution base solver: encoding plus design-constraint
/// units, nothing property-specific. This is exactly the state a warm
/// solver returns to after its per-run activation literals are retired
/// (modulo learnt clauses and dead variables).
pub(crate) fn base_cons(enc: &TsEncoding, backend: BackendChoice) -> Box<dyn SatBackend> {
    let mut solver = backend.build();
    enc.load_into(solver.as_mut());
    for &c in enc.constraint_lits() {
        solver.add_clause(&[c]);
    }
    solver
}

/// A fresh lifting base solver: the bare encoding.
pub(crate) fn base_lift(enc: &TsEncoding, backend: BackendChoice) -> Box<dyn SatBackend> {
    let mut solver = backend.build();
    enc.load_into(solver.as_mut());
    solver
}

#[cfg(test)]
mod tests {
    use super::*;
    use japrove_aig::Aig;
    use japrove_tsys::Word;
    use std::sync::Mutex;

    fn counters(bits: usize, limits: &[u64]) -> TransitionSystem {
        let mut aig = Aig::new();
        let c = Word::latches(&mut aig, bits, 0);
        let n = c.increment(&mut aig);
        c.set_next(&mut aig, &n);
        let goods: Vec<_> = limits.iter().map(|&l| c.lt_const(&mut aig, l)).collect();
        let mut sys = TransitionSystem::new("cnt", aig);
        for (i, g) in goods.into_iter().enumerate() {
            sys.add_property(format!("p{i}"), g);
        }
        sys
    }

    #[test]
    fn warm_checks_reuse_the_solver_pair() {
        let sys = counters(4, &[16, 16, 3]);
        let mut ctx = SolverCtx::new(&sys);
        assert!(!ctx.is_warm());
        let (a, _) = ctx.check(
            &sys,
            PropertyId::new(0),
            Ic3Options::new(),
            &[],
            Vec::new(),
            None,
        );
        assert!(a.is_proved());
        assert!(ctx.is_warm());
        let vars_after_first = ctx.cons.as_ref().expect("warm").num_vars();
        let (b, _) = ctx.check(
            &sys,
            PropertyId::new(1),
            Ic3Options::new(),
            &[],
            Vec::new(),
            None,
        );
        assert!(b.is_proved());
        // The falsified property reuses the same pair and still finds
        // its counterexample.
        let (c, _) = ctx.check(
            &sys,
            PropertyId::new(2),
            Ic3Options::new(),
            &[],
            Vec::new(),
            None,
        );
        assert_eq!(c.counterexample().expect("fails").depth, 3);
        // The solver really was reused, not rebuilt: variables only grow.
        assert!(ctx.cons.as_ref().expect("warm").num_vars() >= vars_after_first);
    }

    #[test]
    fn warm_and_cold_verdicts_agree() {
        let sys = counters(5, &[32, 9, 20]);
        let mut ctx = SolverCtx::new(&sys);
        for p in sys.property_ids() {
            let cold = Ic3::new(&sys, p, Ic3Options::new()).run();
            let (warm, _) = ctx.check(&sys, p, Ic3Options::new(), &[], Vec::new(), None);
            assert_eq!(cold.is_proved(), warm.is_proved(), "{p}");
            assert_eq!(
                cold.counterexample().map(|c| c.depth),
                warm.counterexample().map(|c| c.depth),
                "{p}"
            );
        }
    }

    /// A toy source that versions a mutex-guarded clause vector.
    struct VecSource(Mutex<(u64, Vec<Clause>)>);

    impl ClauseSource for VecSource {
        fn version(&self) -> u64 {
            self.0.lock().unwrap_or_else(|p| p.into_inner()).0
        }
        fn clauses(&self) -> Vec<Clause> {
            self.0.lock().unwrap_or_else(|p| p.into_inner()).1.clone()
        }
    }

    #[test]
    fn source_clauses_land_in_the_certificate() {
        use japrove_logic::Var;
        // Counter wraps at 9; "count < 12" needs strengthening. Seed a
        // source with a sound invariant clause (!b1 | !b3 : count is
        // never 10 or 11 — in fact never >= 10).
        let mut aig = Aig::new();
        let c = Word::latches(&mut aig, 4, 0);
        let wrap = c.eq_const(&mut aig, 9);
        let inc = c.increment(&mut aig);
        let zero = Word::constant(&mut aig, 0, 4);
        let next = Word::mux(&mut aig, wrap, &zero, &inc);
        c.set_next(&mut aig, &next);
        let safe = c.lt_const(&mut aig, 12);
        let mut sys = TransitionSystem::new("wrap", aig);
        let p = sys.add_property("lt12", safe);
        let inv = Clause::from_lits([Var::new(1).neg(), Var::new(3).neg()]);
        let source = VecSource(Mutex::new((1, vec![inv.clone()])));
        let mut ctx = SolverCtx::new(&sys);
        let (outcome, _) = ctx.check(
            &sys,
            p,
            Ic3Options::new(),
            &[],
            Vec::new(),
            Some((&source, 0)),
        );
        let cert = outcome.certificate().expect("holds");
        assert!(
            cert.clauses.iter().any(|cl| {
                cl.normalized().map(|n| n == inv.normalized().unwrap()) == Some(true)
            }),
            "refreshed clause must be part of the certificate"
        );
        assert!(crate::verify_certificate(&sys, p, &[], cert).is_ok());
    }
}
