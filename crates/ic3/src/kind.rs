//! Joint k-induction: prove many candidate invariants at once.
//!
//! [`KInduction`] checks a *set* of properties together: the base case
//! runs aggregate BMC queries at depths `0..k`, and the step case
//! unrolls `k + 1` frames **without** the initial-state constraint and
//! asks whether all survivors holding at frames `0..k` forces them to
//! hold at frame `k`. Both cases drive a CEGAR-style drop loop — any
//! candidate falsified by a model is removed and the query re-asked —
//! so one solver pass over the whole set converges to its largest
//! jointly k-inductive subset. That joint fixpoint is exactly what
//! property mining needs: thousands of candidates share one unrolling
//! and strengthen each other as mutual assumptions, yet every survivor
//! is individually sound.
//!
//! Soundness: a property in [`KInductionResult::proved`] holds in all
//! reachable states. The base case shows every survivor holds at
//! depths `< k` of initialized traces; the step case shows the
//! surviving conjunction propagates along *any* trace segment, so
//! induction along an initialized trace covers every depth. Dropped
//! candidates are classified — base kills are genuine failures,
//! step kills are merely not-inductive (their truth is unknown).
//!
//! # Examples
//!
//! ```
//! use japrove_aig::Aig;
//! use japrove_ic3::KInduction;
//! use japrove_tsys::TransitionSystem;
//!
//! // Two toggles with equal resets stay equal: 1-inductive.
//! let mut aig = Aig::new();
//! let a = aig.add_latch(false);
//! let b = aig.add_latch(false);
//! aig.set_next(a, !a);
//! aig.set_next(b, !b);
//! let eq = aig.eq(a, b);
//! let mut sys = TransitionSystem::new("toggles", aig);
//! let p = sys.add_property("eq", eq);
//!
//! let result = KInduction::new(&sys, 1).check(&[p]);
//! assert_eq!(result.proved, vec![p]);
//! ```

use crate::{Bmc, BmcResult};
use japrove_aig::CnfEncoder;
use japrove_logic::{Lit, Var};
use japrove_obs::{Journal, Phase};
use japrove_sat::{BackendChoice, Budget, SatBackend, SolveResult};
use japrove_tsys::{PropertyId, TransitionSystem};

/// Outcome of one joint k-induction check; the input set is
/// partitioned across the four buckets.
#[derive(Clone, Debug, Default)]
pub struct KInductionResult {
    /// Jointly k-inductive survivors — each holds in every reachable
    /// state (in the order they were passed in).
    pub proved: Vec<PropertyId>,
    /// Falsified by an initialized trace of depth `< k`: genuinely
    /// false properties.
    pub base_killed: Vec<PropertyId>,
    /// Dropped by the step case: not k-inductive relative to the
    /// survivors. Their truth is unknown.
    pub step_killed: Vec<PropertyId>,
    /// The budget ran out before these could be classified.
    pub unknown: Vec<PropertyId>,
    /// CEGAR rounds the step fixpoint needed (0 when nothing survived
    /// the base case).
    pub rounds: usize,
}

/// A joint k-induction checker: an aggregate base case with
/// drop-and-requery plus an init-free step case with a CEGAR
/// assumption-drop loop, classifying a whole property batch at once.
#[derive(Debug)]
pub struct KInduction<'a> {
    sys: &'a TransitionSystem,
    k: usize,
    backend: BackendChoice,
    budget: Budget,
    journal: Journal,
}

impl<'a> KInduction<'a> {
    /// Creates a checker with induction depth `k` on the default
    /// backend with no resource budget.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` (plain induction needs at least one frame of
    /// hypothesis).
    pub fn new(sys: &'a TransitionSystem, k: usize) -> Self {
        assert!(k >= 1, "k-induction needs k >= 1");
        KInduction {
            sys,
            k,
            backend: BackendChoice::default(),
            budget: Budget::unlimited(),
            journal: Journal::disabled(),
        }
    }

    /// Selects the SAT backend for both cases.
    pub fn backend(mut self, backend: BackendChoice) -> Self {
        self.backend = backend;
        self
    }

    /// Bounds every individual solver query. Exhaustion moves the
    /// still-unclassified candidates to [`KInductionResult::unknown`].
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Attaches an observability journal: the check runs under an
    /// `induction` span and the base case emits per-depth `unroll`
    /// events.
    pub fn journal(mut self, journal: Journal) -> Self {
        self.journal = journal;
        self
    }

    /// Partitions `props` into proved / base-killed / step-killed /
    /// unknown; see [`KInductionResult`].
    pub fn check(&self, props: &[PropertyId]) -> KInductionResult {
        let _span = self
            .journal
            .span_labeled(Phase::Induction, format!("k{}", self.k));
        let mut result = KInductionResult::default();
        let mut alive: Vec<PropertyId> = props.to_vec();
        self.base_case(&mut alive, &mut result);
        if !alive.is_empty() {
            self.step_case(&mut alive, &mut result);
        }
        result.proved = alive;
        result
    }

    /// Aggregate BMC at depths `0..k`, dropping falsified candidates
    /// and re-asking until each depth is clean.
    fn base_case(&self, alive: &mut Vec<PropertyId>, result: &mut KInductionResult) {
        let mut bmc = Bmc::with_backend(self.sys, self.backend);
        bmc.set_journal(self.journal.clone());
        for depth in 0..self.k {
            loop {
                if alive.is_empty() {
                    return;
                }
                match bmc.check_at(alive, depth, self.budget) {
                    BmcResult::NoCexUpTo(_) => break,
                    BmcResult::Cex { falsified, .. } => {
                        if falsified.is_empty() {
                            // Unattributable model (cannot happen with a
                            // complete solver); claim nothing.
                            result.unknown.append(alive);
                            return;
                        }
                        retain_others(alive, &falsified, self.sys.num_properties());
                        result.base_killed.extend(falsified);
                    }
                    BmcResult::Unknown(_) => {
                        result.unknown.append(alive);
                        return;
                    }
                }
            }
        }
    }

    /// The init-free step case: unroll `k + 1` frames, assume all
    /// survivors at frames `0..k`, and drop whatever a model falsifies
    /// at frame `k` until UNSAT.
    fn step_case(&self, alive: &mut Vec<PropertyId>, result: &mut KInductionResult) {
        let mut solver = self.backend.build();
        solver.set_journal(self.journal.clone());
        let good_lits = self.unroll_free(solver.as_mut());
        loop {
            if alive.is_empty() {
                return;
            }
            result.rounds += 1;
            let mut assumptions: Vec<Lit> = Vec::with_capacity(self.k * alive.len() + 1);
            for frame in &good_lits[..self.k] {
                assumptions.extend(alive.iter().map(|p| frame[p.index()]));
            }
            // "Some survivor fails at frame k", behind a per-round
            // activation literal so dropped rounds retire cleanly.
            let aux = solver.new_var();
            let mut clause: Vec<Lit> = vec![aux.neg()];
            clause.extend(alive.iter().map(|p| !good_lits[self.k][p.index()]));
            solver.add_clause(&clause);
            assumptions.push(aux.pos());
            solver.set_budget(self.budget);
            let solved = solver.solve(&assumptions);
            solver.add_clause(&[aux.neg()]);
            match solved {
                SolveResult::Unsat => return,
                SolveResult::Unknown => {
                    result.unknown.append(alive);
                    return;
                }
                SolveResult::Sat => {
                    let dropped: Vec<PropertyId> = alive
                        .iter()
                        .copied()
                        .filter(|p| solver.model_value(good_lits[self.k][p.index()]).is_false())
                        .collect();
                    if dropped.is_empty() {
                        // Defensive: a SAT answer must falsify someone.
                        result.unknown.append(alive);
                        return;
                    }
                    retain_others(alive, &dropped, self.sys.num_properties());
                    result.step_killed.extend(dropped);
                }
            }
        }
    }

    /// Encodes `k + 1` combinational frames chained by the transition
    /// relation, with a *free* frame-0 state (no initial-state
    /// clauses) and the design constraints asserted at every frame.
    /// Returns the per-frame good-literals, indexed by property.
    fn unroll_free(&self, solver: &mut dyn SatBackend) -> Vec<Vec<Lit>> {
        let aig = self.sys.aig();
        let mut state: Vec<Var> = aig.latches().iter().map(|_| solver.new_var()).collect();
        let mut good_lits = Vec::with_capacity(self.k + 1);
        for _frame in 0..=self.k {
            let mut enc = CnfEncoder::starting_at(solver.num_vars());
            for (latch, &v) in aig.latches().iter().zip(&state) {
                enc.pin_to(latch.node, v);
            }
            for &n in aig.inputs() {
                enc.pin(n);
            }
            let goods: Vec<Lit> = self
                .sys
                .properties()
                .iter()
                .map(|p| enc.lit_for(aig, p.good))
                .collect();
            let constraints: Vec<Lit> = self
                .sys
                .constraints()
                .iter()
                .map(|&c| enc.lit_for(aig, c))
                .collect();
            let nexts: Vec<Lit> = aig
                .latches()
                .iter()
                .map(|l| enc.lit_for(aig, l.next))
                .collect();
            let next_vars: Vec<Var> = (0..aig.num_latches()).map(|_| enc.fresh()).collect();
            let cnf = enc.take_new_clauses();
            solver.ensure_vars(cnf.num_vars());
            for c in cnf.clauses() {
                solver.add_clause(c.lits());
            }
            for &c in &constraints {
                solver.add_clause(&[c]);
            }
            for (&v, &f) in next_vars.iter().zip(&nexts) {
                solver.add_clause(&[v.neg(), f]);
                solver.add_clause(&[v.pos(), !f]);
            }
            good_lits.push(goods);
            state = next_vars;
        }
        good_lits
    }
}

/// Removes `dropped` from `alive`, preserving order (via a dense flag
/// array so large rounds stay linear).
fn retain_others(alive: &mut Vec<PropertyId>, dropped: &[PropertyId], num_props: usize) {
    let mut flag = vec![false; num_props];
    for p in dropped {
        flag[p.index()] = true;
    }
    alive.retain(|p| !flag[p.index()]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use japrove_aig::{Aig, AigLit};

    /// Swap pair (a' = b, b' = a, both reset 0), a toggle, a
    /// free-input latch, and a length-3 zero delay chain: a zoo of
    /// inductive strengths.
    fn zoo() -> (TransitionSystem, Vec<PropertyId>) {
        let mut aig = Aig::new();
        let a = aig.add_latch(false);
        let b = aig.add_latch(false);
        let t = aig.add_latch(false);
        let f = aig.add_latch(false);
        let d1 = aig.add_latch(false);
        let d2 = aig.add_latch(false);
        let d3 = aig.add_latch(false);
        let i = aig.add_input();
        aig.set_next(a, b);
        aig.set_next(b, a);
        aig.set_next(t, !t);
        aig.set_next(f, i);
        aig.set_next(d1, d2);
        aig.set_next(d2, d3);
        aig.set_next(d3, AigLit::FALSE);
        let mut sys = TransitionSystem::new("zoo", aig);
        let props = vec![
            sys.add_property("a_low", !a),   // true, 2-inductive
            sys.add_property("t_low", !t),   // false at depth 1
            sys.add_property("f_low", !f),   // false at depth 1 (input-driven)
            sys.add_property("d1_low", !d1), // true, but only 3-inductive
        ];
        (sys, props)
    }

    #[test]
    fn two_inductive_property_needs_k2() {
        let (sys, props) = zoo();
        let a_low = props[0];
        let k1 = KInduction::new(&sys, 1).check(&[a_low]);
        assert!(k1.proved.is_empty());
        assert_eq!(k1.step_killed, vec![a_low]);
        let k2 = KInduction::new(&sys, 2).check(&[a_low]);
        assert_eq!(k2.proved, vec![a_low]);
        assert!(k2.rounds >= 1);
    }

    #[test]
    fn joint_check_partitions_the_set() {
        let (sys, props) = zoo();
        let result = KInduction::new(&sys, 2).check(&props);
        assert_eq!(result.proved, vec![props[0]]);
        let mut base = result.base_killed.clone();
        base.sort_by_key(|p| p.index());
        assert_eq!(
            base,
            vec![props[1], props[2]],
            "toggle and input latch genuinely rise at depth 1"
        );
        assert_eq!(
            result.step_killed,
            vec![props[3]],
            "the delay chain is true but not 2-inductive"
        );
        assert!(result.unknown.is_empty());

        // At k = 3 the delay chain becomes inductive too.
        let result = KInduction::new(&sys, 3).check(&[props[0], props[3]]);
        assert_eq!(result.proved, vec![props[0], props[3]]);
    }

    #[test]
    fn budget_exhaustion_claims_nothing() {
        let (sys, props) = zoo();
        let result = KInduction::new(&sys, 2)
            .budget(Budget::conflicts(0))
            .check(&props);
        assert!(result.proved.is_empty());
        let mut all = result.unknown.clone();
        all.extend(result.base_killed); // a depth-0/1 model may land first
        all.extend(result.step_killed);
        all.sort_by_key(|p| p.index());
        assert_eq!(all.len(), props.len(), "every input is accounted for");
    }

    #[test]
    fn constraints_enable_otherwise_failing_candidates() {
        // A free-input latch under the constraint that the input is
        // low: const-0 becomes 1-inductive.
        let mut aig = Aig::new();
        let i = aig.add_input();
        let f = aig.add_latch(false);
        aig.set_next(f, i);
        let mut sys = TransitionSystem::new("gated", aig);
        sys.add_constraint(!i);
        let p = sys.add_property("f_low", !f);
        let result = KInduction::new(&sys, 1).check(&[p]);
        assert_eq!(result.proved, vec![p]);
    }

    #[test]
    fn journal_records_induction_span() {
        let (sys, props) = zoo();
        let journal = Journal::new();
        KInduction::new(&sys, 2)
            .journal(journal.clone())
            .check(&props);
        let spans: Vec<_> = journal
            .events()
            .iter()
            .filter_map(|e| match &e.kind {
                japrove_obs::EventKind::Span { phase, label, .. } => Some((*phase, label.clone())),
                _ => None,
            })
            .collect();
        assert!(spans.contains(&(Phase::Induction, Some("k2".into()))));
    }
}
