//! Transition-relation encoding shared by the engines.

use japrove_aig::CnfEncoder;
use japrove_logic::{Clause, Cnf, Cube, Lit, Var};
use japrove_sat::SatBackend;
use japrove_tsys::{PropertyId, TransitionSystem};

/// The CNF skeleton of an `(I, T)`-system with a fixed variable layout:
///
/// * variables `0..L` — present-state latches (so a state [`Cube`] over
///   latch indices is directly meaningful to the solver),
/// * variables `L..L+I` — primary inputs,
/// * internal Tseitin variables for the combinational cones,
/// * one *next-state* variable per latch, constrained equivalent to the
///   latch's next-state function.
///
/// # Examples
///
/// ```
/// use japrove_aig::Aig;
/// use japrove_ic3::TsEncoding;
/// use japrove_tsys::TransitionSystem;
///
/// let mut aig = Aig::new();
/// let l = aig.add_latch(false);
/// aig.set_next(l, !l);
/// let mut sys = TransitionSystem::new("t", aig);
/// sys.add_property("p", !l);
/// let enc = TsEncoding::new(&sys);
/// assert_eq!(enc.num_latches(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct TsEncoding {
    design: String,
    num_latches: usize,
    num_inputs: usize,
    next_vars: Vec<Var>,
    good_lits: Vec<Lit>,
    constraint_lits: Vec<Lit>,
    init_lits: Vec<Lit>,
    cnf: Cnf,
}

impl TsEncoding {
    /// Encodes the system's transition relation, property cones and
    /// design constraints.
    pub fn new(sys: &TransitionSystem) -> Self {
        let aig = sys.aig();
        let mut enc = CnfEncoder::new();
        for latch in aig.latches() {
            enc.pin(latch.node);
        }
        for &inp in aig.inputs() {
            enc.pin(inp);
        }
        let good_lits: Vec<Lit> = sys
            .properties()
            .iter()
            .map(|p| enc.lit_for(aig, p.good))
            .collect();
        let constraint_lits: Vec<Lit> = sys
            .constraints()
            .iter()
            .map(|&c| enc.lit_for(aig, c))
            .collect();
        // Next-state variables with biconditional definitions.
        let mut next_defs: Vec<(Var, Lit)> = Vec::with_capacity(aig.num_latches());
        for latch in aig.latches() {
            let f = enc.lit_for(aig, latch.next);
            let v = enc.fresh();
            next_defs.push((v, f));
        }
        let mut cnf = enc.take_new_clauses();
        for &(v, f) in &next_defs {
            cnf.add_clause(Clause::from_lits([v.neg(), f]));
            cnf.add_clause(Clause::from_lits([v.pos(), !f]));
        }
        let init_lits = aig
            .latches()
            .iter()
            .enumerate()
            .map(|(i, l)| Var::new(i as u32).lit(!l.reset))
            .collect();
        TsEncoding {
            design: sys.name().to_string(),
            num_latches: aig.num_latches(),
            num_inputs: aig.num_inputs(),
            next_vars: next_defs.into_iter().map(|(v, _)| v).collect(),
            good_lits,
            constraint_lits,
            init_lits,
            cnf,
        }
    }

    /// Number of latches (state variables).
    pub fn num_latches(&self) -> usize {
        self.num_latches
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of properties whose cones are encoded.
    pub fn num_properties(&self) -> usize {
        self.good_lits.len()
    }

    /// Name of the design this encoding was built from. Warm solver
    /// contexts use it (plus the shape counts) to reject being handed
    /// a different design's system.
    pub fn design(&self) -> &str {
        &self.design
    }

    /// Number of CNF variables used by the encoding.
    pub fn num_vars(&self) -> u32 {
        self.cnf.num_vars()
    }

    /// The present-state variable of latch `i`.
    pub fn state_var(&self, i: usize) -> Var {
        assert!(i < self.num_latches, "latch index out of range");
        Var::new(i as u32)
    }

    /// The input variable of input `i`.
    pub fn input_var(&self, i: usize) -> Var {
        assert!(i < self.num_inputs, "input index out of range");
        Var::new((self.num_latches + i) as u32)
    }

    /// The next-state variable of latch `i`.
    pub fn next_var(&self, i: usize) -> Var {
        self.next_vars[i]
    }

    /// Literal that is true iff property `p` *holds* in the present
    /// state (under the present inputs).
    pub fn good_lit(&self, p: PropertyId) -> Lit {
        self.good_lits[p.index()]
    }

    /// Literal that is true iff property `p` is *violated*.
    pub fn bad_lit(&self, p: PropertyId) -> Lit {
        !self.good_lits[p.index()]
    }

    /// Design-constraint literals (present state).
    pub fn constraint_lits(&self) -> &[Lit] {
        &self.constraint_lits
    }

    /// Unit literals characterizing the single initial state.
    pub fn init_lits(&self) -> &[Lit] {
        &self.init_lits
    }

    /// The clauses of the encoding.
    pub fn cnf(&self) -> &Cnf {
        &self.cnf
    }

    /// Maps a present-state cube literal to its primed (next-state)
    /// literal.
    pub fn primed(&self, lit: Lit) -> Lit {
        let i = lit.var().index() as usize;
        assert!(i < self.num_latches, "not a state literal");
        self.next_vars[i].lit(lit.is_negated())
    }

    /// Maps a whole cube to its primed literals.
    pub fn primed_cube(&self, cube: &Cube) -> Vec<Lit> {
        cube.iter().map(|&l| self.primed(l)).collect()
    }

    /// Loads the encoding into a fresh region of `solver` (which must
    /// be empty or contain only this encoding's variables). Accepts any
    /// [`SatBackend`], so the engines can load the same encoding into
    /// whichever solver the portfolio selected.
    pub fn load_into(&self, solver: &mut dyn SatBackend) {
        solver.ensure_vars(self.cnf.num_vars());
        for c in self.cnf.clauses() {
            solver.add_clause(c.lits());
        }
    }

    /// `true` if `cube` contains the initial state (every literal
    /// agrees with the corresponding reset value).
    pub fn cube_intersects_init(&self, cube: &Cube) -> bool {
        cube.iter().all(|&l| {
            let i = l.var().index() as usize;
            self.init_lits[i] == l
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use japrove_aig::Aig;
    use japrove_sat::{SolveResult, Solver};
    use japrove_tsys::Word;

    fn counter_sys(bits: usize) -> TransitionSystem {
        let mut aig = Aig::new();
        let w = Word::latches(&mut aig, bits, 0);
        let n = w.increment(&mut aig);
        w.set_next(&mut aig, &n);
        let safe = w.lt_const(&mut aig, (1 << bits) - 1);
        let mut sys = TransitionSystem::new("cnt", aig);
        sys.add_property("below_max", safe);
        sys
    }

    #[test]
    fn layout_is_dense() {
        let sys = counter_sys(3);
        let enc = TsEncoding::new(&sys);
        assert_eq!(enc.num_latches(), 3);
        assert_eq!(enc.state_var(0).index(), 0);
        assert_eq!(enc.state_var(2).index(), 2);
        assert!(enc.next_var(0).index() >= 3);
    }

    #[test]
    fn transition_semantics_in_solver() {
        let sys = counter_sys(3);
        let enc = TsEncoding::new(&sys);
        let mut solver = Solver::new();
        enc.load_into(&mut solver);
        // From state 3 the counter moves to 4: assume s=011, check s'.
        let s3 = [
            enc.state_var(0).pos(),
            enc.state_var(1).pos(),
            enc.state_var(2).neg(),
        ];
        let mut q = s3.to_vec();
        q.push(enc.next_var(2).neg()); // claim bit2' = 0, contradiction
        assert_eq!(solver.solve(&q), SolveResult::Unsat);
        let mut q = s3.to_vec();
        q.extend([
            enc.next_var(0).neg(),
            enc.next_var(1).neg(),
            enc.next_var(2).pos(),
        ]);
        assert_eq!(solver.solve(&q), SolveResult::Sat);
    }

    #[test]
    fn property_literal_semantics() {
        let sys = counter_sys(3);
        let enc = TsEncoding::new(&sys);
        let p = PropertyId::new(0);
        let mut solver = Solver::new();
        enc.load_into(&mut solver);
        // In state 7 the property "count < 7" is violated.
        let s7 = [
            enc.state_var(0).pos(),
            enc.state_var(1).pos(),
            enc.state_var(2).pos(),
        ];
        let mut q = s7.to_vec();
        q.push(enc.good_lit(p));
        assert_eq!(solver.solve(&q), SolveResult::Unsat);
        let mut q = s7.to_vec();
        q.push(enc.bad_lit(p));
        assert_eq!(solver.solve(&q), SolveResult::Sat);
    }

    #[test]
    fn init_cube_checks() {
        let sys = counter_sys(2);
        let enc = TsEncoding::new(&sys);
        // Init is 00; the cube {!b0} contains it, {b0} does not.
        let v0 = enc.state_var(0);
        assert!(enc.cube_intersects_init(&Cube::from_lits([v0.neg()])));
        assert!(!enc.cube_intersects_init(&Cube::from_lits([v0.pos()])));
        assert!(enc.cube_intersects_init(&Cube::new()));
    }

    #[test]
    fn primed_mapping() {
        let sys = counter_sys(2);
        let enc = TsEncoding::new(&sys);
        let cube = Cube::from_lits([enc.state_var(0).pos(), enc.state_var(1).neg()]);
        let primed = enc.primed_cube(&cube);
        assert_eq!(primed.len(), 2);
        assert_eq!(primed[0].var(), enc.next_var(0));
        assert!(primed[1].is_negated());
    }
}
