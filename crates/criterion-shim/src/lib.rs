//! A minimal, dependency-free stand-in for the [criterion] crate.
//!
//! The build environment for this repository has no network access to
//! crates.io, so the real criterion cannot be vendored. This shim
//! implements exactly the API surface the `japrove-bench` benches use
//! — [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros — timing each
//! closure over a fixed number of warm-up and measured iterations and
//! printing a `name  median  mean` line per benchmark.
//!
//! Swapping the real criterion back in is a one-line change in the
//! workspace `Cargo.toml`; no bench source needs to change.
//!
//! [criterion]: https://docs.rs/criterion
//!
//! # Examples
//!
//! ```
//! use criterion::Criterion;
//!
//! let mut c = Criterion::default();
//! c.bench_function("noop", |b| b.iter(|| 1 + 1));
//! ```

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier for one parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the benchmark closure; runs and times the workload.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Calls `routine` for a few warm-up rounds, then `sample_size`
    /// measured rounds, recording one wall-clock sample per round.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warmup = (self.sample_size / 5).clamp(1, 3);
        for _ in 0..warmup {
            std_black_box(routine());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std_black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

fn run_one(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    bencher.samples.sort();
    let median = bencher.samples[bencher.samples.len() / 2];
    let mean = bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32;
    println!(
        "{id:<40} median {:>12}   mean {:>12}",
        fmt_duration(median),
        fmt_duration(mean)
    );
}

/// A group of related benchmarks sharing a name prefix and settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `<group>/<id>`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Benchmarks `f` with an input value under `<group>/<id>`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Benchmarks a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_size, &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
