//! AIGER 1.9 reading and writing (ASCII `aag` and binary `aig`).
//!
//! Supports the multi-property sections used by the HWMCC competitions:
//! outputs (`O`), bad-state properties (`B`) and invariant constraints
//! (`C`), plus the symbol table and comments.

use crate::{Aig, AigLit};
use std::error::Error;
use std::fmt;
use std::io::{self, Write};

/// An AIG together with its AIGER-level interface: outputs, bad-state
/// properties, invariant constraints, symbols and comments.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use japrove_aig::{Aig, AigerModel, read_aiger, write_aiger_ascii};
/// let mut aig = Aig::new();
/// let i = aig.add_input();
/// let l = aig.add_latch(false);
/// aig.set_next(l, i);
/// let model = AigerModel { aig, outputs: vec![l], ..AigerModel::default() };
/// let mut text = Vec::new();
/// write_aiger_ascii(&mut text, &model)?;
/// let back = read_aiger(&text)?;
/// assert_eq!(back.aig.num_latches(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct AigerModel {
    /// The underlying graph.
    pub aig: Aig,
    /// Ordinary outputs.
    pub outputs: Vec<AigLit>,
    /// Bad-state literals (property `i` holds iff `bads[i]` is false).
    pub bads: Vec<AigLit>,
    /// Invariant constraints (assumed true in every reachable state).
    pub constraints: Vec<AigLit>,
    /// Symbol table entries as `(position key, name)`, e.g. `("b0", "p_overflow")`.
    pub symbols: Vec<(String, String)>,
    /// Comment lines.
    pub comments: Vec<String>,
}

/// Error produced by [`read_aiger`].
#[derive(Debug)]
pub enum ParseAigerError {
    /// Malformed content.
    Syntax {
        /// Byte offset or line indicator.
        at: String,
        /// Description.
        message: String,
    },
    /// Feature of the format this reader does not support.
    Unsupported(String),
}

impl fmt::Display for ParseAigerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseAigerError::Syntax { at, message } => {
                write!(f, "aiger syntax error at {at}: {message}")
            }
            ParseAigerError::Unsupported(what) => write!(f, "unsupported aiger feature: {what}"),
        }
    }
}

impl Error for ParseAigerError {}

fn syntax(at: impl fmt::Display, message: impl Into<String>) -> ParseAigerError {
    ParseAigerError::Syntax {
        at: at.to_string(),
        message: message.into(),
    }
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Cursor {
            data,
            pos: 0,
            line: 1,
        }
    }

    fn read_line(&mut self) -> Option<&'a str> {
        if self.pos >= self.data.len() {
            return None;
        }
        let start = self.pos;
        while self.pos < self.data.len() && self.data[self.pos] != b'\n' {
            self.pos += 1;
        }
        let end = self.pos;
        if self.pos < self.data.len() {
            self.pos += 1; // consume newline
        }
        self.line += 1;
        std::str::from_utf8(&self.data[start..end])
            .ok()
            .map(|s| s.trim_end_matches('\r'))
    }

    fn read_byte(&mut self) -> Option<u8> {
        let b = self.data.get(self.pos).copied();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    /// LEB128-style unsigned delta used by binary AIGER.
    fn read_delta(&mut self) -> Result<u32, ParseAigerError> {
        let mut value: u32 = 0;
        let mut shift = 0;
        loop {
            let b = self
                .read_byte()
                .ok_or_else(|| syntax("eof", "truncated binary and-gate section"))?;
            value |= ((b & 0x7f) as u32) << shift;
            if b & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 28 {
                return Err(syntax("binary section", "delta overflow"));
            }
        }
    }
}

fn parse_u32(tok: &str, line: usize) -> Result<u32, ParseAigerError> {
    tok.parse::<u32>()
        .map_err(|_| syntax(format!("line {line}"), format!("invalid number '{tok}'")))
}

/// Reads an AIGER file (ASCII or binary, auto-detected) from a byte
/// slice.
///
/// # Errors
///
/// Returns [`ParseAigerError`] for malformed files or unsupported
/// features (justice/fairness sections, uninitialized latches).
pub fn read_aiger(data: &[u8]) -> Result<AigerModel, ParseAigerError> {
    let mut cur = Cursor::new(data);
    let header = cur
        .read_line()
        .ok_or_else(|| syntax("line 1", "missing header"))?;
    let mut parts = header.split_whitespace();
    let format = parts.next().unwrap_or("");
    let binary = match format {
        "aag" => false,
        "aig" => true,
        other => return Err(syntax("line 1", format!("unknown format '{other}'"))),
    };
    let nums: Vec<u32> = parts.map(|t| parse_u32(t, 1)).collect::<Result<_, _>>()?;
    if nums.len() < 5 {
        return Err(syntax("line 1", "header needs at least M I L O A"));
    }
    let (m, i, l, o, a) = (nums[0], nums[1], nums[2], nums[3], nums[4]);
    let b = nums.get(5).copied().unwrap_or(0);
    let c = nums.get(6).copied().unwrap_or(0);
    if nums.len() > 7 && nums[7..].iter().any(|&x| x > 0) {
        return Err(ParseAigerError::Unsupported(
            "justice/fairness sections".to_string(),
        ));
    }
    if m < i + l + a {
        return Err(syntax("line 1", "M smaller than I+L+A"));
    }

    let mut aig = Aig::new();
    // var -> positive edge; var 0 is the constant.
    let mut map: Vec<Option<AigLit>> = vec![None; (m + 1) as usize];
    map[0] = Some(AigLit::FALSE);

    // Inputs.
    let mut input_vars: Vec<u32> = Vec::with_capacity(i as usize);
    if binary {
        for k in 0..i {
            input_vars.push(k + 1);
        }
    } else {
        for _ in 0..i {
            let line_no = cur.line;
            let line = cur
                .read_line()
                .ok_or_else(|| syntax(format!("line {line_no}"), "missing input line"))?;
            let lit = parse_u32(line.trim(), line_no)?;
            if lit & 1 == 1 || lit == 0 {
                return Err(syntax(
                    format!("line {line_no}"),
                    "input literal must be positive",
                ));
            }
            input_vars.push(lit >> 1);
        }
    }
    for &v in &input_vars {
        let edge = aig.add_input();
        *map.get_mut(v as usize)
            .ok_or_else(|| syntax("inputs", "input variable exceeds M"))? = Some(edge);
    }

    // Latches: record (var, next-code, reset) for later resolution.
    let mut latch_records: Vec<(u32, u32, bool)> = Vec::with_capacity(l as usize);
    for k in 0..l {
        let line_no = cur.line;
        let line = cur
            .read_line()
            .ok_or_else(|| syntax(format!("line {line_no}"), "missing latch line"))?;
        let toks: Vec<&str> = line.split_whitespace().collect();
        let (var, rest) = if binary {
            (i + k + 1, &toks[..])
        } else {
            if toks.is_empty() {
                return Err(syntax(format!("line {line_no}"), "empty latch line"));
            }
            let lit = parse_u32(toks[0], line_no)?;
            if lit & 1 == 1 {
                return Err(syntax(
                    format!("line {line_no}"),
                    "latch literal must be positive",
                ));
            }
            (lit >> 1, &toks[1..])
        };
        if rest.is_empty() {
            return Err(syntax(
                format!("line {line_no}"),
                "latch needs a next-state literal",
            ));
        }
        let next = parse_u32(rest[0], line_no)?;
        let reset = match rest.get(1) {
            None => false,
            Some(tok) => {
                let r = parse_u32(tok, line_no)?;
                if r == 0 {
                    false
                } else if r == 1 {
                    true
                } else {
                    return Err(ParseAigerError::Unsupported(
                        "uninitialized latches".to_string(),
                    ));
                }
            }
        };
        let edge = aig.add_latch(reset);
        *map.get_mut(var as usize)
            .ok_or_else(|| syntax("latches", "latch variable exceeds M"))? = Some(edge);
        latch_records.push((var, next, reset));
    }

    // Outputs, bads, constraints: literal codes, resolved later.
    let read_codes =
        |cur: &mut Cursor<'_>, n: u32, what: &str| -> Result<Vec<u32>, ParseAigerError> {
            let mut out = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let line_no = cur.line;
                let line = cur.read_line().ok_or_else(|| {
                    syntax(format!("line {line_no}"), format!("missing {what} line"))
                })?;
                out.push(parse_u32(line.trim(), line_no)?);
            }
            Ok(out)
        };
    let output_codes = read_codes(&mut cur, o, "output")?;
    let bad_codes = read_codes(&mut cur, b, "bad")?;
    let constraint_codes = read_codes(&mut cur, c, "constraint")?;

    // AND gates.
    if binary {
        for k in 0..a {
            let lhs_var = i + l + k + 1;
            let delta0 = cur.read_delta()?;
            let delta1 = cur.read_delta()?;
            let lhs_code = lhs_var * 2;
            let rhs0 = lhs_code
                .checked_sub(delta0)
                .ok_or_else(|| syntax("binary section", "rhs0 delta underflow"))?;
            let rhs1 = rhs0
                .checked_sub(delta1)
                .ok_or_else(|| syntax("binary section", "rhs1 delta underflow"))?;
            let ea = resolve(&map, rhs0)
                .ok_or_else(|| syntax("binary section", "operand not yet defined"))?;
            let eb = resolve(&map, rhs1)
                .ok_or_else(|| syntax("binary section", "operand not yet defined"))?;
            let edge = aig.and(ea, eb);
            map[lhs_var as usize] = Some(edge);
        }
    } else {
        for _ in 0..a {
            let line_no = cur.line;
            let line = cur
                .read_line()
                .ok_or_else(|| syntax(format!("line {line_no}"), "missing and-gate line"))?;
            let toks: Vec<&str> = line.split_whitespace().collect();
            if toks.len() != 3 {
                return Err(syntax(
                    format!("line {line_no}"),
                    "and gate needs 'lhs rhs0 rhs1'",
                ));
            }
            let lhs = parse_u32(toks[0], line_no)?;
            let rhs0 = parse_u32(toks[1], line_no)?;
            let rhs1 = parse_u32(toks[2], line_no)?;
            if lhs & 1 == 1 {
                return Err(syntax(
                    format!("line {line_no}"),
                    "and lhs must be positive",
                ));
            }
            let ea = resolve(&map, rhs0)
                .ok_or_else(|| syntax(format!("line {line_no}"), "operand not yet defined"))?;
            let eb = resolve(&map, rhs1)
                .ok_or_else(|| syntax(format!("line {line_no}"), "operand not yet defined"))?;
            let edge = aig.and(ea, eb);
            map[(lhs >> 1) as usize] = Some(edge);
        }
    }

    // Resolve latch next-state functions.
    for &(var, next_code, _) in &latch_records {
        let latch_edge = map[var as usize].expect("latch mapped");
        let next = resolve(&map, next_code)
            .ok_or_else(|| syntax("latches", "next-state literal undefined"))?;
        aig.set_next(latch_edge, next);
    }

    let resolve_all = |codes: &[u32], what: &str| -> Result<Vec<AigLit>, ParseAigerError> {
        codes
            .iter()
            .map(|&code| resolve(&map, code).ok_or_else(|| syntax(what, "literal undefined")))
            .collect()
    };
    let outputs = resolve_all(&output_codes, "outputs")?;
    let bads = resolve_all(&bad_codes, "bads")?;
    let constraints = resolve_all(&constraint_codes, "constraints")?;

    // Symbols and comments.
    let mut symbols = Vec::new();
    let mut comments = Vec::new();
    let mut in_comments = false;
    while let Some(line) = cur.read_line() {
        if in_comments {
            comments.push(line.to_string());
        } else if line == "c" {
            in_comments = true;
        } else if let Some(space) = line.find(' ') {
            symbols.push((line[..space].to_string(), line[space + 1..].to_string()));
        }
    }

    Ok(AigerModel {
        aig,
        outputs,
        bads,
        constraints,
        symbols,
        comments,
    })
}

fn resolve(map: &[Option<AigLit>], code: u32) -> Option<AigLit> {
    let var = (code >> 1) as usize;
    let edge = (*map.get(var)?)?;
    Some(if code & 1 == 1 { !edge } else { edge })
}

/// Assigns AIGER variable numbers: inputs, then latches, then AND gates
/// in topological (creation) order. Returns `node index -> aiger var`.
fn number_nodes(aig: &Aig) -> Vec<u32> {
    let mut numbering = vec![u32::MAX; aig.num_nodes()];
    numbering[0] = 0;
    let mut next = 1u32;
    for &inp in aig.inputs() {
        numbering[inp.index()] = next;
        next += 1;
    }
    for latch in aig.latches() {
        numbering[latch.node.index()] = next;
        next += 1;
    }
    for (idx, slot) in numbering.iter_mut().enumerate().take(aig.num_nodes()) {
        if let crate::Node::And(_, _) = aig.node(crate::NodeId(idx as u32)) {
            *slot = next;
            next += 1;
        }
    }
    numbering
}

fn edge_code(numbering: &[u32], lit: AigLit) -> u32 {
    numbering[lit.node().index()] * 2 + lit.is_inverted() as u32
}

fn write_header<W: Write>(
    w: &mut W,
    format: &str,
    aig: &Aig,
    model: &AigerModel,
) -> io::Result<()> {
    let m = aig.num_inputs() + aig.num_latches() + aig.num_ands();
    write!(
        w,
        "{format} {m} {} {} {} {}",
        aig.num_inputs(),
        aig.num_latches(),
        model.outputs.len(),
        aig.num_ands()
    )?;
    if !model.bads.is_empty() || !model.constraints.is_empty() {
        write!(w, " {}", model.bads.len())?;
        if !model.constraints.is_empty() {
            write!(w, " {}", model.constraints.len())?;
        }
    }
    writeln!(w)
}

fn write_tail<W: Write>(w: &mut W, model: &AigerModel) -> io::Result<()> {
    for (key, name) in &model.symbols {
        writeln!(w, "{key} {name}")?;
    }
    if !model.comments.is_empty() {
        writeln!(w, "c")?;
        for line in &model.comments {
            writeln!(w, "{line}")?;
        }
    }
    Ok(())
}

/// Writes an [`AigerModel`] in ASCII (`aag`) format.
///
/// # Errors
///
/// Propagates I/O errors from the writer (a mut reference can be
/// passed).
pub fn write_aiger_ascii<W: Write>(mut w: W, model: &AigerModel) -> io::Result<()> {
    let aig = &model.aig;
    let numbering = number_nodes(aig);
    write_header(&mut w, "aag", aig, model)?;
    for &inp in aig.inputs() {
        writeln!(w, "{}", numbering[inp.index()] * 2)?;
    }
    for latch in aig.latches() {
        writeln!(
            w,
            "{} {} {}",
            numbering[latch.node.index()] * 2,
            edge_code(&numbering, latch.next),
            latch.reset as u32
        )?;
    }
    for &o in &model.outputs {
        writeln!(w, "{}", edge_code(&numbering, o))?;
    }
    for &b in &model.bads {
        writeln!(w, "{}", edge_code(&numbering, b))?;
    }
    for &c in &model.constraints {
        writeln!(w, "{}", edge_code(&numbering, c))?;
    }
    for idx in 0..aig.num_nodes() {
        if let crate::Node::And(a, b) = aig.node(crate::NodeId(idx as u32)) {
            let lhs = numbering[idx] * 2;
            let (c0, c1) = (edge_code(&numbering, a), edge_code(&numbering, b));
            let (c0, c1) = if c0 >= c1 { (c0, c1) } else { (c1, c0) };
            writeln!(w, "{lhs} {c0} {c1}")?;
        }
    }
    write_tail(&mut w, model)
}

/// Writes an [`AigerModel`] in binary (`aig`) format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_aiger_binary<W: Write>(mut w: W, model: &AigerModel) -> io::Result<()> {
    let aig = &model.aig;
    let numbering = number_nodes(aig);
    write_header(&mut w, "aig", aig, model)?;
    for latch in aig.latches() {
        writeln!(
            w,
            "{} {}",
            edge_code(&numbering, latch.next),
            latch.reset as u32
        )?;
    }
    for &o in &model.outputs {
        writeln!(w, "{}", edge_code(&numbering, o))?;
    }
    for &b in &model.bads {
        writeln!(w, "{}", edge_code(&numbering, b))?;
    }
    for &c in &model.constraints {
        writeln!(w, "{}", edge_code(&numbering, c))?;
    }
    let write_delta = |w: &mut W, mut d: u32| -> io::Result<()> {
        loop {
            let byte = (d & 0x7f) as u8;
            d >>= 7;
            if d == 0 {
                w.write_all(&[byte])?;
                return Ok(());
            }
            w.write_all(&[byte | 0x80])?;
        }
    };
    for idx in 0..aig.num_nodes() {
        if let crate::Node::And(a, b) = aig.node(crate::NodeId(idx as u32)) {
            let lhs = numbering[idx] * 2;
            let (c0, c1) = (edge_code(&numbering, a), edge_code(&numbering, b));
            let (c0, c1) = if c0 >= c1 { (c0, c1) } else { (c1, c0) };
            write_delta(&mut w, lhs - c0)?;
            write_delta(&mut w, c0 - c1)?;
        }
    }
    write_tail(&mut w, model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;

    fn toggle_model() -> AigerModel {
        let mut aig = Aig::new();
        let en = aig.add_input();
        let l = aig.add_latch(false);
        let nxt = aig.xor(l, en);
        aig.set_next(l, nxt);
        AigerModel {
            outputs: vec![l],
            bads: vec![aig.and(l, en)],
            constraints: vec![!AigLit::FALSE],
            symbols: vec![("b0".into(), "toggle_high".into())],
            comments: vec!["generated by japrove".into()],
            aig,
        }
    }

    fn behaviours_match(a: &AigerModel, b: &AigerModel, steps: usize) {
        let mut sa = Simulator::new(&a.aig);
        let mut sb = Simulator::new(&b.aig);
        let patterns = [0xAAAAu64, 0x1234, !0u64, 0];
        for s in 0..steps {
            let inp = vec![patterns[s % patterns.len()]; a.aig.num_inputs()];
            sa.eval(&a.aig, &inp);
            sb.eval(&b.aig, &inp);
            for (oa, ob) in a.outputs.iter().zip(&b.outputs) {
                assert_eq!(sa.value(*oa), sb.value(*ob), "output diverged at step {s}");
            }
            for (ba, bb) in a.bads.iter().zip(&b.bads) {
                assert_eq!(sa.value(*ba), sb.value(*bb), "bad diverged at step {s}");
            }
            sa.step(&a.aig, &inp);
            sb.step(&b.aig, &inp);
        }
    }

    #[test]
    fn ascii_round_trip() {
        let model = toggle_model();
        let mut text = Vec::new();
        write_aiger_ascii(&mut text, &model).expect("write");
        let back = read_aiger(&text).expect("parse");
        assert_eq!(back.aig.num_inputs(), 1);
        assert_eq!(back.aig.num_latches(), 1);
        assert_eq!(back.bads.len(), 1);
        assert_eq!(back.constraints.len(), 1);
        assert_eq!(back.symbols, model.symbols);
        assert_eq!(back.comments, model.comments);
        behaviours_match(&model, &back, 6);
    }

    #[test]
    fn binary_round_trip() {
        let model = toggle_model();
        let mut bytes = Vec::new();
        write_aiger_binary(&mut bytes, &model).expect("write");
        let back = read_aiger(&bytes).expect("parse");
        assert_eq!(back.aig.num_inputs(), 1);
        assert_eq!(back.aig.num_latches(), 1);
        behaviours_match(&model, &back, 6);
    }

    #[test]
    fn ascii_and_binary_agree() {
        let model = toggle_model();
        let mut text = Vec::new();
        write_aiger_ascii(&mut text, &model).expect("write ascii");
        let mut bytes = Vec::new();
        write_aiger_binary(&mut bytes, &model).expect("write binary");
        let a = read_aiger(&text).expect("parse ascii");
        let b = read_aiger(&bytes).expect("parse binary");
        behaviours_match(&a, &b, 6);
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_aiger(b"hello world\n").is_err());
        assert!(read_aiger(b"aag 1\n").is_err());
        assert!(read_aiger(b"").is_err());
    }

    #[test]
    fn rejects_justice_sections() {
        let res = read_aiger(b"aag 0 0 0 0 0 0 0 1\n");
        assert!(matches!(res, Err(ParseAigerError::Unsupported(_))));
    }

    #[test]
    fn parses_minimal_known_file() {
        // A latch that toggles, from the AIGER spec examples.
        let text = b"aag 1 0 1 1 0\n2 3\n2\n";
        let model = read_aiger(text).expect("parse");
        assert_eq!(model.aig.num_latches(), 1);
        assert_eq!(model.outputs.len(), 1);
        let mut sim = Simulator::new(&model.aig);
        assert!(!sim.value_bit(model.outputs[0]));
        sim.step(&model.aig, &[]);
        assert!(sim.value_bit(model.outputs[0]));
    }
}
