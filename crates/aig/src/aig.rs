//! And-Inverter Graph representation and structurally-hashed builder.

use std::collections::HashMap;
use std::fmt;

/// Index of a node inside an [`Aig`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Node 0 is the constant-false node of every AIG.
    pub const FALSE: NodeId = NodeId(0);

    /// Dense index of the node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An edge in the AIG: a node reference with an optional inversion,
/// encoded AIGER-style as `2 * node + invert`.
///
/// # Examples
///
/// ```
/// use japrove_aig::{Aig, AigLit};
/// let mut aig = Aig::new();
/// let x = aig.add_input();
/// assert_eq!(!!x, x);
/// assert_eq!(AigLit::TRUE, !AigLit::FALSE);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AigLit(u32);

impl AigLit {
    /// Constant false.
    pub const FALSE: AigLit = AigLit(0);
    /// Constant true.
    pub const TRUE: AigLit = AigLit(1);

    /// Creates an edge to `node`, inverted if `invert`.
    pub fn new(node: NodeId, invert: bool) -> Self {
        AigLit(node.0 << 1 | invert as u32)
    }

    /// Reconstructs an edge from its AIGER code.
    pub fn from_code(code: u32) -> Self {
        AigLit(code)
    }

    /// AIGER code `2 * node + invert`.
    pub fn code(self) -> u32 {
        self.0
    }

    /// The referenced node.
    pub fn node(self) -> NodeId {
        NodeId(self.0 >> 1)
    }

    /// Whether the edge is inverted.
    pub fn is_inverted(self) -> bool {
        self.0 & 1 == 1
    }

    /// Whether this is one of the two constants.
    pub fn is_const(self) -> bool {
        self.node() == NodeId::FALSE
    }

    /// Evaluates a constant edge.
    ///
    /// # Panics
    ///
    /// Panics if the edge is not constant.
    pub fn const_value(self) -> bool {
        assert!(self.is_const(), "const_value on non-constant edge");
        self.is_inverted()
    }
}

impl std::ops::Not for AigLit {
    type Output = AigLit;

    fn not(self) -> AigLit {
        AigLit(self.0 ^ 1)
    }
}

impl fmt::Debug for AigLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_inverted() {
            write!(f, "!n{}", self.node().0)
        } else {
            write!(f, "n{}", self.node().0)
        }
    }
}

impl fmt::Display for AigLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The kind of an AIG node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Node {
    /// The constant-false node (always node 0).
    False,
    /// Primary input number `.0`.
    Input(u32),
    /// Latch number `.0` (state element).
    Latch(u32),
    /// Two-input AND gate.
    And(AigLit, AigLit),
}

/// Latch metadata: node, next-state function and reset value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Latch {
    /// The node representing the latch output.
    pub node: NodeId,
    /// Next-state function (an edge into the combinational logic).
    pub next: AigLit,
    /// Reset (initial) value.
    pub reset: bool,
}

/// An And-Inverter Graph with structural hashing.
///
/// The graph owns inputs, latches and AND gates; every Boolean
/// function is expressed through [`AigLit`] edges with optional
/// inversion. Building is fully incremental: latches may be created
/// first and their next-state functions connected later (necessary for
/// feedback).
///
/// # Examples
///
/// ```
/// use japrove_aig::Aig;
/// let mut aig = Aig::new();
/// let a = aig.add_input();
/// let b = aig.add_input();
/// let c = aig.and(a, b);
/// assert_eq!(aig.and(a, b), c); // structural hashing
/// assert_eq!(aig.num_ands(), 1);
/// ```
#[derive(Clone, Default)]
pub struct Aig {
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    latches: Vec<Latch>,
    strash: HashMap<(u32, u32), NodeId>,
}

impl Aig {
    /// Creates an AIG containing only the constant node.
    pub fn new() -> Self {
        Aig {
            nodes: vec![Node::False],
            inputs: Vec::new(),
            latches: Vec::new(),
            strash: HashMap::new(),
        }
    }

    /// Total number of nodes including the constant.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of latches.
    pub fn num_latches(&self) -> usize {
        self.latches.len()
    }

    /// Number of AND gates.
    pub fn num_ands(&self) -> usize {
        self.nodes.len() - 1 - self.inputs.len() - self.latches.len()
    }

    /// The node kind at `id`.
    pub fn node(&self, id: NodeId) -> Node {
        self.nodes[id.index()]
    }

    /// All node ids in ascending (topological) order: the operands of
    /// an AND gate always precede the gate itself; only latch
    /// next-state edges may point forward. Structural rewrites (e.g.
    /// cone-of-influence reduction) rely on this to map a graph in a
    /// single forward pass.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Input nodes in creation order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Latches in creation order.
    pub fn latches(&self) -> &[Latch] {
        &self.latches
    }

    /// Adds a primary input and returns its (positive) edge.
    pub fn add_input(&mut self) -> AigLit {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::Input(self.inputs.len() as u32));
        self.inputs.push(id);
        AigLit::new(id, false)
    }

    /// Adds a latch with the given reset value; the next-state function
    /// is initially the latch itself (a self-loop) and is usually
    /// connected later with [`Aig::set_next`].
    pub fn add_latch(&mut self, reset: bool) -> AigLit {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::Latch(self.latches.len() as u32));
        self.latches.push(Latch {
            node: id,
            next: AigLit::new(id, false),
            reset,
        });
        AigLit::new(id, false)
    }

    /// Connects the next-state function of a latch edge previously
    /// created with [`Aig::add_latch`].
    ///
    /// # Panics
    ///
    /// Panics if `latch` is not a positive edge onto a latch node.
    pub fn set_next(&mut self, latch: AigLit, next: AigLit) {
        assert!(!latch.is_inverted(), "latch edge must be positive");
        match self.nodes[latch.node().index()] {
            Node::Latch(k) => self.latches[k as usize].next = next,
            _ => panic!("set_next on a non-latch node"),
        }
    }

    /// Returns the latch metadata for a latch edge.
    ///
    /// # Panics
    ///
    /// Panics if `latch` does not reference a latch node.
    pub fn latch_info(&self, latch: AigLit) -> Latch {
        match self.nodes[latch.node().index()] {
            Node::Latch(k) => self.latches[k as usize],
            _ => panic!("latch_info on a non-latch node"),
        }
    }

    /// AND of two edges with constant folding and structural hashing.
    pub fn and(&mut self, a: AigLit, b: AigLit) -> AigLit {
        // Constant folding and trivial cases.
        if a == AigLit::FALSE || b == AigLit::FALSE || a == !b {
            return AigLit::FALSE;
        }
        if a == AigLit::TRUE {
            return b;
        }
        if b == AigLit::TRUE || a == b {
            return a;
        }
        // Canonical operand order for hashing.
        let (x, y) = if a.code() <= b.code() { (a, b) } else { (b, a) };
        if let Some(&id) = self.strash.get(&(x.code(), y.code())) {
            return AigLit::new(id, false);
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::And(x, y));
        self.strash.insert((x.code(), y.code()), id);
        AigLit::new(id, false)
    }

    /// OR of two edges.
    pub fn or(&mut self, a: AigLit, b: AigLit) -> AigLit {
        !self.and(!a, !b)
    }

    /// XOR of two edges.
    pub fn xor(&mut self, a: AigLit, b: AigLit) -> AigLit {
        let n1 = self.and(a, !b);
        let n2 = self.and(!a, b);
        self.or(n1, n2)
    }

    /// Equivalence (XNOR) of two edges.
    pub fn eq(&mut self, a: AigLit, b: AigLit) -> AigLit {
        !self.xor(a, b)
    }

    /// Implication `a -> b`.
    pub fn implies(&mut self, a: AigLit, b: AigLit) -> AigLit {
        self.or(!a, b)
    }

    /// Multiplexer: `if sel then t else e`.
    pub fn mux(&mut self, sel: AigLit, t: AigLit, e: AigLit) -> AigLit {
        let n1 = self.and(sel, t);
        let n2 = self.and(!sel, e);
        self.or(n1, n2)
    }

    /// Conjunction of many edges (balanced reduction).
    pub fn and_many<I: IntoIterator<Item = AigLit>>(&mut self, lits: I) -> AigLit {
        let mut layer: Vec<AigLit> = lits.into_iter().collect();
        if layer.is_empty() {
            return AigLit::TRUE;
        }
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len() / 2 + 1);
            for pair in layer.chunks(2) {
                next.push(if pair.len() == 2 {
                    self.and(pair[0], pair[1])
                } else {
                    pair[0]
                });
            }
            layer = next;
        }
        layer[0]
    }

    /// Disjunction of many edges.
    pub fn or_many<I: IntoIterator<Item = AigLit>>(&mut self, lits: I) -> AigLit {
        let inverted: Vec<AigLit> = lits.into_iter().map(|l| !l).collect();
        !self.and_many(inverted)
    }
}

impl fmt::Debug for Aig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Aig({} inputs, {} latches, {} ands)",
            self.num_inputs(),
            self.num_latches(),
            self.num_ands()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_fold() {
        let mut g = Aig::new();
        let a = g.add_input();
        assert_eq!(g.and(a, AigLit::FALSE), AigLit::FALSE);
        assert_eq!(g.and(AigLit::TRUE, a), a);
        assert_eq!(g.and(a, a), a);
        assert_eq!(g.and(a, !a), AigLit::FALSE);
        assert_eq!(g.num_ands(), 0);
    }

    #[test]
    fn strash_is_commutative() {
        let mut g = Aig::new();
        let a = g.add_input();
        let b = g.add_input();
        assert_eq!(g.and(a, b), g.and(b, a));
        assert_eq!(g.num_ands(), 1);
    }

    #[test]
    fn derived_gates() {
        let mut g = Aig::new();
        let a = g.add_input();
        let b = g.add_input();
        let o = g.or(a, b);
        let x = g.xor(a, b);
        let e = g.eq(a, b);
        assert_eq!(e, !x);
        assert_ne!(o, x);
        let m = g.mux(AigLit::TRUE, a, b);
        assert_eq!(m, a);
    }

    #[test]
    fn latch_wiring() {
        let mut g = Aig::new();
        let l = g.add_latch(true);
        let inp = g.add_input();
        let nxt = g.xor(l, inp);
        g.set_next(l, nxt);
        let info = g.latch_info(l);
        assert!(info.reset);
        assert_eq!(info.next, nxt);
    }

    #[test]
    fn and_many_reduction() {
        let mut g = Aig::new();
        let xs: Vec<AigLit> = (0..5).map(|_| g.add_input()).collect();
        let all = g.and_many(xs.iter().copied());
        assert!(!all.is_const());
        assert_eq!(g.and_many(std::iter::empty()), AigLit::TRUE);
        assert_eq!(g.or_many(std::iter::empty()), AigLit::FALSE);
        assert_eq!(g.and_many([xs[0]]), xs[0]);
    }

    #[test]
    #[should_panic(expected = "non-latch")]
    fn set_next_on_input_panics() {
        let mut g = Aig::new();
        let a = g.add_input();
        let b = g.add_input();
        g.set_next(a, b);
    }
}
