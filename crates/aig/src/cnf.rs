//! Tseitin encoding of AIG cones into CNF.

use crate::{Aig, AigLit, Node, NodeId};
use japrove_logic::{Clause, Cnf, Lit, Var};

/// Incremental Tseitin encoder from an [`Aig`] into a [`Cnf`].
///
/// SAT variables are assigned on demand as cones are requested;
/// callers may *pin* chosen nodes (typically latches and inputs) to
/// specific variables first so the state variables occupy a known,
/// dense range — the layout the IC3 engine relies on.
///
/// # Examples
///
/// ```
/// use japrove_aig::{Aig, CnfEncoder};
/// let mut aig = Aig::new();
/// let a = aig.add_input();
/// let b = aig.add_input();
/// let c = aig.and(a, b);
/// let mut enc = CnfEncoder::new();
/// let va = enc.pin(a.node());
/// let vb = enc.pin(b.node());
/// let lit_c = enc.lit_for(&aig, c);
/// let cnf = enc.take_new_clauses();
/// assert_eq!(cnf.num_clauses(), 3); // one AND gate
/// assert!(!lit_c.is_negated());
/// ```
#[derive(Clone, Debug, Default)]
pub struct CnfEncoder {
    var_map: Vec<Option<Var>>,
    next_var: u32,
    pending: Cnf,
    /// Lazily created variable constrained to true, for constant edges.
    const_true: Option<Var>,
}

impl CnfEncoder {
    /// Creates an encoder that allocates variables from 0.
    pub fn new() -> Self {
        CnfEncoder::default()
    }

    /// Creates an encoder that starts allocating at `first_var`.
    pub fn starting_at(first_var: u32) -> Self {
        CnfEncoder {
            next_var: first_var,
            ..CnfEncoder::default()
        }
    }

    /// Number of variables allocated so far (i.e. the next free index).
    pub fn num_vars(&self) -> u32 {
        self.next_var
    }

    /// Pins `node` to a fresh variable and returns it; no clauses are
    /// generated for pinned nodes (their defining logic, if any, is not
    /// encoded through this entry).
    ///
    /// # Panics
    ///
    /// Panics if the node already has a variable.
    pub fn pin(&mut self, node: NodeId) -> Var {
        self.grow(node);
        assert!(
            self.var_map[node.index()].is_none(),
            "node already has a variable"
        );
        let v = self.fresh();
        self.var_map[node.index()] = Some(v);
        v
    }

    /// Pins `node` to an existing variable (e.g. the state variables of
    /// a previous unrolling frame). No clauses are generated.
    ///
    /// # Panics
    ///
    /// Panics if the node already has a variable.
    pub fn pin_to(&mut self, node: NodeId, var: Var) {
        self.grow(node);
        assert!(
            self.var_map[node.index()].is_none(),
            "node already has a variable"
        );
        self.var_map[node.index()] = Some(var);
    }

    /// Allocates a fresh variable not tied to any node (used by engines
    /// for activation literals or auxiliary definitions).
    pub fn fresh(&mut self) -> Var {
        let v = Var::new(self.next_var);
        self.next_var += 1;
        v
    }

    /// Returns the variable already assigned to `node`, if any.
    pub fn var_of(&self, node: NodeId) -> Option<Var> {
        self.var_map.get(node.index()).copied().flatten()
    }

    /// Returns a SAT literal equivalent to edge `lit`, encoding the
    /// required AND cone into pending clauses.
    ///
    /// # Panics
    ///
    /// Panics if the cone reaches an input or latch that was not
    /// pinned — encoders require all leaves to be pinned first.
    pub fn lit_for(&mut self, aig: &Aig, lit: AigLit) -> Lit {
        if lit.is_const() {
            let v = self.const_true_var();
            return v.pos().apply_sign(!lit.is_inverted());
        }
        let v = self.encode_node(aig, lit.node());
        v.lit(lit.is_inverted())
    }

    /// Removes and returns the clauses generated since the last call.
    pub fn take_new_clauses(&mut self) -> Cnf {
        let mut cnf = Cnf::with_vars(self.next_var);
        std::mem::swap(&mut cnf, &mut self.pending);
        cnf.ensure_vars(self.next_var);
        cnf
    }

    fn const_true_var(&mut self) -> Var {
        match self.const_true {
            Some(v) => v,
            None => {
                let v = self.fresh();
                self.pending.add_clause(Clause::unit(v.pos()));
                self.const_true = Some(v);
                v
            }
        }
    }

    fn grow(&mut self, node: NodeId) {
        if self.var_map.len() <= node.index() {
            self.var_map.resize(node.index() + 1, None);
        }
    }

    fn encode_node(&mut self, aig: &Aig, root: NodeId) -> Var {
        self.grow(NodeId((aig.num_nodes() - 1) as u32));
        if let Some(v) = self.var_map[root.index()] {
            return v;
        }
        // Iterative post-order over the unencoded AND cone.
        let mut stack = vec![(root, false)];
        while let Some((id, expanded)) = stack.pop() {
            if self.var_map[id.index()].is_some() {
                continue;
            }
            match aig.node(id) {
                Node::False => {
                    let v = self.const_true_var();
                    // Constant node is the *false* constant: var is true,
                    // node literal false — map node to a dedicated var
                    // forced false.
                    let f = self.fresh();
                    self.pending.add_clause(Clause::unit(f.neg()));
                    self.var_map[id.index()] = Some(f);
                    let _ = v;
                }
                Node::Input(_) | Node::Latch(_) => {
                    panic!("cone reaches unpinned leaf node {id:?}; pin inputs and latches first")
                }
                Node::And(a, b) => {
                    if expanded {
                        let la = self.edge_lit(a);
                        let lb = self.edge_lit(b);
                        let v = self.fresh();
                        self.var_map[id.index()] = Some(v);
                        // v <-> la & lb
                        self.pending.add_clause(Clause::from_lits([v.neg(), la]));
                        self.pending.add_clause(Clause::from_lits([v.neg(), lb]));
                        self.pending
                            .add_clause(Clause::from_lits([v.pos(), !la, !lb]));
                    } else {
                        stack.push((id, true));
                        if !a.is_const() && self.var_map[a.node().index()].is_none() {
                            stack.push((a.node(), false));
                        }
                        if !b.is_const() && self.var_map[b.node().index()].is_none() {
                            stack.push((b.node(), false));
                        }
                    }
                }
            }
        }
        self.var_map[root.index()].expect("root encoded")
    }

    fn edge_lit(&mut self, lit: AigLit) -> Lit {
        if lit.is_const() {
            let v = self.const_true_var();
            return v.pos().apply_sign(!lit.is_inverted());
        }
        let v = self.var_map[lit.node().index()].expect("operand encoded");
        v.lit(lit.is_inverted())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use japrove_sat::{SolveResult, Solver};

    fn load(solver: &mut Solver, cnf: &Cnf) {
        solver.ensure_vars(cnf.num_vars());
        for c in cnf.clauses() {
            solver.add_clause(c.lits().iter().copied());
        }
    }

    #[test]
    fn and_gate_semantics() {
        let mut g = Aig::new();
        let a = g.add_input();
        let b = g.add_input();
        let c = g.and(a, b);
        let mut enc = CnfEncoder::new();
        let va = enc.pin(a.node());
        let vb = enc.pin(b.node());
        let lc = enc.lit_for(&g, c);
        let cnf = enc.take_new_clauses();

        let mut s = Solver::new();
        load(&mut s, &cnf);
        // a=1, b=1 forces c=1.
        assert_eq!(s.solve(&[va.pos(), vb.pos(), !lc]), SolveResult::Unsat);
        // a=0 forces c=0.
        assert_eq!(s.solve(&[va.neg(), lc]), SolveResult::Unsat);
        assert_eq!(s.solve(&[va.pos(), vb.neg(), lc]), SolveResult::Unsat);
        assert_eq!(s.solve(&[va.pos(), vb.pos(), lc]), SolveResult::Sat);
    }

    #[test]
    fn xor_tree_agrees_with_simulation() {
        use crate::Simulator;
        let mut g = Aig::new();
        let xs: Vec<AigLit> = (0..4).map(|_| g.add_input()).collect();
        let mut acc = AigLit::FALSE;
        for &x in &xs {
            acc = g.xor(acc, x);
        }
        let mut enc = CnfEncoder::new();
        let vars: Vec<Var> = xs.iter().map(|l| enc.pin(l.node())).collect();
        let lit = enc.lit_for(&g, acc);
        let cnf = enc.take_new_clauses();
        let mut s = Solver::new();
        load(&mut s, &cnf);

        let mut sim = Simulator::new(&g);
        for bits in 0u64..16 {
            let inputs: Vec<u64> = (0..4).map(|i| (bits >> i) & 1).collect();
            sim.eval(&g, &inputs);
            let expect = sim.value(acc) & 1 == 1;
            let mut assumptions: Vec<Lit> =
                (0..4).map(|i| vars[i].lit((bits >> i) & 1 == 0)).collect();
            assumptions.push(lit.apply_sign(expect));
            assert_eq!(
                s.solve(&assumptions),
                SolveResult::Unsat,
                "cnf disagrees with simulation at {bits:04b}"
            );
        }
    }

    #[test]
    fn constant_edges_encode() {
        let g = Aig::new();
        let mut enc = CnfEncoder::new();
        let t = enc.lit_for(&g, AigLit::TRUE);
        let f = enc.lit_for(&g, AigLit::FALSE);
        let cnf = enc.take_new_clauses();
        let mut s = Solver::new();
        load(&mut s, &cnf);
        assert_eq!(s.solve(&[!t]), SolveResult::Unsat);
        assert_eq!(s.solve(&[f]), SolveResult::Unsat);
        assert_eq!(s.solve(&[t, !f]), SolveResult::Sat);
    }

    #[test]
    #[should_panic(expected = "unpinned leaf")]
    fn unpinned_leaf_panics() {
        let mut g = Aig::new();
        let a = g.add_input();
        let b = g.add_input();
        let c = g.and(a, b);
        let mut enc = CnfEncoder::new();
        let _ = enc.lit_for(&g, c);
    }

    #[test]
    fn take_clauses_is_incremental() {
        let mut g = Aig::new();
        let a = g.add_input();
        let b = g.add_input();
        let c = g.and(a, b);
        let d = g.or(a, b);
        let mut enc = CnfEncoder::new();
        enc.pin(a.node());
        enc.pin(b.node());
        let _ = enc.lit_for(&g, c);
        let first = enc.take_new_clauses();
        assert_eq!(first.num_clauses(), 3);
        let _ = enc.lit_for(&g, d);
        let second = enc.take_new_clauses();
        assert_eq!(second.num_clauses(), 3);
        let _ = enc.lit_for(&g, c); // cached, no new clauses
        assert_eq!(enc.take_new_clauses().num_clauses(), 0);
    }
}
