//! And-Inverter Graphs, AIGER I/O, CNF encoding and simulation.
//!
//! This crate provides the netlist substrate of japrove:
//!
//! * [`Aig`] — a structurally-hashed And-Inverter Graph with inputs,
//!   latches and derived gates (or/xor/mux/...),
//! * [`read_aiger`] / [`write_aiger_ascii`] / [`write_aiger_binary`] —
//!   AIGER 1.9 I/O including the multi-property `B`/`C` sections used
//!   by the HWMCC benchmark suites,
//! * [`CnfEncoder`] — incremental Tseitin encoding of AIG cones,
//! * [`Simulator`] — 64-way bit-parallel simulation (used to replay
//!   and validate counterexample traces),
//! * [`Cone`] — combinational and sequential cone-of-influence.
//!
//! # Examples
//!
//! ```
//! use japrove_aig::{Aig, Simulator};
//!
//! let mut aig = Aig::new();
//! let enable = aig.add_input();
//! let bit = aig.add_latch(false);
//! let next = aig.xor(bit, enable);
//! aig.set_next(bit, next);
//!
//! let mut sim = Simulator::new(&aig);
//! sim.step(&aig, &[1]); // enable high in instance 0
//! assert!(sim.value_bit(bit));
//! ```

mod aig;
mod aiger;
mod cnf;
mod coi;
mod sim;

pub use crate::aig::{Aig, AigLit, Latch, Node, NodeId};
pub use crate::aiger::{
    read_aiger, write_aiger_ascii, write_aiger_binary, AigerModel, ParseAigerError,
};
pub use crate::cnf::CnfEncoder;
pub use crate::coi::Cone;
pub use crate::sim::Simulator;

#[cfg(test)]
mod randomized {
    use super::*;
    use japrove_rng::SplitMix64;

    fn inv(l: AigLit, yes: bool) -> AigLit {
        if yes {
            !l
        } else {
            l
        }
    }

    /// A random sequential circuit description we can replay.
    #[derive(Debug, Clone)]
    struct CircuitPlan {
        num_inputs: usize,
        num_latches: usize,
        /// Gate operands as indices into the growing edge pool.
        gates: Vec<(usize, usize, bool, bool)>,
        /// Next-state function per latch: pool index and inversion.
        nexts: Vec<(usize, bool)>,
        outputs: Vec<(usize, bool)>,
    }

    fn random_plan(rng: &mut SplitMix64) -> CircuitPlan {
        let num_inputs = rng.gen_index(1, 4);
        let num_latches = rng.gen_index(1, 4);
        let ng = rng.gen_index(1, 12);
        let pool0 = 1 + num_inputs + num_latches;
        let gates = (0..ng)
            .map(|_| {
                (
                    rng.gen_index(0, pool0),
                    rng.gen_index(0, pool0),
                    rng.gen_bool(),
                    rng.gen_bool(),
                )
            })
            .collect();
        let nexts = (0..num_latches)
            .map(|_| (rng.gen_index(0, pool0 + ng), rng.gen_bool()))
            .collect();
        let outputs = (0..rng.gen_index(1, 3))
            .map(|_| (rng.gen_index(0, pool0 + ng), rng.gen_bool()))
            .collect();
        CircuitPlan {
            num_inputs,
            num_latches,
            gates,
            nexts,
            outputs,
        }
    }

    fn build(plan: &CircuitPlan) -> AigerModel {
        let mut aig = Aig::new();
        let mut pool: Vec<AigLit> = vec![AigLit::TRUE];
        for _ in 0..plan.num_inputs {
            pool.push(aig.add_input());
        }
        let latches: Vec<AigLit> = (0..plan.num_latches)
            .map(|k| aig.add_latch(k % 2 == 0))
            .collect();
        pool.extend(&latches);
        for &(a, b, na, nb) in &plan.gates {
            let ea = inv(pool[a % pool.len()], na);
            let eb = inv(pool[b % pool.len()], nb);
            let g = aig.and(ea, eb);
            pool.push(g);
        }
        for (k, &(n, invert)) in plan.nexts.iter().enumerate() {
            aig.set_next(latches[k], inv(pool[n % pool.len()], invert));
        }
        let outputs = plan
            .outputs
            .iter()
            .map(|&(n, invert)| inv(pool[n % pool.len()], invert))
            .collect();
        AigerModel {
            aig,
            outputs,
            ..AigerModel::default()
        }
    }

    #[test]
    fn aiger_round_trip_preserves_behaviour() {
        for case in 0..128u64 {
            let mut rng = SplitMix64::seed_from_u64(0xa16e_0000 + case);
            let plan = random_plan(&mut rng);
            let seed = rng.next_u64();
            let model = build(&plan);
            for write_binary in [false, true] {
                let mut data = Vec::new();
                if write_binary {
                    write_aiger_binary(&mut data, &model).expect("write");
                } else {
                    write_aiger_ascii(&mut data, &model).expect("write");
                }
                let back = read_aiger(&data).expect("parse");
                assert_eq!(back.outputs.len(), model.outputs.len(), "case {case}");
                // Compare 8 steps of simulation on pseudo-random inputs.
                let mut sa = Simulator::new(&model.aig);
                let mut sb = Simulator::new(&back.aig);
                let mut x = seed | 1;
                for _ in 0..8 {
                    let inputs: Vec<u64> = (0..model.aig.num_inputs())
                        .map(|_| {
                            x ^= x << 13;
                            x ^= x >> 7;
                            x ^= x << 17;
                            x
                        })
                        .collect();
                    sa.eval(&model.aig, &inputs);
                    sb.eval(&back.aig, &inputs);
                    for (oa, ob) in model.outputs.iter().zip(&back.outputs) {
                        assert_eq!(sa.value(*oa), sb.value(*ob), "case {case}");
                    }
                    sa.step(&model.aig, &inputs);
                    sb.step(&back.aig, &inputs);
                }
            }
        }
    }

    #[test]
    fn cnf_encoding_agrees_with_simulation() {
        use japrove_sat::{SolveResult, Solver};
        for case in 0..128u64 {
            let mut rng = SplitMix64::seed_from_u64(0xc4f0_0000 + case);
            let plan = random_plan(&mut rng);
            let seed = rng.next_u64();
            let model = build(&plan);
            let aig = &model.aig;
            let mut enc = CnfEncoder::new();
            let input_vars: Vec<_> = aig.inputs().iter().map(|&n| enc.pin(n)).collect();
            let latch_vars: Vec<_> = aig.latches().iter().map(|l| enc.pin(l.node)).collect();
            let out_lits: Vec<_> = model.outputs.iter().map(|&o| enc.lit_for(aig, o)).collect();
            let cnf = enc.take_new_clauses();
            let mut solver = Solver::new();
            solver.ensure_vars(cnf.num_vars());
            for c in cnf.clauses() {
                solver.add_clause(c.lits().iter().copied());
            }

            let mut sim = Simulator::new(aig);
            let mut x = seed | 1;
            let inputs: Vec<u64> = (0..aig.num_inputs())
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x
                })
                .collect();
            sim.eval(aig, &inputs);
            // Fix inputs and latch values at bit 0; outputs must match.
            let mut assumptions = Vec::new();
            for (k, v) in input_vars.iter().enumerate() {
                assumptions.push(v.lit(inputs[k] & 1 == 0));
            }
            for (k, v) in latch_vars.iter().enumerate() {
                let reset = aig.latches()[k].reset;
                assumptions.push(v.lit(!reset));
            }
            for (k, &ol) in out_lits.iter().enumerate() {
                let expect = sim.value(model.outputs[k]) & 1 == 1;
                let mut q = assumptions.clone();
                q.push(ol.apply_sign(expect));
                assert_eq!(
                    solver.solve(&q),
                    SolveResult::Unsat,
                    "case {case}: output {k} disagreed with simulation"
                );
            }
        }
    }
}
