//! Bit-parallel simulation of AIGs.

use crate::{Aig, AigLit, Node};

/// A 64-way bit-parallel simulator.
///
/// Each latch and input carries a 64-bit word; bit `k` of every word
/// belongs to the `k`-th simulated instance. Stepping evaluates the
/// combinational logic and registers the next state.
///
/// # Examples
///
/// ```
/// use japrove_aig::{Aig, Simulator};
/// let mut aig = Aig::new();
/// let l = aig.add_latch(false);
/// aig.set_next(l, !l); // toggle every cycle
/// let mut sim = Simulator::new(&aig);
/// assert_eq!(sim.value(l), 0);
/// sim.step(&aig, &[]);
/// assert_eq!(sim.value(l), u64::MAX);
/// ```
#[derive(Clone, Debug)]
pub struct Simulator {
    /// Current value of every node (64 parallel instances).
    values: Vec<u64>,
    state: Vec<u64>,
}

impl Simulator {
    /// Creates a simulator with every latch at its reset value.
    pub fn new(aig: &Aig) -> Self {
        let state = aig
            .latches()
            .iter()
            .map(|l| if l.reset { u64::MAX } else { 0 })
            .collect();
        let mut sim = Simulator {
            values: vec![0; aig.num_nodes()],
            state,
        };
        sim.eval(aig, &vec![0; aig.num_inputs()]);
        sim
    }

    /// Creates a simulator with an explicit initial state (one word per
    /// latch).
    ///
    /// # Panics
    ///
    /// Panics if `state` does not have one word per latch.
    pub fn with_state(aig: &Aig, state: Vec<u64>) -> Self {
        assert_eq!(state.len(), aig.num_latches(), "one word per latch");
        let mut sim = Simulator {
            values: vec![0; aig.num_nodes()],
            state,
        };
        sim.eval(aig, &vec![0; aig.num_inputs()]);
        sim
    }

    /// Evaluates combinational logic for the given input words without
    /// advancing the state.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not have one word per input.
    pub fn eval(&mut self, aig: &Aig, inputs: &[u64]) {
        assert_eq!(inputs.len(), aig.num_inputs(), "one word per input");
        self.values.resize(aig.num_nodes(), 0);
        for idx in 0..aig.num_nodes() {
            self.values[idx] = match aig.node(crate::NodeId(idx as u32)) {
                Node::False => 0,
                Node::Input(k) => inputs[k as usize],
                Node::Latch(k) => self.state[k as usize],
                Node::And(a, b) => self.edge_value(a) & self.edge_value(b),
            };
        }
    }

    /// Evaluates logic for `inputs` and advances every latch to its
    /// next-state value.
    pub fn step(&mut self, aig: &Aig, inputs: &[u64]) {
        self.eval(aig, inputs);
        self.advance(aig);
        // Refresh node values so `value` reflects the new state.
        self.eval(aig, inputs);
    }

    /// Registers the next-state values computed by the last `eval`.
    /// Node values are stale until the next `eval`.
    fn advance(&mut self, aig: &Aig) {
        let next: Vec<u64> = aig
            .latches()
            .iter()
            .map(|l| self.edge_value(l.next))
            .collect();
        self.state = next;
    }

    /// Batched invariant filtering: simulates `steps` cycles across all
    /// 64 instances, clearing `alive[i]` whenever monitor `i` is not
    /// all-ones (i.e. candidate invariant `i` fails in some instance,
    /// including in the current state before the first step). The
    /// `inputs` closure fills one word per design input for each step.
    ///
    /// Monitors are checked on the *pre-step* valuation of every cycle
    /// plus the final post-step state, so a run of `steps` cycles
    /// checks `steps + 1` states. Returns the number of monitors still
    /// alive. This is the mining fast path: one pass kills every dead
    /// candidate of a thousand-monitor batch without per-candidate
    /// simulation.
    ///
    /// # Panics
    ///
    /// Panics if `alive` and `monitors` differ in length.
    pub fn filter_monitors<F>(
        &mut self,
        aig: &Aig,
        monitors: &[AigLit],
        alive: &mut [bool],
        steps: usize,
        mut inputs: F,
    ) -> usize
    where
        F: FnMut(usize, &mut [u64]),
    {
        assert_eq!(monitors.len(), alive.len(), "one flag per monitor");
        let mut words = vec![0u64; aig.num_inputs()];
        for step in 0..=steps {
            inputs(step, &mut words);
            self.eval(aig, &words);
            for (m, a) in monitors.iter().zip(alive.iter_mut()) {
                if *a && self.edge_value(*m) != u64::MAX {
                    *a = false;
                }
            }
            if step < steps {
                self.advance(aig);
            }
        }
        alive.iter().filter(|a| **a).count()
    }

    /// Current word value of an edge.
    pub fn value(&self, lit: AigLit) -> u64 {
        self.edge_value(lit)
    }

    /// Current single-instance Boolean value of an edge (instance 0).
    pub fn value_bit(&self, lit: AigLit) -> bool {
        self.edge_value(lit) & 1 == 1
    }

    /// Current state words, one per latch.
    pub fn state(&self) -> &[u64] {
        &self.state
    }

    fn edge_value(&self, lit: AigLit) -> u64 {
        let v = self.values[lit.node().index()];
        if lit.is_inverted() {
            !v
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combinational_eval() {
        let mut g = Aig::new();
        let a = g.add_input();
        let b = g.add_input();
        let c = g.and(a, b);
        let x = g.xor(a, b);
        let mut sim = Simulator::new(&g);
        sim.eval(&g, &[0b1100, 0b1010]);
        assert_eq!(sim.value(c) & 0xF, 0b1000);
        assert_eq!(sim.value(x) & 0xF, 0b0110);
        assert_eq!(sim.value(!c) & 0xF, 0b0111);
        assert_eq!(sim.value(AigLit::TRUE) & 0xF, 0xF);
    }

    #[test]
    fn counter_steps() {
        // 2-bit counter: b0' = !b0 ; b1' = b1 ^ b0.
        let mut g = Aig::new();
        let b0 = g.add_latch(false);
        let b1 = g.add_latch(false);
        let n1 = g.xor(b1, b0);
        g.set_next(b0, !b0);
        g.set_next(b1, n1);
        let mut sim = Simulator::new(&g);
        let mut seen = Vec::new();
        for _ in 0..5 {
            let v = (sim.value_bit(b1) as u8) << 1 | sim.value_bit(b0) as u8;
            seen.push(v);
            sim.step(&g, &[]);
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 0]);
    }

    #[test]
    fn filter_monitors_kills_false_candidates() {
        // 2-bit counter again; monitor candidates: b0 const-0 (false
        // after one step), b1 const-0 (false after two), !(b0 & b1)
        // (false at count 3), and TRUE (never killed).
        let mut g = Aig::new();
        let b0 = g.add_latch(false);
        let b1 = g.add_latch(false);
        let n1 = g.xor(b1, b0);
        g.set_next(b0, !b0);
        g.set_next(b1, n1);
        let both = g.and(b0, b1);
        let monitors = [!b0, !b1, !both, AigLit::TRUE];

        let mut sim = Simulator::new(&g);
        let mut alive = [true; 4];
        // Zero steps: only the current (reset) state is checked.
        assert_eq!(
            sim.filter_monitors(&g, &monitors, &mut alive, 0, |_, _| {}),
            4
        );

        let mut sim = Simulator::new(&g);
        let mut alive = [true; 4];
        assert_eq!(
            sim.filter_monitors(&g, &monitors, &mut alive, 1, |_, _| {}),
            3
        );
        assert_eq!(alive, [false, true, true, true]);

        let mut sim = Simulator::new(&g);
        let mut alive = [true; 4];
        assert_eq!(
            sim.filter_monitors(&g, &monitors, &mut alive, 3, |_, _| {}),
            1
        );
        assert_eq!(alive, [false, false, false, true]);
    }

    #[test]
    fn filter_monitors_sees_per_instance_inputs() {
        // Latch goes high iff its input fires; distinct instances get
        // distinct input bits, and one bad instance kills the monitor.
        let mut g = Aig::new();
        let i = g.add_input();
        let l = g.add_latch(false);
        g.set_next(l, i);
        let mut sim = Simulator::new(&g);
        let mut alive = [true];
        let n = sim.filter_monitors(&g, &[!l], &mut alive, 2, |_, w| {
            w[0] = 1 << 17; // only instance 17 ever raises the input
        });
        assert_eq!(n, 0, "instance 17 falsifies const-0 of the latch");
    }

    #[test]
    fn explicit_initial_state() {
        let mut g = Aig::new();
        let l = g.add_latch(false);
        g.set_next(l, l);
        let sim = Simulator::with_state(&g, vec![u64::MAX]);
        assert!(sim.value_bit(l));
    }
}
