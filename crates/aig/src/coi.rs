//! Cone-of-influence computation.

use crate::{Aig, AigLit, Node, NodeId};

/// The cone of influence of a set of root edges.
///
/// Computed either combinationally (stopping at latches and inputs) or
/// sequentially (following latch next-state functions to a fixpoint).
/// Used by the benchmark generators and by structural statistics; also
/// the basis of the "similar cones" discussion in the related-work
/// section of the paper.
#[derive(Clone, Debug)]
pub struct Cone {
    in_cone: Vec<bool>,
    num_latches: usize,
    num_inputs: usize,
}

impl Cone {
    /// Combinational cone: transitive fanin of `roots` up to inputs and
    /// latch outputs.
    pub fn combinational<I: IntoIterator<Item = AigLit>>(aig: &Aig, roots: I) -> Self {
        Self::compute(aig, roots, false)
    }

    /// Sequential cone: like combinational, but latches pull in their
    /// next-state cones until a fixpoint is reached.
    pub fn sequential<I: IntoIterator<Item = AigLit>>(aig: &Aig, roots: I) -> Self {
        Self::compute(aig, roots, true)
    }

    fn compute<I: IntoIterator<Item = AigLit>>(aig: &Aig, roots: I, through_latches: bool) -> Self {
        let mut in_cone = vec![false; aig.num_nodes()];
        let mut stack: Vec<NodeId> = roots.into_iter().map(AigLit::node).collect();
        let mut num_latches = 0;
        let mut num_inputs = 0;
        while let Some(id) = stack.pop() {
            if in_cone[id.index()] {
                continue;
            }
            in_cone[id.index()] = true;
            match aig.node(id) {
                Node::False => {}
                Node::Input(_) => num_inputs += 1,
                Node::Latch(k) => {
                    num_latches += 1;
                    if through_latches {
                        stack.push(aig.latches()[k as usize].next.node());
                    }
                }
                Node::And(a, b) => {
                    stack.push(a.node());
                    stack.push(b.node());
                }
            }
        }
        Cone {
            in_cone,
            num_latches,
            num_inputs,
        }
    }

    /// Whether `id` lies in the cone.
    pub fn contains(&self, id: NodeId) -> bool {
        self.in_cone.get(id.index()).copied().unwrap_or(false)
    }

    /// Number of latches in the cone.
    pub fn num_latches(&self) -> usize {
        self.num_latches
    }

    /// Number of inputs in the cone.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Total number of nodes in the cone.
    pub fn size(&self) -> usize {
        self.in_cone.iter().filter(|&&b| b).count()
    }

    /// Number of nodes lying in both this cone and `other`.
    ///
    /// Both cones must be computed over the same graph (they then have
    /// the same node-id space); the count is the size of the structural
    /// intersection, the raw ingredient of the shared-logic affinity
    /// signal used by property clustering.
    ///
    /// # Examples
    ///
    /// ```
    /// use japrove_aig::{Aig, Cone};
    /// let mut g = Aig::new();
    /// let a = g.add_input();
    /// let b = g.add_input();
    /// let shared = g.and(a, b);
    /// let left = g.and(shared, a);
    /// let right = g.and(shared, b);
    /// let cl = Cone::combinational(&g, [left]);
    /// let cr = Cone::combinational(&g, [right]);
    /// // Both cones contain the shared AND plus both inputs.
    /// assert_eq!(cl.overlap(&cr), 3);
    /// assert_eq!(cl.overlap(&cl), cl.size());
    /// ```
    pub fn overlap(&self, other: &Cone) -> usize {
        self.in_cone
            .iter()
            .zip(&other.in_cone)
            .filter(|&(&a, &b)| a && b)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combinational_stops_at_latches() {
        let mut g = Aig::new();
        let l = g.add_latch(false);
        let i = g.add_input();
        let n = g.and(l, i);
        g.set_next(l, n);
        let unrelated = g.add_input();
        let cone = Cone::combinational(&g, [l]);
        assert!(cone.contains(l.node()));
        assert!(!cone.contains(n.node()));
        assert!(!cone.contains(unrelated.node()));
        assert_eq!(cone.num_latches(), 1);
        assert_eq!(cone.num_inputs(), 0);
    }

    #[test]
    fn sequential_follows_next_state() {
        let mut g = Aig::new();
        let l = g.add_latch(false);
        let i = g.add_input();
        let n = g.and(l, i);
        g.set_next(l, n);
        let cone = Cone::sequential(&g, [l]);
        assert!(cone.contains(n.node()));
        assert_eq!(cone.num_inputs(), 1);
        assert_eq!(cone.size(), 3);
    }

    #[test]
    fn overlap_counts_shared_nodes() {
        let mut g = Aig::new();
        let l1 = g.add_latch(false);
        let l2 = g.add_latch(false);
        let i = g.add_input();
        let n1 = g.and(l1, i);
        let n2 = g.and(l2, i);
        g.set_next(l1, n1);
        g.set_next(l2, n2);
        let c1 = Cone::sequential(&g, [l1]);
        let c2 = Cone::sequential(&g, [l2]);
        // Shared: the input node only.
        assert_eq!(c1.overlap(&c2), 1);
        assert_eq!(c2.overlap(&c1), 1);
        assert_eq!(c1.overlap(&c1), c1.size());
    }

    #[test]
    fn disjoint_modules_have_disjoint_cones() {
        let mut g = Aig::new();
        let l1 = g.add_latch(false);
        let l2 = g.add_latch(false);
        g.set_next(l1, !l1);
        g.set_next(l2, !l2);
        let c1 = Cone::sequential(&g, [l1]);
        assert!(c1.contains(l1.node()));
        assert!(!c1.contains(l2.node()));
    }
}
