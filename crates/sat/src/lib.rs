//! An incremental CDCL SAT solver built for the japrove model checkers.
//!
//! The solver implements the classic MiniSat architecture with the
//! refinements modern IC3 implementations rely on:
//!
//! * two-watched-literal unit propagation with blocker literals,
//! * first-UIP clause learning with local minimization,
//! * VSIDS decision heuristics with phase saving,
//! * Luby restarts and LBD/activity-guided learnt-clause reduction,
//! * an *assumption* interface with final-conflict analysis, yielding
//!   unsatisfiable cores over the assumption set — the primitive that
//!   powers IC3 generalization and state lifting,
//! * per-call [`Budget`]s (conflicts and/or wall clock), used by the
//!   multi-property engines to implement per-property time limits,
//! * the [`SatBackend`] trait and [`BackendChoice`] registry: the
//!   engines talk to the solver only through this object-safe
//!   interface, so every property of a multi-property run can be
//!   assigned its own backend ([`Solver`], the chronological
//!   [`Solver::chronological`] variant, or — behind the `cadical`
//!   feature — the CaDiCaL FFI slot).
//!
//! # Examples
//!
//! ```
//! use japrove_sat::{Solver, SolveResult};
//!
//! let mut solver = Solver::new();
//! let x = solver.new_var();
//! let y = solver.new_var();
//! solver.add_clause([x.pos(), y.pos()]);
//! solver.add_clause([x.neg(), y.pos()]);
//! assert_eq!(solver.solve(&[]), SolveResult::Sat);
//! assert!(solver.model_value(y.pos()).is_true());
//! // Under the assumption !y the formula is unsatisfiable:
//! assert_eq!(solver.solve(&[y.neg()]), SolveResult::Unsat);
//! assert_eq!(solver.unsat_core(), &[y.neg()]);
//! ```

mod backend;
mod budget;
#[cfg(feature = "cadical")]
pub mod cadical;
mod heap;
mod solver;
mod stats;
mod store;

pub use backend::{BackendChoice, SatBackend};
pub use budget::Budget;
pub use solver::{SolveResult, Solver};
pub use stats::SolverStats;

#[cfg(test)]
mod randomized {
    use super::*;
    use japrove_logic::{Clause, Cnf, Lit, Var};
    use japrove_rng::SplitMix64;

    /// Brute-force satisfiability over up to 2^n assignments.
    fn brute_force_sat(cnf: &Cnf) -> bool {
        let n = cnf.num_vars();
        assert!(n <= 16, "brute force limited to 16 vars");
        'outer: for bits in 0u32..(1 << n) {
            for clause in cnf.clauses() {
                let sat = clause.lits().iter().any(|l| {
                    let val = (bits >> l.var().index()) & 1 == 1;
                    val != l.is_negated()
                });
                if !sat {
                    continue 'outer;
                }
            }
            return true;
        }
        false
    }

    /// A random CNF over `max_vars` variables with 1..=`max_clauses`
    /// clauses of 1..=4 literals each.
    fn random_cnf(rng: &mut SplitMix64, max_vars: u32, max_clauses: usize) -> Cnf {
        let num_clauses = rng.gen_index(1, max_clauses + 1);
        let clauses: Vec<Clause> = (0..num_clauses)
            .map(|_| {
                let len = rng.gen_index(1, 5);
                Clause::from_lits((0..len).map(|_| {
                    Var::new(rng.gen_range(0, u64::from(max_vars)) as u32).lit(rng.gen_bool())
                }))
            })
            .collect();
        let mut cnf = Cnf::with_vars(max_vars);
        cnf.extend(clauses);
        cnf
    }

    #[test]
    fn solver_agrees_with_brute_force() {
        for case in 0..256u64 {
            let mut rng = SplitMix64::seed_from_u64(0xb1ce_0000 + case);
            let cnf = random_cnf(&mut rng, 8, 24);
            let mut s = Solver::new();
            s.ensure_vars(cnf.num_vars());
            for c in cnf.clauses() {
                s.add_clause(c.lits().iter().copied());
            }
            let result = s.solve(&[]);
            let expected = brute_force_sat(&cnf);
            assert_eq!(result == SolveResult::Sat, expected, "case {case}");
            if !expected {
                assert_eq!(result, SolveResult::Unsat, "case {case}");
            }
            if result == SolveResult::Sat {
                // Model must actually satisfy the formula.
                for c in cnf.clauses() {
                    let ok = c.lits().iter().any(|&l| !s.model_value(l).is_false());
                    assert!(ok, "case {case}: model falsifies clause {c:?}");
                }
            }
        }
    }

    #[test]
    fn unsat_core_is_sound() {
        for case in 0..256u64 {
            let mut rng = SplitMix64::seed_from_u64(0xc04e_0000 + case);
            let cnf = random_cnf(&mut rng, 8, 16);
            let mut s = Solver::new();
            s.ensure_vars(cnf.num_vars().max(8));
            for c in cnf.clauses() {
                s.add_clause(c.lits().iter().copied());
            }
            // Random assumptions, one literal per variable at most so
            // the query stays meaningful.
            let mut clean: Vec<Lit> = Vec::new();
            for _ in 0..rng.gen_index(1, 6) {
                let l = Var::new(rng.gen_range(0, 8) as u32).lit(rng.gen_bool());
                if !clean.iter().any(|&c| c.var() == l.var()) {
                    clean.push(l);
                }
            }
            if s.solve(&clean) == SolveResult::Unsat {
                let core = s.unsat_core().to_vec();
                for l in &core {
                    assert!(clean.contains(l), "case {case}");
                }
                // Solving just the core must still be unsat.
                assert_eq!(s.solve(&core), SolveResult::Unsat, "case {case}");
            }
        }
    }

    #[test]
    fn chronological_backtracking_agrees_with_backjumping() {
        // Verdict parity of the two CDCL backends on random CNFs,
        // including under assumptions; models are checked, cores must
        // be sound in both modes.
        for case in 0..256u64 {
            let mut rng = SplitMix64::seed_from_u64(0xc4_0000 + case);
            let cnf = random_cnf(&mut rng, 8, 24);
            let mut assumptions: Vec<Lit> = Vec::new();
            for _ in 0..rng.gen_index(0, 4) {
                let l = Var::new(rng.gen_range(0, 8) as u32).lit(rng.gen_bool());
                if !assumptions.iter().any(|&c| c.var() == l.var()) {
                    assumptions.push(l);
                }
            }
            let mut verdicts = Vec::new();
            for chrono in [false, true] {
                let mut s = if chrono {
                    Solver::chronological()
                } else {
                    Solver::new()
                };
                s.ensure_vars(cnf.num_vars().max(8));
                for c in cnf.clauses() {
                    s.add_clause(c.lits().iter().copied());
                }
                let result = s.solve(&assumptions);
                if result == SolveResult::Sat {
                    for c in cnf.clauses() {
                        let ok = c.lits().iter().any(|&l| !s.model_value(l).is_false());
                        assert!(ok, "case {case} chrono={chrono}: model falsifies {c:?}");
                    }
                } else {
                    let core = s.unsat_core().to_vec();
                    assert!(core.iter().all(|l| assumptions.contains(l)), "case {case}");
                    assert_eq!(s.solve(&core), SolveResult::Unsat, "case {case}");
                }
                verdicts.push(result);
            }
            assert_eq!(verdicts[0], verdicts[1], "case {case}: backends disagree");
        }
    }

    #[test]
    fn incremental_equals_from_scratch() {
        for case in 0..256u64 {
            let mut rng = SplitMix64::seed_from_u64(0x14c0_0000 + case);
            let cnf = random_cnf(&mut rng, 8, 20);
            // Add clauses one at a time with a solve call in between;
            // the final verdict must match a fresh solver.
            let mut inc = Solver::new();
            inc.ensure_vars(cnf.num_vars());
            for c in cnf.clauses() {
                inc.add_clause(c.lits().iter().copied());
                let _ = inc.solve(&[]);
            }
            let final_inc = inc.solve(&[]);

            let mut fresh = Solver::new();
            fresh.ensure_vars(cnf.num_vars());
            for c in cnf.clauses() {
                fresh.add_clause(c.lits().iter().copied());
            }
            assert_eq!(final_inc, fresh.solve(&[]), "case {case}");
        }
    }
}
