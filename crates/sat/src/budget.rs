//! Search budgets: conflict counts and wall-clock deadlines.

use std::time::{Duration, Instant};

/// Limits applied to a single [`crate::Solver::solve`] call.
///
/// A budget combines an optional conflict allowance with an optional
/// wall-clock deadline; whichever is hit first aborts the search with
/// [`crate::SolveResult::Unknown`].
///
/// # Examples
///
/// ```
/// use japrove_sat::Budget;
/// use std::time::Duration;
///
/// let b = Budget::conflicts(10_000).with_timeout(Duration::from_millis(50));
/// assert!(!b.is_unlimited());
/// assert!(Budget::unlimited().is_unlimited());
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Budget {
    conflict_limit: Option<u64>,
    deadline: Option<Instant>,
    /// Conflict counter value when the budget was armed.
    base_conflicts: u64,
}

impl Budget {
    /// No limits.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Limits the number of conflicts for the next call.
    pub fn conflicts(limit: u64) -> Self {
        Budget {
            conflict_limit: Some(limit),
            ..Budget::default()
        }
    }

    /// Adds a wall-clock timeout measured from now.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Adds an absolute deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Creates a budget with only a wall-clock timeout.
    pub fn timeout(timeout: Duration) -> Self {
        Budget::unlimited().with_timeout(timeout)
    }

    /// Returns `true` if no limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.conflict_limit.is_none() && self.deadline.is_none()
    }

    /// Returns `true` once the wall-clock deadline (if any) has passed.
    ///
    /// Engines embedding the solver use this for their own outer loops;
    /// the conflict allowance is tracked inside the solver.
    pub fn deadline_passed(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Re-arms the conflict limit relative to the current counter.
    pub(crate) fn rebase(&mut self, current_conflicts: u64) {
        self.base_conflicts = current_conflicts;
    }

    /// Returns `true` once the conflict allowance is spent given the
    /// solver's cumulative conflict counter. Cheap (no clock read), so
    /// the solver checks it after every conflict — a conflict limit of
    /// `n` stops the search after exactly `n` conflicts.
    pub(crate) fn conflicts_exhausted(&self, total_conflicts: u64) -> bool {
        self.conflict_limit
            .is_some_and(|limit| total_conflicts.saturating_sub(self.base_conflicts) >= limit)
    }

    /// Returns `true` once the budget is spent given the solver's
    /// cumulative conflict counter.
    pub(crate) fn exhausted(&self, total_conflicts: u64) -> bool {
        if self.conflicts_exhausted(total_conflicts) {
            return true;
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let b = Budget::unlimited();
        assert!(!b.exhausted(u64::MAX));
    }

    #[test]
    fn conflict_budget_counts_relative_to_base() {
        let mut b = Budget::conflicts(10);
        b.rebase(100);
        assert!(!b.exhausted(105));
        assert!(b.exhausted(110));
        assert!(!b.conflicts_exhausted(109));
        assert!(b.conflicts_exhausted(110));
    }

    #[test]
    fn deadline_only_budget_never_exhausts_conflicts() {
        let b = Budget::unlimited().with_deadline(Instant::now() - Duration::from_secs(1));
        assert!(!b.conflicts_exhausted(u64::MAX));
        assert!(b.exhausted(0));
    }

    #[test]
    fn elapsed_deadline_exhausts() {
        let b = Budget::unlimited().with_deadline(Instant::now() - Duration::from_secs(1));
        assert!(b.exhausted(0));
    }
}
