//! The CaDiCaL FFI slot (feature `cadical`).
//!
//! This build environment has no network access and no vendored
//! CaDiCaL sources, so the real FFI cannot be linked yet. This module
//! keeps the *selection path* compiled and tested instead: it defines
//! the backend type, its [`SatBackend`] implementation and its
//! [`crate::BackendChoice::Cadical`] registry entry, and CI builds the
//! feature so the wiring cannot rot.
//!
//! To drop in the real solver, replace the delegating fields of
//! [`CadicalBackend`] with an owned `cadical::Solver` (or raw
//! `ccadical_*` FFI handle) and map the trait methods onto
//! `add`/`assume`/`solve`/`val`/`failed`; the trait surface was chosen
//! so this mapping is one-to-one. Everything upstream — engines,
//! drivers, CLI `--backend cadical` — already works against the trait
//! and needs no change.

use crate::{Budget, SatBackend, SolveResult, Solver, SolverStats};
use japrove_logic::{LBool, Lit, Var};

/// Placeholder for a CaDiCaL-backed solver.
///
/// Until the FFI lands this delegates to the in-tree CDCL solver, so
/// selecting it is sound (identical verdicts) while exercising every
/// piece of the backend plumbing.
#[derive(Debug)]
pub struct CadicalBackend {
    inner: Solver,
}

impl CadicalBackend {
    /// Creates the stub backend.
    pub fn new() -> Self {
        CadicalBackend {
            inner: Solver::new(),
        }
    }
}

impl Default for CadicalBackend {
    fn default() -> Self {
        CadicalBackend::new()
    }
}

impl SatBackend for CadicalBackend {
    fn backend_name(&self) -> &'static str {
        "cadical"
    }

    fn new_var(&mut self) -> Var {
        self.inner.new_var()
    }

    fn ensure_vars(&mut self, n: u32) {
        self.inner.ensure_vars(n);
    }

    fn num_vars(&self) -> u32 {
        self.inner.num_vars()
    }

    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        self.inner.add_clause(lits.iter().copied())
    }

    fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.inner.solve(assumptions)
    }

    fn model_value(&self, lit: Lit) -> LBool {
        self.inner.model_value(lit)
    }

    fn unsat_core(&self) -> &[Lit] {
        self.inner.unsat_core()
    }

    fn core_contains(&self, lit: Lit) -> bool {
        self.inner.core_contains(lit)
    }

    fn set_budget(&mut self, budget: Budget) {
        self.inner.set_budget(budget);
    }

    fn stats(&self) -> &SolverStats {
        self.inner.stats()
    }

    fn is_ok(&self) -> bool {
        self.inner.is_ok()
    }

    fn simplify(&mut self) {
        self.inner.simplify();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BackendChoice;

    #[test]
    fn cadical_slot_is_registered_and_solves() {
        assert!(BackendChoice::ALL.contains(&BackendChoice::Cadical));
        let mut s = BackendChoice::Cadical.build();
        assert_eq!(s.backend_name(), "cadical");
        let v = s.new_var();
        s.add_clause(&[v.pos()]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.solve(&[v.neg()]), SolveResult::Unsat);
    }
}
