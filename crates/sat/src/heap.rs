//! Indexed max-heap ordering variables by VSIDS activity.

use japrove_logic::Var;

/// A binary max-heap over variables keyed by an external activity
/// array, supporting `decrease`/`increase` notifications in `O(log n)`.
///
/// Used as the VSIDS decision order of the solver: the most active
/// unassigned variable is popped first.
#[derive(Debug, Default, Clone)]
pub(crate) struct VarOrder {
    /// Heap of variable indices.
    heap: Vec<u32>,
    /// Position of each variable in `heap`, or `NONE`.
    position: Vec<u32>,
}

const NONE: u32 = u32::MAX;

impl VarOrder {
    /// Registers a new variable (initially outside the heap).
    pub fn grow_to(&mut self, num_vars: usize) {
        if self.position.len() < num_vars {
            self.position.resize(num_vars, NONE);
        }
    }

    pub fn contains(&self, var: Var) -> bool {
        self.position
            .get(var.index() as usize)
            .is_some_and(|&p| p != NONE)
    }

    /// Inserts `var`; no-op if already present.
    pub fn insert(&mut self, var: Var, activity: &[f64]) {
        self.grow_to(var.index() as usize + 1);
        if self.contains(var) {
            return;
        }
        let i = self.heap.len();
        self.heap.push(var.index());
        self.position[var.index() as usize] = i as u32;
        self.sift_up(i, activity);
    }

    /// Pops the most active variable.
    pub fn pop(&mut self, activity: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().expect("non-empty");
        self.position[top as usize] = NONE;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.position[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(Var::new(top))
    }

    /// Restores heap order after `var`'s activity increased.
    pub fn bumped(&mut self, var: Var, activity: &[f64]) {
        if let Some(&p) = self.position.get(var.index() as usize) {
            if p != NONE {
                self.sift_up(p as usize, activity);
            }
        }
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        let v = self.heap[i];
        while i > 0 {
            let parent = (i - 1) >> 1;
            let pv = self.heap[parent];
            if act[v as usize] <= act[pv as usize] {
                break;
            }
            self.heap[i] = pv;
            self.position[pv as usize] = i as u32;
            i = parent;
        }
        self.heap[i] = v;
        self.position[v as usize] = i as u32;
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        let v = self.heap[i];
        let len = self.heap.len();
        loop {
            let left = 2 * i + 1;
            if left >= len {
                break;
            }
            let right = left + 1;
            let child =
                if right < len && act[self.heap[right] as usize] > act[self.heap[left] as usize] {
                    right
                } else {
                    left
                };
            let cv = self.heap[child];
            if act[cv as usize] <= act[v as usize] {
                break;
            }
            self.heap[i] = cv;
            self.position[cv as usize] = i as u32;
            i = child;
        }
        self.heap[i] = v;
        self.position[v as usize] = i as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let act = vec![0.5, 3.0, 1.0, 2.0];
        let mut h = VarOrder::default();
        for i in 0..4 {
            h.insert(Var::new(i), &act);
        }
        let order: Vec<u32> = std::iter::from_fn(|| h.pop(&act).map(Var::index)).collect();
        assert_eq!(order, vec![1, 3, 2, 0]);
    }

    #[test]
    fn reinsert_after_pop() {
        let act = vec![1.0, 2.0];
        let mut h = VarOrder::default();
        h.insert(Var::new(0), &act);
        h.insert(Var::new(1), &act);
        let first = h.pop(&act).expect("non-empty");
        assert_eq!(first.index(), 1);
        h.insert(first, &act);
        assert!(h.contains(first));
        assert_eq!(h.pop(&act).expect("non-empty").index(), 1);
    }

    #[test]
    fn bump_reorders() {
        let mut act = vec![1.0, 2.0, 3.0];
        let mut h = VarOrder::default();
        for i in 0..3 {
            h.insert(Var::new(i), &act);
        }
        act[0] = 10.0;
        h.bumped(Var::new(0), &act);
        assert_eq!(h.pop(&act).expect("non-empty").index(), 0);
    }

    #[test]
    fn duplicate_insert_ignored() {
        let act = vec![1.0];
        let mut h = VarOrder::default();
        h.insert(Var::new(0), &act);
        h.insert(Var::new(0), &act);
        assert_eq!(h.pop(&act).expect("first").index(), 0);
        assert!(h.pop(&act).is_none());
    }
}
