//! The incremental CDCL solver.

use crate::heap::VarOrder;
use crate::store::{ClauseRef, ClauseStore};
use crate::{Budget, SolverStats};
use japrove_logic::{Assignment, LBool, Lit, Var};
use japrove_obs::{EventKind, Journal, SAMPLE_INTERVAL};

/// Outcome of a [`Solver::solve`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveResult {
    /// A satisfying assignment was found; query it with
    /// [`Solver::model_value`].
    Sat,
    /// The formula is unsatisfiable under the given assumptions; the
    /// involved assumptions are available via [`Solver::unsat_core`].
    Unsat,
    /// The search budget (conflicts or wall clock) was exhausted.
    Unknown,
}

impl SolveResult {
    /// Returns `true` for [`SolveResult::Sat`].
    pub fn is_sat(self) -> bool {
        self == SolveResult::Sat
    }

    /// Returns `true` for [`SolveResult::Unsat`].
    pub fn is_unsat(self) -> bool {
        self == SolveResult::Unsat
    }
}

#[derive(Clone, Copy, Debug)]
struct Watcher {
    cref: ClauseRef,
    blocker: Lit,
}

const VAR_DECAY: f64 = 0.95;
const CLA_DECAY: f32 = 0.999;
const RESTART_BASE: u64 = 100;

/// An incremental CDCL SAT solver.
///
/// Implements the standard architecture: two-watched-literal
/// propagation, first-UIP conflict analysis with clause minimization,
/// VSIDS decision order with phase saving, Luby restarts, LBD-aware
/// learnt-clause reduction and an assumption interface with
/// final-conflict (unsat core) extraction.
///
/// # Examples
///
/// ```
/// use japrove_sat::{Solver, SolveResult};
/// use japrove_logic::Lit;
///
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause([a.pos(), b.pos()]);
/// s.add_clause([a.neg()]);
/// assert_eq!(s.solve(&[]), SolveResult::Sat);
/// assert!(s.model_value(b.pos()).is_true());
/// assert_eq!(s.solve(&[b.neg()]), SolveResult::Unsat);
/// assert_eq!(s.unsat_core(), &[b.neg()]);
/// ```
#[derive(Debug, Default, Clone)]
pub struct Solver {
    store: ClauseStore,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    phase: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    order: VarOrder,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f32,
    seen: Vec<bool>,
    /// Scratch for conflict analysis.
    analyze_clear: Vec<Var>,
    model: Assignment,
    core: Vec<Lit>,
    /// `false` once an unconditional contradiction was derived.
    ok: bool,
    budget: Budget,
    stats: SolverStats,
    max_learnts: f64,
    /// Observability sink for restart/reduction/progress samples;
    /// disabled (free) unless a driver attaches an enabled journal.
    journal: Journal,
    /// Backtrack chronologically (one level per conflict) instead of
    /// backjumping to the asserting level.
    chrono: bool,
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            var_inc: 1.0,
            cla_inc: 1.0,
            ok: true,
            max_learnts: 4000.0,
            ..Solver::default()
        }
    }

    /// Creates an empty solver that backtracks *chronologically*: after
    /// a conflict it undoes a single decision level instead of
    /// backjumping to the asserting level (Nadel & Ryvchin, SAT'18).
    ///
    /// The learnt clause stays asserting — all its non-UIP literals are
    /// assigned at or below the asserting level, which is at or below
    /// the new decision level — so learning, cores and models are
    /// unaffected; only the search trajectory differs. This is the
    /// `ChronoCdcl` backend of [`crate::BackendChoice`].
    pub fn chronological() -> Self {
        Solver {
            chrono: true,
            ..Solver::new()
        }
    }

    /// `true` if this solver backtracks chronologically.
    pub fn is_chronological(&self) -> bool {
        self.chrono
    }

    /// Attaches an observability journal. The solver reports restarts,
    /// learnt-database reductions and a progress sample every
    /// [`japrove_obs::SAMPLE_INTERVAL`] conflicts; with the default
    /// disabled journal every report site is a single pointer check.
    pub fn set_journal(&mut self, journal: Journal) {
        self.journal = journal;
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::new(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.grow_to(self.assigns.len());
        self.order.insert(v, &self.activity);
        v
    }

    /// Ensures variables `0..n` exist.
    pub fn ensure_vars(&mut self, n: u32) {
        while (self.assigns.len() as u32) < n {
            self.new_var();
        }
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> u32 {
        self.assigns.len() as u32
    }

    /// Number of problem (non-learnt) clauses, excluding units.
    pub fn num_clauses(&self) -> usize {
        self.store.num_problem()
    }

    /// Number of currently retained learnt clauses.
    pub fn num_learnts(&self) -> usize {
        self.store.num_learnt()
    }

    /// Cumulative statistics of this solver instance.
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }

    /// Sets the budget applied to subsequent [`Solver::solve`] calls.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// Returns `false` once the clause set is known unsatisfiable
    /// regardless of assumptions.
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// Adds a clause over existing variables.
    ///
    /// Returns `false` if the solver is already in an unconditionally
    /// unsatisfiable state after the addition (e.g. the clause is empty
    /// under the level-0 assignment).
    ///
    /// # Panics
    ///
    /// Panics if a literal refers to a variable that was never
    /// allocated with [`Solver::new_var`]/[`Solver::ensure_vars`].
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> bool {
        if !self.ok {
            return false;
        }
        self.cancel_until(0);
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        for &l in &lits {
            assert!(
                (l.var().index() as usize) < self.assigns.len(),
                "literal {l:?} refers to an unallocated variable"
            );
        }
        lits.sort_unstable();
        lits.dedup();
        // Detect tautologies and drop level-0-false literals.
        let mut write = 0;
        let mut prev: Option<Lit> = None;
        for i in 0..lits.len() {
            let l = lits[i];
            if let Some(p) = prev {
                if p.var() == l.var() {
                    return true; // tautology: l and !l both present
                }
            }
            prev = Some(l);
            match self.lit_value(l) {
                LBool::True if self.level[l.var().index() as usize] == 0 => return true,
                LBool::False if self.level[l.var().index() as usize] == 0 => {}
                _ => {
                    lits[write] = l;
                    write += 1;
                }
            }
        }
        lits.truncate(write);
        match lits.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(lits[0], None);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                let cref = self.store.add(lits, false, 0);
                self.attach(cref);
                true
            }
        }
    }

    /// Solves under the given assumptions.
    ///
    /// On [`SolveResult::Sat`] the model is kept until the next call;
    /// on [`SolveResult::Unsat`] the subset of assumptions responsible
    /// is available from [`Solver::unsat_core`].
    pub fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.stats.solves += 1;
        self.core.clear();
        if !self.ok {
            return SolveResult::Unsat;
        }
        self.cancel_until(0);
        if self.propagate().is_some() {
            self.ok = false;
            return SolveResult::Unsat;
        }
        let mut budget = self.budget;
        budget.rebase(self.stats.conflicts);
        let mut restarts: u64 = 0;
        loop {
            let limit = RESTART_BASE * luby(restarts);
            match self.search(assumptions, limit, &budget) {
                SearchOutcome::Sat => {
                    self.save_model();
                    self.cancel_until(0);
                    return SolveResult::Sat;
                }
                SearchOutcome::Unsat => {
                    self.cancel_until(0);
                    return SolveResult::Unsat;
                }
                SearchOutcome::Restart => {
                    restarts += 1;
                    self.stats.restarts += 1;
                    self.journal.event(EventKind::Restart {
                        conflicts: self.stats.conflicts,
                    });
                    self.cancel_until(0);
                }
                SearchOutcome::Budget => {
                    self.cancel_until(0);
                    return SolveResult::Unknown;
                }
            }
        }
    }

    /// Value of `lit` in the most recent satisfying model.
    ///
    /// Returns [`LBool::Undef`] for variables the search never
    /// assigned (any value satisfies).
    pub fn model_value(&self, lit: Lit) -> LBool {
        self.model.lit_value(lit)
    }

    /// The most recent satisfying model.
    pub fn model(&self) -> &Assignment {
        &self.model
    }

    /// Subset of assumptions proved jointly unsatisfiable by the most
    /// recent [`SolveResult::Unsat`] answer (empty if the clause set
    /// itself is unsatisfiable).
    pub fn unsat_core(&self) -> &[Lit] {
        &self.core
    }

    /// Returns `true` if `lit` occurs in the current unsat core.
    pub fn core_contains(&self, lit: Lit) -> bool {
        self.core.contains(&lit)
    }

    /// Removes clauses satisfied at level 0. Cheap housekeeping for
    /// long-lived incremental solvers.
    pub fn simplify(&mut self) {
        if !self.ok {
            return;
        }
        self.cancel_until(0);
        let refs: Vec<ClauseRef> = self.store.refs().collect();
        for cref in refs {
            let satisfied =
                self.store.get(cref).lits.iter().any(|&l| {
                    self.lit_value(l).is_true() && self.level[l.var().index() as usize] == 0
                });
            if satisfied && !self.locked(cref) {
                self.detach(cref);
                self.store.remove(cref);
            }
        }
    }

    // ----- internals ---------------------------------------------------

    #[inline]
    fn lit_value(&self, lit: Lit) -> LBool {
        self.assigns[lit.var().index() as usize].apply_sign(lit.is_negated())
    }

    #[inline]
    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    fn attach(&mut self, cref: ClauseRef) {
        let (l0, l1) = {
            let lits = &self.store.get(cref).lits;
            (lits[0], lits[1])
        };
        self.watches[(!l0).code() as usize].push(Watcher { cref, blocker: l1 });
        self.watches[(!l1).code() as usize].push(Watcher { cref, blocker: l0 });
    }

    fn detach(&mut self, cref: ClauseRef) {
        let (l0, l1) = {
            let lits = &self.store.get(cref).lits;
            (lits[0], lits[1])
        };
        self.watches[(!l0).code() as usize].retain(|w| w.cref != cref);
        self.watches[(!l1).code() as usize].retain(|w| w.cref != cref);
    }

    fn locked(&self, cref: ClauseRef) -> bool {
        let l0 = self.store.get(cref).lits[0];
        self.lit_value(l0).is_true() && self.reason[l0.var().index() as usize] == Some(cref)
    }

    fn enqueue(&mut self, lit: Lit, reason: Option<ClauseRef>) {
        debug_assert!(self.lit_value(lit).is_undef());
        let v = lit.var().index() as usize;
        self.assigns[v] = LBool::from_bool(lit.is_positive());
        self.phase[v] = lit.is_positive();
        self.level[v] = self.decision_level() as u32;
        self.reason[v] = reason;
        self.trail.push(lit);
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    fn cancel_until(&mut self, level: usize) {
        if self.decision_level() <= level {
            return;
        }
        let lim = self.trail_lim[level];
        for i in (lim..self.trail.len()).rev() {
            let v = self.trail[i].var();
            self.assigns[v.index() as usize] = LBool::Undef;
            self.reason[v.index() as usize] = None;
            self.order.insert(v, &self.activity);
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(level);
        self.qhead = self.trail.len();
    }

    fn propagate(&mut self) -> Option<ClauseRef> {
        let mut conflict = None;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let mut ws = std::mem::take(&mut self.watches[p.code() as usize]);
            let mut keep = 0;
            let mut i = 0;
            'watchers: while i < ws.len() {
                let w = ws[i];
                i += 1;
                if self.lit_value(w.blocker).is_true() {
                    ws[keep] = w;
                    keep += 1;
                    continue;
                }
                let cref = w.cref;
                // Make sure the false literal (!p) sits at position 1.
                let first = {
                    let lits = &mut self.store.get_mut(cref).lits;
                    if lits[0] == !p {
                        lits.swap(0, 1);
                    }
                    lits[0]
                };
                if first != w.blocker && self.lit_value(first).is_true() {
                    ws[keep] = Watcher {
                        cref,
                        blocker: first,
                    };
                    keep += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.store.get(cref).lits.len();
                for k in 2..len {
                    let lk = self.store.get(cref).lits[k];
                    if !self.lit_value(lk).is_false() {
                        let lits = &mut self.store.get_mut(cref).lits;
                        lits.swap(1, k);
                        let new_watch = lits[1];
                        self.watches[(!new_watch).code() as usize].push(Watcher {
                            cref,
                            blocker: first,
                        });
                        continue 'watchers;
                    }
                }
                // Clause is unit or conflicting.
                ws[keep] = Watcher {
                    cref,
                    blocker: first,
                };
                keep += 1;
                if self.lit_value(first).is_false() {
                    conflict = Some(cref);
                    self.qhead = self.trail.len();
                    // keep remaining watchers
                    while i < ws.len() {
                        ws[keep] = ws[i];
                        keep += 1;
                        i += 1;
                    }
                } else {
                    self.enqueue(first, Some(cref));
                }
            }
            ws.truncate(keep);
            self.watches[p.code() as usize] = ws;
            if conflict.is_some() {
                break;
            }
        }
        conflict
    }

    /// First-UIP conflict analysis; returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, mut conflict: ClauseRef) -> (Vec<Lit>, usize) {
        let mut learnt: Vec<Lit> = vec![Lit::from_code(0)]; // placeholder
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        self.analyze_clear.clear();
        loop {
            if self.store.get(conflict).learnt {
                self.bump_clause(conflict);
            }
            let start = if p.is_some() { 1 } else { 0 };
            let lits: Vec<Lit> = self.store.get(conflict).lits[start..].to_vec();
            for q in lits {
                let v = q.var().index() as usize;
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.analyze_clear.push(q.var());
                    self.bump_var(q.var());
                    if self.level[v] >= self.decision_level() as u32 {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select next literal to expand.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index() as usize] {
                    break;
                }
            }
            let pl = self.trail[index];
            p = Some(pl);
            self.seen[pl.var().index() as usize] = false;
            counter -= 1;
            if counter == 0 {
                break;
            }
            conflict = self.reason[pl.var().index() as usize].expect("non-decision has a reason");
        }
        learnt[0] = !p.expect("UIP found");
        // Conflict-clause minimization: drop literals implied by the rest.
        let mut minimized: Vec<Lit> = vec![learnt[0]];
        for &q in &learnt[1..] {
            if !self.redundant(q) {
                minimized.push(q);
            }
        }
        // Find backtrack level: the highest level among non-asserting lits.
        let mut bt = 0usize;
        if minimized.len() > 1 {
            let mut max_i = 1;
            for i in 2..minimized.len() {
                if self.level[minimized[i].var().index() as usize]
                    > self.level[minimized[max_i].var().index() as usize]
                {
                    max_i = i;
                }
            }
            minimized.swap(1, max_i);
            bt = self.level[minimized[1].var().index() as usize] as usize;
        }
        for v in self.analyze_clear.drain(..) {
            self.seen[v.index() as usize] = false;
        }
        (minimized, bt)
    }

    /// Local minimization: `q` is redundant if it has a reason whose
    /// other literals are all seen or at level 0.
    fn redundant(&self, q: Lit) -> bool {
        let v = q.var().index() as usize;
        match self.reason[v] {
            None => false,
            Some(cref) => self.store.get(cref).lits[1..].iter().all(|&l| {
                let lv = l.var().index() as usize;
                self.seen[lv] || self.level[lv] == 0
            }),
        }
    }

    /// Computes the subset of assumptions implying the falsification of
    /// assumption `p` (MiniSat's `analyzeFinal`).
    fn analyze_final(&mut self, p: Lit) -> Vec<Lit> {
        let mut core = vec![p];
        if self.decision_level() == 0 {
            return core;
        }
        let pv = p.var().index() as usize;
        self.seen[pv] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let x = self.trail[i];
            let xv = x.var().index() as usize;
            if !self.seen[xv] {
                continue;
            }
            match self.reason[xv] {
                None => {
                    // A decision inside the assumption prefix: part of the core.
                    if x.var() != p.var() {
                        core.push(x);
                    }
                }
                Some(cref) => {
                    let lits: Vec<Lit> = self.store.get(cref).lits[1..].to_vec();
                    for l in lits {
                        let lv = l.var().index() as usize;
                        if self.level[lv] > 0 {
                            self.seen[lv] = true;
                        }
                    }
                }
            }
            self.seen[xv] = false;
        }
        self.seen[pv] = false;
        core
    }

    fn bump_var(&mut self, v: Var) {
        let i = v.index() as usize;
        self.activity[i] += self.var_inc;
        if self.activity[i] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.bumped(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        let inc = self.cla_inc;
        let act = {
            let d = self.store.get_mut(cref);
            d.activity += inc;
            d.activity
        };
        if act > 1e20 {
            for r in self.store.learnt_refs().collect::<Vec<_>>() {
                self.store.get_mut(r).activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= VAR_DECAY;
        self.cla_inc /= CLA_DECAY;
    }

    fn save_model(&mut self) {
        self.model = Assignment::new(self.assigns.len());
        for (i, &v) in self.assigns.iter().enumerate() {
            if let Some(b) = v.to_bool() {
                self.model.assign(Var::new(i as u32), b);
            }
        }
    }

    fn reduce_db(&mut self) {
        let mut learnts: Vec<ClauseRef> = self
            .store
            .learnt_refs()
            .filter(|&c| !self.locked(c) && self.store.get(c).lits.len() > 2)
            .collect();
        // Remove the worse half: high LBD first, then low activity.
        learnts.sort_by(|&a, &b| {
            let (da, db) = (self.store.get(a), self.store.get(b));
            db.lbd.cmp(&da.lbd).then(
                da.activity
                    .partial_cmp(&db.activity)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        let to_remove = learnts.len() / 2;
        for &cref in learnts.iter().take(to_remove) {
            self.detach(cref);
            self.store.remove(cref);
            self.stats.deleted_clauses += 1;
        }
        self.journal.event(EventKind::Reduce {
            learnt: learnts.len(),
            removed: to_remove,
        });
    }

    fn compute_lbd(&mut self, lits: &[Lit]) -> u32 {
        let mut levels: Vec<u32> = lits
            .iter()
            .map(|&l| self.level[l.var().index() as usize])
            .collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    fn search(
        &mut self,
        assumptions: &[Lit],
        conflict_limit: u64,
        budget: &Budget,
    ) -> SearchOutcome {
        let mut conflicts_here: u64 = 0;
        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                // Conflict-rate sampling: the modulo keeps the
                // disabled-journal cost to one branch per conflict.
                if self.stats.conflicts % SAMPLE_INTERVAL == 0 {
                    self.journal.event(EventKind::Sample {
                        conflicts: self.stats.conflicts,
                        decisions: self.stats.decisions,
                        propagations: self.stats.propagations,
                    });
                }
                if self.decision_level() == 0 {
                    self.ok = false;
                    self.core.clear();
                    return SearchOutcome::Unsat;
                }
                let (learnt, bt) = self.analyze(conflict);
                // Never backjump into the assumption prefix below the
                // asserting level; cancel_until handles re-picking.
                // Chronological mode keeps the trail and retreats one
                // level; bt <= decision_level - 1 always, so the learnt
                // clause is asserting at the target level either way.
                let target = if self.chrono {
                    self.decision_level() - 1
                } else {
                    bt
                };
                self.cancel_until(target);
                if learnt.len() == 1 {
                    if self.decision_level() > 0 {
                        self.cancel_until(0);
                    }
                    if self.lit_value(learnt[0]).is_false() {
                        self.ok = false;
                        self.core.clear();
                        return SearchOutcome::Unsat;
                    }
                    if self.lit_value(learnt[0]).is_undef() {
                        self.enqueue(learnt[0], None);
                    }
                } else {
                    let lbd = self.compute_lbd(&learnt);
                    let first = learnt[0];
                    let cref = self.store.add(learnt, true, lbd);
                    self.attach(cref);
                    self.enqueue(first, Some(cref));
                    self.stats.learnt_clauses += 1;
                }
                self.decay_activities();
                // The conflict allowance is exact (no clock read); the
                // wall-clock deadline is only polled every 64 conflicts.
                if budget.conflicts_exhausted(self.stats.conflicts)
                    || (self.stats.conflicts % 64 == 0 && budget.exhausted(self.stats.conflicts))
                {
                    return SearchOutcome::Budget;
                }
                if conflicts_here >= conflict_limit {
                    return SearchOutcome::Restart;
                }
                if self.store.num_learnt() as f64 > self.max_learnts {
                    self.reduce_db();
                    self.max_learnts *= 1.1;
                }
            } else {
                // Establish pending assumptions, one decision level each.
                while self.decision_level() < assumptions.len() {
                    let p = assumptions[self.decision_level()];
                    debug_assert!(
                        (p.var().index() as usize) < self.assigns.len(),
                        "assumption over unallocated variable"
                    );
                    match self.lit_value(p) {
                        LBool::True => {
                            // Already implied; dummy level keeps indices aligned.
                            self.new_decision_level();
                        }
                        LBool::False => {
                            self.core = self.analyze_final(p);
                            return SearchOutcome::Unsat;
                        }
                        LBool::Undef => {
                            self.new_decision_level();
                            self.enqueue(p, None);
                            break;
                        }
                    }
                }
                if self.decision_level() < assumptions.len() {
                    continue; // propagate the newly enqueued assumption
                }
                // Regular decision.
                let next = loop {
                    match self.order.pop(&self.activity) {
                        None => break None,
                        Some(v) => {
                            if self.assigns[v.index() as usize].is_undef() {
                                break Some(v);
                            }
                        }
                    }
                };
                match next {
                    None => return SearchOutcome::Sat,
                    Some(v) => {
                        self.stats.decisions += 1;
                        let lit = v.lit(!self.phase[v.index() as usize]);
                        self.new_decision_level();
                        self.enqueue(lit, None);
                    }
                }
            }
        }
    }
}

enum SearchOutcome {
    Sat,
    Unsat,
    Restart,
    Budget,
}

/// The Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
fn luby(mut i: u64) -> u64 {
    // Find the finite subsequence containing index i and its size.
    let mut size: u64 = 1;
    let mut seq: u32 = 0;
    while size < i + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != i {
        size = (size - 1) >> 1;
        seq -= 1;
        i %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(s: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| s.new_var()).collect()
    }

    #[test]
    fn luby_prefix() {
        let got: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(got, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn trivial_sat_and_model() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause([v[0].pos(), v[1].pos()]);
        s.add_clause([v[0].neg(), v[1].neg()]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        let m0 = s.model_value(v[0].pos());
        let m1 = s.model_value(v[1].pos());
        assert_ne!(m0, m1);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        let _ = vars(&mut s, 1);
        assert!(!s.add_clause([]));
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        assert!(!s.is_ok());
    }

    #[test]
    fn unit_contradiction() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        assert!(s.add_clause([v[0].pos()]));
        assert!(!s.add_clause([v[0].neg()]));
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_two_in_one_is_unsat() {
        // 3 pigeons, 2 holes.
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..3).map(|_| vars(&mut s, 2)).collect();
        for row in &p {
            s.add_clause(row.iter().map(|v| v.pos()));
        }
        for (a, row_a) in p.iter().enumerate() {
            for row_b in &p[a + 1..] {
                for (va, vb) in row_a.iter().zip(row_b) {
                    s.add_clause([va.neg(), vb.neg()]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn assumptions_and_core() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        // v0 & v1 -> v2 ; assume v0, v1, !v2 : unsat with core over all three.
        s.add_clause([v[0].neg(), v[1].neg(), v[2].pos()]);
        let assumptions = [v[0].pos(), v[1].pos(), v[2].neg()];
        assert_eq!(s.solve(&assumptions), SolveResult::Unsat);
        let core = s.unsat_core().to_vec();
        assert!(!core.is_empty());
        for l in &core {
            assert!(
                assumptions.contains(l),
                "core literal {l:?} not an assumption"
            );
        }
        // The core itself must be unsat.
        assert_eq!(s.solve(&core), SolveResult::Unsat);
        // Remains sat without assumptions.
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn irrelevant_assumption_left_out_of_core() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        s.add_clause([v[0].neg(), v[1].pos()]);
        // v2 is unrelated.
        let res = s.solve(&[v[2].pos(), v[0].pos(), v[1].neg()]);
        assert_eq!(res, SolveResult::Unsat);
        assert!(!s.core_contains(v[2].pos()), "unrelated assumption in core");
    }

    #[test]
    fn incremental_use_after_unsat_assumptions() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause([v[0].pos(), v[1].pos()]);
        assert_eq!(s.solve(&[v[0].neg(), v[1].neg()]), SolveResult::Unsat);
        assert_eq!(s.solve(&[v[0].neg()]), SolveResult::Sat);
        assert!(s.model_value(v[1].pos()).is_true());
        s.add_clause([v[1].neg()]);
        assert_eq!(s.solve(&[v[0].neg()]), SolveResult::Unsat);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert!(s.model_value(v[0].pos()).is_true());
    }

    #[test]
    fn budget_returns_unknown() {
        // A hard pigeonhole instance with a 1-conflict budget.
        let n = 6;
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..n + 1).map(|_| vars(&mut s, n)).collect();
        for row in &p {
            s.add_clause(row.iter().map(|v| v.pos()));
        }
        for (a, row_a) in p.iter().enumerate() {
            for row_b in &p[a + 1..] {
                for (va, vb) in row_a.iter().zip(row_b) {
                    s.add_clause([va.neg(), vb.neg()]);
                }
            }
        }
        s.set_budget(Budget::conflicts(1));
        assert_eq!(s.solve(&[]), SolveResult::Unknown);
        s.set_budget(Budget::unlimited());
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn duplicate_and_tautological_clauses() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        assert!(s.add_clause([v[0].pos(), v[0].pos(), v[1].pos()]));
        assert!(s.add_clause([v[0].pos(), v[0].neg()])); // tautology: dropped
        assert_eq!(s.solve(&[v[0].neg(), v[1].neg()]), SolveResult::Unsat);
    }

    #[test]
    fn simplify_keeps_equivalence() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        s.add_clause([v[0].pos()]);
        s.add_clause([v[0].pos(), v[1].pos()]); // satisfied at level 0
        s.add_clause([v[1].neg(), v[2].pos()]);
        s.simplify();
        assert_eq!(s.solve(&[v[1].pos(), v[2].neg()]), SolveResult::Unsat);
        assert_eq!(s.solve(&[v[1].pos()]), SolveResult::Sat);
        assert!(s.model_value(v[2].pos()).is_true());
    }

    #[test]
    fn chain_implication_forces_assignment() {
        // x0 -> x1 -> ... -> x19; assume x0, so all must be true.
        let mut s = Solver::new();
        let v = vars(&mut s, 20);
        for i in 0..19 {
            s.add_clause([v[i].neg(), v[i + 1].pos()]);
        }
        assert_eq!(s.solve(&[v[0].pos()]), SolveResult::Sat);
        for x in &v {
            assert!(s.model_value(x.pos()).is_true());
        }
        assert_eq!(s.solve(&[v[0].pos(), v[19].neg()]), SolveResult::Unsat);
    }
}
