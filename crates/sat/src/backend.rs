//! The solver-backend abstraction.
//!
//! IC3/BMC and the multi-property drivers talk to a SAT solver only
//! through the [`SatBackend`] trait — the surface the engines actually
//! use: variable allocation, clause loading, assumption-based solving
//! with models and unsat cores, budgets and statistics. Keeping this
//! interface narrow and object-safe lets a portfolio assign a
//! *different* backend to every property (the per-property engine
//! choice that TIUP-style configurations exploit) and leaves a slot for
//! an out-of-tree solver such as CaDiCaL behind a feature gate.
//!
//! In-tree backends:
//!
//! * [`Solver`] (`BackendChoice::Cdcl`) — the default CDCL solver with
//!   non-chronological backjumping;
//! * [`Solver::chronological`] (`BackendChoice::ChronoCdcl`) — the
//!   same CDCL machinery (clause store, VSIDS heap, learning) with
//!   *chronological* backtracking: one decision level per conflict;
//! * `CadicalBackend` (`BackendChoice::Cadical`, feature `cadical`) —
//!   the wiring point for a CaDiCaL FFI; see [`crate::cadical`].
//!
//! # Examples
//!
//! ```
//! use japrove_sat::{BackendChoice, SatBackend, SolveResult};
//!
//! for &choice in BackendChoice::ALL {
//!     let mut s = choice.build();
//!     let a = s.new_var();
//!     let b = s.new_var();
//!     s.add_clause(&[a.pos(), b.pos()]);
//!     s.add_clause(&[a.neg()]);
//!     assert_eq!(s.solve(&[]), SolveResult::Sat, "{choice}");
//!     assert!(s.model_value(b.pos()).is_true());
//!     assert_eq!(s.solve(&[b.neg()]), SolveResult::Unsat);
//!     assert_eq!(s.unsat_core(), &[b.neg()]);
//! }
//! ```

use crate::{Budget, SolveResult, Solver, SolverStats};
use japrove_logic::{LBool, Lit, Var};
use japrove_obs::Journal;
use std::fmt;
use std::str::FromStr;

/// The solver interface the model-checking engines are written
/// against.
///
/// Object-safe by design: engines hold `Box<dyn SatBackend>` so the
/// backend is a per-run (and hence per-property) runtime choice. Every
/// method mirrors the incremental-solver contract of [`Solver`]; see
/// there for the detailed semantics of models, cores and budgets.
pub trait SatBackend: fmt::Debug + Send {
    /// Short identifier used in reports and benchmark tables.
    fn backend_name(&self) -> &'static str;

    /// Allocates a fresh variable.
    fn new_var(&mut self) -> Var;

    /// Ensures variables `0..n` exist.
    fn ensure_vars(&mut self, n: u32);

    /// Number of allocated variables.
    fn num_vars(&self) -> u32;

    /// Adds a clause over existing variables; returns `false` if the
    /// solver is now unconditionally unsatisfiable.
    fn add_clause(&mut self, lits: &[Lit]) -> bool;

    /// Solves under the given assumptions.
    fn solve(&mut self, assumptions: &[Lit]) -> SolveResult;

    /// Value of `lit` in the most recent satisfying model.
    fn model_value(&self, lit: Lit) -> LBool;

    /// Subset of assumptions responsible for the most recent
    /// [`SolveResult::Unsat`] answer.
    fn unsat_core(&self) -> &[Lit];

    /// Returns `true` if `lit` occurs in the current unsat core.
    fn core_contains(&self, lit: Lit) -> bool {
        self.unsat_core().contains(&lit)
    }

    /// Sets the budget applied to subsequent [`SatBackend::solve`]
    /// calls.
    fn set_budget(&mut self, budget: Budget);

    /// Cumulative statistics of this solver instance.
    fn stats(&self) -> &SolverStats;

    /// Attaches an observability journal; backends that cannot report
    /// (e.g. FFI stubs) may ignore it, which is the default.
    fn set_journal(&mut self, _journal: Journal) {}

    /// Returns `false` once the clause set is known unsatisfiable
    /// regardless of assumptions.
    fn is_ok(&self) -> bool;

    /// Removes clauses satisfied at level 0.
    fn simplify(&mut self);

    /// Adds `lits` as a clause guarded by the activation variable
    /// `act`: the clause constrains only those [`SatBackend::solve`]
    /// calls that assume `act` positively. The guard is the standard
    /// `!act ∨ lits` encoding, so a retired guard (see
    /// [`SatBackend::retire`]) permanently satisfies the clause.
    fn add_clause_guarded(&mut self, act: Var, lits: &[Lit]) -> bool {
        let mut clause = Vec::with_capacity(lits.len() + 1);
        clause.push(act.neg());
        clause.extend_from_slice(lits);
        self.add_clause(&clause)
    }

    /// Permanently retires the activation variable `act` by fixing it
    /// false at level 0. Every clause guarded by `act` becomes
    /// satisfied and is reclaimed by the next [`SatBackend::simplify`]
    /// call — the mechanism warm, long-lived solvers use to drop one
    /// property's clauses before the next property's run.
    fn retire(&mut self, act: Var) -> bool {
        self.add_clause(&[act.neg()])
    }

    /// Adds the parity constraint `XOR(vars) = parity` guarded by
    /// `act`, via a Tseitin chain of fresh auxiliary variables. Every
    /// clause of the encoding carries the `!act` guard, so retiring
    /// `act` (see [`SatBackend::retire`]) reclaims the whole
    /// constraint — the mechanism XOR-hash counting uses to add and
    /// drop one round's random parity constraints on a warm solver.
    ///
    /// An empty `vars` set has XOR value `false`: with `parity ==
    /// true` the constraint is unsatisfiable under `act` (encoded as
    /// the guarded empty clause, i.e. the unit `!act`).
    fn add_xor_guarded(&mut self, act: Var, vars: &[Var], parity: bool) -> bool {
        let Some((&first, rest)) = vars.split_first() else {
            return if parity {
                self.add_clause(&[act.neg()])
            } else {
                true
            };
        };
        let mut acc = first.pos();
        for &v in rest {
            let out = self.new_var().pos();
            let b = v.pos();
            // out <-> acc XOR b, each clause guarded by act.
            let mut ok = self.add_clause(&[act.neg(), !out, acc, b]);
            ok &= self.add_clause(&[act.neg(), !out, !acc, !b]);
            ok &= self.add_clause(&[act.neg(), out, !acc, b]);
            ok &= self.add_clause(&[act.neg(), out, acc, !b]);
            if !ok {
                return false;
            }
            acc = out;
        }
        self.add_clause(&[act.neg(), if parity { acc } else { !acc }])
    }
}

impl SatBackend for Solver {
    fn backend_name(&self) -> &'static str {
        if self.is_chronological() {
            "chrono-cdcl"
        } else {
            "cdcl"
        }
    }

    fn new_var(&mut self) -> Var {
        Solver::new_var(self)
    }

    fn ensure_vars(&mut self, n: u32) {
        Solver::ensure_vars(self, n);
    }

    fn num_vars(&self) -> u32 {
        Solver::num_vars(self)
    }

    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        Solver::add_clause(self, lits.iter().copied())
    }

    fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        Solver::solve(self, assumptions)
    }

    fn model_value(&self, lit: Lit) -> LBool {
        Solver::model_value(self, lit)
    }

    fn unsat_core(&self) -> &[Lit] {
        Solver::unsat_core(self)
    }

    fn core_contains(&self, lit: Lit) -> bool {
        Solver::core_contains(self, lit)
    }

    fn set_budget(&mut self, budget: Budget) {
        Solver::set_budget(self, budget);
    }

    fn stats(&self) -> &SolverStats {
        Solver::stats(self)
    }

    fn set_journal(&mut self, journal: Journal) {
        Solver::set_journal(self, journal);
    }

    fn is_ok(&self) -> bool {
        Solver::is_ok(self)
    }

    fn simplify(&mut self) {
        Solver::simplify(self);
    }
}

/// The registry of in-tree solver backends.
///
/// A `BackendChoice` is a cheap, copyable *description*; [`build`]
/// turns it into a live solver. Engines store the choice and rebuild
/// solvers from it, so every rebuilt solver stays on the selected
/// backend.
///
/// [`build`]: BackendChoice::build
///
/// # Examples
///
/// ```
/// use japrove_sat::BackendChoice;
///
/// assert_eq!(BackendChoice::default(), BackendChoice::Cdcl);
/// assert_eq!("chrono".parse::<BackendChoice>(), Ok(BackendChoice::ChronoCdcl));
/// assert!(BackendChoice::ALL.len() >= 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
#[non_exhaustive]
pub enum BackendChoice {
    /// The default CDCL solver with non-chronological backjumping.
    #[default]
    Cdcl,
    /// CDCL with chronological backtracking — the same clause store,
    /// watches, heap and learning, retreating one decision level per
    /// conflict (see [`Solver::chronological`]). Verdict-equivalent to
    /// [`BackendChoice::Cdcl`]; the search trajectory, and with it the
    /// models, generalizations and runtimes, differ.
    ChronoCdcl,
    /// The CaDiCaL FFI slot (currently a documented stub that delegates
    /// to the in-tree CDCL solver; see [`crate::cadical`]).
    #[cfg(feature = "cadical")]
    Cadical,
}

impl BackendChoice {
    /// Every backend compiled into this build, in registration order.
    /// Differential tests iterate this to enforce verdict parity.
    #[cfg(not(feature = "cadical"))]
    pub const ALL: &'static [BackendChoice] = &[BackendChoice::Cdcl, BackendChoice::ChronoCdcl];
    /// Every backend compiled into this build, in registration order.
    /// Differential tests iterate this to enforce verdict parity.
    #[cfg(feature = "cadical")]
    pub const ALL: &'static [BackendChoice] = &[
        BackendChoice::Cdcl,
        BackendChoice::ChronoCdcl,
        BackendChoice::Cadical,
    ];

    /// Builds a fresh, empty solver of this backend.
    pub fn build(self) -> Box<dyn SatBackend> {
        match self {
            BackendChoice::Cdcl => Box::new(Solver::new()),
            BackendChoice::ChronoCdcl => Box::new(Solver::chronological()),
            #[cfg(feature = "cadical")]
            BackendChoice::Cadical => Box::new(crate::cadical::CadicalBackend::new()),
        }
    }

    /// Short identifier, matching [`SatBackend::backend_name`] and the
    /// CLI `--backend` values.
    pub fn name(self) -> &'static str {
        match self {
            BackendChoice::Cdcl => "cdcl",
            BackendChoice::ChronoCdcl => "chrono-cdcl",
            #[cfg(feature = "cadical")]
            BackendChoice::Cadical => "cadical",
        }
    }
}

impl fmt::Display for BackendChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for BackendChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "cdcl" => Ok(BackendChoice::Cdcl),
            "chrono" | "chrono-cdcl" => Ok(BackendChoice::ChronoCdcl),
            #[cfg(feature = "cadical")]
            "cadical" => Ok(BackendChoice::Cadical),
            other => Err(format!(
                "unknown backend '{other}' (available: {})",
                BackendChoice::ALL
                    .iter()
                    .map(|b| b.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_round_trip() {
        for &b in BackendChoice::ALL {
            assert_eq!(b.name().parse::<BackendChoice>(), Ok(b));
            assert_eq!(b.build().backend_name(), b.name());
        }
        assert!("minisat".parse::<BackendChoice>().is_err());
    }

    #[test]
    fn every_backend_solves_through_the_trait() {
        for &choice in BackendChoice::ALL {
            let mut s = choice.build();
            s.ensure_vars(3);
            let v0 = Var::new(0);
            let v1 = Var::new(1);
            let v2 = Var::new(2);
            assert!(s.add_clause(&[v0.neg(), v1.pos()]));
            assert!(s.add_clause(&[v1.neg(), v2.pos()]));
            assert_eq!(s.solve(&[v0.pos()]), SolveResult::Sat, "{choice}");
            assert!(s.model_value(v2.pos()).is_true(), "{choice}");
            assert_eq!(s.solve(&[v0.pos(), v2.neg()]), SolveResult::Unsat);
            assert!(s.core_contains(v2.neg()) || s.core_contains(v0.pos()));
            assert_eq!(s.num_vars(), 3);
            assert!(s.is_ok());
            s.simplify();
            assert_eq!(s.solve(&[v0.pos()]), SolveResult::Sat);
        }
    }

    #[test]
    fn guarded_xor_constrains_only_under_its_activation_literal() {
        for &choice in BackendChoice::ALL {
            let mut s = choice.build();
            let a = s.new_var();
            let b = s.new_var();
            let c = s.new_var();
            let act = s.new_var();
            assert!(s.add_xor_guarded(act, &[a, b, c], true));
            // Under act, exactly the odd-parity assignments survive.
            for m in 0u8..8 {
                let assumptions = [
                    act.pos(),
                    a.lit(m & 1 == 0),
                    b.lit(m & 2 == 0),
                    c.lit(m & 4 == 0),
                ];
                let expect = if (m.count_ones() % 2) == 1 {
                    SolveResult::Sat
                } else {
                    SolveResult::Unsat
                };
                assert_eq!(s.solve(&assumptions), expect, "{choice} m={m}");
            }
            // Without act the constraint is dormant.
            assert_eq!(s.solve(&[a.neg(), b.neg(), c.neg()]), SolveResult::Sat);
            // Retiring act drops the constraint permanently.
            assert!(s.retire(act));
            s.simplify();
            assert_eq!(
                s.solve(&[a.neg(), b.neg(), c.neg()]),
                SolveResult::Sat,
                "{choice}: retired XOR must not constrain"
            );
        }
    }

    #[test]
    fn guarded_xor_edge_cases() {
        let mut s = BackendChoice::default().build();
        let v = s.new_var();
        // Single-variable XOR degenerates to a guarded unit.
        let act = s.new_var();
        assert!(s.add_xor_guarded(act, &[v], false));
        assert_eq!(s.solve(&[act.pos(), v.pos()]), SolveResult::Unsat);
        assert_eq!(s.solve(&[act.pos(), v.neg()]), SolveResult::Sat);
        s.retire(act);
        // Empty XOR: parity false is a tautology, parity true is
        // unsatisfiable under its guard (and only under it).
        let taut = s.new_var();
        assert!(s.add_xor_guarded(taut, &[], false));
        assert_eq!(s.solve(&[taut.pos()]), SolveResult::Sat);
        let contra = s.new_var();
        s.add_xor_guarded(contra, &[], true);
        assert_eq!(s.solve(&[contra.pos()]), SolveResult::Unsat);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn chrono_solver_reports_its_flag() {
        let c = Solver::chronological();
        assert!(c.is_chronological());
        assert_eq!(SatBackend::backend_name(&c), "chrono-cdcl");
        let plain = Solver::new();
        assert_eq!(SatBackend::backend_name(&plain), "cdcl");
    }
}
