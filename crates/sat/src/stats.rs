//! Cumulative solver statistics.

use std::fmt;

/// Counters accumulated over the lifetime of a [`crate::Solver`].
///
/// # Examples
///
/// ```
/// use japrove_sat::Solver;
/// let mut s = Solver::new();
/// let v = s.new_var();
/// s.add_clause([v.pos()]);
/// s.solve(&[]);
/// assert_eq!(s.stats().solves, 1);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of `solve` calls.
    pub solves: u64,
    /// Total decisions taken.
    pub decisions: u64,
    /// Total unit propagations performed.
    pub propagations: u64,
    /// Total conflicts encountered.
    pub conflicts: u64,
    /// Learnt clauses added.
    pub learnt_clauses: u64,
    /// Learnt clauses deleted by database reduction.
    pub deleted_clauses: u64,
    /// Restarts performed.
    pub restarts: u64,
}

impl fmt::Display for SolverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "solves={} decisions={} propagations={} conflicts={} learnt={} deleted={} restarts={}",
            self.solves,
            self.decisions,
            self.propagations,
            self.conflicts,
            self.learnt_clauses,
            self.deleted_clauses,
            self.restarts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let s = SolverStats::default();
        assert!(s.to_string().contains("conflicts=0"));
    }
}
