//! Cumulative solver statistics.

use std::fmt;

/// Counters accumulated over the lifetime of a [`crate::Solver`].
///
/// # Examples
///
/// ```
/// use japrove_sat::Solver;
/// let mut s = Solver::new();
/// let v = s.new_var();
/// s.add_clause([v.pos()]);
/// s.solve(&[]);
/// assert_eq!(s.stats().solves, 1);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of `solve` calls.
    pub solves: u64,
    /// Total decisions taken.
    pub decisions: u64,
    /// Total unit propagations performed.
    pub propagations: u64,
    /// Total conflicts encountered.
    pub conflicts: u64,
    /// Learnt clauses added.
    pub learnt_clauses: u64,
    /// Learnt clauses deleted by database reduction.
    pub deleted_clauses: u64,
    /// Restarts performed.
    pub restarts: u64,
}

impl std::ops::Add for SolverStats {
    type Output = SolverStats;

    fn add(self, rhs: SolverStats) -> SolverStats {
        SolverStats {
            solves: self.solves + rhs.solves,
            decisions: self.decisions + rhs.decisions,
            propagations: self.propagations + rhs.propagations,
            conflicts: self.conflicts + rhs.conflicts,
            learnt_clauses: self.learnt_clauses + rhs.learnt_clauses,
            deleted_clauses: self.deleted_clauses + rhs.deleted_clauses,
            restarts: self.restarts + rhs.restarts,
        }
    }
}

impl std::ops::AddAssign for SolverStats {
    fn add_assign(&mut self, rhs: SolverStats) {
        *self = *self + rhs;
    }
}

impl std::ops::Sub for SolverStats {
    type Output = SolverStats;

    /// Counter-wise difference, saturating at zero — the delta of two
    /// snapshots of one monotonically growing counter set.
    fn sub(self, rhs: SolverStats) -> SolverStats {
        SolverStats {
            solves: self.solves.saturating_sub(rhs.solves),
            decisions: self.decisions.saturating_sub(rhs.decisions),
            propagations: self.propagations.saturating_sub(rhs.propagations),
            conflicts: self.conflicts.saturating_sub(rhs.conflicts),
            learnt_clauses: self.learnt_clauses.saturating_sub(rhs.learnt_clauses),
            deleted_clauses: self.deleted_clauses.saturating_sub(rhs.deleted_clauses),
            restarts: self.restarts.saturating_sub(rhs.restarts),
        }
    }
}

impl fmt::Display for SolverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "solves={} decisions={} propagations={} conflicts={} learnt={} deleted={} restarts={}",
            self.solves,
            self.decisions,
            self.propagations,
            self.conflicts,
            self.learnt_clauses,
            self.deleted_clauses,
            self.restarts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let s = SolverStats::default();
        assert!(s.to_string().contains("conflicts=0"));
    }

    #[test]
    fn arithmetic_is_counterwise_and_saturating() {
        let a = SolverStats {
            solves: 3,
            conflicts: 10,
            ..SolverStats::default()
        };
        let b = SolverStats {
            solves: 1,
            conflicts: 4,
            decisions: 7,
            ..SolverStats::default()
        };
        let sum = a + b;
        assert_eq!(sum.solves, 4);
        assert_eq!(sum.conflicts, 14);
        assert_eq!(sum.decisions, 7);
        let delta = a - b;
        assert_eq!(delta.solves, 2);
        assert_eq!(delta.conflicts, 6);
        assert_eq!(delta.decisions, 0, "saturates instead of underflowing");
        let mut acc = SolverStats::default();
        acc += a;
        acc += b;
        assert_eq!(acc, sum);
    }
}
