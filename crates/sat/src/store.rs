//! Slot-based clause storage with stable references.

use japrove_logic::Lit;

/// Reference to a clause inside a [`ClauseStore`].
///
/// References stay valid until the clause is removed; slots of removed
/// clauses are recycled by later additions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ClauseRef(u32);

impl ClauseRef {
    #[inline]
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
pub(crate) struct ClauseData {
    pub lits: Vec<Lit>,
    pub learnt: bool,
    pub lbd: u32,
    pub activity: f32,
}

/// Owning container for problem and learnt clauses.
#[derive(Debug, Default, Clone)]
pub(crate) struct ClauseStore {
    slots: Vec<Option<ClauseData>>,
    free: Vec<u32>,
    num_learnt: usize,
    num_problem: usize,
}

impl ClauseStore {
    pub fn add(&mut self, lits: Vec<Lit>, learnt: bool, lbd: u32) -> ClauseRef {
        debug_assert!(lits.len() >= 2, "store only holds non-unit clauses");
        let data = ClauseData {
            lits,
            learnt,
            lbd,
            activity: 0.0,
        };
        if learnt {
            self.num_learnt += 1;
        } else {
            self.num_problem += 1;
        }
        if let Some(slot) = self.free.pop() {
            self.slots[slot as usize] = Some(data);
            ClauseRef(slot)
        } else {
            self.slots.push(Some(data));
            ClauseRef((self.slots.len() - 1) as u32)
        }
    }

    pub fn remove(&mut self, cref: ClauseRef) {
        let data = self.slots[cref.index()]
            .take()
            .expect("removing a live clause");
        if data.learnt {
            self.num_learnt -= 1;
        } else {
            self.num_problem -= 1;
        }
        self.free.push(cref.index() as u32);
    }

    #[inline]
    pub fn get(&self, cref: ClauseRef) -> &ClauseData {
        self.slots[cref.index()].as_ref().expect("live clause")
    }

    #[inline]
    pub fn get_mut(&mut self, cref: ClauseRef) -> &mut ClauseData {
        self.slots[cref.index()].as_mut().expect("live clause")
    }

    pub fn num_learnt(&self) -> usize {
        self.num_learnt
    }

    pub fn num_problem(&self) -> usize {
        self.num_problem
    }

    /// Iterates over live clause references.
    pub fn refs(&self) -> impl Iterator<Item = ClauseRef> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| ClauseRef(i as u32)))
    }

    /// Live learnt clause references.
    pub fn learnt_refs(&self) -> impl Iterator<Item = ClauseRef> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, s)| match s {
            Some(d) if d.learnt => Some(ClauseRef(i as u32)),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use japrove_logic::Var;

    fn lits(n: u32) -> Vec<Lit> {
        (0..n).map(|i| Var::new(i).pos()).collect()
    }

    #[test]
    fn add_get_remove_cycle() {
        let mut s = ClauseStore::default();
        let a = s.add(lits(2), false, 0);
        let b = s.add(lits(3), true, 2);
        assert_eq!(s.get(a).lits.len(), 2);
        assert_eq!(s.get(b).lbd, 2);
        assert_eq!(s.num_problem(), 1);
        assert_eq!(s.num_learnt(), 1);
        s.remove(a);
        assert_eq!(s.num_problem(), 0);
        // Slot is recycled.
        let c = s.add(lits(4), false, 0);
        assert_eq!(c, a);
        assert_eq!(s.get(c).lits.len(), 4);
    }

    #[test]
    fn ref_iteration_skips_freed() {
        let mut s = ClauseStore::default();
        let a = s.add(lits(2), false, 0);
        let b = s.add(lits(2), true, 1);
        s.remove(a);
        let live: Vec<ClauseRef> = s.refs().collect();
        assert_eq!(live, vec![b]);
        assert_eq!(s.learnt_refs().count(), 1);
    }
}
