//! Candidate-invariant guessing from simulation signatures.
//!
//! One 64-way random simulation run produces a *history*: the word
//! value of every latch at every step (bit `k` of a word belongs to
//! simulated instance `k`). Everything the history never falsified is
//! a candidate:
//!
//! * **const** — a latch never left its reset polarity,
//! * **equiv** — two latches always carried identical (or always
//!   complementary) words, detected by hashing polarity-normalized
//!   value signatures (van Eijk's equivalence classes),
//! * **implication** — a latch pair never visited one of its four
//!   value combinations (`i → j`, pairwise mutex `¬(i ∧ j)`, pairwise
//!   cover `i ∨ j`),
//! * **one_hot** — a greedy clique of pairwise-mutex latches, promoted
//!   to *exactly-one* when some member was high at every observed
//!   step, *at-most-one* otherwise,
//! * **range** — a window of consecutive latches, read LSB-first as a
//!   word, that never exceeded an observed maximum below the window's
//!   full range.
//!
//! Guessing is deterministic: latches are scanned in index order and
//! every candidate name encodes its latch indices, so a candidate's
//! provenance survives into the mined property list.

use crate::options::MineOptions;
use japrove_aig::{Aig, AigLit};
use japrove_tsys::Word;
use std::collections::HashMap;
use std::fmt;

/// The mining taxonomy: which guessing rule produced a candidate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CandidateKind {
    /// A latch stuck at its reset polarity.
    ConstLatch,
    /// Two latches always equal (or always complementary).
    Equivalence,
    /// A pairwise implication / mutex / cover between two latches.
    Implication,
    /// An exactly-one or at-most-one constraint over a mutex clique.
    OneHot,
    /// An observed upper bound on a latch window read as a word.
    Range,
}

impl CandidateKind {
    /// Every kind, in display order (the order stats are reported in).
    pub const ALL: &'static [CandidateKind] = &[
        CandidateKind::ConstLatch,
        CandidateKind::Equivalence,
        CandidateKind::Implication,
        CandidateKind::OneHot,
        CandidateKind::Range,
    ];

    /// The wire name used in journal events and bench output.
    pub fn name(self) -> &'static str {
        match self {
            CandidateKind::ConstLatch => "const",
            CandidateKind::Equivalence => "equiv",
            CandidateKind::Implication => "implication",
            CandidateKind::OneHot => "one_hot",
            CandidateKind::Range => "range",
        }
    }
}

impl fmt::Display for CandidateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One guessed invariant: a named good-literal in the mined AIG.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// Stable name encoding the rule and the latch indices involved
    /// (e.g. `eq_l3_l17`, `range_l8_w4_le11`).
    pub name: String,
    /// The guessing rule that produced it.
    pub kind: CandidateKind,
    /// The property literal: the candidate holds in a state iff this
    /// edge evaluates to true.
    pub good: AigLit,
}

/// Everything `generate` derived, plus how much the candidate cap cut.
pub(crate) struct Generated {
    pub candidates: Vec<Candidate>,
    /// Candidates dropped by [`MineOptions::max_candidates`] — they are
    /// counted so no cap is ever silent.
    pub truncated: usize,
}

/// Derives candidates from `history` (one row per observed step, one
/// word per latch), building their good-literals into `aig` (the
/// original design plus monitor gates).
pub(crate) fn generate(aig: &mut Aig, history: &[Vec<u64>], opts: &MineOptions) -> Generated {
    let num_latches = aig.num_latches();
    let latch_lit: Vec<AigLit> = aig
        .latches()
        .iter()
        .map(|l| AigLit::new(l.node, false))
        .collect();
    let mut out = Vec::new();

    // --- const: a latch that never left one polarity. ---------------
    let mut ever_one = vec![false; num_latches];
    let mut ever_zero = vec![false; num_latches];
    for row in history {
        for (i, &w) in row.iter().enumerate() {
            ever_one[i] |= w != 0;
            ever_zero[i] |= w != u64::MAX;
        }
    }
    let is_const: Vec<bool> = (0..num_latches)
        .map(|i| !ever_one[i] || !ever_zero[i])
        .collect();
    for i in 0..num_latches {
        if !ever_one[i] {
            out.push(Candidate {
                name: format!("const0_l{i}"),
                kind: CandidateKind::ConstLatch,
                good: !latch_lit[i],
            });
        } else if !ever_zero[i] {
            out.push(Candidate {
                name: format!("const1_l{i}"),
                kind: CandidateKind::ConstLatch,
                good: latch_lit[i],
            });
        }
    }

    // --- equiv: identical polarity-normalized value signatures. ------
    // Normalizing on instance 0 of step 0 folds complementary pairs
    // into one class; the stored flag remembers each member's polarity.
    let mut classes: HashMap<Vec<u64>, (usize, bool)> = HashMap::new();
    let mut class_of: Vec<Option<usize>> = vec![None; num_latches];
    for i in 0..num_latches {
        if is_const[i] {
            continue;
        }
        let mut sig: Vec<u64> = history.iter().map(|row| row[i]).collect();
        let flipped = sig.first().is_some_and(|w| w & 1 == 1);
        if flipped {
            for w in &mut sig {
                *w = !*w;
            }
        }
        match classes.entry(sig) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert((i, flipped));
            }
            std::collections::hash_map::Entry::Occupied(e) => {
                let (rep, rep_flipped) = *e.get();
                class_of[i] = Some(rep);
                class_of[rep] = Some(rep);
                let same_polarity = flipped == rep_flipped;
                let good = if same_polarity {
                    aig.eq(latch_lit[rep], latch_lit[i])
                } else {
                    aig.xor(latch_lit[rep], latch_lit[i])
                };
                out.push(Candidate {
                    name: format!("{}_l{rep}_l{i}", if same_polarity { "eq" } else { "neq" }),
                    kind: CandidateKind::Equivalence,
                    good,
                });
            }
        }
    }

    // --- implication / mutex / cover: the pair relation matrix. ------
    // Over the first `max_pair_latches` non-const latches, record which
    // of the four value combinations each pair ever visited.
    let pool: Vec<usize> = (0..num_latches)
        .filter(|&i| !is_const[i])
        .take(opts.max_pair_latches)
        .collect();
    let same_class = |i: usize, j: usize| match (class_of[i], class_of[j]) {
        (Some(a), Some(b)) => a == b,
        _ => false,
    };
    let n = pool.len();
    // ever[p] bits: 1 = saw (1,1), 2 = saw (1,0), 4 = saw (0,1),
    // 8 = saw (0,0), for the pair at flat index p.
    let mut ever = vec![0u8; n * n];
    for row in history {
        for (a, &i) in pool.iter().enumerate() {
            let wi = row[i];
            for (b, &j) in pool.iter().enumerate().skip(a + 1) {
                let wj = row[j];
                let mut bits = 0u8;
                bits |= u8::from(wi & wj != 0);
                bits |= u8::from(wi & !wj != 0) << 1;
                bits |= u8::from(!wi & wj != 0) << 2;
                bits |= u8::from(!wi & !wj != 0) << 3;
                ever[a * n + b] |= bits;
            }
        }
    }
    let mut mutex_pair = vec![false; n * n];
    for a in 0..n {
        let i = pool[a];
        for b in (a + 1)..n {
            let j = pool[b];
            if same_class(i, j) {
                continue; // subsumed by the equiv candidate
            }
            let bits = ever[a * n + b];
            let never10 = bits & 2 == 0;
            let never01 = bits & 4 == 0;
            let never11 = bits & 1 == 0;
            let never00 = bits & 8 == 0;
            // Both directions missing would be an equivalence the class
            // pass somehow missed; both 11 and 00 missing likewise an
            // antivalence. Neither can happen for distinct classes.
            if never10 && !never01 {
                let good = aig.implies(latch_lit[i], latch_lit[j]);
                out.push(Candidate {
                    name: format!("imp_l{i}_l{j}"),
                    kind: CandidateKind::Implication,
                    good,
                });
            } else if never01 && !never10 {
                let good = aig.implies(latch_lit[j], latch_lit[i]);
                out.push(Candidate {
                    name: format!("imp_l{j}_l{i}"),
                    kind: CandidateKind::Implication,
                    good,
                });
            }
            if never11 && !never00 {
                mutex_pair[a * n + b] = true;
                let good = aig.and(latch_lit[i], latch_lit[j]);
                out.push(Candidate {
                    name: format!("mutex_l{i}_l{j}"),
                    kind: CandidateKind::Implication,
                    good: !good,
                });
            } else if never00 && !never11 {
                let good = aig.or(latch_lit[i], latch_lit[j]);
                out.push(Candidate {
                    name: format!("or_l{i}_l{j}"),
                    kind: CandidateKind::Implication,
                    good,
                });
            }
        }
    }

    // --- one_hot: greedy cliques in the mutex graph. -----------------
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for a in 0..n {
        let joined = groups
            .iter_mut()
            .find(|g| g.iter().all(|&b| mutex_pair[b.min(a) * n + b.max(a)]));
        match joined {
            Some(g) => g.push(a),
            None => groups.push(vec![a]),
        }
    }
    for (gi, group) in groups.iter().filter(|g| g.len() >= 3).enumerate() {
        let members: Vec<usize> = group.iter().map(|&a| pool[a]).collect();
        // At-least-one holds iff in every observed step every instance
        // had some member high.
        let alo = history
            .iter()
            .all(|row| members.iter().fold(0u64, |acc, &i| acc | row[i]) == u64::MAX);
        let pair_ands: Vec<AigLit> = members
            .iter()
            .enumerate()
            .flat_map(|(x, &i)| {
                members[x + 1..]
                    .iter()
                    .map(|&j| aig.and(latch_lit[i], latch_lit[j]))
                    .collect::<Vec<_>>()
            })
            .collect();
        let two_high = aig.or_many(pair_ands);
        let (prefix, good) = if alo {
            let any = aig.or_many(members.iter().map(|&i| latch_lit[i]));
            ("onehot", aig.and(any, !two_high))
        } else {
            ("amo", !two_high)
        };
        out.push(Candidate {
            name: format!("{prefix}_g{gi}_n{}", members.len()),
            kind: CandidateKind::OneHot,
            good,
        });
    }

    // --- range: observed maxima of consecutive-latch windows. --------
    for width in 2..=opts.range_max_width {
        if width > num_latches {
            break;
        }
        let full = if width >= 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        for start in 0..=(num_latches - width) {
            if (start..start + width).any(|i| is_const[i]) {
                continue;
            }
            let mut max_seen = 0u64;
            for row in history {
                for bit in 0..64 {
                    let mut v = 0u64;
                    for t in 0..width {
                        v |= ((row[start + t] >> bit) & 1) << t;
                    }
                    max_seen = max_seen.max(v);
                }
                if max_seen == full {
                    break;
                }
            }
            if max_seen < full {
                let word = Word::from_bits((start..start + width).map(|i| latch_lit[i]).collect());
                let good = word.le_const(aig, max_seen);
                out.push(Candidate {
                    name: format!("range_l{start}_w{width}_le{max_seen}"),
                    kind: CandidateKind::Range,
                    good,
                });
            }
        }
    }

    let truncated = out.len().saturating_sub(opts.max_candidates);
    out.truncate(opts.max_candidates);
    Generated {
        candidates: out,
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> MineOptions {
        MineOptions::new()
    }

    /// History rows are [step][latch] words.
    fn run(aig: &mut Aig, history: &[Vec<u64>]) -> Vec<Candidate> {
        generate(aig, history, &opts()).candidates
    }

    #[test]
    fn const_and_equiv_detection() {
        let mut aig = Aig::new();
        for _ in 0..4 {
            aig.add_latch(false);
        }
        // l0 stuck low, l1 stuck high, l2 == l3 (non-const).
        let history = vec![vec![0, u64::MAX, 5, 5], vec![0, u64::MAX, 9, 9]];
        let cands = run(&mut aig, &history);
        let names: Vec<&str> = cands.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"const0_l0"));
        assert!(names.contains(&"const1_l1"));
        assert!(names.contains(&"eq_l2_l3"));
    }

    #[test]
    fn antivalence_normalizes_into_one_class() {
        let mut aig = Aig::new();
        for _ in 0..2 {
            aig.add_latch(false);
        }
        let history = vec![vec![5, !5u64], vec![12, !12u64]];
        let cands = run(&mut aig, &history);
        assert!(cands.iter().any(|c| c.name == "neq_l0_l1"));
        // The pair pass must not re-derive the same fact as mutex+cover.
        assert!(!cands.iter().any(|c| c.name.starts_with("mutex_")));
        assert!(!cands.iter().any(|c| c.name.starts_with("or_")));
    }

    #[test]
    fn implications_mutex_and_onehot() {
        let mut aig = Aig::new();
        for _ in 0..3 {
            aig.add_latch(false);
        }
        // Ring-like: exactly one of l0..l2 high per instance-step.
        // Also yields imp-free mutex pairs.
        let history = vec![
            vec![0b001, 0b010, 0b100],
            vec![0b100, 0b001, 0b010],
            vec![0b010, 0b100, 0b001],
        ];
        // Each word must be "instances": make every instance one-hot.
        // Instance b of step s: exactly one latch has bit b set. The
        // unused upper 61 bits are all-zero in every latch, so
        // at-least-one does NOT hold over the full 64 instances.
        let cands = run(&mut aig, &history);
        let names: Vec<&str> = cands.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"mutex_l0_l1"));
        assert!(names.contains(&"mutex_l0_l2"));
        assert!(names.contains(&"mutex_l1_l2"));
        assert!(names.contains(&"amo_g0_n3"), "{names:?}");
    }

    #[test]
    fn onehot_promotes_with_full_instances() {
        let mut aig = Aig::new();
        for _ in 0..3 {
            aig.add_latch(false);
        }
        // All 64 instances carry exactly one high member.
        let a = 0xAAAA_AAAA_AAAA_AAAAu64;
        let b = 0x5555_5555_5555_5554u64;
        let c = 1u64;
        assert_eq!(a | b | c, u64::MAX);
        let history = vec![vec![a, b, c], vec![c, a, b]];
        let cands = run(&mut aig, &history);
        assert!(cands.iter().any(|c| c.name == "onehot_g0_n3"));
    }

    #[test]
    fn range_windows_record_observed_maxima() {
        let mut aig = Aig::new();
        for _ in 0..3 {
            aig.add_latch(false);
        }
        // LSB-first window l0..l2 sees values 0, 5, 2: max 5 of range
        // 7. All instances identical (all-zeros or all-ones words).
        let m = u64::MAX;
        let history = vec![vec![0, 0, 0], vec![m, 0, m], vec![0, m, 0]];
        let cands = run(&mut aig, &history);
        assert!(
            cands.iter().any(|c| c.name == "range_l0_w3_le5"),
            "{:?}",
            cands.iter().map(|c| &c.name).collect::<Vec<_>>()
        );
    }

    #[test]
    fn candidate_cap_is_counted_not_silent() {
        let mut aig = Aig::new();
        for _ in 0..6 {
            aig.add_latch(false);
        }
        let history = vec![vec![0; 6]]; // six const candidates
        let mut o = MineOptions::new();
        o.max_candidates = 4;
        let g = generate(&mut aig, &history, &o);
        assert_eq!(g.candidates.len(), 4);
        assert_eq!(g.truncated, 2);
    }
}
