//! Knobs of the mining pipeline.

use japrove_obs::Journal;
use japrove_sat::{BackendChoice, Budget};

/// Configuration of one [`mine`](crate::mine) pass.
///
/// The defaults are tuned for the genbench families: a short guessing
/// run (so deep behaviour is left for the filter to find), a filter
/// that simulates several times deeper across fresh seeds, and a
/// 2-induction promotion check.
///
/// # Examples
///
/// ```
/// use japrove_mine::MineOptions;
///
/// let opts = MineOptions::new().k(3).seed(7);
/// assert_eq!(opts.k, 3);
/// assert_eq!(opts.seed, 7);
/// ```
#[derive(Clone, Debug)]
pub struct MineOptions {
    /// Seed of the deterministic stimulus generator; the filter derives
    /// one fresh stream per run from it.
    pub seed: u64,
    /// Steps of the 64-way candidate-guessing run. Shorter runs guess
    /// more (and wronger) candidates, leaving more work to the filter.
    pub gen_steps: usize,
    /// Independent random filtering runs (each 64 instances wide, from
    /// a fresh seed).
    pub filter_runs: usize,
    /// Steps per filtering run; deeper than `gen_steps` so the filter
    /// can kill candidates the guess run never got to falsify.
    pub filter_steps: usize,
    /// Induction depth of the promotion check (CLI `--mine-depth`).
    pub k: usize,
    /// Cap on the latches entering the quadratic pair-relation pass;
    /// latches beyond it still get const/range candidates.
    pub max_pair_latches: usize,
    /// Largest latch-window width tried for range candidates.
    pub range_max_width: usize,
    /// Hard cap on generated candidates. Never silent: the overflow is
    /// reported in [`MiningStats::truncated`](crate::MiningStats).
    pub max_candidates: usize,
    /// SAT backend of the k-induction check.
    pub backend: BackendChoice,
    /// Budget of every individual induction/base query.
    pub budget: Budget,
    /// Observability journal: mining emits `mine`/`mine_sim`/
    /// `induction` spans and per-kind `mined` provenance events.
    pub journal: Journal,
}

impl MineOptions {
    /// The tuned defaults described on the struct.
    pub fn new() -> Self {
        MineOptions {
            seed: 0x6a70_726f_7665,
            gen_steps: 24,
            filter_runs: 4,
            filter_steps: 48,
            k: 2,
            max_pair_latches: 256,
            range_max_width: 8,
            max_candidates: 16384,
            backend: BackendChoice::default(),
            budget: Budget::unlimited(),
            journal: Journal::disabled(),
        }
    }

    /// Sets the stimulus seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the guessing-run length.
    pub fn gen_steps(mut self, steps: usize) -> Self {
        self.gen_steps = steps;
        self
    }

    /// Sets the number of filtering runs.
    pub fn filter_runs(mut self, runs: usize) -> Self {
        self.filter_runs = runs;
        self
    }

    /// Sets the filtering-run depth.
    pub fn filter_steps(mut self, steps: usize) -> Self {
        self.filter_steps = steps;
        self
    }

    /// Sets the induction depth (must be at least 1).
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets the SAT backend for promotion.
    pub fn backend(mut self, backend: BackendChoice) -> Self {
        self.backend = backend;
        self
    }

    /// Bounds each promotion query.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Attaches an observability journal.
    pub fn journal(mut self, journal: Journal) -> Self {
        self.journal = journal;
        self
    }
}

impl Default for MineOptions {
    fn default() -> Self {
        MineOptions::new()
    }
}
