//! Property mining: verify a design that carries *no* spec.
//!
//! Goldberg's multi-property machinery pays off in proportion to how
//! many properties a design carries. This crate *generates* that
//! workload from a bare design, the way TIUP and van Eijk-style
//! equivalence mining do, in three stages:
//!
//! 1. **Guess** (see [`CandidateKind`]): one 64-way random simulation run on
//!    [`japrove_aig::Simulator`]; everything the run never falsified
//!    becomes a candidate — constant latches, latch equivalences,
//!    pairwise implications, one-hot groups, range bounds.
//! 2. **Filter**: several deeper fresh-seed simulation runs kill false
//!    candidates in one batched pass per run
//!    ([`Simulator::filter_monitors`](japrove_aig::Simulator::filter_monitors)).
//! 3. **Promote**: a joint k-induction fixpoint
//!    ([`japrove_ic3::KInduction`]) drops everything not provable and
//!    returns the rest as *sound* invariants, packaged as a
//!    [`TransitionSystem`] ready for any verification driver.
//!
//! Every stage reports into the run journal (`mine`/`mine_sim`/
//! `induction` spans, per-kind `mined` provenance events) and into
//! [`MiningStats`], so the `mining_ablation` bench can account for
//! every candidate: `generated = sim_killed + induction_killed +
//! promoted`.
//!
//! Note on constraints: random stimulus ignores design constraints, so
//! on constrained designs the filter may kill candidates that are true
//! under the constraints — a yield loss, never a soundness loss (the
//! induction check does assume constraints).
//!
//! # Examples
//!
//! ```
//! use japrove_aig::Aig;
//! use japrove_mine::{mine, MineOptions};
//! use japrove_tsys::TransitionSystem;
//!
//! // Two identical toggles: their equivalence (among others) is
//! // minable and provable.
//! let mut aig = Aig::new();
//! let a = aig.add_latch(false);
//! let b = aig.add_latch(false);
//! aig.set_next(a, !a);
//! aig.set_next(b, !b);
//! let sys = TransitionSystem::new("toggles", aig);
//!
//! let outcome = mine(&sys, &MineOptions::new());
//! let names: Vec<_> = outcome.sys.properties().iter().map(|p| p.name.as_str()).collect();
//! assert!(names.contains(&"eq_l0_l1"));
//! assert_eq!(outcome.stats.promoted(), outcome.sys.num_properties());
//! ```

mod candidates;
mod options;

pub use candidates::{Candidate, CandidateKind};
pub use options::MineOptions;

use japrove_aig::Simulator;
use japrove_ic3::KInduction;
use japrove_obs::{EventKind, Phase};
use japrove_rng::SplitMix64;
use japrove_tsys::{PropertyId, TransitionSystem};
use std::time::Instant;

/// Per-kind accounting of one mining pass; every generated candidate
/// lands in exactly one of the three kill/keep buckets.
#[derive(Clone, Copy, Debug, Default)]
pub struct KindStats {
    /// Candidates guessed from the signature run.
    pub generated: usize,
    /// Killed by the random-simulation filter (these are genuinely
    /// false, witnessed by a concrete run).
    pub sim_killed: usize,
    /// Killed by the induction base case (also genuinely false: an
    /// initialized trace reaches a violation within `k` steps).
    pub base_killed: usize,
    /// Dropped by the induction step case or left unclassified by a
    /// budget: not provable at this `k`, truth unknown.
    pub step_killed: usize,
    /// Survivors promoted to properties of the mined system.
    pub promoted: usize,
}

impl KindStats {
    /// Total induction-stage kills (base + step).
    pub fn induction_killed(&self) -> usize {
        self.base_killed + self.step_killed
    }
}

/// Counters and wall-clock of one mining pass, per candidate kind and
/// per stage.
#[derive(Clone, Debug, Default)]
pub struct MiningStats {
    /// One row per [`CandidateKind::ALL`] entry, in that order.
    pub kinds: Vec<KindStats>,
    /// Candidates dropped by [`MineOptions::max_candidates`] before any
    /// stage ran (not part of any kind row).
    pub truncated: usize,
    /// Wall-clock of the guessing run + candidate construction, µs.
    pub gen_us: u64,
    /// Wall-clock of the simulation filter, µs.
    pub sim_us: u64,
    /// Wall-clock of the k-induction promotion, µs.
    pub induction_us: u64,
    /// CEGAR rounds the induction step fixpoint needed.
    pub rounds: usize,
}

impl MiningStats {
    fn total(&self, f: impl Fn(&KindStats) -> usize) -> usize {
        self.kinds.iter().map(f).sum()
    }

    /// Total candidates generated (before any filtering).
    pub fn generated(&self) -> usize {
        self.total(|k| k.generated)
    }

    /// Total simulation-filter kills.
    pub fn sim_killed(&self) -> usize {
        self.total(|k| k.sim_killed)
    }

    /// Total induction kills (base + step + unclassified).
    pub fn induction_killed(&self) -> usize {
        self.total(|k| k.induction_killed())
    }

    /// Total promoted survivors.
    pub fn promoted(&self) -> usize {
        self.total(|k| k.promoted)
    }

    /// The row for one candidate kind.
    pub fn kind(&self, kind: CandidateKind) -> KindStats {
        let idx = CandidateKind::ALL.iter().position(|&k| k == kind);
        idx.and_then(|i| self.kinds.get(i))
            .copied()
            .unwrap_or_default()
    }
}

/// The product of one mining pass.
#[derive(Clone, Debug)]
pub struct MiningOutcome {
    /// The original design (plus monitor gates) carrying every promoted
    /// candidate as a property, named `<design>#mined`. Each property
    /// is a *proved* invariant — any sound driver must report it as
    /// holding.
    pub sys: TransitionSystem,
    /// The kind of each promoted property, parallel to
    /// `sys.properties()`.
    pub kinds: Vec<CandidateKind>,
    /// Per-kind, per-stage accounting.
    pub stats: MiningStats,
}

/// Where a candidate ended up, used to fold the pipeline's three
/// stages into per-kind rows.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Fate {
    SimKilled,
    BaseKilled,
    StepKilled,
    Promoted,
}

/// Runs the full guess → filter → promote pipeline on `sys` (its
/// existing properties, if any, are ignored — mining reads only the
/// design) and returns the mined system plus accounting. See the
/// [module docs](self) for the pipeline and its soundness argument.
///
/// # Panics
///
/// Panics if `opts.k == 0`.
pub fn mine(sys: &TransitionSystem, opts: &MineOptions) -> MiningOutcome {
    assert!(opts.k >= 1, "k-induction needs k >= 1");
    let journal = &opts.journal;
    let span = journal.span_labeled(Phase::Mine, sys.name());
    let mut aig = sys.aig().clone();

    // Stage 1: guess from one 64-way run.
    let gen_started = Instant::now();
    let generated = {
        let _span = journal.span_labeled(Phase::MineSim, "generate");
        let mut rng = SplitMix64::seed_from_u64(opts.seed);
        let mut sim = Simulator::new(&aig);
        let mut history = Vec::with_capacity(opts.gen_steps + 1);
        history.push(sim.state().to_vec());
        let mut inputs = vec![0u64; aig.num_inputs()];
        for _ in 0..opts.gen_steps {
            for w in &mut inputs {
                *w = rng.next_u64();
            }
            sim.step(&aig, &inputs);
            history.push(sim.state().to_vec());
        }
        candidates::generate(&mut aig, &history, opts)
    };
    let cands = generated.candidates;
    let gen_us = gen_started.elapsed().as_micros() as u64;

    // The candidate system: every guess as a property, so the filter
    // and the induction check share one design.
    let mut cand_sys = TransitionSystem::new(format!("{}#cands", sys.name()), aig.clone());
    for &c in sys.constraints() {
        cand_sys.add_constraint(c);
    }
    for c in &cands {
        cand_sys.add_property(c.name.clone(), c.good);
    }

    // Stage 2: batched random-simulation filtering on fresh seeds.
    let sim_started = Instant::now();
    let mut alive = vec![true; cands.len()];
    if !cands.is_empty() {
        let _span = journal.span_labeled(Phase::MineSim, "filter");
        let goods: Vec<_> = cands.iter().map(|c| c.good).collect();
        for run in 0..opts.filter_runs {
            let mut rng = SplitMix64::seed_from_u64(
                opts.seed ^ (run as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            );
            let mut sim = Simulator::new(cand_sys.aig());
            let left = sim.filter_monitors(
                cand_sys.aig(),
                &goods,
                &mut alive,
                opts.filter_steps,
                |_, words| {
                    for w in words {
                        *w = rng.next_u64();
                    }
                },
            );
            if left == 0 {
                break;
            }
        }
    }
    let sim_us = sim_started.elapsed().as_micros() as u64;

    // Stage 3: joint k-induction promotion.
    let induction_started = Instant::now();
    let survivors: Vec<PropertyId> = cand_sys
        .property_ids()
        .filter(|p| alive[p.index()])
        .collect();
    let kres = if survivors.is_empty() {
        Default::default()
    } else {
        KInduction::new(&cand_sys, opts.k)
            .backend(opts.backend)
            .budget(opts.budget)
            .journal(journal.clone())
            .check(&survivors)
    };
    let induction_us = induction_started.elapsed().as_micros() as u64;

    // Fold the three stages into per-kind rows.
    let mut fate: Vec<Fate> = alive
        .iter()
        .map(|&a| if a { Fate::StepKilled } else { Fate::SimKilled })
        .collect();
    for p in &kres.base_killed {
        fate[p.index()] = Fate::BaseKilled;
    }
    for p in &kres.proved {
        fate[p.index()] = Fate::Promoted;
    }
    let mut stats = MiningStats {
        kinds: vec![KindStats::default(); CandidateKind::ALL.len()],
        truncated: generated.truncated,
        gen_us,
        sim_us,
        induction_us,
        rounds: kres.rounds,
    };
    for (c, &f) in cands.iter().zip(&fate) {
        let row = &mut stats.kinds[CandidateKind::ALL
            .iter()
            .position(|&k| k == c.kind)
            .expect("kind is in ALL")];
        row.generated += 1;
        match f {
            Fate::SimKilled => row.sim_killed += 1,
            Fate::BaseKilled => row.base_killed += 1,
            Fate::StepKilled => row.step_killed += 1,
            Fate::Promoted => row.promoted += 1,
        }
    }
    for (kind, row) in CandidateKind::ALL.iter().zip(&stats.kinds) {
        if row.generated > 0 {
            journal.event(EventKind::Mined {
                kind: kind.name().to_string(),
                generated: row.generated,
                sim_killed: row.sim_killed,
                induction_killed: row.induction_killed(),
                promoted: row.promoted,
            });
        }
    }

    // The mined system: promoted survivors only, on the same AIG.
    let mut mined = TransitionSystem::new(format!("{}#mined", sys.name()), aig);
    for &c in sys.constraints() {
        mined.add_constraint(c);
    }
    let mut kinds = Vec::with_capacity(kres.proved.len());
    for p in &kres.proved {
        let c = &cands[p.index()];
        mined.add_property(c.name.clone(), c.good);
        kinds.push(c.kind);
    }
    drop(span);
    MiningOutcome {
        sys: mined,
        kinds,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use japrove_aig::Aig;
    use japrove_tsys::Word;

    /// A design with plenty to mine: a wrapping 3-bit counter, a
    /// stuck-low latch, a shadow copy of counter bit 0, and a
    /// free-input latch (nothing true to mine there).
    fn rich_design() -> TransitionSystem {
        let mut aig = Aig::new();
        let c = Word::latches(&mut aig, 3, 0);
        let n = c.increment(&mut aig);
        c.set_next(&mut aig, &n);
        let stuck = aig.add_latch(false);
        aig.set_next(stuck, stuck);
        let shadow = aig.add_latch(false);
        aig.set_next(shadow, !c.bit(0)); // tracks next value of bit 0
        let free = aig.add_latch(false);
        let i = aig.add_input();
        aig.set_next(free, i);
        TransitionSystem::new("rich", aig)
    }

    #[test]
    fn mines_and_promotes_true_invariants() {
        let sys = rich_design();
        let outcome = mine(&sys, &MineOptions::new());
        let names: Vec<&str> = outcome
            .sys
            .properties()
            .iter()
            .map(|p| p.name.as_str())
            .collect();
        assert!(names.contains(&"const0_l3"), "{names:?}");
        assert!(
            names
                .iter()
                .any(|n| n.starts_with("eq_") || n.starts_with("neq_")),
            "bit0 and its shadow are equivalent: {names:?}"
        );
        assert_eq!(outcome.kinds.len(), outcome.sys.num_properties());
        // Nothing about the free latch can be promoted.
        assert!(names.iter().all(|n| !n.contains("l5")), "{names:?}");
    }

    #[test]
    fn accounting_adds_up() {
        let sys = rich_design();
        let outcome = mine(&sys, &MineOptions::new());
        let s = &outcome.stats;
        assert_eq!(
            s.generated(),
            s.sim_killed() + s.induction_killed() + s.promoted(),
            "every candidate has exactly one fate"
        );
        assert_eq!(s.promoted(), outcome.sys.num_properties());
        assert!(s.generated() > 0);
        assert_eq!(s.truncated, 0);
    }

    #[test]
    fn deterministic_across_calls() {
        let sys = rich_design();
        let a = mine(&sys, &MineOptions::new());
        let b = mine(&sys, &MineOptions::new());
        let names = |o: &MiningOutcome| {
            o.sys
                .properties()
                .iter()
                .map(|p| p.name.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(names(&a), names(&b));
        assert_eq!(a.stats.generated(), b.stats.generated());
    }

    #[test]
    fn journal_carries_mining_provenance() {
        let sys = rich_design();
        let journal = japrove_obs::Journal::new();
        let outcome = mine(&sys, &MineOptions::new().journal(journal.clone()));
        let events = journal.events();
        let mined_total: usize = events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Mined { promoted, .. } => Some(*promoted),
                _ => None,
            })
            .sum();
        assert_eq!(mined_total, outcome.sys.num_properties());
        let phases: Vec<Phase> = events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Span { phase, .. } => Some(*phase),
                _ => None,
            })
            .collect();
        for expected in [Phase::Mine, Phase::MineSim, Phase::Induction] {
            assert!(phases.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn empty_design_mines_nothing() {
        let aig = Aig::new();
        let sys = TransitionSystem::new("empty", aig);
        let outcome = mine(&sys, &MineOptions::new());
        assert_eq!(outcome.sys.num_properties(), 0);
        assert_eq!(outcome.stats.generated(), 0);
    }
}
